//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the subset of the criterion 0.5 API the workspace's
//! `harness = false` benches use: [`Criterion`], `benchmark_group`,
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], the
//! [`criterion_group!`] / [`criterion_main!`] macros, and [`black_box`].
//!
//! Measurement is a deliberately simple mean-of-samples wall-clock
//! timer: each benchmark warms up, then runs `sample_size` samples whose
//! iteration counts are sized to the configured measurement time, and a
//! `name ... time: [mean]` line is printed. No statistics, plots, or
//! baselines — enough to track relative throughput offline.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    /// Warm-up time before sampling.
    pub fn warm_up_time(mut self, t: Duration) -> Criterion {
        self.warm_up_time = t;
        self
    }

    /// Upstream-compat no-op (CLI args are ignored offline).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Criterion {
        run_bench(self, id, |b| f(b));
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Upstream-compat finalizer (summary reporting is per-line here).
    pub fn final_summary(&mut self) {}
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_bench(self.criterion, &label, |b| f(b, input));
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: BenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.0);
        run_bench(self.criterion, &label, |b| f(b));
        self
    }

    /// Adjusts the sample count for the rest of the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// A benchmark identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `group/function/parameter` style id.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function: S, parameter: P) -> BenchmarkId {
        BenchmarkId(format!("{}/{parameter}", function.into()))
    }

    /// Id carrying only a parameter.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to the benchmark closure to drive timed iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// Batch sizing hints for [`Bencher::iter_batched`] (ignored offline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

fn time_once<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_bench<F: FnMut(&mut Bencher)>(config: &Criterion, label: &str, mut f: F) {
    // Warm up and estimate a per-iteration cost.
    let mut iters = 1u64;
    let warm_up_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    while warm_up_start.elapsed() < config.warm_up_time {
        let elapsed = time_once(&mut f, iters);
        per_iter = elapsed.max(Duration::from_nanos(1)) / iters as u32;
        if elapsed < Duration::from_millis(1) {
            iters = iters.saturating_mul(2);
        }
    }
    // Size samples so the whole measurement roughly fits the target time.
    let budget = config.measurement_time.as_nanos() as u64 / config.sample_size as u64;
    let iters_per_sample = (budget / per_iter.as_nanos().max(1) as u64).clamp(1, 1 << 24);
    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..config.sample_size {
        let elapsed = time_once(&mut f, iters_per_sample);
        total += elapsed;
        best = best.min(elapsed / iters_per_sample as u32);
    }
    let mean = total / (config.sample_size as u32 * iters_per_sample as u32).max(1);
    println!(
        "{label:<50} time: [{} mean, {} best]",
        fmt_duration(mean),
        fmt_duration(best)
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Declares a benchmark group (both upstream forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
