//! The [`Strategy`] trait and the built-in strategies.

use crate::{Arbitrary, TestRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of random values (upstream `proptest::strategy::Strategy`,
/// without shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `f`, resampling (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.new_value(rng)))
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1024 samples in a row",
            self.whence
        );
    }
}

/// A type-erased strategy (upstream `BoxedStrategy`).
pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (backs [`crate::prop_oneof!`]).
#[derive(Debug, Clone)]
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Wraps the options; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].new_value(rng)
    }
}

/// See [`crate::any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0 0);
    (S0 0, S1 1);
    (S0 0, S1 1, S2 2);
    (S0 0, S1 1, S2 2, S3 3);
    (S0 0, S1 1, S2 2, S3 3, S4 4);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);
}

/// String strategies from regex-like patterns (the subset the workspace
/// uses; see the crate docs).
impl Strategy for &'static str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        let ast = regex::parse(self);
        let mut out = String::new();
        regex::generate(&ast, rng, &mut out);
        out
    }
}

/// A tiny regex-subset parser/generator for string strategies.
mod regex {
    use crate::TestRng;

    /// Cap for unbounded quantifiers (`*`, `+`).
    const UNBOUNDED_CAP: u32 = 8;

    #[derive(Debug, Clone)]
    pub(super) enum Node {
        /// A sequence of alternatives (at least one).
        Alt(Vec<Vec<Node>>),
        /// One literal character.
        Literal(char),
        /// A character class: concrete choices expanded from ranges.
        Class(Vec<char>),
        /// A quantified node: repeat between `min` and `max` times.
        Repeat(Box<Node>, u32, u32),
    }

    pub(super) fn parse(pattern: &str) -> Node {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let node = parse_alt(&chars, &mut pos);
        assert!(
            pos == chars.len(),
            "unsupported regex {pattern:?}: trailing input at {pos}"
        );
        node
    }

    fn parse_alt(chars: &[char], pos: &mut usize) -> Node {
        let mut alternatives = vec![parse_seq(chars, pos)];
        while *pos < chars.len() && chars[*pos] == '|' {
            *pos += 1;
            alternatives.push(parse_seq(chars, pos));
        }
        Node::Alt(alternatives)
    }

    fn parse_seq(chars: &[char], pos: &mut usize) -> Vec<Node> {
        let mut seq = Vec::new();
        while *pos < chars.len() && chars[*pos] != '|' && chars[*pos] != ')' {
            let atom = parse_atom(chars, pos);
            seq.push(parse_quantifier(chars, pos, atom));
        }
        seq
    }

    fn parse_atom(chars: &[char], pos: &mut usize) -> Node {
        match chars[*pos] {
            '(' => {
                *pos += 1;
                let inner = parse_alt(chars, pos);
                assert!(
                    *pos < chars.len() && chars[*pos] == ')',
                    "unsupported regex: unclosed group"
                );
                *pos += 1;
                inner
            }
            '[' => {
                *pos += 1;
                let mut choices = Vec::new();
                while *pos < chars.len() && chars[*pos] != ']' {
                    let lo = read_char(chars, pos);
                    if *pos + 1 < chars.len() && chars[*pos] == '-' && chars[*pos + 1] != ']' {
                        *pos += 1;
                        let hi = read_char(chars, pos);
                        assert!(lo <= hi, "bad class range {lo}-{hi}");
                        choices.extend(lo..=hi);
                    } else {
                        choices.push(lo);
                    }
                }
                assert!(*pos < chars.len(), "unsupported regex: unclosed class");
                *pos += 1; // ']'
                assert!(!choices.is_empty(), "empty character class");
                Node::Class(choices)
            }
            '.' => {
                *pos += 1;
                Node::Class((' '..='~').collect())
            }
            _ => Node::Literal(read_char(chars, pos)),
        }
    }

    fn read_char(chars: &[char], pos: &mut usize) -> char {
        let c = chars[*pos];
        *pos += 1;
        if c == '\\' {
            let escaped = chars[*pos];
            *pos += 1;
            match escaped {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                other => other,
            }
        } else {
            c
        }
    }

    fn parse_quantifier(chars: &[char], pos: &mut usize, atom: Node) -> Node {
        if *pos >= chars.len() {
            return atom;
        }
        match chars[*pos] {
            '?' => {
                *pos += 1;
                Node::Repeat(Box::new(atom), 0, 1)
            }
            '*' => {
                *pos += 1;
                Node::Repeat(Box::new(atom), 0, UNBOUNDED_CAP)
            }
            '+' => {
                *pos += 1;
                Node::Repeat(Box::new(atom), 1, UNBOUNDED_CAP)
            }
            '{' => {
                *pos += 1;
                let mut min = String::new();
                while chars[*pos].is_ascii_digit() {
                    min.push(chars[*pos]);
                    *pos += 1;
                }
                let min: u32 = min.parse().expect("regex {m,n}: bad minimum");
                let max = if chars[*pos] == ',' {
                    *pos += 1;
                    let mut max = String::new();
                    while chars[*pos].is_ascii_digit() {
                        max.push(chars[*pos]);
                        *pos += 1;
                    }
                    max.parse().expect("regex {m,n}: bad maximum")
                } else {
                    min
                };
                assert!(chars[*pos] == '}', "unsupported regex: unclosed {{}}");
                *pos += 1;
                Node::Repeat(Box::new(atom), min, max)
            }
            _ => atom,
        }
    }

    pub(super) fn generate(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Alt(alternatives) => {
                let i = rng.below(alternatives.len() as u64) as usize;
                for part in &alternatives[i] {
                    generate(part, rng, out);
                }
            }
            Node::Literal(c) => out.push(*c),
            Node::Class(choices) => {
                out.push(choices[rng.below(choices.len() as u64) as usize]);
            }
            Node::Repeat(inner, min, max) => {
                let n = min + rng.below((max - min + 1) as u64) as u32;
                for _ in 0..n {
                    generate(inner, rng, out);
                }
            }
        }
    }
}
