//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate reimplements the subset of the proptest 1.x API the workspace
//! uses: the [`Strategy`] trait with `prop_map` / `prop_filter` /
//! `boxed`, strategies for ranges, tuples, `Just`, regex-like string
//! literals, [`any`], [`collection::vec`] / [`collection::btree_set`],
//! and the [`proptest!`] / [`prop_oneof!`] / `prop_assert*` macros.
//!
//! Differences from upstream, deliberate for an offline test stand-in:
//!
//! * **No shrinking** — a failing case reports its inputs via the panic
//!   message (every generated binding is `Debug`-printable by the
//!   caller's assertions) but is not minimized.
//! * **Deterministic seeding** — each `proptest!` test derives its RNG
//!   seed from the test's name, so runs are reproducible without a
//!   `proptest-regressions` file (existing regression files are
//!   ignored).
//! * The string strategy supports the regex subset the workspace uses:
//!   literals, escapes, character classes with ranges, groups,
//!   alternation, and the `?`, `*`, `+`, `{n}`, `{m,n}` quantifiers.

use std::rc::Rc;

pub mod strategy;

pub use strategy::{BoxedStrategy, Just, OneOf, Strategy};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
    /// Retained for struct-literal compatibility; unused (no shrinking).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream defaults to 256; 64 keeps the offline suite fast
        // while still exercising each property broadly.
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// The deterministic RNG driving generation (xoshiro256**).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds from arbitrary bytes (FNV-1a folded through SplitMix64).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::from_seed(h)
    }

    /// Seeds from a 64-bit value.
    pub fn from_seed(seed: u64) -> TestRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, span)`; `span > 0`.
    pub fn below(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types with a canonical [`any`] strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values across a wide dynamic range (no NaN/inf: the
        // workspace's properties are about data semantics, not float
        // edge cases, and upstream-compatible bit-fishing needs no
        // shrinking support).
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exp = rng.below(61) as i32 - 30;
        mantissa * (2f64).powi(exp)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text displayable.
        (0x20 + rng.below(0x5f) as u8) as char
    }
}

/// The canonical strategy for `T` (upstream `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{strategy::Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size interval for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn sample(self, rng: &mut TestRng) -> usize {
            if self.hi <= self.lo {
                return self.lo;
            }
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a size drawn from `size`.
    ///
    /// Gives up (with a smaller set) if the element domain cannot supply
    /// enough distinct values.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.sample(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < n && attempts < 64 * (n + 1) {
                out.insert(self.element.new_value(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// The common imports (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{Arbitrary, ProptestConfig, TestRng};
}

/// Boxes heterogeneous strategies for [`prop_oneof!`].
pub fn __boxed_for_oneof<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    BoxedStrategy(Rc::new(move |rng| s.new_value(rng)))
}

/// Runs strategies-in-a-loop tests. Mirrors upstream `proptest!` syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
///     #[test]
///     fn prop(x in 0u64..10, ys in proptest::collection::vec(any::<bool>(), 0..4)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(let $pat = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a proptest-compatible name (no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::__boxed_for_oneof($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_maps_generate_in_bounds() {
        let mut rng = TestRng::from_name("t");
        let s = (0u16..6, -5i64..=5).prop_map(|(a, b)| (a, b * 2));
        for _ in 0..200 {
            let (a, b) = s.new_value(&mut rng);
            assert!(a < 6);
            assert!((-10..=10).contains(&b));
            assert_eq!(b % 2, 0);
        }
    }

    #[test]
    fn string_regex_subset() {
        let mut rng = TestRng::from_name("s");
        let s = "[a-c]{2,4}(-[xy])?";
        for _ in 0..200 {
            let v = Strategy::new_value(&s, &mut rng);
            let (head, tail) = match v.find('-') {
                Some(i) => (&v[..i], &v[i..]),
                None => (&v[..], ""),
            };
            assert!((2..=4).contains(&head.len()), "{v:?}");
            assert!(head.chars().all(|c| ('a'..='c').contains(&c)), "{v:?}");
            assert!(tail.is_empty() || tail == "-x" || tail == "-y", "{v:?}");
        }
    }

    #[test]
    fn collections_and_oneof() {
        let mut rng = TestRng::from_name("c");
        let v = crate::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 1..5);
        let s = crate::collection::btree_set(0u16..6, 1..4);
        for _ in 0..100 {
            let xs = v.new_value(&mut rng);
            assert!((1..5).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x == 1 || x == 2));
            let set = s.new_value(&mut rng);
            assert!((1..4).contains(&set.len()));
        }
    }

    #[test]
    fn filter_retries() {
        let mut rng = TestRng::from_name("f");
        let s = (0u64..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(s.new_value(&mut rng) % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn the_macro_binds_patterns((a, b) in (any::<bool>(), 0usize..3), c in Just(7)) {
            prop_assert!(b < 3, "b = {b}");
            prop_assert_eq!(c, 7);
            prop_assert_ne!(b, 99);
            let _ = a;
        }
    }
}
