//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the pieces of the `rand` 0.8 API the workspace uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over `Range` /
//! `RangeInclusive` bounds, [`Rng::gen_bool`], [`rngs::StdRng`] /
//! [`rngs::SmallRng`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — fully
//! deterministic for a given seed, which is all the workspace requires
//! (seeded workload generation and seeded fault injection). The streams
//! differ from upstream `rand`'s `StdRng`, so seeded output is not
//! bit-compatible with builds against the real crate; every consumer in
//! this workspace only relies on *self*-consistency of a seed.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from seed material.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step, used for seed expansion.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** core shared by [`rngs::StdRng`] and [`rngs::SmallRng`].
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Xoshiro256 {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng(Xoshiro256::from_u64(state))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Stand-in for `rand::rngs::SmallRng` (same core as [`StdRng`] with
    /// a perturbed seed so the two streams differ).
    #[derive(Debug, Clone)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> SmallRng {
            SmallRng(Xoshiro256::from_u64(state ^ 0x5851_F42D_4C95_7F2D))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// A type a range of which can be sampled uniformly.
pub trait SampleUniform: Sized {}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by multiply-shift; `span > 0`.
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // 128-bit multiply-high maps the word uniformly (up to 2^-64 bias,
    // irrelevant for test workloads) onto [0, span).
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + sample_below(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + sample_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) as f32 * (self.end - self.start)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Sequence helpers.
pub mod seq {
    use super::{sample_below, RngCore};

    /// Slice shuffling (the subset of `rand::seq::SliceRandom` used).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, `None` when empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = sample_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[sample_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25..=0.75f64);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should not be identity");
    }
}
