//! The paper's running example executed over the distributed runtime:
//! the three university databases as site actors, query Q1 over a
//! simulated network, and what happens when the network partitions an
//! assistant site mid-query — versus when the partition heals in time.
//!
//! ```sh
//! cargo run -p fedoq-net --example distributed_university
//! ```

use fedoq_net::{
    DistributedExecutor, DistributedOutcome, DistributedStrategy, FaultEvent, SimTransport,
    Transport,
};
use fedoq_object::DbId;
use fedoq_sim::{Simulation, Site, SystemParams};
use fedoq_workload::university;
use std::cell::RefCell;
use std::rc::Rc;

fn report(label: &str, fed: &fedoq_core::Federation, out: &DistributedOutcome) {
    println!("--- {label} ---");
    println!(
        "  delivered {} messages, dropped {}, retries {}, virtual time {:.0} µs",
        out.delivered, out.dropped, out.retries, out.virtual_us
    );
    if out.degraded_sites.is_empty() {
        println!("  all sites reachable");
    } else {
        let lost: Vec<&str> = out
            .degraded_sites
            .iter()
            .map(|d| fed.db(*d).name())
            .collect();
        println!("  unreachable sites: {}", lost.join(", "));
    }
    println!("  certain results:");
    for row in out.answer.certain() {
        println!("    {row}");
    }
    println!("  maybe results:");
    for row in out.answer.maybe() {
        println!("    {row}");
    }
    println!();
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fed = university::federation()?;
    let query = fed.parse_and_bind(university::Q1)?;
    let strategy = DistributedStrategy::bl();
    let exec = DistributedExecutor::new();

    // 1. A healthy simulated network: the distributed answer matches the
    //    paper's Section-2 classification exactly.
    let sim = Rc::new(RefCell::new(Simulation::new(
        SystemParams::paper_default(),
        fed.num_dbs(),
    )));
    let transport: Rc<RefCell<dyn Transport>> =
        Rc::new(RefCell::new(SimTransport::new(Rc::clone(&sim), 1)));
    let healthy = exec.run(&fed, &query, strategy, transport, sim)?;
    report("healthy network (BL over SimTransport)", &fed, &healthy);

    // 2. DB2 — an assistant site holding isomeric copies — is partitioned
    //    away from the federation 1 ms into the query: after the local
    //    queries fanned out, before the assistant lookups complete. It
    //    never comes back, yet the query still completes: rows whose
    //    certification needed DB2's copies come back as maybe results
    //    tagged (degraded).
    let db2 = Site::Db(DbId::new(1));
    let sim = Rc::new(RefCell::new(Simulation::new(
        SystemParams::paper_default(),
        fed.num_dbs(),
    )));
    let mut t = SimTransport::new(Rc::clone(&sim), 1);
    t.inject_at(1_000.0, FaultEvent::Partition(Site::Global, db2));
    t.inject_at(1_000.0, FaultEvent::Partition(Site::Db(DbId::new(0)), db2));
    t.inject_at(1_000.0, FaultEvent::Partition(Site::Db(DbId::new(2)), db2));
    let transport: Rc<RefCell<dyn Transport>> = Rc::new(RefCell::new(t));
    let degraded = exec.run(&fed, &query, strategy, transport, sim)?;
    report("DB2 partitioned mid-query, never heals", &fed, &degraded);

    // 3. The same partition, but it heals at 50 ms — while the assistant
    //    lookups are still inside their retry schedules: the retries
    //    recover every lookup and the answer is identical to the healthy
    //    run.
    let sim = Rc::new(RefCell::new(Simulation::new(
        SystemParams::paper_default(),
        fed.num_dbs(),
    )));
    let mut t = SimTransport::new(Rc::clone(&sim), 1);
    t.inject_at(1_000.0, FaultEvent::Partition(Site::Global, db2));
    t.inject_at(1_000.0, FaultEvent::Partition(Site::Db(DbId::new(0)), db2));
    t.inject_at(1_000.0, FaultEvent::Partition(Site::Db(DbId::new(2)), db2));
    t.inject_at(50_000.0, FaultEvent::Heal);
    let transport: Rc<RefCell<dyn Transport>> = Rc::new(RefCell::new(t));
    let healed = exec.run(&fed, &query, strategy, transport, sim)?;
    report("same partition, healed at 50 ms", &fed, &healed);

    assert!(
        degraded.answer.is_degraded(),
        "partition should have tagged degraded rows"
    );
    assert_eq!(
        healed.answer, healthy.answer,
        "after healing, the answer must match the healthy run"
    );
    println!("healed answer matches the healthy run; degraded run stayed sound.");
    Ok(())
}
