//! A tour of FedOQ's extensions beyond the paper: disjunctive queries,
//! signature pruning, target completion, and persistence.
//!
//! ```sh
//! cargo run --example extensions_tour
//! ```

use fedoq::prelude::*;
use fedoq::workload::university;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fed = university::federation()?;

    // --- 1. Disjunctive queries (the paper's §5 future work) -------------
    println!("== disjunctive queries ==");
    let dnf = parse_dnf(
        "SELECT X.name FROM Student X \
         WHERE X.address.city = 'Taipei' OR X.advisor.speciality = 'database'",
    )?;
    println!("query: {dnf}");
    let mut sim = Simulation::new(SystemParams::paper_default(), fed.num_dbs());
    let answer = run_disjunctive(&BasicLocalized::new(), &fed, &dnf, &mut sim)?;
    for row in answer.certain() {
        println!("  certain {row}");
    }
    for row in answer.maybe() {
        println!("  maybe   {}", row.row());
    }
    println!("  {}\n", sim.metrics());

    // --- 2. Signature pruning --------------------------------------------
    println!("== object signatures (BL vs BL-S) ==");
    let q1 = fed.parse_and_bind(university::Q1)?;
    let (_, plain) = run_strategy(
        &BasicLocalized::new(),
        &fed,
        &q1,
        SystemParams::paper_default(),
    )?;
    let (_, pruned) = run_strategy(
        &BasicLocalized::with_signatures(),
        &fed,
        &q1,
        SystemParams::paper_default(),
    )?;
    println!(
        "  BL   moved {} bytes over the network",
        plain.bytes_transferred
    );
    println!(
        "  BL-S moved {} bytes ({}% saved), identical answers\n",
        pruned.bytes_transferred,
        100 - 100 * pruned.bytes_transferred / plain.bytes_transferred
    );

    // --- 3. Target completion --------------------------------------------
    println!("== target completion ==");
    let q = fed.parse_and_bind(
        "SELECT X.name, X.advisor.department.location FROM Student X WHERE X.s-no = 808301",
    )?;
    let (without, _) = run_strategy(
        &BasicLocalized::new(),
        &fed,
        &q,
        SystemParams::paper_default(),
    )?;
    let (with, _) = run_strategy(
        &BasicLocalized::new().completing_targets(),
        &fed,
        &q,
        SystemParams::paper_default(),
    )?;
    println!("  without completion: {}", without.certain()[0]);
    println!(
        "  with completion:    {} (the location lives only at DB3)\n",
        with.certain()[0]
    );

    // --- 4. Persistence ----------------------------------------------------
    println!("== persistence ==");
    let dir = std::env::temp_dir().join("fedoq_extensions_tour");
    fed.save_to_dir(&dir)?;
    let restored = Federation::load_from_dir(&dir, &Correspondences::new())?;
    std::fs::remove_dir_all(&dir).ok();
    println!("  saved and restored: {restored}");
    let q1 = restored.parse_and_bind(university::Q1)?;
    let answer = oracle_answer(&restored, &q1);
    println!("  Q1 on the restored federation: {answer}");

    // --- 5. Network-model ablation ----------------------------------------
    println!("\n== network models ==");
    let q1 = fed.parse_and_bind(university::Q1)?;
    for network in [NetworkModel::SharedBus, NetworkModel::PointToPoint] {
        let (_, m) = run_strategy_with_network(
            &ParallelLocalized::new(),
            &fed,
            &q1,
            SystemParams::paper_default(),
            network,
        )?;
        println!(
            "  PL under {network:?}: response {:.1} ms",
            m.response_us / 1e3
        );
    }
    Ok(())
}
