//! The paper's running example, narrated: the three university databases
//! of Figure 1, query Q1 of Figure 3, its decomposition into Q1′/Q1″,
//! and the certain/maybe answer of Section 2.
//!
//! ```sh
//! cargo run --example university
//! ```

use fedoq::prelude::*;
use fedoq::schema::GlobalAttr;
use fedoq::workload::university;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fed = university::federation()?;

    println!("=== Component schemas (Figure 1) ===");
    for db in fed.dbs() {
        println!("{}:", db.name());
        for (_, class) in db.schema().iter() {
            let attrs: Vec<String> = class
                .attrs()
                .iter()
                .map(|a| format!("{}: {}", a.name(), a.ty()))
                .collect();
            println!("  {}({})", class.name(), attrs.join(", "));
        }
    }

    println!("\n=== Integrated global schema (Figure 2) ===");
    for (_, class) in fed.global_schema().iter() {
        let attrs: Vec<&str> = class.attrs().iter().map(GlobalAttr::name).collect();
        println!("  {}({})", class.name(), attrs.join(", "));
        for constituent in class.constituents() {
            let missing: Vec<&str> = constituent
                .missing_attrs()
                .map(|g| class.attr(g).name())
                .collect();
            if !missing.is_empty() {
                println!(
                    "    {} is missing: {}",
                    fed.db(constituent.db()).name(),
                    missing.join(", ")
                );
            }
        }
    }

    println!("\n=== GOid mapping tables (Figure 5) ===");
    for (gid, class) in fed.global_schema().iter() {
        let table = fed.catalog().table(gid);
        let mut entries: Vec<(GOid, Vec<LOid>)> =
            table.iter().map(|(g, ls)| (g, ls.to_vec())).collect();
        entries.sort();
        let rendered: Vec<String> = entries
            .iter()
            .map(|(g, ls)| {
                let copies: Vec<String> = ls.iter().map(ToString::to_string).collect();
                format!("{g}={{{}}}", copies.join(","))
            })
            .collect();
        println!("  {}: {}", class.name(), rendered.join(" "));
    }

    println!("\n=== Query Q1 (Figure 3a) ===\n  {}", university::Q1);
    let q1 = fed.parse_and_bind(university::Q1)?;

    println!("\n=== Local queries (Figure 3b) ===");
    for db in fed.dbs() {
        match plan_for_db(&q1, fed.global_schema(), db.id()) {
            Some(plan) => println!("  {}", plan.describe(&q1)),
            None => println!(
                "  {} hosts no Student constituent: no local query",
                db.name()
            ),
        }
    }

    println!("\n=== Executing all strategies ===");
    for strategy in [
        &Centralized as &dyn ExecutionStrategy,
        &BasicLocalized::new(),
        &ParallelLocalized::new(),
        &BasicLocalized::with_signatures(),
        &ParallelLocalized::with_signatures(),
    ] {
        let (answer, metrics) = run_strategy(strategy, &fed, &q1, SystemParams::paper_default())?;
        println!("{:>5}: {answer}", strategy.name());
        for row in answer.certain() {
            println!("         certain {row}");
        }
        for row in answer.maybe() {
            let unsolved: Vec<String> = row
                .unsolved()
                .map(|p| q1.predicates()[p.index()].to_string())
                .collect();
            println!(
                "         maybe   {} — unsolved: {}",
                row.row(),
                unsolved.join("; ")
            );
        }
        println!("         {metrics}");
    }
    println!("\nThe paper's Section 2 walkthrough: certain (Hedy, Kelly); maybe (Tony, Haley).");
    Ok(())
}
