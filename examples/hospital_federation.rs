//! A second domain: three hospitals share patient records under a global
//! schema, with *renamed* classes and attributes reconciled through
//! correspondence assertions — the heterogeneity the paper's schema
//! integration handles before query time.
//!
//! ```sh
//! cargo run --example hospital_federation
//! ```

use fedoq::prelude::*;
use fedoq::schema::GlobalAttr;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // General hospital: patients with physicians, no insurance data.
    let general = ComponentSchema::new(vec![
        ClassDef::new("Physician")
            .attr("name", AttrType::text())
            .attr("specialty", AttrType::text())
            .key(["name"]),
        ClassDef::new("Patient")
            .attr("ssn", AttrType::int())
            .attr("name", AttrType::text())
            .attr("physician", AttrType::complex("Physician"))
            .key(["ssn"]),
    ])?;
    // Clinic: its own vocabulary ("Doc", "Case", "id") and insurance info,
    // but no physician specialties.
    let clinic = ComponentSchema::new(vec![
        ClassDef::new("Doc")
            .attr("nm", AttrType::text())
            .key(["nm"]),
        ClassDef::new("Case")
            .attr("id", AttrType::int())
            .attr("nm", AttrType::text())
            .attr("insurer", AttrType::text())
            .attr("doc", AttrType::complex("Doc"))
            .key(["id"]),
    ])?;
    // Lab: only patients and blood values; some values pending (null).
    let lab = ComponentSchema::new(vec![ClassDef::new("Patient")
        .attr("ssn", AttrType::int())
        .attr("hemoglobin", AttrType::float())
        .key(["ssn"])])?;

    let mut db0 = ComponentDb::new(DbId::new(0), "General", general);
    let mut db1 = ComponentDb::new(DbId::new(1), "Clinic", clinic);
    let mut db2 = ComponentDb::new(DbId::new(2), "Lab", lab);

    let house = db0.insert_named(
        "Physician",
        &[
            ("name", Value::text("House")),
            ("specialty", Value::text("diagnostics")),
        ],
    )?;
    let wilson = db0.insert_named(
        "Physician",
        &[
            ("name", Value::text("Wilson")),
            ("specialty", Value::text("oncology")),
        ],
    )?;
    db0.insert_named(
        "Patient",
        &[
            ("ssn", Value::Int(100)),
            ("name", Value::text("Rebecca")),
            ("physician", Value::Ref(house)),
        ],
    )?;
    db0.insert_named(
        "Patient",
        &[
            ("ssn", Value::Int(101)),
            ("name", Value::text("Victor")),
            ("physician", Value::Ref(wilson)),
        ],
    )?;

    let cuddy = db1.insert_named("Doc", &[("nm", Value::text("Cuddy"))])?;
    // Rebecca is also a clinic case — the isomeric copy carrying insurance.
    db1.insert_named(
        "Case",
        &[
            ("id", Value::Int(100)),
            ("nm", Value::text("Rebecca")),
            ("insurer", Value::text("Acme Health")),
            ("doc", Value::Ref(cuddy)),
        ],
    )?;
    db1.insert_named(
        "Case",
        &[
            ("id", Value::Int(102)),
            ("nm", Value::text("Paul")),
            ("doc", Value::Ref(cuddy)),
        ],
    )?; // insurer null: pending paperwork

    db2.insert_named(
        "Patient",
        &[("ssn", Value::Int(100)), ("hemoglobin", Value::Float(13.5))],
    )?;
    db2.insert_named("Patient", &[("ssn", Value::Int(101))])?; // result pending
    db2.insert_named(
        "Patient",
        &[("ssn", Value::Int(102)), ("hemoglobin", Value::Float(10.2))],
    )?;

    // The correspondences reconcile the clinic's vocabulary.
    let corr = Correspondences::new()
        .map_class(DbId::new(1), "Case", "Patient")
        .map_class(DbId::new(1), "Doc", "Physician")
        .map_attr(DbId::new(1), "Case", "id", "ssn")
        .map_attr(DbId::new(1), "Case", "nm", "name")
        .map_attr(DbId::new(1), "Case", "doc", "physician")
        .map_attr(DbId::new(1), "Doc", "nm", "name");
    let fed = Federation::new(vec![db0, db1, db2], &corr)?;
    println!("{fed}");
    let patient = fed.global_schema().class_by_name("Patient").unwrap();
    let attrs: Vec<&str> = patient.attrs().iter().map(GlobalAttr::name).collect();
    println!("global Patient({})\n", attrs.join(", "));

    // Who is anemic (hemoglobin < 12) among insured patients?
    let query = fed.parse_and_bind(
        "SELECT X.name, X.insurer FROM Patient X \
         WHERE X.hemoglobin < 12.0 AND X.insurer != 'Acme Health'",
    )?;
    println!("query: {}\n", query.source());

    for strategy in [
        &Centralized as &dyn ExecutionStrategy,
        &BasicLocalized::new(),
        &ParallelLocalized::new(),
    ] {
        let (answer, metrics) =
            run_strategy(strategy, &fed, &query, SystemParams::paper_default())?;
        println!("{}: {answer}", strategy.name());
        for row in answer.certain() {
            println!("  certain {row}");
        }
        for row in answer.maybe() {
            println!("  maybe   {}", row.row());
        }
        println!("  {metrics}\n");
    }
    // Rebecca: hemoglobin 13.5 => eliminated. Victor: result pending and
    // no insurer anywhere => maybe. Paul: anemic, but his insurer is a
    // null at the clinic => maybe.
    Ok(())
}
