//! A miniature version of the paper's simulation study: sweep the number
//! of component databases over Table-2 workloads (scaled down) and watch
//! the Figure-10 effect — localized strategies win on response time, but
//! PL's total cost grows fastest with the number of sites.
//!
//! ```sh
//! cargo run --release --example strategy_comparison
//! ```

use fedoq::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SAMPLES: usize = 20;
const SCALE: f64 = 0.05; // ~275 objects per constituent class

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let strategies: Vec<Box<dyn ExecutionStrategy>> = vec![
        Box::new(Centralized),
        Box::new(BasicLocalized::new()),
        Box::new(ParallelLocalized::new()),
    ];

    println!(
        "{SAMPLES} samples per point, objects scaled to {:.0}% of the paper's sizes\n",
        SCALE * 100.0
    );
    println!(
        "{:>6} {:>14} {:>14} {:>14}   {:>14} {:>14} {:>14}",
        "N_db", "CA total", "BL total", "PL total", "CA resp", "BL resp", "PL resp"
    );

    for n_db in [2usize, 3, 4, 5, 6] {
        let mut params = WorkloadParams::paper_default().scaled(SCALE);
        params.n_db = n_db;
        let mut sums = vec![QueryMetrics::default(); strategies.len()];
        for i in 0..SAMPLES {
            let seed = (n_db * 1000 + i) as u64;
            let config = params.sample(&mut StdRng::seed_from_u64(seed));
            let sample = fedoq::workload::generate(&config, seed);
            let query = bind(&sample.query, sample.federation.global_schema())?;
            for (s, strategy) in strategies.iter().enumerate() {
                let (_, metrics) = run_strategy(
                    strategy.as_ref(),
                    &sample.federation,
                    &query,
                    SystemParams::paper_default(),
                )?;
                sums[s] = sums[s].add(&metrics);
            }
        }
        let avg: Vec<QueryMetrics> = sums
            .into_iter()
            .map(|m| m.scale_down(SAMPLES as u64))
            .collect();
        let ms = |v: f64| format!("{:.1} ms", v / 1e3);
        println!(
            "{:>6} {:>14} {:>14} {:>14}   {:>14} {:>14} {:>14}",
            n_db,
            ms(avg[0].total_execution_us),
            ms(avg[1].total_execution_us),
            ms(avg[2].total_execution_us),
            ms(avg[0].response_us),
            ms(avg[1].response_us),
            ms(avg[2].response_us),
        );
    }

    println!(
        "\nExpected shape (paper §4.2): BL/PL respond faster than CA everywhere;\n\
         BL has the lowest total; PL's total grows fastest as sites are added.\n\
         Run `cargo run --release -p fedoq-bench --bin figures` for the full\n\
         reproduction of Figures 9-11 at paper scale."
    );
    Ok(())
}
