//! Quickstart: build a two-site federation, ask a question that touches
//! missing data, and compare the three execution strategies.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use fedoq::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Site 0 records employees' departments; site 1 records salaries.
    // Neither knows everything — the classic missing-attribute conflict.
    let schema0 = ComponentSchema::new(vec![
        ClassDef::new("Department")
            .attr("name", AttrType::text())
            .key(["name"]),
        ClassDef::new("Employee")
            .attr("eid", AttrType::int())
            .attr("name", AttrType::text())
            .attr("dept", AttrType::complex("Department"))
            .key(["eid"]),
    ])?;
    let schema1 = ComponentSchema::new(vec![ClassDef::new("Employee")
        .attr("eid", AttrType::int())
        .attr("name", AttrType::text())
        .attr("salary", AttrType::int())
        .key(["eid"])])?;

    let mut db0 = ComponentDb::new(DbId::new(0), "HQ", schema0);
    let mut db1 = ComponentDb::new(DbId::new(1), "Payroll", schema1);

    let research = db0.insert_named("Department", &[("name", Value::text("Research"))])?;
    let sales = db0.insert_named("Department", &[("name", Value::text("Sales"))])?;
    // Ada exists at both sites (an isomeric pair, matched on eid).
    db0.insert_named(
        "Employee",
        &[
            ("eid", Value::Int(1)),
            ("name", Value::text("Ada")),
            ("dept", Value::Ref(research)),
        ],
    )?;
    db1.insert_named(
        "Employee",
        &[
            ("eid", Value::Int(1)),
            ("name", Value::text("Ada")),
            ("salary", Value::Int(120)),
        ],
    )?;
    // Bob only at HQ: his salary is missing data, forever maybe.
    db0.insert_named(
        "Employee",
        &[
            ("eid", Value::Int(2)),
            ("name", Value::text("Bob")),
            ("dept", Value::Ref(research)),
        ],
    )?;
    // Eve only at Payroll, and underpaid.
    db1.insert_named(
        "Employee",
        &[
            ("eid", Value::Int(3)),
            ("name", Value::text("Eve")),
            ("salary", Value::Int(80)),
        ],
    )?;
    // Mallory fails on the department.
    db0.insert_named(
        "Employee",
        &[
            ("eid", Value::Int(4)),
            ("name", Value::text("Mallory")),
            ("dept", Value::Ref(sales)),
        ],
    )?;
    db1.insert_named(
        "Employee",
        &[
            ("eid", Value::Int(4)),
            ("name", Value::text("Mallory")),
            ("salary", Value::Int(200)),
        ],
    )?;

    // Integrate: the global Employee is the union (eid, name, dept, salary).
    let fed = Federation::new(vec![db0, db1], &Correspondences::new())?;
    println!("{fed}\n");

    let query = fed.parse_and_bind(
        "SELECT X.name FROM Employee X \
         WHERE X.dept.name = 'Research' AND X.salary >= 100",
    )?;
    println!("query: {}\n", query.source());

    for strategy in [
        &Centralized as &dyn ExecutionStrategy,
        &BasicLocalized::new(),
        &ParallelLocalized::new(),
    ] {
        let (answer, metrics) =
            run_strategy(strategy, &fed, &query, SystemParams::paper_default())?;
        println!("{}:", strategy.name());
        for row in answer.certain() {
            println!("  certain: {row}");
        }
        for row in answer.maybe() {
            println!("  maybe:   {row}");
        }
        println!("  cost:    {metrics}\n");
    }
    // Every strategy answers: Ada is certain (her salary lives at the
    // other site — isomerism turned a maybe into a certain result); Bob is
    // maybe (nobody knows his salary); Eve and Mallory are eliminated.
    Ok(())
}
