//! The scheduler's dispatch trace: what happened, to which query, when.
//!
//! Every admission decision, site dispatch, reply, loss, replan, and
//! completion is appended to one shared [`DispatchTrace`] in virtual-time
//! order. The trace is the scheduler's testimony: the differential and
//! fairness suites replay it to prove ordering properties (no
//! starvation, no double-merge, replans only over unfinished sites), and
//! `fedoq-check`'s FQ307 lint audits the recorded [`ReplanEvent`]s for
//! replan soundness.

use fedoq_object::DbId;
use std::cell::RefCell;
use std::rc::Rc;

/// One mid-flight replan decision, recorded for audit.
///
/// Soundness (checked by `fedoq-check`'s FQ307 lint): a replan must
/// never re-dispatch a site whose reply is already merged
/// (`redispatched ∩ completed = ∅` — re-certifying merged verdicts
/// double-counts maybes), and must leave no hosting site uncovered
/// (`completed ∪ redispatched ∪ retained ⊇ hosting` — a dropped site
/// would silently lose absence elimination).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplanEvent {
    /// The replanned query.
    pub query: u64,
    /// Virtual time of the decision (µs).
    pub at_us: f64,
    /// Every hosting site of the query's plan.
    pub hosting: Vec<DbId>,
    /// Sites whose replies were already merged at decision time.
    pub completed: Vec<DbId>,
    /// Unfinished sites re-dispatched with a freshly priced mode.
    pub redispatched: Vec<DbId>,
    /// Unfinished sites left to their original in-flight dispatch.
    pub retained: Vec<DbId>,
}

/// One scheduler action, stamped with virtual time.
#[derive(Debug, Clone)]
pub enum TraceEvent {
    /// The query arrived and entered the admission queue.
    Submitted {
        /// The query's id.
        query: u64,
        /// Virtual time (µs).
        at_us: f64,
    },
    /// The query won an execution slot.
    Admitted {
        /// The query's id.
        query: u64,
        /// Virtual time (µs).
        at_us: f64,
    },
    /// The deadline expired while the query was still queued.
    RejectedAtDeadline {
        /// The query's id.
        query: u64,
        /// Virtual time (µs).
        at_us: f64,
    },
    /// A site RPC left through the dispatch gate.
    Dispatched {
        /// The dispatching query.
        query: u64,
        /// The target site.
        site: DbId,
        /// `true` when the site runs PL's static-prefetch schedule.
        parallel: bool,
        /// 0 for the original plan, 1+ for replan redispatches.
        generation: u32,
        /// Virtual time (µs).
        at_us: f64,
    },
    /// A site's `LocalEval` reply arrived.
    Replied {
        /// The query.
        query: u64,
        /// The replying site.
        site: DbId,
        /// Virtual time (µs).
        at_us: f64,
        /// `true` when the reply was discarded because the site was
        /// already merged (e.g. the original dispatch of a replanned
        /// site answered after its replacement).
        stale: bool,
    },
    /// A site stayed unreachable past every in-flight attempt.
    SiteLost {
        /// The query.
        query: u64,
        /// The lost site.
        site: DbId,
        /// Virtual time (µs).
        at_us: f64,
    },
    /// The planner re-planned the query's unfinished sites mid-flight.
    Replanned(ReplanEvent),
    /// The query finished (answered, failed, or timed out).
    Finished {
        /// The query.
        query: u64,
        /// Virtual time (µs).
        at_us: f64,
        /// `true` when the deadline expired before the answer.
        deadline_missed: bool,
    },
}

#[derive(Debug, Default)]
struct TraceInner {
    events: Vec<TraceEvent>,
    replans: Vec<ReplanEvent>,
}

/// Shared append-only event log (cheaply cloneable handle).
#[derive(Debug, Clone, Default)]
pub struct DispatchTrace {
    inner: Rc<RefCell<TraceInner>>,
}

impl DispatchTrace {
    /// An empty trace.
    pub fn new() -> DispatchTrace {
        DispatchTrace::default()
    }

    /// Appends one event; replans are additionally indexed separately.
    pub fn record(&self, event: TraceEvent) {
        let mut inner = self.inner.borrow_mut();
        if let TraceEvent::Replanned(replan) = &event {
            inner.replans.push(replan.clone());
        }
        inner.events.push(event);
    }

    /// A copy of every recorded event, in record order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.borrow().events.clone()
    }

    /// A copy of every recorded replan, in record order.
    pub fn replans(&self) -> Vec<ReplanEvent> {
        self.inner.borrow().replans.clone()
    }
}
