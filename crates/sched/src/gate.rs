//! Concurrency gates for the scheduler: slot-limited admission and
//! deficit-round-robin RPC dispatch.
//!
//! Both gates hand out RAII permits over the deterministic runtime:
//!
//! * [`Admission`] bounds how many queries execute at once. Waiters are
//!   served strictly by priority (higher first), FIFO within a priority
//!   — the front of the queue is always the oldest highest-priority
//!   query.
//! * [`DrrGate`] bounds how many site RPCs are on the wire at once and
//!   shares that capacity across priority *lanes* by deficit round
//!   robin: each lane accumulates `quantum × (1 + priority)` credit per
//!   replenish round and spends one credit per dispatch, so a
//!   priority-3 query gets four dispatch opportunities for every one a
//!   priority-0 query gets — but the priority-0 query is never starved.
//!
//! Every future here is cancellation-safe: dropping a pending `acquire`
//! removes the waiter, and dropping one that was granted but never
//! polled returns the slot. That matters because the scheduler races
//! every acquisition against the query's deadline.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// One queued acquisition: granted by the gate, consumed by the future.
#[derive(Debug, Default)]
struct WaitState {
    granted: bool,
    canceled: bool,
    waker: Option<Waker>,
}

fn grant(state: &Rc<RefCell<WaitState>>) {
    let mut s = state.borrow_mut();
    s.granted = true;
    if let Some(waker) = s.waker.take() {
        waker.wake();
    }
}

// ---------------------------------------------------------------------
// Admission: strict priority, FIFO within priority.
// ---------------------------------------------------------------------

#[derive(Debug)]
struct AdmitInner {
    free: usize,
    seq: u64,
    // Key `(255 - priority, seq)`: ascending iteration order is highest
    // priority first, oldest first within a priority.
    waiters: BTreeMap<(u8, u64), Rc<RefCell<WaitState>>>,
}

/// The admission gate: at most `slots` queries execute concurrently.
#[derive(Debug, Clone)]
pub struct Admission {
    inner: Rc<RefCell<AdmitInner>>,
}

impl Admission {
    /// A gate with `slots` concurrent-execution slots.
    pub fn new(slots: usize) -> Admission {
        Admission {
            inner: Rc::new(RefCell::new(AdmitInner {
                free: slots.max(1),
                seq: 0,
                waiters: BTreeMap::new(),
            })),
        }
    }

    /// Queues for an execution slot; resolves to its RAII permit.
    pub fn acquire(&self, priority: u8) -> Admit {
        let state = Rc::new(RefCell::new(WaitState::default()));
        let key = {
            let mut g = self.inner.borrow_mut();
            let key = (255 - priority, g.seq);
            g.seq += 1;
            g.waiters.insert(key, Rc::clone(&state));
            key
        };
        Self::pump(&self.inner);
        Admit {
            inner: Rc::clone(&self.inner),
            state,
            key,
            done: false,
        }
    }

    /// Free slots right now (for tests and metrics).
    pub fn available(&self) -> usize {
        self.inner.borrow().free
    }

    fn pump(inner: &Rc<RefCell<AdmitInner>>) {
        loop {
            let state = {
                let mut g = inner.borrow_mut();
                while let Some((&key, s)) = g.waiters.iter().next() {
                    if s.borrow().canceled {
                        g.waiters.remove(&key);
                    } else {
                        break;
                    }
                }
                if g.free == 0 {
                    return;
                }
                let Some((&key, _)) = g.waiters.iter().next() else {
                    return;
                };
                g.free -= 1;
                g.waiters.remove(&key).unwrap()
            };
            grant(&state);
        }
    }

    fn release(inner: &Rc<RefCell<AdmitInner>>) {
        inner.borrow_mut().free += 1;
        Self::pump(inner);
    }
}

/// A pending [`Admission::acquire`]. Resolves to an [`AdmitPermit`].
#[derive(Debug)]
pub struct Admit {
    inner: Rc<RefCell<AdmitInner>>,
    state: Rc<RefCell<WaitState>>,
    key: (u8, u64),
    done: bool,
}

impl Future for Admit {
    type Output = AdmitPermit;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<AdmitPermit> {
        let mut s = self.state.borrow_mut();
        if s.granted {
            drop(s);
            self.done = true;
            return Poll::Ready(AdmitPermit {
                inner: Rc::clone(&self.inner),
            });
        }
        s.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

impl Drop for Admit {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        let granted = self.state.borrow().granted;
        if granted {
            // Granted but never taken (e.g. lost the deadline race by a
            // hair): return the slot.
            Admission::release(&self.inner);
        } else {
            self.state.borrow_mut().canceled = true;
            self.inner.borrow_mut().waiters.remove(&self.key);
        }
    }
}

/// An execution slot; dropping it re-admits the next waiter.
#[derive(Debug)]
pub struct AdmitPermit {
    inner: Rc<RefCell<AdmitInner>>,
}

impl Drop for AdmitPermit {
    fn drop(&mut self) {
        Admission::release(&self.inner);
    }
}

// ---------------------------------------------------------------------
// DrrGate: deficit round robin across priority lanes.
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct Lane {
    deficit: f64,
    waiters: VecDeque<Rc<RefCell<WaitState>>>,
}

#[derive(Debug)]
struct GateInner {
    free: usize,
    quantum: f64,
    cursor: u8,
    lanes: BTreeMap<u8, Lane>,
}

/// The RPC-dispatch gate: at most `slots` site RPCs in flight, shared
/// across priority lanes by deficit round robin.
#[derive(Debug, Clone)]
pub struct DrrGate {
    inner: Rc<RefCell<GateInner>>,
}

impl DrrGate {
    /// A gate with `slots` wire slots and the given replenish quantum.
    pub fn new(slots: usize, quantum: f64) -> DrrGate {
        DrrGate {
            inner: Rc::new(RefCell::new(GateInner {
                free: slots.max(1),
                quantum: if quantum > 0.0 { quantum } else { 1.0 },
                cursor: 0,
                lanes: BTreeMap::new(),
            })),
        }
    }

    /// Queues in lane `priority` for a wire slot.
    pub fn acquire(&self, priority: u8) -> Acquire {
        let state = Rc::new(RefCell::new(WaitState::default()));
        self.inner
            .borrow_mut()
            .lanes
            .entry(priority)
            .or_default()
            .waiters
            .push_back(Rc::clone(&state));
        Self::pump(&self.inner);
        Acquire {
            inner: Rc::clone(&self.inner),
            state,
            done: false,
        }
    }

    /// Free wire slots right now (for tests and metrics).
    pub fn available(&self) -> usize {
        self.inner.borrow().free
    }

    fn pump(inner: &Rc<RefCell<GateInner>>) {
        loop {
            let state = {
                let mut g = inner.borrow_mut();
                // Prune canceled waiters and emptied lanes; an emptied
                // lane forfeits its accumulated deficit.
                for lane in g.lanes.values_mut() {
                    lane.waiters.retain(|w| !w.borrow().canceled);
                }
                g.lanes.retain(|_, lane| !lane.waiters.is_empty());
                if g.free == 0 || g.lanes.is_empty() {
                    return;
                }
                // Visit lanes round-robin from the cursor; grant the
                // first lane holding credit. If no lane holds credit,
                // replenish every waiting lane by its weight and retry —
                // guaranteed progress since the quantum is positive.
                let keys: Vec<u8> = g.lanes.keys().copied().collect();
                let cursor = g.cursor;
                let ordered = keys
                    .iter()
                    .copied()
                    .filter(|&k| k >= cursor)
                    .chain(keys.iter().copied().filter(|&k| k < cursor));
                let mut granted = None;
                for k in ordered {
                    let lane = g.lanes.get_mut(&k).unwrap();
                    if lane.deficit >= 1.0 {
                        lane.deficit -= 1.0;
                        granted = Some((k, lane.waiters.pop_front().unwrap()));
                        break;
                    }
                }
                match granted {
                    Some((k, state)) => {
                        g.free -= 1;
                        g.cursor = k.wrapping_add(1);
                        state
                    }
                    None => {
                        let quantum = g.quantum;
                        for (&k, lane) in &mut g.lanes {
                            lane.deficit += quantum * (1.0 + f64::from(k));
                        }
                        continue;
                    }
                }
            };
            grant(&state);
        }
    }

    fn release(inner: &Rc<RefCell<GateInner>>) {
        inner.borrow_mut().free += 1;
        Self::pump(inner);
    }
}

/// A pending [`DrrGate::acquire`]. Resolves to a [`GatePermit`].
#[derive(Debug)]
pub struct Acquire {
    inner: Rc<RefCell<GateInner>>,
    state: Rc<RefCell<WaitState>>,
    done: bool,
}

impl Future for Acquire {
    type Output = GatePermit;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<GatePermit> {
        let mut s = self.state.borrow_mut();
        if s.granted {
            drop(s);
            self.done = true;
            return Poll::Ready(GatePermit {
                inner: Rc::clone(&self.inner),
            });
        }
        s.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

impl Drop for Acquire {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        let granted = self.state.borrow().granted;
        if granted {
            DrrGate::release(&self.inner);
        } else {
            self.state.borrow_mut().canceled = true;
        }
    }
}

/// A wire slot; dropping it dispatches the next waiter.
#[derive(Debug)]
pub struct GatePermit {
    inner: Rc<RefCell<GateInner>>,
}

impl Drop for GatePermit {
    fn drop(&mut self) {
        DrrGate::release(&self.inner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedoq_net::Runtime;

    #[test]
    fn admission_is_strict_priority_then_fifo() {
        let rt = Runtime::new();
        let order: Rc<RefCell<Vec<u32>>> = Rc::default();
        let admission = Admission::new(1);
        let h = rt.handle();
        // A holder pins the single slot while the real waiters queue.
        {
            let admission = admission.clone();
            let h2 = h.clone();
            h.spawn(async move {
                let _permit = admission.acquire(0).await;
                h2.sleep(1_000.0).await;
            });
        }
        // Waiters queue at t=10 in spawn order with priorities 0, 3, 3.
        for (tag, priority) in [(0u32, 0u8), (1, 3), (2, 3)] {
            let admission = admission.clone();
            let order = Rc::clone(&order);
            let h2 = h.clone();
            h.spawn(async move {
                h2.sleep(10.0).await;
                let _permit = admission.acquire(priority).await;
                order.borrow_mut().push(tag);
            });
        }
        let h2 = h.clone();
        let done = Rc::clone(&order);
        rt.run(async move {
            while done.borrow().len() < 3 {
                h2.sleep(100.0).await;
            }
        })
        .unwrap();
        // Priority 3 first (FIFO among equals), then priority 0.
        assert_eq!(*order.borrow(), vec![1, 2, 0]);
        assert_eq!(admission.available(), 1);
    }

    #[test]
    fn drr_shares_by_weight_without_starvation() {
        let rt = Runtime::new();
        let grants: Rc<RefCell<Vec<u8>>> = Rc::default();
        let gate = DrrGate::new(1, 1.0);
        let h = rt.handle();
        {
            let gate = gate.clone();
            let h2 = h.clone();
            h.spawn(async move {
                let _permit = gate.acquire(0).await;
                h2.sleep(1_000.0).await;
            });
        }
        // 20 waiters in lane 0 and 20 in lane 3 queue behind the holder;
        // each grantee keeps the slot for 10 µs so grants serialize.
        for priority in [0u8, 3] {
            for _ in 0..20 {
                let gate = gate.clone();
                let grants = Rc::clone(&grants);
                let h2 = h.clone();
                h.spawn(async move {
                    h2.sleep(10.0).await;
                    let _permit = gate.acquire(priority).await;
                    grants.borrow_mut().push(priority);
                    h2.sleep(10.0).await;
                });
            }
        }
        let h2 = h.clone();
        let done = Rc::clone(&grants);
        rt.run(async move {
            while done.borrow().len() < 40 {
                h2.sleep(100.0).await;
            }
        })
        .unwrap();
        let grants = grants.borrow();
        assert_eq!(grants.len(), 40);
        // Weight 4 vs 1: the heavy lane dominates early grants, yet the
        // light lane is never starved.
        let head = &grants[..10];
        let heavy = head.iter().filter(|&&p| p == 3).count();
        assert!(heavy >= 6, "lane 3 got only {heavy}/10 early grants");
        assert!(head.contains(&0), "lane 0 starved in {head:?}");
    }

    #[test]
    fn dropping_a_pending_acquire_cancels_it_and_keeps_the_slot_flowing() {
        let rt = Runtime::new();
        let gate = DrrGate::new(1, 1.0);
        let gate2 = gate.clone();
        rt.run(async move {
            let first = gate2.acquire(0).await;
            let second = gate2.acquire(0); // pending: no free slot
            drop(second); // canceled, no slot leaked
            drop(first);
            let _third = gate2.acquire(0).await; // slot came back
        })
        .unwrap();
        assert_eq!(gate.available(), 1);
    }
}
