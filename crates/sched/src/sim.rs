//! The seeded scheduler simulation: real scheduler, real site actors,
//! scripted faults, reproducible from one `u64` seed.
//!
//! [`SchedSim`] wraps [`Scheduler`] in a harness the test suites drive:
//! a [`SimTransport`] seeded from the scenario seed, a [`FaultScript`]
//! injected at fixed virtual times, and a [`RecordingTransport`] that
//! writes every *delivered* envelope into a wire log. A failing scenario
//! is reproduced exactly by re-running with the printed seed — virtual
//! time makes the whole schedule, fault windows included,
//! deterministic.

use crate::sched::{QuerySpec, SchedConfig, SchedOutcome, SchedStrategy, Scheduler};
use crate::DistributedStrategy;
use fedoq_core::{ExecError, Federation};
use fedoq_net::msg::{Envelope, Payload, Response};
use fedoq_net::transport::{FaultEvent, SimTransport, Transport};
use fedoq_object::DbId;
use fedoq_sim::{Simulation, Site, SystemParams};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::rc::Rc;

/// A scripted fault scenario, applied at fixed virtual times.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultScript {
    /// No faults.
    Healthy,
    /// `site` slows down by `factor` at `at_us` and stays slow — the
    /// replanner's target scenario.
    Straggler {
        /// The slow site.
        site: DbId,
        /// Latency multiplier (≥ 1).
        factor: f64,
        /// When the slowdown starts (virtual µs).
        at_us: f64,
    },
    /// `site` crashes at `at_us` while queries are in flight and rejoins
    /// at `heal_us`.
    CrashMidQuery {
        /// The crashing site.
        site: DbId,
        /// Crash time (virtual µs).
        at_us: f64,
        /// Rejoin time (virtual µs).
        heal_us: f64,
    },
    /// The link between `a` and `b` partitions at `at_us` and heals at
    /// `heal_us`.
    PartitionThenHeal {
        /// One side of the cut.
        a: DbId,
        /// The other side.
        b: DbId,
        /// Partition time (virtual µs).
        at_us: f64,
        /// Heal time (virtual µs).
        heal_us: f64,
    },
}

impl FaultScript {
    /// Short name for failure messages.
    pub fn name(&self) -> &'static str {
        match self {
            FaultScript::Healthy => "healthy",
            FaultScript::Straggler { .. } => "straggler",
            FaultScript::CrashMidQuery { .. } => "crash-mid-query",
            FaultScript::PartitionThenHeal { .. } => "partition-then-heal",
        }
    }

    /// Sites this script makes unreachable or slow at some point.
    pub fn faulted_sites(&self) -> Vec<DbId> {
        match self {
            FaultScript::Healthy => Vec::new(),
            FaultScript::Straggler { site, .. } | FaultScript::CrashMidQuery { site, .. } => {
                vec![*site]
            }
            FaultScript::PartitionThenHeal { a, b, .. } => vec![*a, *b],
        }
    }

    /// Schedules the script's fault events on `transport`.
    pub fn apply(&self, transport: &mut SimTransport) {
        match *self {
            FaultScript::Healthy => {}
            FaultScript::Straggler {
                site,
                factor,
                at_us,
            } => {
                transport.inject_at(at_us, FaultEvent::Slow(Site::Db(site), factor));
            }
            FaultScript::CrashMidQuery {
                site,
                at_us,
                heal_us,
            } => {
                transport.inject_at(at_us, FaultEvent::Crash(Site::Db(site)));
                transport.inject_at(heal_us, FaultEvent::Restart(Site::Db(site)));
            }
            FaultScript::PartitionThenHeal {
                a,
                b,
                at_us,
                heal_us,
            } => {
                transport.inject_at(at_us, FaultEvent::Partition(Site::Db(a), Site::Db(b)));
                transport.inject_at(heal_us, FaultEvent::Heal);
            }
        }
    }
}

/// One delivered envelope, as seen by the transport.
#[derive(Debug, Clone)]
pub struct WireEvent {
    /// Delivery order (0-based).
    pub seq: u64,
    /// Sending site.
    pub from: Site,
    /// Receiving site.
    pub to: Site,
    /// RPC correlation id.
    pub rpc: u64,
    /// Message kind (`"LocalEval"`, `"Certify"`, …).
    pub kind: &'static str,
    /// `true` for responses.
    pub is_response: bool,
}

fn payload_kind(payload: &Payload) -> (&'static str, bool) {
    match payload {
        Payload::Request(request) => (request.kind(), false),
        Payload::Response(response) => {
            let kind = match response {
                Response::Certify(_) => "Certify",
                Response::LocalEval(_) => "LocalEval",
                Response::AssistantLookup(_) => "AssistantLookup",
                Response::ShipObjects(_) => "ShipObjects",
                Response::BatchAssistantLookup(_) => "BatchAssistantLookup",
                Response::BatchCertify(_) => "BatchCertify",
            };
            (kind, true)
        }
    }
}

/// A [`SimTransport`] wrapper that logs every envelope it delivers.
///
/// Dropped envelopes are *not* logged: the wire log is the ground truth
/// of what actually moved, which is what the concurrency analyzers
/// (orphaned RPCs, double replies) want to reason about.
pub struct RecordingTransport {
    inner: SimTransport,
    events: Rc<RefCell<Vec<WireEvent>>>,
    seq: u64,
}

impl RecordingTransport {
    /// Wraps `inner`, logging deliveries into a shared event log.
    pub fn new(inner: SimTransport) -> RecordingTransport {
        RecordingTransport {
            inner,
            events: Rc::default(),
            seq: 0,
        }
    }

    /// A handle to the shared wire log.
    pub fn events(&self) -> Rc<RefCell<Vec<WireEvent>>> {
        Rc::clone(&self.events)
    }

    /// The wrapped transport (e.g. to inject more faults).
    pub fn inner_mut(&mut self) -> &mut SimTransport {
        &mut self.inner
    }
}

impl Transport for RecordingTransport {
    fn name(&self) -> &'static str {
        "recording-sim"
    }

    fn dispatch(&mut self, env: &Envelope, now_us: f64) -> Option<f64> {
        let delay = self.inner.dispatch(env, now_us);
        if delay.is_some() {
            let (kind, is_response) = payload_kind(&env.payload);
            self.events.borrow_mut().push(WireEvent {
                seq: self.seq,
                from: env.from,
                to: env.to,
                rpc: env.rpc,
                kind,
                is_response,
            });
            self.seq += 1;
        }
        delay
    }

    fn stats(&self) -> (u64, u64) {
        self.inner.stats()
    }
}

/// Everything one simulated scheduler run produced.
#[derive(Debug)]
pub struct SchedRun {
    /// The scheduler's outcome (per-query verdicts, trace, replans).
    pub outcome: SchedOutcome,
    /// Every envelope the transport delivered, in delivery order.
    pub wire: Vec<WireEvent>,
    /// `(delivered, dropped)` transport totals.
    pub transport_stats: (u64, u64),
    /// The scenario seed (print it on failure: it reproduces the run).
    pub seed: u64,
}

/// A seeded scheduler-simulation scenario.
#[derive(Debug, Clone)]
pub struct SchedSim {
    /// Seed for the transport's jitter/drop randomness (and the
    /// scenario's identity in failure messages).
    pub seed: u64,
    /// Scheduler capacity/policy.
    pub config: SchedConfig,
    /// The fault script.
    pub script: FaultScript,
}

impl SchedSim {
    /// A healthy scenario with default scheduler knobs.
    pub fn new(seed: u64) -> SchedSim {
        SchedSim {
            seed,
            config: SchedConfig::default(),
            script: FaultScript::Healthy,
        }
    }

    /// Replaces the scheduler configuration (chainable).
    pub fn with_config(mut self, config: SchedConfig) -> SchedSim {
        self.config = config;
        self
    }

    /// Replaces the fault script (chainable).
    pub fn with_script(mut self, script: FaultScript) -> SchedSim {
        self.script = script;
        self
    }

    /// Runs the workload and returns the outcome plus the wire log.
    ///
    /// # Errors
    ///
    /// As for [`Scheduler::run`].
    pub fn run(&self, fed: &Federation, specs: &[QuerySpec]) -> Result<SchedRun, ExecError> {
        let sim = Rc::new(RefCell::new(Simulation::new(
            SystemParams::paper_default(),
            fed.num_dbs(),
        )));
        let mut transport = SimTransport::new(Rc::clone(&sim), self.seed);
        self.script.apply(&mut transport);
        let recording = Rc::new(RefCell::new(RecordingTransport::new(transport)));
        let events = recording.borrow().events();
        let outcome = Scheduler::new(self.config).run(
            fed,
            specs,
            Rc::clone(&recording) as Rc<RefCell<dyn Transport>>,
            sim,
        )?;
        let transport_stats = recording.borrow().stats();
        let wire = events.borrow().clone();
        Ok(SchedRun {
            outcome,
            wire,
            transport_stats,
            seed: self.seed,
        })
    }
}

/// A deterministic mixed workload over the university federation: `n`
/// specs spanning all three paper queries, fixed and adaptive
/// strategies, staggered arrivals, mixed priorities, and occasional
/// deadlines — everything derived from `seed`.
pub fn mixed_specs(n: usize, seed: u64) -> Vec<QuerySpec> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let sqls = [
        fedoq_workload::university::Q1,
        "SELECT X.name FROM Student X WHERE X.advisor.department.name = 'CS'",
        "SELECT X.name FROM Teacher X WHERE X.speciality = 'database'",
    ];
    let strategies = [
        SchedStrategy::Fixed(DistributedStrategy::bl()),
        SchedStrategy::Fixed(DistributedStrategy::pl()),
        SchedStrategy::Fixed(DistributedStrategy::ca()),
        SchedStrategy::Adaptive,
        SchedStrategy::Adaptive,
    ];
    (0..n)
        .map(|i| {
            let deadline_us = if rng.gen_range(0..4) == 0 {
                Some(rng.gen_range(200_000.0..2_000_000.0))
            } else {
                None
            };
            QuerySpec {
                id: i as u64,
                sql: sqls[rng.gen_range(0..sqls.len())].to_string(),
                priority: rng.gen_range(0..4),
                deadline_us,
                arrival_us: rng.gen_range(0.0..50_000.0),
                strategy: strategies[rng.gen_range(0..strategies.len())],
            }
        })
        .collect()
}
