//! The concurrent multi-query scheduler.
//!
//! [`Scheduler::run`] executes a whole workload of [`QuerySpec`]s over
//! one deterministic runtime: every query gets its own message fabric
//! (a [`Net`] seeded with a disjoint RPC-id range) and its own set of
//! site actors, while *capacity* is shared — an [`Admission`] gate
//! bounds how many queries execute at once (strict priority, FIFO
//! within a priority) and a [`DrrGate`] bounds how many site RPCs are
//! on the wire (deficit round robin across priority lanes, so heavy
//! queries cannot starve light ones).
//!
//! # Execution
//!
//! A query's driver sleeps until its arrival time, races admission
//! against its deadline, then executes its plan: `CA` ships extents and
//! evaluates centrally; `BL`/`PL`/`HY` fan `LocalEval` dispatches out
//! through the gate and fold replies into a [`LocalizedMerge`] in
//! *completion* order (the merge canonicalises, so the answer is
//! byte-identical to a serial run of the same plan). `Adaptive` specs
//! ask the cost-based planner for the cheapest of CA/BL/PL/HY first and
//! feed the observed response time back into the catalog afterwards.
//!
//! # Mid-flight replanning
//!
//! For adaptive queries a monitor samples in-flight dispatches every
//! `probe_interval_us`. A site whose dispatch has been outstanding
//! longer than `max(min_straggler_us, straggler_factor × mean completed
//! latency)` is a *straggler*: its observed elapsed time is fed into
//! the catalog as a transport observation (repricing the link), the
//! planner re-prices the **unfinished** sites only
//! ([`fedoq_plan::replan`]), and each straggler is re-dispatched once
//! with its freshly priced mode. Completed work is never re-done and
//! never re-certified: the merge accepts the first reply per site and
//! discards the loser of the original-vs-redispatch race as stale.

use crate::gate::{Admission, DrrGate};
use crate::trace::{DispatchTrace, ReplanEvent, TraceEvent};
use fedoq_core::handlers::{centralized_answer_with, ship_plan, LocalizedConfig, LocalizedMerge};
use fedoq_core::{
    collect_catalog, query_fingerprint, ExecError, Federation, LookupCache, PipelineConfig,
    QueryAnswer,
};
use fedoq_net::actor::{run_site, Ctx, FANOUT_TIMEOUT_SCALE};
use fedoq_net::msg::{Request, Response};
use fedoq_net::router::Net;
use fedoq_net::rpc::call;
use fedoq_net::rt::{join_all, timeout, Runtime};
use fedoq_net::{DistributedStrategy, RpcConfig, Transport};
use fedoq_object::DbId;
use fedoq_plan::{choose, replan, PipelineKnobs, PlanKind, StatsCatalog};
use fedoq_query::{plan_for_db, BoundQuery};
use fedoq_sim::{Phase, Simulation, Site};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// How a query picks its plan.
#[derive(Debug, Clone, Copy)]
pub enum SchedStrategy {
    /// Always run this strategy.
    Fixed(DistributedStrategy),
    /// Ask the cost-based planner (CA/BL/PL/HY) per query; eligible for
    /// mid-flight replanning.
    Adaptive,
}

/// One query submitted to the scheduler.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Caller-chosen id, unique within the workload (it also seeds the
    /// query's RPC-id range).
    pub id: u64,
    /// The query text.
    pub sql: String,
    /// Priority (higher = more urgent); drives admission order and the
    /// dispatch gate's lane weight.
    pub priority: u8,
    /// Completion deadline in virtual µs *from arrival*; `None` = none.
    pub deadline_us: Option<f64>,
    /// Virtual arrival time (µs from scheduler start).
    pub arrival_us: f64,
    /// Plan selection.
    pub strategy: SchedStrategy,
}

/// Scheduler capacity and policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct SchedConfig {
    /// Queries executing concurrently (admission slots).
    pub max_inflight: usize,
    /// Site RPCs on the wire concurrently (dispatch-gate slots).
    pub rpc_slots: usize,
    /// DRR replenish quantum (credits per round per unit weight).
    pub quantum: f64,
    /// A dispatch is a straggler past `straggler_factor ×` the mean
    /// completed-dispatch latency of its query.
    pub straggler_factor: f64,
    /// …but never before this many µs have elapsed.
    pub min_straggler_us: f64,
    /// Straggler-probe period (µs of virtual time).
    pub probe_interval_us: f64,
    /// Replan stragglers mid-flight (adaptive queries only).
    pub replan: bool,
    /// Timeout/retry policy for site RPCs.
    pub rpc: RpcConfig,
    /// Parallel-scan / batching / caching configuration for site work.
    pub pipeline: PipelineConfig,
    /// Idle time at the end of the run for late replies to land (µs).
    pub drain_us: f64,
}

impl Default for SchedConfig {
    fn default() -> SchedConfig {
        SchedConfig {
            max_inflight: 16,
            rpc_slots: 8,
            quantum: 1.0,
            straggler_factor: 4.0,
            min_straggler_us: 20_000.0,
            probe_interval_us: 5_000.0,
            replan: true,
            rpc: RpcConfig::default(),
            pipeline: PipelineConfig::default(),
            drain_us: 50_000.0,
        }
    }
}

/// How one query ended.
#[derive(Debug, Clone)]
pub enum QueryVerdict {
    /// Certified answer (possibly degraded under faults).
    Answered(QueryAnswer),
    /// Execution failed (e.g. CA with an unreachable site).
    Failed(String),
    /// The deadline expired before the query won an execution slot.
    DeadlineExpiredInQueue,
    /// The deadline expired mid-execution.
    DeadlineMiss,
}

impl QueryVerdict {
    /// The answer, when there is one.
    pub fn answer(&self) -> Option<&QueryAnswer> {
        match self {
            QueryVerdict::Answered(answer) => Some(answer),
            _ => None,
        }
    }

    /// `true` for either deadline outcome.
    pub fn deadline_missed(&self) -> bool {
        matches!(
            self,
            QueryVerdict::DeadlineExpiredInQueue | QueryVerdict::DeadlineMiss
        )
    }
}

/// One query's result and timings.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The spec's id.
    pub id: u64,
    /// The executed plan's label (`CA`/`BL`/`PL`/`HY`, or the fixed
    /// strategy's name; `-` when never admitted).
    pub executed: String,
    /// How the query ended.
    pub verdict: QueryVerdict,
    /// Sites that stayed unreachable during this query.
    pub degraded_sites: Vec<DbId>,
    /// Virtual time the query entered the admission queue (µs).
    pub submitted_us: f64,
    /// Virtual time it won an execution slot (µs).
    pub started_us: f64,
    /// Virtual time it finished (µs).
    pub finished_us: f64,
    /// `true` when a mid-flight replan re-dispatched at least one site.
    pub replanned: bool,
}

/// Everything one scheduler run produced.
#[derive(Debug, Clone)]
pub struct SchedOutcome {
    /// Per-query outcomes, in spec order.
    pub queries: Vec<QueryOutcome>,
    /// The full dispatch trace, in virtual-time order.
    pub trace: Vec<TraceEvent>,
    /// Every mid-flight replan decision.
    pub replans: Vec<ReplanEvent>,
    /// Total RPC retries across all queries.
    pub retries: u64,
    /// Stale responses observed at the RPC layer (late replies to
    /// abandoned attempts).
    pub stale: u64,
    /// Virtual time the whole run took (µs), including the drain.
    pub virtual_us: f64,
}

/// The concurrent multi-query scheduler.
#[derive(Debug, Clone, Default)]
pub struct Scheduler {
    config: SchedConfig,
}

// ---------------------------------------------------------------------
// Per-query shared state.
// ---------------------------------------------------------------------

/// Per-site dispatch bookkeeping.
#[derive(Debug, Default)]
struct SiteState {
    inflight: u32,
    replanned: bool,
    dispatched_at: f64,
}

/// Shared state of one localized execution: the merge accumulator plus
/// dispatch bookkeeping. Dispatch tasks, the straggler monitor, and the
/// query body all hold an `Rc` to it.
struct Board {
    merge: LocalizedMerge,
    states: BTreeMap<DbId, SiteState>,
    completed_us: Vec<f64>,
    remaining: usize,
    waker: Option<Waker>,
    replanned_any: bool,
    /// Set once the query body took the merge: late replies landing
    /// after this are stale by definition and must not touch `merge`
    /// (it has been replaced by an empty accumulator) or `remaining`.
    finished: bool,
}

impl Board {
    fn wake(&mut self) {
        if let Some(waker) = self.waker.take() {
            waker.wake();
        }
    }
}

/// Resolves when every hosting site is merged (success or loss).
struct BoardDone {
    board: Rc<RefCell<Board>>,
}

impl Future for BoardDone {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut board = self.board.borrow_mut();
        if board.remaining == 0 {
            return Poll::Ready(());
        }
        board.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

/// Everything a query's tasks share (cheap to clone).
struct QueryCtx<'a> {
    fed: &'a Federation,
    query: &'a BoundQuery,
    net: Net<'a>,
    sim: Rc<RefCell<Simulation>>,
    catalog: Rc<RefCell<StatsCatalog>>,
    cache: Rc<RefCell<LookupCache>>,
    trace: DispatchTrace,
    gate: DrrGate,
    cfg: SchedConfig,
    qid: u64,
    priority: u8,
    attr_bytes: u64,
    cancel: Rc<Cell<bool>>,
}

impl<'a> Clone for QueryCtx<'a> {
    fn clone(&self) -> Self {
        QueryCtx {
            fed: self.fed,
            query: self.query,
            net: self.net.clone(),
            sim: Rc::clone(&self.sim),
            catalog: Rc::clone(&self.catalog),
            cache: Rc::clone(&self.cache),
            trace: self.trace.clone(),
            gate: self.gate.clone(),
            cfg: self.cfg,
            qid: self.qid,
            priority: self.priority,
            attr_bytes: self.attr_bytes,
            cancel: Rc::clone(&self.cancel),
        }
    }
}

impl<'a> QueryCtx<'a> {
    fn now(&self) -> f64 {
        self.net.rt().now_us()
    }

    fn knobs(&self) -> PipelineKnobs {
        let warmth = if self.cfg.pipeline.cache {
            self.cache.borrow().stats().hit_rate()
        } else {
            0.0
        };
        PipelineKnobs {
            threads: self.cfg.pipeline.threads.max(1) as f64,
            warmth,
            batch: self.cfg.pipeline.batch as f64,
        }
    }
}

type BodyResult = Result<(QueryAnswer, Vec<DbId>, bool), String>;

// ---------------------------------------------------------------------
// Localized execution (BL / PL / HY) with optional replanning.
// ---------------------------------------------------------------------

/// One gated `LocalEval` dispatch to `site`; merges whatever comes back.
async fn dispatch_site<'a>(
    qc: QueryCtx<'a>,
    board: Rc<RefCell<Board>>,
    site: DbId,
    parallel: bool,
    generation: u32,
    config: LocalizedConfig,
) {
    let permit = qc.gate.acquire(qc.priority).await;
    {
        let mut b = board.borrow_mut();
        if qc.cancel.get() || b.merge.is_merged(site) {
            return;
        }
        let state = b.states.get_mut(&site).expect("site state");
        state.inflight += 1;
        state.dispatched_at = qc.now();
    }
    let sent_at = qc.now();
    qc.trace.record(TraceEvent::Dispatched {
        query: qc.qid,
        site,
        parallel,
        generation,
        at_us: sent_at,
    });
    let request = Request::LocalEval {
        parallel,
        use_signatures: config.use_signatures,
        complete_targets: config.complete_targets,
    };
    let outcome = call(
        &qc.net,
        Site::Global,
        Site::Db(site),
        request,
        2 * qc.attr_bytes,
        Phase::Ship,
        qc.cfg.rpc.scaled(FANOUT_TIMEOUT_SCALE),
    )
    .await;
    drop(permit);
    let now = qc.now();
    let mut b = board.borrow_mut();
    let state = b.states.get_mut(&site).expect("site state");
    state.inflight -= 1;
    let attempts_left = state.inflight;
    if b.finished {
        if matches!(outcome, Ok(Response::LocalEval(_))) {
            qc.trace.record(TraceEvent::Replied {
                query: qc.qid,
                site,
                at_us: now,
                stale: true,
            });
        }
        return;
    }
    match outcome {
        Ok(Response::LocalEval(reply)) => {
            let merged = b.merge.record_site(
                site,
                reply.rows,
                reply.verdicts,
                reply.target_values,
                reply.failed_checks,
                reply.degraded_peers,
            );
            qc.trace.record(TraceEvent::Replied {
                query: qc.qid,
                site,
                at_us: now,
                stale: !merged,
            });
            if merged {
                b.completed_us.push(now - sent_at);
                b.remaining -= 1;
                b.wake();
            }
        }
        // This attempt exhausted its retry budget. The site is lost only
        // when no other attempt (a replan redispatch) is still in
        // flight and nothing merged meanwhile.
        _ => {
            if !qc.cancel.get()
                && attempts_left == 0
                && !b.merge.is_merged(site)
                && b.merge.record_site_loss(site)
            {
                qc.trace.record(TraceEvent::SiteLost {
                    query: qc.qid,
                    site,
                    at_us: now,
                });
                b.remaining -= 1;
                b.wake();
            }
        }
    }
}

/// The straggler monitor: probes in-flight dispatches, feeds elapsed
/// times into the catalog, and re-dispatches re-priced stragglers once.
async fn monitor_stragglers<'a>(
    qc: QueryCtx<'a>,
    board: Rc<RefCell<Board>>,
    hosting: Rc<Vec<DbId>>,
    config: LocalizedConfig,
) {
    loop {
        qc.net.rt().sleep(qc.cfg.probe_interval_us).await;
        if qc.cancel.get() {
            return;
        }
        let stragglers: Vec<(DbId, f64)> = {
            let mut b = board.borrow_mut();
            if b.remaining == 0 {
                return;
            }
            if b.completed_us.is_empty() {
                continue; // need at least one completed dispatch to calibrate
            }
            let mean = b.completed_us.iter().sum::<f64>() / b.completed_us.len() as f64;
            let threshold = (qc.cfg.straggler_factor * mean).max(qc.cfg.min_straggler_us);
            let now = qc.net.rt().now_us();
            let Board { states, merge, .. } = &mut *b;
            states
                .iter()
                .filter(|(site, state)| {
                    !merge.is_merged(**site)
                        && !state.replanned
                        && state.inflight > 0
                        && now - state.dispatched_at > threshold
                })
                .map(|(site, state)| (*site, now - state.dispatched_at))
                .collect()
        };
        if stragglers.is_empty() {
            continue;
        }
        // A straggling dispatch is itself a transport observation: the
        // link has been busy at least this long for one request-sized
        // message. Repricing the catalog mid-flight is what lets the
        // replan disagree with the original plan.
        {
            let mut catalog = qc.catalog.borrow_mut();
            for (_, elapsed) in &stragglers {
                catalog.observe_net(2 * qc.attr_bytes, *elapsed);
            }
        }
        let unfinished: Vec<DbId> = stragglers.iter().map(|(s, _)| *s).collect();
        let modes = {
            let catalog = qc.catalog.borrow();
            replan(
                &catalog,
                qc.fed.global_schema(),
                qc.query,
                &qc.knobs(),
                &unfinished,
            )
        };
        let (completed, redispatched) = {
            let mut b = board.borrow_mut();
            let mut redispatched = Vec::new();
            for mode in &modes {
                if b.merge.is_merged(mode.db) {
                    continue;
                }
                let state = b.states.get_mut(&mode.db).expect("site state");
                if state.replanned {
                    continue;
                }
                state.replanned = true;
                redispatched.push(mode.db);
                let rt = qc.net.rt().clone();
                rt.spawn(dispatch_site(
                    qc.clone(),
                    Rc::clone(&board),
                    mode.db,
                    mode.parallel,
                    1,
                    config,
                ));
            }
            if redispatched.is_empty() {
                continue;
            }
            b.replanned_any = true;
            (b.merge.merged_sites(), redispatched)
        };
        let retained: Vec<DbId> = hosting
            .iter()
            .filter(|s| !completed.contains(s) && !redispatched.contains(s))
            .copied()
            .collect();
        qc.trace.record(TraceEvent::Replanned(ReplanEvent {
            query: qc.qid,
            at_us: qc.now(),
            hosting: hosting.as_ref().clone(),
            completed,
            redispatched,
            retained,
        }));
    }
}

/// Runs one localized plan (`modes` assigns each hosting site its
/// schedule) and certifies the merged replies.
async fn run_localized<'a>(
    qc: QueryCtx<'a>,
    modes: Vec<(DbId, bool)>,
    config: LocalizedConfig,
    monitor: bool,
) -> BodyResult {
    let hosting: Rc<Vec<DbId>> = Rc::new(modes.iter().map(|(s, _)| *s).collect());
    let board = Rc::new(RefCell::new(Board {
        merge: LocalizedMerge::new(),
        states: hosting.iter().map(|&s| (s, SiteState::default())).collect(),
        completed_us: Vec::new(),
        remaining: hosting.len(),
        waker: None,
        replanned_any: false,
        finished: false,
    }));
    let rt = qc.net.rt().clone();
    for &(site, parallel) in &modes {
        rt.spawn(dispatch_site(
            qc.clone(),
            Rc::clone(&board),
            site,
            parallel,
            0,
            config,
        ));
    }
    if monitor && qc.cfg.replan {
        rt.spawn(monitor_stragglers(
            qc.clone(),
            Rc::clone(&board),
            Rc::clone(&hosting),
            config,
        ));
    }
    BoardDone {
        board: Rc::clone(&board),
    }
    .await;
    let mut board = board.borrow_mut();
    board.finished = true;
    let merge = std::mem::take(&mut board.merge);
    let replanned = board.replanned_any;
    drop(board);
    let (answer, degraded_sites) = {
        let mut sim = qc.sim.borrow_mut();
        merge.finish(qc.fed, qc.query, &mut sim)
    };
    Ok((answer, degraded_sites, replanned))
}

// ---------------------------------------------------------------------
// Centralized execution (CA).
// ---------------------------------------------------------------------

/// Ships every involved extent through the gate, then evaluates at the
/// global site. CA has no graceful degradation: any lost site is fatal.
async fn run_centralized<'a>(qc: QueryCtx<'a>) -> BodyResult {
    let params = *qc.sim.borrow().params();
    let plan = ship_plan(qc.fed, qc.query, &params);
    type ShipFut<'f> = Pin<Box<dyn Future<Output = (DbId, bool)> + 'f>>;
    let ships: Vec<ShipFut<'_>> = plan
        .sites
        .iter()
        .map(|&site| {
            let qc = qc.clone();
            Box::pin(async move {
                let _permit = qc.gate.acquire(qc.priority).await;
                if qc.cancel.get() {
                    return (site, false);
                }
                let at = qc.now();
                qc.trace.record(TraceEvent::Dispatched {
                    query: qc.qid,
                    site,
                    parallel: false,
                    generation: 0,
                    at_us: at,
                });
                let outcome = call(
                    &qc.net,
                    Site::Global,
                    Site::Db(site),
                    Request::ShipObjects,
                    2 * qc.attr_bytes,
                    Phase::Ship,
                    qc.cfg.rpc.scaled(FANOUT_TIMEOUT_SCALE),
                )
                .await;
                let ok = matches!(outcome, Ok(Response::ShipObjects(_)));
                let event = if ok {
                    TraceEvent::Replied {
                        query: qc.qid,
                        site,
                        at_us: qc.now(),
                        stale: false,
                    }
                } else {
                    TraceEvent::SiteLost {
                        query: qc.qid,
                        site,
                        at_us: qc.now(),
                    }
                };
                qc.trace.record(event);
                (site, ok)
            }) as ShipFut<'_>
        })
        .collect();
    let shipped = join_all(ships).await;
    let lost: Vec<DbId> = shipped
        .iter()
        .filter(|(_, ok)| !ok)
        .map(|(site, _)| *site)
        .collect();
    if !lost.is_empty() {
        let names = lost
            .iter()
            .map(|&s| qc.fed.db(s).name().to_string())
            .collect::<Vec<_>>()
            .join(", ");
        return Err(format!(
            "CA cannot evaluate without the extents of {names}; \
             use a localized strategy for graceful degradation"
        ));
    }
    let answer = {
        let mut sim = qc.sim.borrow_mut();
        centralized_answer_with(qc.fed, qc.query, &mut sim, qc.cfg.pipeline)
            .map_err(|e| e.to_string())?
    };
    Ok((answer, Vec::new(), false))
}

// ---------------------------------------------------------------------
// The per-query driver.
// ---------------------------------------------------------------------

/// The hosting sites of `query`, ascending.
fn hosting_sites(fed: &Federation, query: &BoundQuery) -> Vec<DbId> {
    let schema = fed.global_schema();
    fed.dbs()
        .iter()
        .filter_map(|db| plan_for_db(query, schema, db.id()).map(|p| p.db()))
        .collect()
}

/// Drives one query end to end: arrival → admission → plan → execute →
/// verdict. Admission and execution both race the deadline.
async fn drive_query<'a>(
    qc: QueryCtx<'a>,
    admission: Admission,
    spec: &'a QuerySpec,
) -> QueryOutcome {
    let handle = qc.net.rt().clone();
    if spec.arrival_us > 0.0 {
        handle.sleep(spec.arrival_us).await;
    }
    let submitted_us = qc.now();
    qc.trace.record(TraceEvent::Submitted {
        query: qc.qid,
        at_us: submitted_us,
    });

    // Admission, raced against the deadline.
    let admit = admission.acquire(qc.priority);
    let permit = match spec.deadline_us {
        Some(deadline) => match timeout(&handle, deadline, admit).await {
            Some(permit) => permit,
            None => {
                let now = qc.now();
                qc.trace.record(TraceEvent::RejectedAtDeadline {
                    query: qc.qid,
                    at_us: now,
                });
                qc.trace.record(TraceEvent::Finished {
                    query: qc.qid,
                    at_us: now,
                    deadline_missed: true,
                });
                return QueryOutcome {
                    id: spec.id,
                    executed: "-".to_string(),
                    verdict: QueryVerdict::DeadlineExpiredInQueue,
                    degraded_sites: Vec::new(),
                    submitted_us,
                    started_us: now,
                    finished_us: now,
                    replanned: false,
                };
            }
        },
        None => admit.await,
    };
    let started_us = qc.now();
    qc.trace.record(TraceEvent::Admitted {
        query: qc.qid,
        at_us: started_us,
    });

    // Pick the plan.
    let hosting = hosting_sites(qc.fed, qc.query);
    let uniform =
        |parallel: bool| -> Vec<(DbId, bool)> { hosting.iter().map(|&s| (s, parallel)).collect() };
    let fingerprint = query_fingerprint(qc.query);
    enum PlannedBody {
        Centralized,
        Localized(Vec<(DbId, bool)>, LocalizedConfig, bool),
    }
    let (label, body): (&'static str, PlannedBody) = match spec.strategy {
        SchedStrategy::Fixed(strategy) => match strategy {
            DistributedStrategy::Centralized => (strategy.name(), PlannedBody::Centralized),
            DistributedStrategy::BasicLocalized(config) => (
                strategy.name(),
                PlannedBody::Localized(uniform(false), config, false),
            ),
            DistributedStrategy::ParallelLocalized(config) => (
                strategy.name(),
                PlannedBody::Localized(uniform(true), config, false),
            ),
        },
        SchedStrategy::Adaptive => {
            let choice = {
                let catalog = qc.catalog.borrow();
                choose(
                    &catalog,
                    qc.fed.global_schema(),
                    qc.query,
                    &qc.knobs(),
                    fingerprint,
                    true,
                )
            };
            let best = choice.best();
            let config = LocalizedConfig::default();
            match best.kind {
                PlanKind::Centralized => ("CA", PlannedBody::Centralized),
                PlanKind::BasicLocalized => {
                    ("BL", PlannedBody::Localized(uniform(false), config, true))
                }
                PlanKind::ParallelLocalized => {
                    ("PL", PlannedBody::Localized(uniform(true), config, true))
                }
                PlanKind::Hybrid => {
                    let modes = hosting
                        .iter()
                        .map(|&s| {
                            let parallel = best.modes.iter().any(|m| m.db == s && m.parallel);
                            (s, parallel)
                        })
                        .collect();
                    ("HY", PlannedBody::Localized(modes, config, true))
                }
            }
        }
    };
    let adaptive = matches!(spec.strategy, SchedStrategy::Adaptive);

    // Execute, raced against what's left of the deadline.
    let body: Pin<Box<dyn Future<Output = BodyResult> + 'a>> = match body {
        PlannedBody::Centralized => Box::pin(run_centralized(qc.clone())),
        PlannedBody::Localized(modes, config, monitor) => {
            Box::pin(run_localized(qc.clone(), modes, config, monitor))
        }
    };
    let deadline_left = spec
        .deadline_us
        .map(|deadline| (submitted_us + deadline - started_us).max(1.0));
    let result = match deadline_left {
        Some(left) => timeout(&handle, left, body).await,
        None => Some(body.await),
    };
    drop(permit);
    let finished_us = qc.now();
    let (verdict, degraded_sites, replanned) = match result {
        None => {
            qc.cancel.set(true);
            (QueryVerdict::DeadlineMiss, Vec::new(), false)
        }
        Some(Err(message)) => (QueryVerdict::Failed(message), Vec::new(), false),
        Some(Ok((answer, degraded_sites, replanned))) => {
            if adaptive {
                qc.catalog.borrow_mut().observe_response(
                    fingerprint,
                    label,
                    finished_us - started_us,
                );
            }
            (QueryVerdict::Answered(answer), degraded_sites, replanned)
        }
    };
    qc.trace.record(TraceEvent::Finished {
        query: qc.qid,
        at_us: finished_us,
        deadline_missed: verdict.deadline_missed(),
    });
    QueryOutcome {
        id: spec.id,
        executed: label.to_string(),
        verdict,
        degraded_sites,
        submitted_us,
        started_us,
        finished_us,
        replanned,
    }
}

// ---------------------------------------------------------------------
// The scheduler.
// ---------------------------------------------------------------------

impl Scheduler {
    /// A scheduler with the given capacity/policy knobs.
    pub fn new(config: SchedConfig) -> Scheduler {
        Scheduler { config }
    }

    /// The configuration in force.
    pub fn config(&self) -> SchedConfig {
        self.config
    }

    /// Executes the whole workload over `transport` and returns every
    /// query's outcome plus the dispatch trace.
    ///
    /// Each spec gets its own message fabric (RPC ids seeded from its
    /// id, so correlation ids never collide across queries) and its own
    /// site actors; admission slots, the dispatch gate, the lookup
    /// cache, and the statistics catalog are shared.
    ///
    /// # Errors
    ///
    /// Parse/bind errors for any spec, and [`ExecError::Internal`] when
    /// the runtime deadlocks (a scheduler bug by construction).
    pub fn run(
        &self,
        fed: &Federation,
        specs: &[QuerySpec],
        transport: Rc<RefCell<dyn Transport>>,
        sim: Rc<RefCell<Simulation>>,
    ) -> Result<SchedOutcome, ExecError> {
        let queries: Vec<BoundQuery> = specs
            .iter()
            .map(|spec| fed.parse_and_bind(&spec.sql))
            .collect::<Result<_, _>>()?;
        let params = *sim.borrow().params();
        let catalog = Rc::new(RefCell::new(collect_catalog(fed, params)));
        let cache = Rc::new(RefCell::new(LookupCache::default()));
        cache.borrow_mut().sync_generation(fed.generation());
        let trace = DispatchTrace::new();
        let admission = Admission::new(self.config.max_inflight);
        let gate = DrrGate::new(self.config.rpc_slots, self.config.quantum);
        let cfg = self.config;

        let rt = Runtime::new();
        let mut nets: Vec<Net<'_>> = Vec::with_capacity(specs.len());
        for (i, spec) in specs.iter().enumerate() {
            let net = Net::new(rt.handle(), Rc::clone(&transport), fed.num_dbs());
            net.seed_rpc_ids((spec.id + 1) << 32);
            for db in fed.dbs() {
                let ctx = Ctx {
                    fed,
                    query: &queries[i],
                    net: net.clone(),
                    sim: Rc::clone(&sim),
                    rpc: cfg.rpc,
                    pipeline: cfg.pipeline,
                    cache: Some(Rc::clone(&cache)),
                };
                rt.handle().spawn(run_site(ctx, db.id()));
            }
            nets.push(net);
        }

        type DriverFut<'f> = Pin<Box<dyn Future<Output = QueryOutcome> + 'f>>;
        let drivers: Vec<DriverFut<'_>> = specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let qc = QueryCtx {
                    fed,
                    query: &queries[i],
                    net: nets[i].clone(),
                    sim: Rc::clone(&sim),
                    catalog: Rc::clone(&catalog),
                    cache: Rc::clone(&cache),
                    trace: trace.clone(),
                    gate: gate.clone(),
                    cfg,
                    qid: spec.id,
                    priority: spec.priority,
                    attr_bytes: params.attr_bytes,
                    cancel: Rc::new(Cell::new(false)),
                };
                Box::pin(drive_query(qc, admission.clone(), spec)) as DriverFut<'_>
            })
            .collect();

        let handle = rt.handle();
        let drain_us = cfg.drain_us;
        let (outcomes, virtual_us) = rt
            .run(async move {
                let outcomes = join_all(drivers).await;
                if drain_us > 0.0 {
                    handle.sleep(drain_us).await;
                }
                (outcomes, handle.now_us())
            })
            .map_err(|deadlock| ExecError::Internal(deadlock.to_string()))?;

        let retries = nets.iter().map(Net::retries).sum();
        let stale = nets.iter().map(Net::stale_responses).sum();
        Ok(SchedOutcome {
            queries: outcomes,
            trace: trace.events(),
            replans: trace.replans(),
            retries,
            stale,
            virtual_us,
        })
    }
}
