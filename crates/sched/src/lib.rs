//! # fedoq-sched — the concurrent multi-query scheduler
//!
//! Everything below `fedoq-sched` executes *one* query at a time: the
//! distributed executor spins up actors, certifies one answer, and
//! tears the world down. A federation serving real clients runs
//! *hundreds* of queries at once, all contending for the same site
//! actors, lookup cache, and wire. This crate adds that layer:
//!
//! * **Admission control** ([`Admission`]) — at most `max_inflight`
//!   queries execute concurrently; waiters are served strictly by
//!   priority, FIFO within a priority, and can give up when their
//!   deadline passes.
//! * **Deficit-round-robin dispatch** ([`DrrGate`]) — site RPCs from
//!   all in-flight queries share `rpc_slots` wire slots; DRR lanes
//!   weight by priority without starving anyone.
//! * **Deadlines and priorities** ([`QuerySpec`]) — admission and
//!   execution both race each query's deadline; an expired query is
//!   cancelled without orphaning its in-flight RPCs.
//! * **Mid-flight hybrid replanning** ([`Scheduler`]) — adaptive
//!   queries start on the cost-based planner's pick (CA/BL/PL/HY); a
//!   straggler monitor feeds observed dispatch latencies back into the
//!   statistics catalog *during* execution and re-dispatches re-priced
//!   unfinished sites, never re-doing or re-certifying completed work
//!   (the [`fedoq_core::LocalizedMerge`] accumulator accepts one merge
//!   per site, structurally).
//! * **A deterministic simulation harness** ([`SchedSim`]) — the real
//!   scheduler and real site actors over a seeded fault-injecting
//!   transport with a recorded wire log; any failure reproduces from
//!   its printed `u64` seed.
//!
//! The answers are the paper's: certification, graceful degradation,
//! and the CA/BL/PL/HY strategy surface are untouched — this crate only
//! decides *when* each piece of work runs.

pub mod gate;
pub mod sched;
pub mod sim;
pub mod trace;

pub use gate::{Admission, AdmitPermit, DrrGate, GatePermit};
pub use sched::{
    QueryOutcome, QuerySpec, QueryVerdict, SchedConfig, SchedOutcome, SchedStrategy, Scheduler,
};
pub use sim::{mixed_specs, FaultScript, RecordingTransport, SchedRun, SchedSim, WireEvent};
pub use trace::{DispatchTrace, ReplanEvent, TraceEvent};

// Re-export the strategy surface so scheduler consumers don't need a
// direct fedoq-net dependency for the common types.
pub use fedoq_net::{DistributedStrategy, RpcConfig};
