//! The subscription reactor: standing queries maintained incrementally
//! from the federation change log.
//!
//! A [`LiveReactor`] owns the [`Federation`]. Clients register standing
//! queries ([`LiveReactor::register`]); each runs once through the
//! existing executor, and its *conditioned* answer — every maybe row
//! annotated with the (site, object, attribute) facts it is contingent on
//! — is retained together with two indexes:
//!
//! * the query's **class footprint** ([`BoundQuery::class_footprint`]),
//!   which decides whether a logged change can affect the answer at all;
//! * a **(site, class, attribute) dependency index** over the live
//!   condition atoms, which maps reachability transitions to the
//!   subscriptions whose maybe rows they degrade or restore.
//!
//! Mutations route through [`LiveReactor::mutate`]; the reactor then
//! consumes the [`Federation::mutate`] change log through its own
//! [`ChangeCursor`] and re-evaluates *only* the subscriptions whose
//! footprint the batch touched, emitting [`Delta`] batches over
//! `fedoq-sync` channels. Admission shares the scheduler's priority
//! ladder ([`fedoq_sched::Admission`]): at most `slots` standing queries
//! are active, and a freed slot goes to the oldest highest-priority
//! waiter.
//!
//! Correctness contract: after any mutation/heal sequence, each
//! subscription's maintained answer is **byte-identical** to
//! [`evaluate`] run from scratch — the differential property
//! `tests/live_differential.rs` enforces.

use crate::delta::{diff, Delta, LiveEvent, Resolution, Trigger};
use crate::trace::LiveTraceEvent;
use fedoq_core::{
    annotate_conditions, run_strategy, BasicLocalized, Centralized, ChangeCursor, ChangeRecord,
    ConditionedAnswer, ExecError, ExecutionStrategy, Federation, HybridLocalized,
    ParallelLocalized,
};
use fedoq_object::{DbId, GlobalClassId};
use fedoq_query::BoundQuery;
use fedoq_sched::gate::Admit;
use fedoq_sched::{Admission, AdmitPermit};
use fedoq_sim::SystemParams;
use fedoq_sync::{channel, Receiver, Sender};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll, Waker};

/// Identifier of one standing query within a reactor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubId(u64);

impl SubId {
    /// Builds an id from its raw number (used by the wire layer).
    pub fn new(raw: u64) -> SubId {
        SubId(raw)
    }

    /// The raw number.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for SubId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// Which executor a standing query runs under — the paper's three
/// strategies plus the per-site hybrid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiveStrategy {
    /// Centralized (ship everything to the global site).
    CA,
    /// Basic localized (local filters first, then assistants).
    BL,
    /// Parallel localized (assistants overlap local work).
    PL,
    /// Hybrid: PL's schedule at even-indexed sites, BL's elsewhere.
    HY,
}

impl LiveStrategy {
    /// Parses a strategy name, case-insensitively.
    pub fn parse(name: &str) -> Option<LiveStrategy> {
        match name.to_ascii_uppercase().as_str() {
            "CA" => Some(LiveStrategy::CA),
            "BL" => Some(LiveStrategy::BL),
            "PL" => Some(LiveStrategy::PL),
            "HY" => Some(LiveStrategy::HY),
            _ => None,
        }
    }

    /// The canonical label.
    pub fn label(&self) -> &'static str {
        match self {
            LiveStrategy::CA => "CA",
            LiveStrategy::BL => "BL",
            LiveStrategy::PL => "PL",
            LiveStrategy::HY => "HY",
        }
    }

    /// All four strategies (for sweeps).
    pub fn all() -> [LiveStrategy; 4] {
        [
            LiveStrategy::CA,
            LiveStrategy::BL,
            LiveStrategy::PL,
            LiveStrategy::HY,
        ]
    }

    fn instantiate(&self, fed: &Federation) -> Box<dyn ExecutionStrategy> {
        match self {
            LiveStrategy::CA => Box::new(Centralized),
            LiveStrategy::BL => Box::new(BasicLocalized::new()),
            LiveStrategy::PL => Box::new(ParallelLocalized::new()),
            // A deterministic site split so the hybrid genuinely mixes
            // both schedules regardless of federation shape.
            LiveStrategy::HY => Box::new(HybridLocalized::new(
                fed.dbs()
                    .iter()
                    .map(fedoq_store::ComponentDb::id)
                    .filter(|d| d.index() % 2 == 0),
            )),
        }
    }
}

impl fmt::Display for LiveStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Runs `query` once under `strategy` and conditions the answer: execute,
/// annotate every maybe row with its condition, then tag degradation
/// from the `down` set.
///
/// This composed function is **also the from-scratch reference** for the
/// reactor's incremental maintenance — the reactor calls exactly this on
/// re-evaluation, so the differential test checks the *skipping* logic
/// (which subscriptions were not re-evaluated), not a second
/// implementation of evaluation.
///
/// # Errors
///
/// Propagates the executor's [`ExecError`].
pub fn evaluate(
    fed: &Federation,
    query: &BoundQuery,
    strategy: LiveStrategy,
    params: SystemParams,
    down: &BTreeSet<DbId>,
) -> Result<ConditionedAnswer, ExecError> {
    let executor = strategy.instantiate(fed);
    let (answer, _) = run_strategy(executor.as_ref(), fed, query, params)?;
    Ok(annotate_conditions(fed, query, &answer).with_degraded_sites(down))
}

/// The client half of a registration: the id plus the event stream
/// (an [`LiveEvent::Initial`] snapshot on activation, then
/// [`LiveEvent::Deltas`] batches).
pub struct Registration {
    /// The subscription id (quote it to `unsubscribe`).
    pub sub: SubId,
    /// The event stream.
    pub events: Receiver<LiveEvent>,
    /// `false` if the priority ladder was full and the subscription is
    /// queued; it activates when a slot frees.
    pub admitted: bool,
}

/// What one [`LiveReactor::pump`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpOutcome {
    /// Change records consumed from the log.
    pub records: usize,
    /// Subscriptions whose footprint the batch touched (re-evaluated).
    pub affected: usize,
    /// Deltas emitted across all affected subscriptions.
    pub deltas: usize,
}

struct Active {
    query: BoundQuery,
    sql: String,
    strategy: LiveStrategy,
    priority: u8,
    footprint: BTreeSet<GlobalClassId>,
    state: ConditionedAnswer,
    sender: Sender<LiveEvent>,
    seq: u64,
    evals: u64,
    _permit: AdmitPermit,
}

/// Everything an activation needs, bundled so it can sit in the waiting
/// queue until the ladder grants a slot.
struct Spec {
    sql: String,
    query: BoundQuery,
    strategy: LiveStrategy,
    priority: u8,
    sender: Sender<LiveEvent>,
}

struct Waiting {
    spec: Spec,
    admit: Admit,
}

/// The subscription reactor. See the module docs.
pub struct LiveReactor {
    fed: Federation,
    params: SystemParams,
    cursor: ChangeCursor,
    admission: Admission,
    subs: BTreeMap<SubId, Active>,
    waiting: BTreeMap<SubId, Waiting>,
    /// (site, class, attribute) → subscriptions with a live condition
    /// atom there. Drives reachability handling and flip attribution.
    cond_index: BTreeMap<(DbId, GlobalClassId, usize), BTreeSet<SubId>>,
    down: BTreeSet<DbId>,
    next_id: u64,
    trace: Vec<LiveTraceEvent>,
    evals_total: u64,
    deltas_total: u64,
}

impl LiveReactor {
    /// A reactor over `fed` with the default admission ladder (256
    /// slots) and the paper's system parameters.
    pub fn new(fed: Federation) -> LiveReactor {
        let cursor = fed.change_cursor();
        LiveReactor {
            fed,
            params: SystemParams::paper_default(),
            cursor,
            admission: Admission::new(256),
            subs: BTreeMap::new(),
            waiting: BTreeMap::new(),
            cond_index: BTreeMap::new(),
            down: BTreeSet::new(),
            next_id: 0,
            trace: Vec::new(),
            evals_total: 0,
            deltas_total: 0,
        }
    }

    /// Replaces the admission ladder with one of `slots` slots (only
    /// meaningful before the first registration).
    pub fn with_slots(mut self, slots: usize) -> LiveReactor {
        self.admission = Admission::new(slots);
        self
    }

    /// Replaces the cost-model parameters.
    pub fn with_params(mut self, params: SystemParams) -> LiveReactor {
        self.params = params;
        self
    }

    /// The owned federation (read-only; mutate through
    /// [`LiveReactor::mutate`]).
    pub fn federation(&self) -> &Federation {
        &self.fed
    }

    /// Sites currently marked unreachable.
    pub fn down_sites(&self) -> &BTreeSet<DbId> {
        &self.down
    }

    /// Number of active subscriptions.
    pub fn active_count(&self) -> usize {
        self.subs.len()
    }

    /// Number of registrations queued behind the admission ladder.
    pub fn waiting_count(&self) -> usize {
        self.waiting.len()
    }

    /// Total evaluations run (initial + incremental), for benchmarks.
    pub fn eval_count(&self) -> u64 {
        self.evals_total
    }

    /// Total deltas emitted, for benchmarks.
    pub fn delta_count(&self) -> u64 {
        self.deltas_total
    }

    /// The active subscriptions: id, SQL, strategy, priority.
    pub fn subscriptions(&self) -> impl Iterator<Item = (SubId, &str, LiveStrategy, u8)> + '_ {
        self.subs
            .iter()
            .map(|(id, s)| (*id, s.sql.as_str(), s.strategy, s.priority))
    }

    /// The maintained conditioned answer of one active subscription.
    pub fn answer(&self, sub: SubId) -> Option<&ConditionedAnswer> {
        self.subs.get(&sub).map(|s| &s.state)
    }

    /// Drains the audit trail (see [`LiveTraceEvent`]); feed it to
    /// `fedoq-check`'s FQ308 analyzer to certify reclassification
    /// soundness.
    pub fn take_trace(&mut self) -> Vec<LiveTraceEvent> {
        std::mem::take(&mut self.trace)
    }

    /// The audit trail so far, without draining.
    pub fn trace(&self) -> &[LiveTraceEvent] {
        &self.trace
    }

    /// Registers a standing query. The query runs once (via `strategy`)
    /// when the admission ladder grants a slot — immediately when one is
    /// free, otherwise when a running subscription unsubscribes — and
    /// the snapshot arrives as [`LiveEvent::Initial`] on the returned
    /// receiver.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] for parse/bind failures or an initial
    /// evaluation failure.
    pub fn register(
        &mut self,
        sql: &str,
        strategy: LiveStrategy,
        priority: u8,
    ) -> Result<Registration, ExecError> {
        let query = self.fed.parse_and_bind(sql)?;
        let id = SubId(self.next_id);
        self.next_id += 1;
        let (sender, events) = channel::<LiveEvent>("live.delta");
        let spec = Spec {
            sql: sql.to_owned(),
            query,
            strategy,
            priority,
            sender,
        };
        let mut admit = self.admission.acquire(priority);
        let admitted = match poll_once(&mut admit) {
            Some(permit) => {
                self.activate(id, spec, permit)?;
                true
            }
            None => {
                self.waiting.insert(id, Waiting { spec, admit });
                false
            }
        };
        Ok(Registration {
            sub: id,
            events,
            admitted,
        })
    }

    /// Removes a subscription (active or queued); returns `false` if the
    /// id is unknown. Freed slots go to the oldest highest-priority
    /// queued registration.
    pub fn unsubscribe(&mut self, sub: SubId) -> bool {
        if self.waiting.remove(&sub).is_some() {
            self.trace.push(LiveTraceEvent::Unregistered { sub });
            return true;
        }
        let Some(active) = self.subs.remove(&sub) else {
            return false;
        };
        drop(active); // releases the admission permit
        self.unindex(sub);
        self.trace.push(LiveTraceEvent::Unregistered { sub });
        self.admit_waiting();
        true
    }

    /// Applies a store mutation through [`Federation::mutate`], then
    /// pumps the change log so affected subscriptions re-evaluate.
    ///
    /// # Errors
    ///
    /// Propagates the mutation's or a re-evaluation's [`ExecError`].
    pub fn mutate<R, F>(&mut self, db: DbId, f: F) -> Result<(R, PumpOutcome), ExecError>
    where
        F: FnOnce(&mut fedoq_store::ComponentDb) -> Result<R, fedoq_store::StoreError>,
    {
        let out = self.fed.mutate(db, f)?;
        let pumped = self.pump()?;
        Ok((out, pumped))
    }

    /// Consumes the change log from this reactor's cursor: re-evaluates
    /// exactly the subscriptions whose class footprint the batch touched
    /// (a record with an unresolvable class conservatively touches
    /// everything), emits delta batches, and trims the consumed records.
    ///
    /// # Errors
    ///
    /// Propagates a re-evaluation's [`ExecError`].
    pub fn pump(&mut self) -> Result<PumpOutcome, ExecError> {
        let records: Vec<ChangeRecord> = self.fed.changes_since(self.cursor).to_vec();
        self.cursor = self.fed.change_cursor();
        self.fed.trim_changes(self.cursor);
        if records.is_empty() {
            return Ok(PumpOutcome::default());
        }
        let mut classes = BTreeSet::new();
        let mut wildcard = false;
        for record in &records {
            self.trace.push(LiveTraceEvent::Change {
                seq: record.seq(),
                db: record.db(),
                class: record.class(),
            });
            match record.class() {
                Some(class) => {
                    classes.insert(class);
                }
                None => wildcard = true,
            }
        }
        let affected: Vec<SubId> = self
            .subs
            .iter()
            .filter(|(_, s)| wildcard || s.footprint.iter().any(|c| classes.contains(c)))
            .map(|(id, _)| *id)
            .collect();
        let trigger = Trigger::changes(
            if wildcard { None } else { Some(classes) },
            self.down.clone(),
        );
        let mut deltas = 0;
        for id in &affected {
            deltas += self.reevaluate(*id, &trigger)?;
        }
        Ok(PumpOutcome {
            records: records.len(),
            affected: affected.len(),
            deltas,
        })
    }

    /// Marks a site unreachable: maybe rows whose condition touches it
    /// degrade. Returns the number of deltas emitted (0 if already down).
    ///
    /// # Errors
    ///
    /// Propagates a re-evaluation's [`ExecError`].
    pub fn set_site_down(&mut self, db: DbId) -> Result<usize, ExecError> {
        if !self.down.insert(db) {
            return Ok(0);
        }
        self.trace.push(LiveTraceEvent::SiteDown { db });
        let trigger = Trigger::reachability(BTreeSet::new(), self.down.clone());
        self.remark_site(db, &trigger)
    }

    /// Marks a site reachable again (e.g. a partition healed): degraded
    /// rows restore, and any data the site contributed while unreachable
    /// is already in the log, so pump afterwards. Returns deltas emitted.
    ///
    /// # Errors
    ///
    /// Propagates a re-evaluation's [`ExecError`].
    pub fn heal_site(&mut self, db: DbId) -> Result<usize, ExecError> {
        if !self.down.remove(&db) {
            return Ok(0);
        }
        self.trace.push(LiveTraceEvent::SiteHealed { db });
        let trigger = Trigger::reachability([db].into_iter().collect(), self.down.clone());
        self.remark_site(db, &trigger)
    }

    /// Applies a reachability snapshot from the transport layer (e.g.
    /// `SimTransport::crashed_sites`): newly listed sites go down, sites
    /// no longer listed heal. Returns total deltas emitted.
    ///
    /// # Errors
    ///
    /// Propagates a re-evaluation's [`ExecError`].
    pub fn sync_reachability(&mut self, crashed: &[DbId]) -> Result<usize, ExecError> {
        let target: BTreeSet<DbId> = crashed.iter().copied().collect();
        let mut deltas = 0;
        for db in self.down.clone().difference(&target) {
            deltas += self.heal_site(*db)?;
        }
        for db in target.difference(&self.down.clone()) {
            deltas += self.set_site_down(*db)?;
        }
        Ok(deltas)
    }

    fn activate(&mut self, id: SubId, spec: Spec, permit: AdmitPermit) -> Result<(), ExecError> {
        let state = evaluate(
            &self.fed,
            &spec.query,
            spec.strategy,
            self.params,
            &self.down,
        )?;
        let footprint = spec.query.class_footprint();
        self.trace.push(LiveTraceEvent::Registered {
            sub: id,
            classes: footprint.iter().copied().collect(),
        });
        self.index_conditions(id, &state);
        self.evals_total += 1;
        let _ = spec.sender.send(LiveEvent::Initial {
            seq: 0,
            answer: state.clone(),
        });
        self.subs.insert(
            id,
            Active {
                query: spec.query,
                sql: spec.sql,
                strategy: spec.strategy,
                priority: spec.priority,
                footprint,
                state,
                sender: spec.sender,
                seq: 0,
                evals: 1,
                _permit: permit,
            },
        );
        Ok(())
    }

    /// Re-evaluates one subscription and emits the diff.
    fn reevaluate(&mut self, id: SubId, trigger: &Trigger) -> Result<usize, ExecError> {
        let Some(mut sub) = self.subs.remove(&id) else {
            return Ok(0);
        };
        let fresh = match evaluate(&self.fed, &sub.query, sub.strategy, self.params, &self.down) {
            Ok(state) => state,
            Err(e) => {
                self.subs.insert(id, sub);
                return Err(e);
            }
        };
        sub.evals += 1;
        self.evals_total += 1;
        let deltas = diff(&sub.state, &fresh, trigger);
        let emitted = deltas.len();
        if emitted > 0 {
            for delta in &deltas {
                if let Delta::MaybeResolved {
                    goid,
                    outcome,
                    flipped,
                } = delta
                {
                    let classes: BTreeSet<GlobalClassId> = flipped
                        .iter()
                        .map(fedoq_core::ConditionAtom::class)
                        .collect();
                    let sites: BTreeSet<DbId> =
                        flipped.iter().map(fedoq_core::ConditionAtom::db).collect();
                    self.trace.push(LiveTraceEvent::Resolved {
                        sub: id,
                        goid: *goid,
                        to_certain: matches!(outcome, Resolution::ToCertain(_)),
                        classes: classes.into_iter().collect(),
                        sites: sites.into_iter().collect(),
                    });
                }
            }
            sub.seq += 1;
            self.deltas_total += emitted as u64;
            let _ = sub.sender.send(LiveEvent::Deltas {
                seq: sub.seq,
                deltas,
            });
        }
        self.unindex(id);
        sub.state = fresh;
        self.index_conditions(id, &sub.state);
        self.subs.insert(id, sub);
        Ok(emitted)
    }

    fn remark_site(&mut self, db: DbId, trigger: &Trigger) -> Result<usize, ExecError> {
        let affected: BTreeSet<SubId> = self
            .cond_index
            .iter()
            .filter(|((site, _, _), _)| *site == db)
            .flat_map(|(_, subs)| subs.iter().copied())
            .collect();
        let mut deltas = 0;
        for id in affected {
            deltas += self.reevaluate(id, trigger)?;
        }
        Ok(deltas)
    }

    /// Polls queued registrations; the ladder grants strictly by
    /// priority, FIFO within a priority.
    fn admit_waiting(&mut self) {
        let ids: Vec<SubId> = self.waiting.keys().copied().collect();
        for id in ids {
            let Some(mut waiting) = self.waiting.remove(&id) else {
                continue;
            };
            match poll_once(&mut waiting.admit) {
                Some(permit) => {
                    // An activation failure here (the query bound at
                    // registration, so only federation-internal errors
                    // qualify) drops the subscription; its channel
                    // closing is the observable signal.
                    let _ = self.activate(id, waiting.spec, permit);
                }
                None => {
                    self.waiting.insert(id, waiting);
                }
            }
        }
    }

    fn index_conditions(&mut self, id: SubId, state: &ConditionedAnswer) {
        for (_, condition) in state.conditions() {
            for atom in condition.atoms() {
                self.cond_index
                    .entry((atom.db(), atom.class(), atom.slot()))
                    .or_default()
                    .insert(id);
            }
        }
    }

    fn unindex(&mut self, id: SubId) {
        self.cond_index.retain(|_, subs| {
            subs.remove(&id);
            !subs.is_empty()
        });
    }
}

impl fmt::Debug for LiveReactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LiveReactor")
            .field("active", &self.subs.len())
            .field("waiting", &self.waiting.len())
            .field("down", &self.down)
            .field("cursor", &self.cursor)
            .finish()
    }
}

/// Polls an admission future once; the gate grants synchronously when a
/// slot is free, so `None` means "queued behind the ladder".
fn poll_once(admit: &mut Admit) -> Option<AdmitPermit> {
    let mut cx = Context::from_waker(Waker::noop());
    match Pin::new(admit).poll(&mut cx) {
        Poll::Ready(permit) => Some(permit),
        Poll::Pending => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedoq_object::Value;
    use fedoq_schema::Correspondences;
    use fedoq_store::{AttrType, ClassDef, ComponentDb, ComponentSchema};

    /// Two sites, two classes. `Student.age` lives only at DB0 (and is
    /// null for entity 1); `Course.credits` lives only at DB1.
    fn fed() -> Federation {
        let s0 = ComponentSchema::new(vec![ClassDef::new("Student")
            .attr("s-no", AttrType::int())
            .attr("age", AttrType::int())
            .key(["s-no"])])
        .unwrap();
        let s1 = ComponentSchema::new(vec![
            ClassDef::new("Student")
                .attr("s-no", AttrType::int())
                .attr("sex", AttrType::text())
                .key(["s-no"]),
            ClassDef::new("Course")
                .attr("c-no", AttrType::int())
                .attr("credits", AttrType::int())
                .key(["c-no"]),
        ])
        .unwrap();
        let mut db0 = ComponentDb::new(DbId::new(0), "DB0", s0);
        let mut db1 = ComponentDb::new(DbId::new(1), "DB1", s1);
        db0.insert_named("Student", &[("s-no", Value::Int(1)), ("age", Value::Null)])
            .unwrap();
        db1.insert_named(
            "Student",
            &[("s-no", Value::Int(1)), ("sex", Value::text("m"))],
        )
        .unwrap();
        db1.insert_named(
            "Course",
            &[("c-no", Value::Int(7)), ("credits", Value::Int(3))],
        )
        .unwrap();
        Federation::new(vec![db0, db1], &Correspondences::new()).unwrap()
    }

    const STUDENT_Q: &str = "SELECT X.s-no FROM Student X WHERE X.age > 30";
    const COURSE_Q: &str = "SELECT X.c-no FROM Course X WHERE X.credits > 1";

    fn initial_answer(reg: &Registration) -> ConditionedAnswer {
        match reg.events.try_recv() {
            Some(LiveEvent::Initial { answer, .. }) => answer,
            other => panic!("expected initial answer, got {other:?}"),
        }
    }

    #[test]
    fn register_snapshots_and_filling_a_null_certifies_with_flip_named() {
        let mut reactor = LiveReactor::new(fed());
        let reg = reactor.register(STUDENT_Q, LiveStrategy::BL, 3).unwrap();
        assert!(reg.admitted);
        let initial = initial_answer(&reg);
        assert_eq!(initial.answer().maybe().len(), 1); // age null/missing
        let goid = initial.answer().maybe()[0].goid();
        assert!(!initial.condition(goid).unwrap().is_empty());

        // Fill the null age with a satisfying value: maybe → certain.
        let student = reactor
            .federation()
            .db(DbId::new(0))
            .extent_by_name("Student");
        let loid = student.unwrap().loids().next().unwrap();
        let (_, pumped) = reactor
            .mutate(DbId::new(0), |db| {
                db.object_mut(loid).unwrap().set(1, Value::Int(40));
                Ok(())
            })
            .unwrap();
        assert_eq!(pumped.affected, 1);
        assert!(pumped.deltas > 0);
        match reg.events.try_recv() {
            Some(LiveEvent::Deltas { seq, deltas }) => {
                assert_eq!(seq, 1);
                let resolved = deltas.iter().find_map(|d| match d {
                    Delta::MaybeResolved {
                        goid: g,
                        outcome: Resolution::ToCertain(_),
                        flipped,
                    } => Some((*g, flipped.clone())),
                    _ => None,
                });
                let (g, flipped) = resolved.expect("a certification delta");
                assert_eq!(g, goid);
                assert!(!flipped.is_empty());
                assert!(flipped.iter().any(|a| a.db() == DbId::new(0)));
            }
            other => panic!("expected deltas, got {other:?}"),
        }
        // Maintained state now matches from-scratch evaluation.
        let sub = reg.sub;
        let from_scratch = evaluate(
            reactor.federation(),
            &reactor.federation().parse_and_bind(STUDENT_Q).unwrap(),
            LiveStrategy::BL,
            SystemParams::paper_default(),
            &BTreeSet::new(),
        )
        .unwrap();
        assert_eq!(reactor.answer(sub).unwrap(), &from_scratch);
        assert!(reactor.answer(sub).unwrap().answer().maybe().is_empty());
    }

    #[test]
    fn unrelated_class_mutations_skip_the_subscription() {
        let mut reactor = LiveReactor::new(fed());
        let student = reactor.register(STUDENT_Q, LiveStrategy::CA, 0).unwrap();
        let course = reactor.register(COURSE_Q, LiveStrategy::PL, 0).unwrap();
        let _ = initial_answer(&student);
        let _ = initial_answer(&course);
        let evals_before = reactor.eval_count();

        // A Course insert must re-evaluate only the Course subscription.
        let (_, pumped) = reactor
            .mutate(DbId::new(1), |db| {
                db.insert_named(
                    "Course",
                    &[("c-no", Value::Int(8)), ("credits", Value::Int(2))],
                )
                .map(|_| ())
            })
            .unwrap();
        assert_eq!(pumped.affected, 1);
        assert_eq!(reactor.eval_count(), evals_before + 1);
        assert!(student.events.try_recv().is_none());
        match course.events.try_recv() {
            Some(LiveEvent::Deltas { deltas, .. }) => {
                assert!(deltas.iter().any(|d| matches!(d, Delta::CertainAdded(_))));
            }
            other => panic!("expected a course delta, got {other:?}"),
        }
    }

    #[test]
    fn reachability_transitions_degrade_and_restore() {
        let mut reactor = LiveReactor::new(fed());
        let reg = reactor.register(STUDENT_Q, LiveStrategy::BL, 1).unwrap();
        let _ = initial_answer(&reg);

        // DB0 holds the null `age` the condition depends on.
        let emitted = reactor.set_site_down(DbId::new(0)).unwrap();
        assert!(emitted > 0);
        match reg.events.try_recv() {
            Some(LiveEvent::Deltas { deltas, .. }) => {
                assert!(deltas
                    .iter()
                    .any(|d| matches!(d, Delta::Degraded { sites, .. } if !sites.is_empty())));
            }
            other => panic!("expected degradation, got {other:?}"),
        }
        let sub = reg.sub;
        assert!(reactor.answer(sub).unwrap().answer().is_degraded());

        let emitted = reactor.heal_site(DbId::new(0)).unwrap();
        assert!(emitted > 0);
        match reg.events.try_recv() {
            Some(LiveEvent::Deltas { deltas, .. }) => {
                assert!(deltas
                    .iter()
                    .any(|d| matches!(d, Delta::Degraded { sites, .. } if sites.is_empty())));
            }
            other => panic!("expected restoration, got {other:?}"),
        }
        assert!(!reactor.answer(sub).unwrap().answer().is_degraded());

        // Snapshot sync from a transport: no change → no deltas.
        assert_eq!(reactor.sync_reachability(&[]).unwrap(), 0);
    }

    #[test]
    fn admission_ladder_queues_and_promotes_by_priority() {
        let mut reactor = LiveReactor::new(fed()).with_slots(1);
        let first = reactor.register(STUDENT_Q, LiveStrategy::BL, 0).unwrap();
        assert!(first.admitted);
        let _ = initial_answer(&first);

        // The ladder is full: both queue; the higher priority wins the
        // freed slot even though it registered later.
        let low = reactor.register(COURSE_Q, LiveStrategy::BL, 1).unwrap();
        let high = reactor.register(COURSE_Q, LiveStrategy::BL, 9).unwrap();
        assert!(!low.admitted && !high.admitted);
        assert_eq!(reactor.waiting_count(), 2);

        assert!(reactor.unsubscribe(first.sub));
        assert_eq!(reactor.active_count(), 1);
        assert_eq!(reactor.waiting_count(), 1);
        assert!(high.events.try_recv().is_some(), "high priority admitted");
        assert!(low.events.try_recv().is_none(), "low priority still queued");

        // Unknown ids are rejected; queued ids can be withdrawn.
        assert!(!reactor.unsubscribe(SubId::new(99)));
        assert!(reactor.unsubscribe(low.sub));
    }

    #[test]
    fn trace_records_changes_before_resolutions() {
        let mut reactor = LiveReactor::new(fed());
        let reg = reactor.register(STUDENT_Q, LiveStrategy::HY, 2).unwrap();
        let _ = initial_answer(&reg);
        let loid = reactor
            .federation()
            .db(DbId::new(0))
            .extent_by_name("Student")
            .unwrap()
            .loids()
            .next()
            .unwrap();
        reactor
            .mutate(DbId::new(0), |db| {
                db.object_mut(loid).unwrap().set(1, Value::Int(10));
                Ok(())
            })
            .unwrap();
        let trace = reactor.take_trace();
        let change_at = trace
            .iter()
            .position(|e| matches!(e, LiveTraceEvent::Change { .. }))
            .expect("a change event");
        let resolved_at = trace
            .iter()
            .position(|e| {
                matches!(
                    e,
                    LiveTraceEvent::Resolved {
                        to_certain: false,
                        ..
                    }
                )
            })
            .expect("an elimination event (age 10 fails > 30)");
        assert!(change_at < resolved_at);
        assert!(reactor.take_trace().is_empty(), "take drains");
    }
}
