//! The reactor's audit trail, consumed by the FQ308 lint in `fedoq-check`.
//!
//! Every reactor run records what it observed (registrations, logged
//! changes, reachability transitions) and what it concluded (maybe
//! resolutions with their flipped classes/sites). Reclassification
//! soundness is then externally checkable: a resolution is *founded* only
//! if some earlier logged change or heal could have flipped the condition
//! it names. The `fedoq-check` analyzer that enforces this lives with the
//! other lints; the event types live here, next to the machinery that
//! emits them (the same split as `fedoq-sched`'s `ReplanEvent`).

use crate::reactor::SubId;
use fedoq_object::{DbId, GOid, GlobalClassId};

/// One observable step of a reactor run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiveTraceEvent {
    /// A subscription activated with this class footprint.
    Registered {
        /// The subscription.
        sub: SubId,
        /// Its query's class footprint.
        classes: Vec<GlobalClassId>,
    },
    /// One change record was consumed from the federation log.
    Change {
        /// The record's stream position.
        seq: u64,
        /// The mutated site.
        db: DbId,
        /// The resolved global class (`None` = unresolvable, wildcard).
        class: Option<GlobalClassId>,
    },
    /// A site became unreachable.
    SiteDown {
        /// The site.
        db: DbId,
    },
    /// A site became reachable again.
    SiteHealed {
        /// The site.
        db: DbId,
    },
    /// A maybe row resolved (certified or eliminated), naming the
    /// classes and sites of the condition atoms that flipped.
    Resolved {
        /// The subscription whose answer changed.
        sub: SubId,
        /// The resolved entity.
        goid: GOid,
        /// `true` = certified, `false` = eliminated.
        to_certain: bool,
        /// Classes of the flipped condition atoms.
        classes: Vec<GlobalClassId>,
        /// Sites of the flipped condition atoms.
        sites: Vec<DbId>,
    },
    /// A subscription was removed.
    Unregistered {
        /// The subscription.
        sub: SubId,
    },
}
