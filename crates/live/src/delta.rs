//! Reclassification deltas: what changed in a standing query's answer.
//!
//! After any mutation batch (or reachability transition), an affected
//! subscription's answer is re-derived and *diffed* against the retained
//! one. The diff is reported as [`Delta`] events; the most informative —
//! [`Delta::MaybeResolved`] — names the [`ConditionAtom`]s of the old
//! maybe row's condition that the trigger flipped, the conditional-table
//! payoff: the subscriber learns not just *that* a maybe became certain
//! or vanished, but *which* missing fact stopped being missing.

use fedoq_core::{Condition, ConditionAtom, ConditionedAnswer, MaybeRow, ResultRow};
use fedoq_object::{DbId, GOid, GlobalClassId};
use std::collections::BTreeSet;
use std::fmt;

/// What caused a re-evaluation: the classes a change batch touched, or a
/// reachability transition. Used to attribute flipped condition atoms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trigger {
    /// Global classes the triggering change batch touched; `None` means
    /// at least one record's class was unresolvable, so *any* atom may
    /// have flipped (a wildcard).
    pub classes: Option<BTreeSet<GlobalClassId>>,
    /// Sites that just healed (their atoms count as flipped).
    pub healed: BTreeSet<DbId>,
    /// The sites currently unreachable, for degradation reporting.
    pub down: BTreeSet<DbId>,
}

impl Trigger {
    /// A trigger for a mutation batch touching `classes` (`None` =
    /// wildcard) while `down` sites are unreachable.
    pub fn changes(classes: Option<BTreeSet<GlobalClassId>>, down: BTreeSet<DbId>) -> Trigger {
        Trigger {
            classes,
            healed: BTreeSet::new(),
            down,
        }
    }

    /// A trigger for a reachability transition.
    pub fn reachability(healed: BTreeSet<DbId>, down: BTreeSet<DbId>) -> Trigger {
        Trigger {
            classes: Some(BTreeSet::new()),
            healed,
            down,
        }
    }
}

/// How a maybe row resolved.
#[derive(Debug, Clone, PartialEq)]
pub enum Resolution {
    /// Every predicate became true: the row is now a certain result.
    ToCertain(ResultRow),
    /// Some predicate became false: the row left the answer entirely.
    Eliminated,
}

/// One incremental change to a standing query's answer.
#[derive(Debug, Clone, PartialEq)]
pub enum Delta {
    /// A new certain result appeared (it was not a maybe before).
    CertainAdded(ResultRow),
    /// A certain result left the certain set (retraction or value flip);
    /// if it survives as a maybe, a [`Delta::MaybeAdded`] accompanies it.
    CertainRemoved(GOid),
    /// A new maybe result appeared, with its condition.
    MaybeAdded {
        /// The new maybe row.
        row: MaybeRow,
        /// What the row is contingent on.
        condition: Condition,
    },
    /// A maybe result resolved; `flipped` names the atoms of its old
    /// condition attributed to the trigger (never empty in practice —
    /// when no atom matches the trigger, the whole old condition is
    /// named).
    MaybeResolved {
        /// The resolved entity.
        goid: GOid,
        /// Certified or eliminated.
        outcome: Resolution,
        /// The condition atoms that flipped.
        flipped: Vec<ConditionAtom>,
    },
    /// A maybe row's provenance changed with site reachability: `sites`
    /// lists the unreachable sites its condition touches (empty = the
    /// row is back to full provenance after a heal).
    Degraded {
        /// The affected entity.
        goid: GOid,
        /// Unreachable sites the row's condition depends on.
        sites: Vec<DbId>,
    },
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Delta::CertainAdded(row) => write!(f, "+C {row}"),
            Delta::CertainRemoved(goid) => write!(f, "-C {goid}"),
            Delta::MaybeAdded { row, condition } => {
                write!(f, "+M {row} ? {condition}")
            }
            Delta::MaybeResolved {
                goid,
                outcome,
                flipped,
            } => {
                match outcome {
                    Resolution::ToCertain(row) => write!(f, "M>C {row}")?,
                    Resolution::Eliminated => write!(f, "M>X {goid}")?,
                }
                f.write_str(" !")?;
                for atom in flipped {
                    write!(f, " {atom}")?;
                }
                Ok(())
            }
            Delta::Degraded { goid, sites } => {
                write!(f, "~M {goid} down[")?;
                for (i, db) in sites.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "d{}", db.index())?;
                }
                f.write_str("]")
            }
        }
    }
}

/// The stream a subscriber receives: one initial snapshot, then delta
/// batches. Sequence numbers are per-subscription and gap-free, so a
/// consumer can detect a lost batch.
#[derive(Debug, Clone, PartialEq)]
pub enum LiveEvent {
    /// Sent once when the subscription activates (admission granted).
    Initial {
        /// Always 0.
        seq: u64,
        /// The conditioned answer at registration time.
        answer: ConditionedAnswer,
    },
    /// The deltas one trigger produced for this subscription.
    Deltas {
        /// Monotonic per-subscription batch number (1, 2, ...).
        seq: u64,
        /// The changes, in deterministic order.
        deltas: Vec<Delta>,
    },
}

/// Renders a conditioned answer to its canonical line list: certain rows
/// as `C {row}`, then maybe rows as `M {row} ? {condition}` (`?` `*` when
/// no missing fact could be named — e.g. degraded rows contingent on an
/// unreachable site), in GOid order. Two conditioned answers are equal
/// iff their rendered lines are equal — the byte-identity form the wire
/// layer ships and the differential suite diffs.
pub fn render_conditioned(answer: &ConditionedAnswer) -> Vec<String> {
    let plain = answer.answer();
    let mut lines = Vec::with_capacity(plain.certain().len() + plain.maybe().len());
    for row in plain.certain() {
        lines.push(format!("C {row}"));
    }
    for row in plain.maybe() {
        match answer.condition(row.goid()) {
            Some(c) if !c.is_empty() => lines.push(format!("M {row} ? {c}")),
            _ => lines.push(format!("M {row} ? *")),
        }
    }
    lines
}

/// The atoms of `condition` attributable to `trigger`; falls back to the
/// whole condition when nothing matches, so a resolution always names
/// what it stopped depending on.
fn flipped_atoms(condition: Option<&Condition>, trigger: &Trigger) -> Vec<ConditionAtom> {
    let Some(condition) = condition else {
        return Vec::new();
    };
    let matched: Vec<ConditionAtom> = condition
        .atoms()
        .filter(|a| {
            trigger.healed.contains(&a.db())
                || match &trigger.classes {
                    None => true,
                    Some(set) => set.contains(&a.class()),
                }
        })
        .copied()
        .collect();
    if matched.is_empty() {
        condition.atoms().copied().collect()
    } else {
        matched
    }
}

/// Diffs two conditioned answers of the same query, attributing flips to
/// `trigger`. Deterministic: deltas are grouped by kind, ascending by
/// GOid within each group.
pub fn diff(old: &ConditionedAnswer, new: &ConditionedAnswer, trigger: &Trigger) -> Vec<Delta> {
    let old_certain = old.answer().certain_goids();
    let new_certain = new.answer().certain_goids();
    let old_maybe = old.answer().maybe_goids();
    let new_maybe = new.answer().maybe_goids();
    let mut deltas = Vec::new();

    // Arrivals in the certain set: fresh rows or certified maybes.
    for row in new.answer().certain() {
        let goid = row.goid();
        if old_certain.contains(&goid) {
            continue;
        }
        if old_maybe.contains(&goid) {
            deltas.push(Delta::MaybeResolved {
                goid,
                outcome: Resolution::ToCertain(row.clone()),
                flipped: flipped_atoms(old.condition(goid), trigger),
            });
        } else {
            deltas.push(Delta::CertainAdded(row.clone()));
        }
    }

    // Departures from the certain set (a demotion to maybe also emits
    // the matching MaybeAdded below).
    for goid in old_certain.difference(&new_certain) {
        deltas.push(Delta::CertainRemoved(*goid));
    }

    // Maybe rows: new arrivals, resolutions, and degradation flips.
    for row in new.answer().maybe() {
        let goid = row.goid();
        if !old_maybe.contains(&goid) {
            deltas.push(Delta::MaybeAdded {
                row: row.clone(),
                condition: new.condition(goid).cloned().unwrap_or_default(),
            });
        }
    }
    for goid in &old_maybe {
        if !new_maybe.contains(goid) && !new_certain.contains(goid) {
            deltas.push(Delta::MaybeResolved {
                goid: *goid,
                outcome: Resolution::Eliminated,
                flipped: flipped_atoms(old.condition(*goid), trigger),
            });
        }
    }
    for row in new.answer().maybe() {
        let goid = row.goid();
        if !old_maybe.contains(&goid) {
            continue;
        }
        let was = old
            .answer()
            .maybe()
            .iter()
            .find(|r| r.goid() == goid)
            .map(MaybeRow::is_degraded);
        if was != Some(row.is_degraded()) {
            let sites: Vec<DbId> = if row.is_degraded() {
                new.condition(goid)
                    .map(|c| {
                        c.sites()
                            .into_iter()
                            .filter(|s| trigger.down.contains(s))
                            .collect()
                    })
                    .unwrap_or_default()
            } else {
                Vec::new()
            };
            deltas.push(Delta::Degraded { goid, sites });
        }
    }
    deltas
}
