//! # fedoq-live: standing queries over a federation with missing data
//!
//! The paper's strategies classify an answer **once**: rows whose
//! predicates merge to *true* are certain, rows left unknown by nulls
//! and missing attributes are maybe. This crate keeps that
//! classification **alive**. A [`LiveReactor`] owns the federation;
//! standing queries register against it, and every maybe row is
//! annotated with the *condition* — the concrete (site, object,
//! attribute) facts — it is contingent on. When a mutation batch or a
//! site-reachability transition flips one of those facts, only the
//! affected subscriptions re-evaluate, and subscribers receive
//! [`Delta`]s that name what flipped.
//!
//! The maintained answer is, at every step, byte-identical to running
//! the query from scratch — incremental maintenance changes *when* work
//! happens, never *what* the answer is.
//!
//! ```
//! use fedoq_live::{LiveEvent, LiveReactor, LiveStrategy};
//! use fedoq_workload::university::{federation, Q1};
//!
//! let mut reactor = LiveReactor::new(federation()?);
//! let reg = reactor.register(Q1, LiveStrategy::BL, 5)?;
//! assert!(reg.admitted);
//! let Some(LiveEvent::Initial { answer, .. }) = reg.events.try_recv() else {
//!     unreachable!("admitted registrations snapshot immediately");
//! };
//! // The paper's Figure 5 classification, now with provenance: one
//! // certain row, one maybe row whose condition names the missing
//! // speciality copies it hinges on.
//! assert_eq!(answer.answer().certain().len(), 1);
//! assert_eq!(answer.answer().maybe().len(), 1);
//! let goid = answer.answer().maybe()[0].goid();
//! assert!(!answer.condition(goid).expect("maybe rows are conditioned").is_empty());
//! # Ok::<(), fedoq_core::ExecError>(())
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod delta;
pub mod reactor;
pub mod trace;

pub use delta::{diff, render_conditioned, Delta, LiveEvent, Resolution, Trigger};
pub use reactor::{evaluate, LiveReactor, LiveStrategy, PumpOutcome, Registration, SubId};
pub use trace::LiveTraceEvent;
