//! # FedOQ — federated object querying with maybe-result semantics
//!
//! A full reproduction of *"Query Execution Strategies for Missing Data in
//! Distributed Heterogeneous Object Databases"* (Koh & Chen, ICDCS 1996):
//! a federation of autonomous object databases integrated under a global
//! schema, where queries over *missing data* (missing attributes and null
//! values) return **certain** and **maybe** results, and isomeric objects
//! certify local maybe results into certain ones.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`object`] — ids, values, three-valued logic, paths, signatures;
//! * [`store`] — the single-site object DBMS;
//! * [`schema`] — schema integration, isomerism, GOid mapping tables;
//! * [`query`] — the SQL/X-subset parser, binder, and decomposer;
//! * [`sim`] — the Table-1 cost model and distributed-time engine;
//! * [`core`] — the CA / BL / PL execution strategies (the paper's
//!   contribution) and the certification engine;
//! * [`workload`] — the university running example and the Table-2
//!   synthetic generator;
//! * [`analytic`] — the closed-form expected-cost model;
//! * [`plan`] — the statistics catalog and cost-based adaptive strategy
//!   planner (CA/BL/PL/hybrid selection with execution feedback);
//! * [`net`] — the distributed site-actor runtime with fault-injectable
//!   transport;
//! * [`live`] — standing queries: provenance-carrying maybe results and
//!   incremental reclassification over a change-logged federation;
//! * [`check`] — the static plan-soundness analyzer and actor-protocol
//!   checker (`fedoq-check`).
//!
//! # Quickstart
//!
//! ```
//! use fedoq::prelude::*;
//!
//! // The paper's own three-site university federation and query Q1.
//! let fed = fedoq::workload::university::federation()?;
//! let q1 = fed.parse_and_bind(fedoq::workload::university::Q1)?;
//!
//! for strategy in [&Centralized as &dyn ExecutionStrategy,
//!                  &BasicLocalized::new(), &ParallelLocalized::new()] {
//!     let (answer, metrics) =
//!         run_strategy(strategy, &fed, &q1, SystemParams::paper_default())?;
//!     assert_eq!(answer.certain().len(), 1); // (Hedy, Kelly)
//!     assert_eq!(answer.maybe().len(), 1);   // (Tony, Haley)
//!     println!("{}: {metrics}", strategy.name());
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use fedoq_analytic as analytic;
pub use fedoq_check as check;
pub use fedoq_core as core;
pub use fedoq_live as live;
pub use fedoq_net as net;
pub use fedoq_object as object;
pub use fedoq_plan as plan;
pub use fedoq_query as query;
pub use fedoq_schema as schema;
pub use fedoq_sim as sim;
pub use fedoq_store as store;
pub use fedoq_sync as sync;
pub use fedoq_workload as workload;

/// The common imports for working with FedOQ.
pub mod prelude {
    pub use fedoq_core::{
        collect_catalog, explain, explain_with_pipeline, oracle_answer, oracle_disjunctive,
        query_fingerprint, refresh_catalog, run_adaptive, run_disjunctive, run_strategy,
        run_strategy_with_network, run_strategy_with_pipeline, AdaptiveOutcome, BasicLocalized,
        CacheStats, Centralized, ExecError, ExecutionStrategy, Federation, HybridLocalized,
        LookupCache, MaybeRow, ParallelLocalized, PipelineConfig, QueryAnswer, ResultRow,
    };
    pub use fedoq_live::{LiveEvent, LiveReactor, LiveStrategy, SubId};
    pub use fedoq_net::{
        AdaptiveDistributedOutcome, DistributedExecutor, DistributedOutcome, DistributedStrategy,
        FaultEvent, LocalTransport, RpcConfig, SimTransport, Transport,
    };
    pub use fedoq_object::{CmpOp, DbId, GOid, LOid, Path, Truth, Value};
    pub use fedoq_plan::{choose, PlanChoice, PlanKind, RankedPlan, StatsCatalog};
    pub use fedoq_query::{
        bind, parse, parse_dnf, plan_for_db, BoundQuery, DnfQuery, PredId, Query,
    };
    pub use fedoq_schema::{identify_isomerism, integrate, Correspondences};
    pub use fedoq_sim::{NetworkModel, QueryMetrics, Simulation, Site, SystemParams};
    pub use fedoq_store::{AttrType, ClassDef, ComponentDb, ComponentSchema};
    pub use fedoq_workload::{generate, GeneratedSample, SampleConfig, WorkloadParams};
}
