//! `fedoq-shell` — an interactive shell over a FedOQ federation.
//!
//! ```text
//! fedoq-shell [--generate <seed>] [--transport local|sim|tcp] [--connect <host:port>]
//! ```
//!
//! Starts on the paper's university federation (or a Table-2 synthetic
//! one with `--generate`) and accepts SQL/X queries — including
//! disjunctive ones — plus introspection commands. With `--transport
//! sim` (or `transport sim` inside the shell) queries run over the
//! distributed site-actor runtime on a simulated network whose faults
//! are controlled by the `faults` and `partition` commands. With
//! `--transport tcp` (or `connect <host:port>` inside the shell)
//! queries are sent to a running `fedoq-serve` frontend — a real
//! multi-process federation. Type `help` inside.

use fedoq::prelude::*;
use fedoq::schema::GlobalAttr;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::io::{self, BufRead, Write};
use std::rc::Rc;

/// How shell queries execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TransportMode {
    /// The in-process strategies (supports disjunctive queries).
    Off,
    /// Distributed runtime over the instant in-process transport.
    Local,
    /// Distributed runtime over the fault-injectable simulated network.
    Sim,
    /// Queries sent to a `fedoq-serve` frontend over real TCP
    /// (`connect <host:port>`).
    Tcp,
}

/// Fault knobs applied to a fresh `SimTransport` before each query.
struct FaultPlan {
    seed: u64,
    drop_rate: f64,
    latency_us: f64,
    partitions: Vec<(Site, Site)>,
    crashed: Vec<Site>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 42,
            drop_rate: 0.0,
            latency_us: 50.0,
            partitions: Vec::new(),
            crashed: Vec::new(),
        }
    }
}

/// One locally watched standing query.
struct LocalWatch {
    sub: SubId,
    strategy: LiveStrategy,
    sql: String,
    events: fedoq::sync::Receiver<LiveEvent>,
}

struct Shell {
    fed: Federation,
    strategy_name: String,
    last_ledger: Option<fedoq::sim::Ledger>,
    transport: TransportMode,
    faults: FaultPlan,
    /// Parallel-scan / batching / caching tuning (`parallel`, `batch`,
    /// `cache` commands). The default reproduces the paper's sequential
    /// execution exactly.
    pipeline: PipelineConfig,
    /// Persistent executor for distributed runs: its lookup cache
    /// survives across queries, so re-running a query with `cache on`
    /// shows warm-cache behavior.
    executor: DistributedExecutor,
    /// The in-process twin of the executor's cache (`transport off`).
    local_cache: RefCell<LookupCache>,
    /// Lazily scanned statistics catalog for the cost-based planner
    /// (`plan`, `stats`, `adaptive on`). Survives across queries so the
    /// EWMA feedback loop converges on repeated workloads.
    catalog: Option<StatsCatalog>,
    /// When set, `SELECT` lets the planner pick the strategy per query.
    adaptive: bool,
    /// Live connection to a `fedoq-serve` frontend (`transport tcp`).
    wire: Option<fedoq_wire::WireClient>,
    /// Standing-query reactor over a copy of the federation (`watch`).
    /// The `mutate` command applies every change to both copies, so the
    /// reactor's answers always describe the shell's own data.
    live: Option<LiveReactor>,
    /// Local watches by display id (the reactor's subscription id).
    watches: std::collections::BTreeMap<u64, LocalWatch>,
    /// Watches registered on the TCP connection, by server watch id.
    wire_watches: std::collections::BTreeMap<u64, String>,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut transport = TransportMode::Off;
    if let Some(i) = args.iter().position(|a| a == "--transport") {
        transport = match args.get(i + 1).map(String::as_str) {
            Some("local") => TransportMode::Local,
            Some("sim") => TransportMode::Sim,
            Some("tcp") => TransportMode::Tcp,
            other => {
                let got = other.unwrap_or("nothing");
                eprintln!("--transport takes `local`, `sim`, or `tcp`, got `{got}`");
                std::process::exit(2);
            }
        };
        args.drain(i..i + 2);
    }
    let mut wire = None;
    if let Some(i) = args.iter().position(|a| a == "--connect") {
        let Some(addr) = args.get(i + 1).cloned() else {
            eprintln!("--connect takes a fedoq-serve address (host:port)");
            std::process::exit(2);
        };
        match fedoq_wire::WireClient::connect(&addr) {
            Ok(client) => {
                transport = TransportMode::Tcp;
                wire = Some(client);
                println!("connected to fedoq-serve at {addr}");
            }
            Err(e) => {
                eprintln!("could not connect to {addr}: {e}");
                std::process::exit(2);
            }
        }
        args.drain(i..i + 2);
    }
    let fed = match args.first().map(String::as_str) {
        Some("--generate") => {
            let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(42);
            let params = WorkloadParams::paper_default().scaled(0.02);
            let config = params.sample(&mut StdRng::seed_from_u64(seed));
            let sample = fedoq::workload::generate(&config, seed);
            println!("generated federation (seed {seed}): {}", sample.federation);
            println!("try: {}", sample.query);
            sample.federation
        }
        Some(other) if other != "--university" => {
            eprintln!(
                "unknown option {other}; usage: fedoq-shell [--generate <seed>] [--transport local|sim]"
            );
            std::process::exit(2);
        }
        _ => {
            let fed = fedoq::workload::university::federation()?;
            println!("loaded the paper's university federation: {fed}");
            println!("try: {}", fedoq::workload::university::Q1);
            fed
        }
    };
    let mut shell = Shell {
        fed,
        strategy_name: "BL".to_owned(),
        last_ledger: None,
        transport,
        faults: FaultPlan::default(),
        pipeline: PipelineConfig::default(),
        executor: DistributedExecutor::new(),
        local_cache: RefCell::new(LookupCache::default()),
        catalog: None,
        adaptive: false,
        wire,
        live: None,
        watches: std::collections::BTreeMap::new(),
        wire_watches: std::collections::BTreeMap::new(),
    };
    println!(
        "strategy: {} (change with `strategy CA|BL|PL|BL-S|PL-S`)",
        shell.strategy_name
    );
    if shell.transport != TransportMode::Off {
        println!(
            "transport: {} (distributed site-actor runtime)",
            shell.transport_name()
        );
    }
    println!("type `help` for commands, `quit` to exit\n");

    let stdin = io::stdin();
    loop {
        print!("fedoq> ");
        io::stdout().flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match shell.dispatch(line) {
            Ok(true) => break,
            Ok(false) => {}
            Err(e) => println!("error: {e}"),
        }
    }
    Ok(())
}

impl Shell {
    /// Handles one input line; returns `Ok(true)` to exit.
    fn dispatch(&mut self, line: &str) -> Result<bool, Box<dyn std::error::Error>> {
        // Accept a leading `:` on commands (`:transport sim`) for
        // readers used to REPL-style prefixes.
        let line = line.strip_prefix(':').unwrap_or(line);
        let mut words = line.split_whitespace();
        match words.next().map(str::to_ascii_lowercase).as_deref() {
            Some("quit") | Some("exit") => return Ok(true),
            Some("help") => self.help(),
            Some("schema") => self.schema(),
            Some("dbs") => self.dbs(),
            Some("goids") => match words.next() {
                Some(class) => self.goids(class),
                None => println!("usage: goids <GlobalClass>"),
            },
            Some("plan") => {
                let sql = line[4..].trim();
                if sql.is_empty() {
                    println!("usage: plan SELECT ...");
                } else {
                    self.plan(sql)?;
                }
            }
            Some("explain") => {
                let sql = line[7..].trim();
                if sql.is_empty() {
                    println!("usage: explain SELECT ...");
                } else {
                    let bound = self.fed.parse_and_bind(sql)?;
                    print!(
                        "{}",
                        explain_with_pipeline(&self.fed, &bound, self.pipeline)
                    );
                }
            }
            Some("timeline") => match &self.last_ledger {
                Some(ledger) => {
                    print!(
                        "{}",
                        fedoq::sim::timeline::render(ledger, self.fed.num_dbs())
                    );
                }
                None => println!("run a query first"),
            },
            Some("save") => match words.next() {
                Some(dir) => {
                    self.fed.save_to_dir(std::path::Path::new(dir))?;
                    println!("saved {} database(s) under {dir}", self.fed.num_dbs());
                }
                None => println!("usage: save <dir>"),
            },
            Some("load") => match words.next() {
                Some(dir) => {
                    self.fed = Federation::load_from_dir(
                        std::path::Path::new(dir),
                        &Correspondences::new(),
                    )?;
                    self.catalog = None; // stats described the old federation
                    if self.live.is_some() {
                        self.live = None;
                        self.watches.clear();
                        println!("(standing watches dropped: federation replaced)");
                    }
                    println!("loaded: {}", self.fed);
                }
                None => println!("usage: load <dir>"),
            },
            Some("strategy") => match words.next() {
                Some(name) if self.make_strategy_by(name).is_some() => {
                    self.strategy_name = name.to_ascii_uppercase();
                    println!("strategy set to {}", self.strategy_name);
                }
                _ => println!("usage: strategy CA|BL|PL|BL-S|PL-S"),
            },
            Some("check") => {
                let rest = line[5..].trim();
                match rest.split_whitespace().next() {
                    None => println!("usage: check SELECT ... | check wire | check concurrency"),
                    Some(word) if word.eq_ignore_ascii_case("wire") => self.check_wire(),
                    Some(word) if word.eq_ignore_ascii_case("concurrency") => {
                        self.check_concurrency();
                    }
                    Some(_) => {
                        let bound = self.fed.parse_and_bind(rest)?;
                        for report in fedoq::check::analyze_all(&bound, self.fed.global_schema()) {
                            print!("{report}");
                        }
                    }
                }
            }
            Some("watch") => {
                let rest = line[5..].trim();
                if rest.is_empty() {
                    println!("usage: watch [ca|bl|pl|hy] SELECT ...");
                } else {
                    self.cmd_watch(rest);
                }
            }
            Some("watches") => self.cmd_watches(),
            Some("unwatch") => match words.next() {
                Some(id) => self.cmd_unwatch(id),
                None => println!("usage: unwatch <id>"),
            },
            Some("mutate") => {
                let rest = line[6..].trim();
                if rest.is_empty() {
                    println!("usage: mutate <site> insert <Class> <a>=<v>,.. | update <Class> where .. set ..");
                } else {
                    self.cmd_mutate(rest);
                }
            }
            Some("adaptive") => self.cmd_adaptive(&mut words),
            Some("stats") => self.cmd_stats(&mut words),
            Some("transport") => self.cmd_transport(&mut words),
            Some("connect") => self.cmd_connect(&mut words),
            Some("faults") => self.cmd_faults(&mut words),
            Some("partition") => self.cmd_partition(&mut words),
            Some("parallel") => self.cmd_parallel(&mut words),
            Some("batch") => self.cmd_batch(&mut words),
            Some("cache") => self.cmd_cache(&mut words),
            Some("cachestats") => self.cmd_cachestats(),
            Some("select") => self.query(line)?,
            _ => println!("unrecognized input; type `help`"),
        }
        Ok(false)
    }

    fn help(&self) {
        println!(
            "commands:\n  SELECT ...              run a query (AND/OR predicates supported)\n  plan SELECT ...         per-site local queries + ranked plan costs\n  explain SELECT ...      show the full execution plan\n  check SELECT ...        statically lint the plans (fedoq-check)\n  check wire              audit the TCP codec surface (FQ304-FQ306)\n  check concurrency       schedule-explore the serving layer (FQ300-FQ303)\n  watch [ca|bl|pl|hy] SELECT ...   register a standing query (prints the snapshot)\n  watches                 list standing queries\n  unwatch <id>            drop a standing query\n  mutate <site> insert <Class> <a>=<v>,..   insert; deltas print per watch\n  mutate <site> update <Class> where .. set ..   in-place update\n  adaptive on|off         let the cost-based planner pick each SELECT's strategy\n  stats [refresh]         show / re-scan the planner's statistics catalog\n  schema                  show the integrated global schema\n  dbs                     show the component databases\n  goids <Class>           show a class's GOid mapping table\n  strategy CA|BL|PL|BL-S|PL-S   choose the execution strategy\n  transport off|local|sim [seed] run queries in-process or distributed\n  connect <host:port>     dial a fedoq-serve frontend (switches to `transport tcp`)\n  faults [drop <p>] [latency <us>] [crash <db>] [clear]  sim-net faults\n  partition <a> <b> | partition clear    cut links (sites: DB names or `global`)\n  parallel on|off [threads]   chunked parallel extent scans (default 8 threads)\n  batch <K>               coalesce up to K lookup probes per message (0 = off)\n  cache on|off            shared GOid-lookup cache (warm across queries)\n  cachestats              lookup-cache hit/miss/eviction counters\n  timeline                per-site Gantt chart of the last query\n  save <dir> / load <dir> persist / restore the federation\n  quit                    exit"
        );
    }

    fn transport_name(&self) -> &'static str {
        match self.transport {
            TransportMode::Off => "off",
            TransportMode::Local => "local",
            TransportMode::Sim => "sim",
            TransportMode::Tcp => "tcp",
        }
    }

    fn site_name(&self, site: Site) -> String {
        match site {
            Site::Global => "global".to_owned(),
            Site::Db(db) => self.fed.db(db).name().to_owned(),
        }
    }

    /// Parses a site name: a component DB name (`DB2`), a zero-based
    /// index, or `global`.
    fn parse_site(&self, word: &str) -> Option<Site> {
        if word.eq_ignore_ascii_case("global") {
            return Some(Site::Global);
        }
        for db in self.fed.dbs() {
            if db.name().eq_ignore_ascii_case(word) {
                return Some(Site::Db(db.id()));
            }
        }
        word.parse::<u16>()
            .ok()
            .and_then(|i| ((i as usize) < self.fed.num_dbs()).then(|| Site::Db(DbId::new(i))))
    }

    fn cmd_transport<'w>(&mut self, words: &mut impl Iterator<Item = &'w str>) {
        match words.next() {
            None => println!("transport: {}", self.transport_name()),
            Some("off") => {
                self.transport = TransportMode::Off;
                println!("transport off: queries run in-process");
            }
            Some("local") => {
                self.transport = TransportMode::Local;
                println!("transport local: distributed runtime, instant lossless delivery");
            }
            Some("sim") => {
                self.transport = TransportMode::Sim;
                if let Some(seed) = words.next().and_then(|w| w.parse().ok()) {
                    self.faults.seed = seed;
                }
                println!(
                    "transport sim: simulated network, seed {} (tune with `faults`, `partition`)",
                    self.faults.seed
                );
            }
            Some("tcp") => match words.next() {
                Some(addr) => self.connect(addr),
                None if self.wire.is_some() => {
                    self.transport = TransportMode::Tcp;
                    println!("transport tcp: reusing the open fedoq-serve connection");
                }
                None => println!("usage: transport tcp <host:port> (or `connect <host:port>`)"),
            },
            Some(other) => {
                println!("unknown transport {other:?}; use off|local|sim [seed]|tcp <addr>");
            }
        }
    }

    fn cmd_connect<'w>(&mut self, words: &mut impl Iterator<Item = &'w str>) {
        match words.next() {
            Some(addr) => self.connect(addr),
            None => println!("usage: connect <host:port>   (a running fedoq-serve frontend)"),
        }
    }

    /// Dials a `fedoq-serve` frontend and switches to `transport tcp`.
    fn connect(&mut self, addr: &str) {
        match fedoq_wire::WireClient::connect(addr) {
            Ok(client) => {
                self.wire = Some(client);
                self.transport = TransportMode::Tcp;
                println!(
                    "connected to fedoq-serve at {addr}; SELECTs now run over TCP \
                     (strategy {}, `adaptive on` for the planner)",
                    self.strategy_name
                );
            }
            Err(e) => println!("could not connect to {addr}: {e}"),
        }
    }

    /// Runs one query against the connected `fedoq-serve` frontend.
    fn query_wire(&mut self, sql: &str) {
        let Some(client) = self.wire.as_mut() else {
            println!("transport tcp needs a connection; use `connect <host:port>`");
            return;
        };
        let strategy = if self.adaptive {
            "adaptive".to_owned()
        } else {
            self.strategy_name.to_ascii_lowercase()
        };
        match client.query(sql, &strategy) {
            Ok(Ok(answer)) => {
                // Rows arrive pre-rendered: `C <row>` / `M <row>`.
                for row in &answer.rows {
                    match row.split_once(' ') {
                        Some(("C", rest)) => println!("certain  {rest}"),
                        Some(("M", rest)) => println!("maybe    {rest}"),
                        _ => println!("{row}"),
                    }
                }
                if answer.rows.is_empty() {
                    println!("(no results)");
                }
                if !answer.degraded_sites.is_empty() {
                    let lost: Vec<String> = answer
                        .degraded_sites
                        .iter()
                        .map(|db| self.fed.db(DbId::new(*db)).name().to_owned())
                        .collect();
                    println!(
                        "!! unreachable sites: {} — maybe rows above may be degraded",
                        lost.join(", ")
                    );
                }
                println!(
                    "-- via {} over tcp: {} forwarded, {} lost, {} retries, {:.0} µs at the server",
                    answer.executed,
                    answer.forwarded,
                    answer.lost,
                    answer.retries,
                    answer.server_us,
                );
            }
            Ok(Err(e)) => println!("server error: {e}"),
            Err(e) => {
                println!("connection lost: {e} (reconnect with `connect <host:port>`)");
                self.wire = None;
            }
        }
    }

    fn cmd_faults<'w>(&mut self, words: &mut impl Iterator<Item = &'w str>) {
        let mut changed = false;
        let mut words = words.peekable();
        while let Some(word) = words.next() {
            changed = true;
            match word {
                "drop" => match words.next().and_then(|w| w.parse::<f64>().ok()) {
                    Some(p) if (0.0..=1.0).contains(&p) => self.faults.drop_rate = p,
                    _ => println!("usage: faults drop <probability 0..1>"),
                },
                "latency" => match words.next().and_then(|w| w.parse::<f64>().ok()) {
                    Some(us) if us >= 0.0 => self.faults.latency_us = us,
                    _ => println!("usage: faults latency <microseconds>"),
                },
                "crash" => match words.next().and_then(|w| self.parse_site(w)) {
                    Some(site) => self.faults.crashed.push(site),
                    None => println!("usage: faults crash <db|global>"),
                },
                "clear" => {
                    self.faults = FaultPlan {
                        seed: self.faults.seed,
                        ..Default::default()
                    }
                }
                other => println!("unknown fault knob {other:?}; see `help`"),
            }
        }
        let crashed: Vec<String> = self
            .faults
            .crashed
            .iter()
            .map(|s| self.site_name(*s))
            .collect();
        println!(
            "faults{}: seed {}, drop {}, latency {} µs, {} partition(s), crashed [{}]",
            if changed { " set" } else { "" },
            self.faults.seed,
            self.faults.drop_rate,
            self.faults.latency_us,
            self.faults.partitions.len(),
            crashed.join(", "),
        );
        if self.transport != TransportMode::Sim {
            println!("(faults apply once `transport sim` is active)");
        }
    }

    fn cmd_partition<'w>(&mut self, words: &mut impl Iterator<Item = &'w str>) {
        match (words.next(), words.next()) {
            (Some("clear"), _) => {
                self.faults.partitions.clear();
                println!("partitions healed");
            }
            (Some(a), Some(b)) => match (self.parse_site(a), self.parse_site(b)) {
                (Some(sa), Some(sb)) if sa != sb => {
                    self.faults.partitions.push((sa, sb));
                    println!(
                        "partitioned {} from {} (heal with `partition clear`)",
                        self.site_name(sa),
                        self.site_name(sb)
                    );
                }
                _ => println!("unknown site pair {a:?} {b:?}"),
            },
            _ => println!("usage: partition <site> <site> | partition clear"),
        }
    }

    /// One-line summary of the pipeline tuning in force.
    fn pipeline_summary(&self) -> String {
        format!(
            "parallel {} ({} thread(s)), batch {}, cache {}",
            if self.pipeline.is_parallel() {
                "on"
            } else {
                "off"
            },
            self.pipeline.threads,
            if self.pipeline.batch == 0 {
                "off".to_owned()
            } else {
                self.pipeline.batch.to_string()
            },
            if self.pipeline.cache { "on" } else { "off" },
        )
    }

    /// Applies a pipeline change to the persistent executor (its clone
    /// shares the lookup cache, so tuning never drops warm entries).
    fn apply_pipeline(&mut self) {
        self.executor = self.executor.clone().with_pipeline(self.pipeline);
        println!("pipeline: {}", self.pipeline_summary());
    }

    fn cmd_parallel<'w>(&mut self, words: &mut impl Iterator<Item = &'w str>) {
        match words.next() {
            Some("on") => {
                let threads: usize = words.next().and_then(|w| w.parse().ok()).unwrap_or(8);
                self.pipeline.threads = threads.max(2);
                self.apply_pipeline();
            }
            Some("off") => {
                self.pipeline.threads = 1;
                self.apply_pipeline();
            }
            None => println!("pipeline: {}", self.pipeline_summary()),
            Some(other) => println!("unknown mode {other:?}; usage: parallel on|off [threads]"),
        }
    }

    fn cmd_batch<'w>(&mut self, words: &mut impl Iterator<Item = &'w str>) {
        match words.next().and_then(|w| w.parse::<usize>().ok()) {
            Some(k) => {
                self.pipeline = self.pipeline.with_batch(k);
                self.apply_pipeline();
            }
            None => println!("usage: batch <K>   (0 turns batching off)"),
        }
    }

    fn cmd_cache<'w>(&mut self, words: &mut impl Iterator<Item = &'w str>) {
        match words.next() {
            Some("on") => {
                self.pipeline.cache = true;
                self.apply_pipeline();
            }
            Some("off") => {
                self.pipeline.cache = false;
                self.apply_pipeline();
            }
            None => println!("pipeline: {}", self.pipeline_summary()),
            Some(other) => println!("unknown mode {other:?}; usage: cache on|off"),
        }
    }

    fn cmd_cachestats(&self) {
        // The in-process strategies and the distributed executor keep
        // separate caches; show the one the current transport uses.
        let (stats, entries) = if self.transport == TransportMode::Off {
            (
                self.local_cache.borrow().stats(),
                self.local_cache.borrow().len(),
            )
        } else {
            (self.executor.cache_stats(), self.executor.cache_len())
        };
        println!(
            "lookup cache ({} transport): {} entries, {} hits, {} misses ({:.1}% hit rate), \
             {} evictions, {} invalidations",
            self.transport_name(),
            entries,
            stats.hits,
            stats.misses,
            stats.hit_rate() * 100.0,
            stats.evictions,
            stats.invalidations,
        );
        if !self.pipeline.cache {
            println!("(caching is off; enable with `cache on`)");
        }
    }

    /// `check wire` — audits the TCP codec surface with the FQ304–FQ306
    /// lints (tag exhaustiveness, size/depth bounds, version skew).
    fn check_wire(&self) {
        let surface = fedoq_wire::surface();
        println!(
            "wire codec: version {}, grammar {:#018x}, {} tag families",
            surface.version,
            surface.fingerprint,
            surface.families.len()
        );
        let mut report = fedoq::check::Report::new("wire codec surface", String::new());
        fedoq::check::analyze_wire(&surface, &mut report);
        if report.diagnostics.is_empty() {
            println!("clean: FQ304-FQ306 found nothing");
        } else {
            print!("{report}");
        }
    }

    /// `check concurrency` — schedule-explores the TCP serving layer in
    /// this process and reports FQ300–FQ303 findings.
    fn check_concurrency(&self) {
        println!("schedule-exploring the TCP serving layer (this takes a few seconds)...");
        let outcome = fedoq::check::explore_serving(&fedoq::check::ExploreOpts::default());
        println!(
            "explored {} schedules ({} distinct interleavings)",
            outcome.schedules_run, outcome.distinct_schedules
        );
        if outcome.report.diagnostics.is_empty() {
            println!("clean: FQ300-FQ303 found nothing");
        } else {
            print!("{}", outcome.report);
        }
    }

    /// The live strategy `watch` uses when none is named: the shell's
    /// SELECT strategy, with the signature variants mapped to their
    /// plain forms (the reactor re-evaluates, it never certifies).
    fn default_live_strategy(&self) -> LiveStrategy {
        match self.strategy_name.as_str() {
            "CA" => LiveStrategy::CA,
            "PL" | "PL-S" => LiveStrategy::PL,
            _ => LiveStrategy::BL,
        }
    }

    /// `watch [ca|bl|pl|hy] SELECT ...` — registers a standing query.
    ///
    /// Over `transport tcp` the watch lives in the server's session for
    /// this connection; otherwise a local [`LiveReactor`] over a copy of
    /// the federation maintains it (see [`Shell::cmd_mutate`]).
    fn cmd_watch(&mut self, rest: &str) {
        let (strategy, sql) = match rest.split_once(char::is_whitespace) {
            Some((first, tail)) => match LiveStrategy::parse(first) {
                Some(s) => (s, tail.trim()),
                None => (self.default_live_strategy(), rest),
            },
            None => (self.default_live_strategy(), rest),
        };
        if self.transport == TransportMode::Tcp {
            let Some(client) = self.wire.as_mut() else {
                println!("transport tcp needs a connection; use `connect <host:port>`");
                return;
            };
            match client.subscribe(sql, &strategy.label().to_ascii_lowercase(), 5) {
                Ok((watch, Ok(rows))) => {
                    for row in &rows {
                        println!("  {row}");
                    }
                    println!(
                        "watching w{watch} via {} over tcp ({} row(s); deltas arrive with `mutate`)",
                        strategy.label(),
                        rows.len()
                    );
                    self.wire_watches.insert(watch, sql.to_owned());
                }
                Ok((_, Err(e))) => println!("server refused the watch: {e}"),
                Err(e) => {
                    println!("connection lost: {e} (reconnect with `connect <host:port>`)");
                    self.wire = None;
                }
            }
            return;
        }
        if self.live.is_none() {
            self.live = Some(LiveReactor::new(self.fed.clone()));
        }
        let reactor = self.live.as_mut().expect("reactor just ensured");
        match reactor.register(sql, strategy, 5) {
            Ok(reg) => {
                if let Some(LiveEvent::Initial { answer, .. }) = reg.events.try_recv() {
                    for line in fedoq::live::render_conditioned(&answer) {
                        println!("  {line}");
                    }
                }
                println!(
                    "watching {} via {}{} (resolve rows with `mutate`, drop with `unwatch {}`)",
                    reg.sub,
                    strategy.label(),
                    if reg.admitted { "" } else { " [queued]" },
                    reg.sub.raw()
                );
                self.watches.insert(
                    reg.sub.raw(),
                    LocalWatch {
                        sub: reg.sub,
                        strategy,
                        sql: sql.to_owned(),
                        events: reg.events,
                    },
                );
            }
            Err(e) => println!("watch error: {e}"),
        }
    }

    /// `watches` — lists the standing queries on both transports.
    fn cmd_watches(&self) {
        for (id, watch) in &self.watches {
            println!("w{id} [{}] {}", watch.strategy.label(), watch.sql);
        }
        for (id, sql) in &self.wire_watches {
            println!("w{id} [tcp] {sql}");
        }
        if self.watches.is_empty() && self.wire_watches.is_empty() {
            println!("(no standing watches; start one with `watch SELECT ...`)");
        }
    }

    /// `unwatch <id>` — drops a standing query by id (`w3` or `3`).
    fn cmd_unwatch(&mut self, word: &str) {
        let Ok(id) = word.trim_start_matches(['w', 'W']).parse::<u64>() else {
            println!("usage: unwatch <id>   (ids are listed by `watches`)");
            return;
        };
        if let Some(watch) = self.watches.remove(&id) {
            if let Some(reactor) = self.live.as_mut() {
                reactor.unsubscribe(watch.sub);
            }
            println!("unwatched w{id}");
            return;
        }
        if self.wire_watches.remove(&id).is_some() {
            if let Some(client) = self.wire.as_mut() {
                match client.unsubscribe(id) {
                    Ok(()) => println!("unwatched w{id} (tcp)"),
                    Err(e) => {
                        println!("connection lost: {e}");
                        self.wire = None;
                    }
                }
            } else {
                println!("unwatched w{id} (connection already closed)");
            }
            return;
        }
        println!("no watch w{id}; see `watches`");
    }

    /// `mutate <site> <spec>` — applies an insert/update and reports the
    /// deltas it triggered on every standing watch.
    ///
    /// Locally the change is applied to **both** the shell's federation
    /// and the reactor's copy, so queries and watches keep describing
    /// the same data. Over `transport tcp` the mutation runs in the
    /// server's per-connection session instead.
    fn cmd_mutate(&mut self, rest: &str) {
        let Some((site_word, spec)) = rest.split_once(char::is_whitespace) else {
            println!(
                "usage: mutate <site> insert <Class> <a>=<v>,.. | update <Class> where .. set .."
            );
            return;
        };
        let spec = spec.trim();
        if self.transport == TransportMode::Tcp {
            let Some(client) = self.wire.as_mut() else {
                println!("transport tcp needs a connection; use `connect <host:port>`");
                return;
            };
            let Ok(db) = site_word.parse::<u16>() else {
                println!("over tcp, name the site by index (the server has its own workload)");
                return;
            };
            match client.mutate(db, spec) {
                Ok((Ok(answer), deltas)) => {
                    for row in &answer.rows {
                        println!("{row}");
                    }
                    for event in deltas {
                        match event.reply {
                            Ok(lines) => {
                                for line in lines {
                                    println!("  w{} #{}: {line}", event.watch, event.seq);
                                }
                            }
                            Err(e) => println!("  w{} error: {e}", event.watch),
                        }
                    }
                }
                Ok((Err(e), _)) => println!("server error: {e}"),
                Err(e) => {
                    println!("connection lost: {e} (reconnect with `connect <host:port>`)");
                    self.wire = None;
                }
            }
            return;
        }
        let Some(Site::Db(db)) = self.parse_site(site_word) else {
            println!("unknown component site {site_word:?}; mutations target a DB, not `global`");
            return;
        };
        let mutation = match fedoq_wire::parse_mutation(spec) {
            Ok(m) => m,
            Err(e) => {
                println!("bad mutation: {e}");
                return;
            }
        };
        // Apply to the shell's own federation first: a failure here
        // leaves both copies untouched.
        let summary = match self
            .fed
            .mutate(db, |store| fedoq_wire::apply_mutation(store, &mutation))
        {
            Ok(summary) => summary,
            Err(e) => {
                println!("mutation failed: {e}");
                return;
            }
        };
        self.catalog = None; // stats described the pre-mutation extents
        println!("{summary} at {}", self.fed.db(db).name());
        let Some(reactor) = self.live.as_mut() else {
            return;
        };
        match reactor.mutate(db, |store| fedoq_wire::apply_mutation(store, &mutation)) {
            Ok((_, outcome)) => {
                println!(
                    "-- {} watch(es) re-evaluated, {} delta(s)",
                    outcome.affected, outcome.deltas
                );
                self.drain_watches();
            }
            Err(e) => println!("reactor error: {e} (watches may be stale)"),
        }
    }

    /// Prints every pending delta batch on every local watch.
    fn drain_watches(&mut self) {
        for (id, watch) in &self.watches {
            while let Some(event) = watch.events.try_recv() {
                match event {
                    LiveEvent::Initial { answer, .. } => {
                        for line in fedoq::live::render_conditioned(&answer) {
                            println!("  w{id}: {line}");
                        }
                    }
                    LiveEvent::Deltas { seq, deltas } => {
                        for delta in &deltas {
                            println!("  w{id} #{seq}: {delta}");
                        }
                    }
                }
            }
        }
    }

    fn schema(&self) {
        for (_, class) in self.fed.global_schema().iter() {
            let attrs: Vec<&str> = class.attrs().iter().map(GlobalAttr::name).collect();
            println!("{}({})", class.name(), attrs.join(", "));
            for constituent in class.constituents() {
                let missing: Vec<&str> = constituent
                    .missing_attrs()
                    .map(|g| class.attr(g).name())
                    .collect();
                let db = self.fed.db(constituent.db());
                if missing.is_empty() {
                    println!("  {}: complete", db.name());
                } else {
                    println!("  {}: missing {}", db.name(), missing.join(", "));
                }
            }
        }
    }

    fn dbs(&self) {
        for db in self.fed.dbs() {
            println!("{db}");
        }
    }

    fn goids(&self, class_name: &str) {
        let Some(class_id) = self.fed.global_schema().class_id(class_name) else {
            println!("unknown global class {class_name:?}");
            return;
        };
        let table = self.fed.catalog().table(class_id);
        let mut entries: Vec<(GOid, Vec<LOid>)> =
            table.iter().map(|(g, ls)| (g, ls.to_vec())).collect();
        entries.sort();
        for (g, loids) in entries {
            let copies: Vec<String> = loids.iter().map(ToString::to_string).collect();
            println!("{g} = {{{}}}", copies.join(", "));
        }
    }

    fn plan(&mut self, sql: &str) -> Result<(), Box<dyn std::error::Error>> {
        let bound = self.fed.parse_and_bind(sql)?;
        for db in self.fed.dbs() {
            match plan_for_db(&bound, self.fed.global_schema(), db.id()) {
                Some(plan) => println!("{}", plan.describe(&bound)),
                None => println!("-- {} hosts no constituent of the range class", db.name()),
            }
        }
        self.ensure_catalog();
        let catalog = self.catalog.as_ref().expect("catalog just ensured");
        // `plan` deliberately prices against the catalog as-is so a
        // stale one surfaces as FQ106 rather than silently refreshing;
        // `stats refresh` (or an adaptive run) brings it up to date.
        let staleness =
            fedoq::check::analyze_staleness("plan", catalog.generation(), self.fed.generation());
        if staleness.fired("FQ106") {
            print!("{staleness}");
        }
        let knobs = self.plan_knobs();
        let choice = choose(
            catalog,
            self.fed.global_schema(),
            &bound,
            &knobs,
            query_fingerprint(&bound),
            // Hybrid per-site assignments only exist in-process; the
            // distributed runtime speaks uniform CA/BL/PL.
            self.transport == TransportMode::Off,
        );
        print!("{choice}");
        Ok(())
    }

    /// The cost-model knobs matching the shell's pipeline tuning, with
    /// cache warmth read from whichever cache the transport uses.
    fn plan_knobs(&self) -> fedoq::plan::PipelineKnobs {
        let warmth = if !self.pipeline.cache {
            0.0
        } else if self.transport == TransportMode::Off {
            self.local_cache.borrow().stats().hit_rate()
        } else {
            self.executor.cache_stats().hit_rate()
        };
        fedoq::plan::PipelineKnobs {
            threads: self.pipeline.threads.max(1) as f64,
            warmth,
            batch: self.pipeline.batch as f64,
        }
    }

    /// Scans the statistics catalog on first use.
    fn ensure_catalog(&mut self) {
        if self.catalog.is_none() {
            let catalog = collect_catalog(&self.fed, SystemParams::paper_default());
            println!(
                "scanned statistics catalog: {} site(s) @ generation {}",
                catalog.sites().len(),
                catalog.generation()
            );
            self.catalog = Some(catalog);
        }
    }

    fn cmd_adaptive<'w>(&mut self, words: &mut impl Iterator<Item = &'w str>) {
        match words.next() {
            Some("on") => {
                self.adaptive = true;
                self.ensure_catalog();
                println!(
                    "adaptive on: each SELECT runs the planner's cheapest plan \
                     (inspect with `plan`, `stats`)"
                );
            }
            Some("off") => {
                self.adaptive = false;
                println!(
                    "adaptive off: SELECT uses `strategy {}`",
                    self.strategy_name
                );
            }
            None => println!("adaptive: {}", if self.adaptive { "on" } else { "off" }),
            Some(other) => println!("unknown mode {other:?}; usage: adaptive on|off"),
        }
    }

    fn cmd_stats<'w>(&mut self, words: &mut impl Iterator<Item = &'w str>) {
        match words.next() {
            None => {
                self.ensure_catalog();
                let catalog = self.catalog.as_ref().expect("catalog just ensured");
                print!("{}", catalog.summary());
                if catalog.is_stale(self.fed.generation()) {
                    println!(
                        "(stale: federation is at generation {}; `stats refresh` re-scans)",
                        self.fed.generation()
                    );
                }
            }
            Some("refresh") => match self.catalog.as_mut() {
                Some(catalog) if catalog.is_stale(self.fed.generation()) => {
                    refresh_catalog(catalog, &self.fed);
                    println!(
                        "catalog re-scanned @ generation {} ({} observation(s) kept)",
                        catalog.generation(),
                        catalog.observed_len()
                    );
                }
                Some(catalog) => {
                    println!(
                        "catalog already fresh (generation {})",
                        catalog.generation()
                    );
                }
                None => self.ensure_catalog(),
            },
            Some(other) => println!("unknown subcommand {other:?}; usage: stats [refresh]"),
        }
    }

    fn make_strategy_by(&self, name: &str) -> Option<Box<dyn ExecutionStrategy>> {
        match name.to_ascii_uppercase().as_str() {
            "CA" => Some(Box::new(Centralized)),
            "BL" => Some(Box::new(BasicLocalized::new())),
            "PL" => Some(Box::new(ParallelLocalized::new())),
            "BL-S" => Some(Box::new(BasicLocalized::with_signatures())),
            "PL-S" => Some(Box::new(ParallelLocalized::with_signatures())),
            _ => None,
        }
    }

    fn query(&mut self, sql: &str) -> Result<(), Box<dyn std::error::Error>> {
        if self.transport == TransportMode::Tcp {
            self.query_wire(sql);
            return Ok(());
        }
        if self.transport != TransportMode::Off {
            return self.query_distributed(sql);
        }
        // Adaptive planning covers conjunctive queries; disjunctive
        // ones fall through to the configured fixed strategy.
        if self.adaptive {
            if let Ok(bound) = self.fed.parse_and_bind(sql) {
                return self.query_adaptive(&bound);
            }
            println!("(adaptive planning applies to conjunctive queries; running fixed strategy)");
        }
        // A tuned pipeline runs conjunctive queries through the
        // parallel/batched/cached path; disjunctive queries (and the
        // default pipeline) take the legacy sequential path.
        if self.pipeline != PipelineConfig::default() {
            if let Ok(bound) = self.fed.parse_and_bind(sql) {
                return self.query_pipelined(&bound);
            }
            println!("(pipeline tuning applies to conjunctive queries; running sequentially)");
        }
        let strategy = self
            .make_strategy_by(&self.strategy_name)
            .expect("configured strategy is valid");
        let dnf = parse_dnf(sql)?;
        let mut sim = Simulation::new(SystemParams::paper_default(), self.fed.num_dbs());
        let answer = run_disjunctive(strategy.as_ref(), &self.fed, &dnf, &mut sim)?;
        for row in answer.certain() {
            println!("certain  {row}");
        }
        for row in answer.maybe() {
            let unsolved: Vec<String> = row.unsolved().map(|p| p.to_string()).collect();
            println!("maybe    {}  [unsolved: {}]", row.row(), unsolved.join(","));
        }
        if answer.is_empty() {
            println!("(no results)");
        }
        println!(
            "-- {} via {}: {}",
            answer,
            self.strategy_name,
            sim.metrics()
        );
        self.last_ledger = Some(sim.ledger().clone());
        Ok(())
    }

    /// Runs one conjunctive query in-process under the tuned pipeline,
    /// sharing the shell's persistent lookup cache across queries.
    fn query_pipelined(&mut self, query: &BoundQuery) -> Result<(), Box<dyn std::error::Error>> {
        let strategy = self
            .make_strategy_by(&self.strategy_name)
            .expect("configured strategy is valid");
        if self.pipeline.cache {
            self.local_cache
                .borrow_mut()
                .sync_generation(self.fed.generation());
        }
        let cache = self.pipeline.cache.then_some(&self.local_cache);
        let mut sim = Simulation::new(SystemParams::paper_default(), self.fed.num_dbs());
        let answer = strategy.execute_with(&self.fed, query, &mut sim, self.pipeline, cache)?;
        for row in answer.certain() {
            println!("certain  {row}");
        }
        for row in answer.maybe() {
            let unsolved: Vec<String> = row.unsolved().map(|p| p.to_string()).collect();
            println!("maybe    {}  [unsolved: {}]", row.row(), unsolved.join(","));
        }
        if answer.is_empty() {
            println!("(no results)");
        }
        println!(
            "-- {} via {} [{}]: {}",
            answer,
            self.strategy_name,
            self.pipeline_summary(),
            sim.metrics()
        );
        self.last_ledger = Some(sim.ledger().clone());
        Ok(())
    }

    /// Runs one conjunctive query through the cost-based planner: the
    /// catalog ranks CA/BL/PL/HY, the winner executes, and the measured
    /// response feeds the EWMA loop for next time.
    fn query_adaptive(&mut self, query: &BoundQuery) -> Result<(), Box<dyn std::error::Error>> {
        self.ensure_catalog();
        let catalog = self.catalog.as_mut().expect("catalog just ensured");
        let cache = self.pipeline.cache.then_some(&self.local_cache);
        let outcome = run_adaptive(&self.fed, query, catalog, self.pipeline, cache)?;
        for row in outcome.answer.certain() {
            println!("certain  {row}");
        }
        for row in outcome.answer.maybe() {
            let unsolved: Vec<String> = row.unsolved().map(|p| p.to_string()).collect();
            println!("maybe    {}  [unsolved: {}]", row.row(), unsolved.join(","));
        }
        if outcome.answer.is_empty() {
            println!("(no results)");
        }
        let best = outcome.choice.best();
        println!(
            "-- {} via adaptive {} (scored {:.0} µs over {} candidate(s)): {}",
            outcome.answer,
            outcome.executed.label(),
            best.score_us,
            outcome.choice.ranked.len(),
            outcome.metrics
        );
        Ok(())
    }

    /// Runs one conjunctive query over the distributed actor runtime.
    fn query_distributed(&mut self, sql: &str) -> Result<(), Box<dyn std::error::Error>> {
        let strategy = if self.adaptive {
            None // the planner picks one per query
        } else {
            match DistributedStrategy::parse(&self.strategy_name) {
                Some(s) => Some(s),
                None => {
                    println!(
                        "strategy {} is not available distributed",
                        self.strategy_name
                    );
                    return Ok(());
                }
            }
        };
        let query = self.fed.parse_and_bind(sql)?;
        let sim = Rc::new(RefCell::new(Simulation::new(
            SystemParams::paper_default(),
            self.fed.num_dbs(),
        )));
        let transport: Rc<RefCell<dyn Transport>> = match self.transport {
            TransportMode::Local => Rc::new(RefCell::new(LocalTransport::new())),
            _ => {
                let mut t = SimTransport::new(Rc::clone(&sim), self.faults.seed)
                    .with_latency_us(self.faults.latency_us)
                    .with_drop_rate(self.faults.drop_rate);
                for &(a, b) in &self.faults.partitions {
                    t.inject(FaultEvent::Partition(a, b));
                }
                for &site in &self.faults.crashed {
                    t.inject(FaultEvent::Crash(site));
                }
                Rc::new(RefCell::new(t))
            }
        };
        let (outcome, via) = match strategy {
            Some(strategy) => {
                let outcome =
                    self.executor
                        .run(&self.fed, &query, strategy, transport, Rc::clone(&sim))?;
                (outcome, strategy.name().to_owned())
            }
            None => {
                self.ensure_catalog();
                let catalog = self.catalog.as_mut().expect("catalog just ensured");
                let adaptive = self.executor.run_adaptive(
                    &self.fed,
                    &query,
                    catalog,
                    transport,
                    Rc::clone(&sim),
                )?;
                let via = format!(
                    "adaptive {} (scored {:.0} µs over {} candidate(s))",
                    adaptive.executed.label(),
                    adaptive.choice.best().score_us,
                    adaptive.choice.ranked.len()
                );
                (adaptive.outcome, via)
            }
        };
        for row in outcome.answer.certain() {
            println!("certain  {row}");
        }
        for row in outcome.answer.maybe() {
            println!("maybe    {row}");
        }
        if outcome.answer.is_empty() {
            println!("(no results)");
        }
        if !outcome.degraded_sites.is_empty() {
            let lost: Vec<&str> = outcome
                .degraded_sites
                .iter()
                .map(|d| self.fed.db(*d).name())
                .collect();
            println!(
                "!! unreachable sites: {} — maybe rows above may be degraded",
                lost.join(", ")
            );
        }
        println!(
            "-- {} via {} over {} transport: {} | {} delivered, {} dropped, {} retries, {:.0} µs virtual",
            outcome.answer,
            via,
            self.transport_name(),
            outcome.metrics,
            outcome.delivered,
            outcome.dropped,
            outcome.retries,
            outcome.virtual_us,
        );
        self.last_ledger = Some(sim.borrow().ledger().clone());
        Ok(())
    }
}
