//! `fedoq-shell` — an interactive shell over a FedOQ federation.
//!
//! ```text
//! fedoq-shell [--generate <seed>]
//! ```
//!
//! Starts on the paper's university federation (or a Table-2 synthetic
//! one with `--generate`) and accepts SQL/X queries — including
//! disjunctive ones — plus introspection commands. Type `help` inside.

use fedoq::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{self, BufRead, Write};

struct Shell {
    fed: Federation,
    strategy_name: String,
    last_ledger: Option<fedoq::sim::Ledger>,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fed = match args.first().map(String::as_str) {
        Some("--generate") => {
            let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(42);
            let params = WorkloadParams::paper_default().scaled(0.02);
            let config = params.sample(&mut StdRng::seed_from_u64(seed));
            let sample = fedoq::workload::generate(&config, seed);
            println!("generated federation (seed {seed}): {}", sample.federation);
            println!("try: {}", sample.query);
            sample.federation
        }
        Some(other) if other != "--university" => {
            eprintln!("unknown option {other}; usage: fedoq-shell [--generate <seed>]");
            std::process::exit(2);
        }
        _ => {
            let fed = fedoq::workload::university::federation()?;
            println!("loaded the paper's university federation: {fed}");
            println!("try: {}", fedoq::workload::university::Q1);
            fed
        }
    };
    let mut shell = Shell { fed, strategy_name: "BL".to_owned(), last_ledger: None };
    println!("strategy: {} (change with `strategy CA|BL|PL|BL-S|PL-S`)", shell.strategy_name);
    println!("type `help` for commands, `quit` to exit\n");

    let stdin = io::stdin();
    loop {
        print!("fedoq> ");
        io::stdout().flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match shell.dispatch(line) {
            Ok(true) => break,
            Ok(false) => {}
            Err(e) => println!("error: {e}"),
        }
    }
    Ok(())
}

impl Shell {
    /// Handles one input line; returns `Ok(true)` to exit.
    fn dispatch(&mut self, line: &str) -> Result<bool, Box<dyn std::error::Error>> {
        let mut words = line.split_whitespace();
        match words.next().map(str::to_ascii_lowercase).as_deref() {
            Some("quit") | Some("exit") => return Ok(true),
            Some("help") => self.help(),
            Some("schema") => self.schema(),
            Some("dbs") => self.dbs(),
            Some("goids") => match words.next() {
                Some(class) => self.goids(class),
                None => println!("usage: goids <GlobalClass>"),
            },
            Some("plan") => {
                let sql = line[4..].trim();
                if sql.is_empty() {
                    println!("usage: plan SELECT ...");
                } else {
                    self.plan(sql)?;
                }
            }
            Some("explain") => {
                let sql = line[7..].trim();
                if sql.is_empty() {
                    println!("usage: explain SELECT ...");
                } else {
                    let bound = self.fed.parse_and_bind(sql)?;
                    print!("{}", explain(&self.fed, &bound));
                }
            }
            Some("timeline") => match &self.last_ledger {
                Some(ledger) => {
                    print!("{}", fedoq::sim::timeline::render(ledger, self.fed.num_dbs()));
                }
                None => println!("run a query first"),
            },
            Some("save") => match words.next() {
                Some(dir) => {
                    self.fed.save_to_dir(std::path::Path::new(dir))?;
                    println!("saved {} database(s) under {dir}", self.fed.num_dbs());
                }
                None => println!("usage: save <dir>"),
            },
            Some("load") => match words.next() {
                Some(dir) => {
                    self.fed = Federation::load_from_dir(
                        std::path::Path::new(dir),
                        &Correspondences::new(),
                    )?;
                    println!("loaded: {}", self.fed);
                }
                None => println!("usage: load <dir>"),
            },
            Some("strategy") => match words.next() {
                Some(name) if self.make_strategy_by(name).is_some() => {
                    self.strategy_name = name.to_ascii_uppercase();
                    println!("strategy set to {}", self.strategy_name);
                }
                _ => println!("usage: strategy CA|BL|PL|BL-S|PL-S"),
            },
            Some("select") => self.query(line)?,
            _ => println!("unrecognized input; type `help`"),
        }
        Ok(false)
    }

    fn help(&self) {
        println!(
            "commands:\n  SELECT ...              run a query (AND/OR predicates supported)\n  plan SELECT ...         show the per-site local queries (Q1' style)\n  explain SELECT ...      show the full execution plan\n  schema                  show the integrated global schema\n  dbs                     show the component databases\n  goids <Class>           show a class's GOid mapping table\n  strategy CA|BL|PL|BL-S|PL-S   choose the execution strategy\n  timeline                per-site Gantt chart of the last query\n  save <dir> / load <dir> persist / restore the federation\n  quit                    exit"
        );
    }

    fn schema(&self) {
        for (_, class) in self.fed.global_schema().iter() {
            let attrs: Vec<&str> = class.attrs().iter().map(|a| a.name()).collect();
            println!("{}({})", class.name(), attrs.join(", "));
            for constituent in class.constituents() {
                let missing: Vec<&str> =
                    constituent.missing_attrs().map(|g| class.attr(g).name()).collect();
                let db = self.fed.db(constituent.db());
                if missing.is_empty() {
                    println!("  {}: complete", db.name());
                } else {
                    println!("  {}: missing {}", db.name(), missing.join(", "));
                }
            }
        }
    }

    fn dbs(&self) {
        for db in self.fed.dbs() {
            println!("{db}");
        }
    }

    fn goids(&self, class_name: &str) {
        let Some(class_id) = self.fed.global_schema().class_id(class_name) else {
            println!("unknown global class {class_name:?}");
            return;
        };
        let table = self.fed.catalog().table(class_id);
        let mut entries: Vec<(GOid, Vec<LOid>)> =
            table.iter().map(|(g, ls)| (g, ls.to_vec())).collect();
        entries.sort();
        for (g, loids) in entries {
            let copies: Vec<String> = loids.iter().map(|l| l.to_string()).collect();
            println!("{g} = {{{}}}", copies.join(", "));
        }
    }

    fn plan(&self, sql: &str) -> Result<(), Box<dyn std::error::Error>> {
        let bound = self.fed.parse_and_bind(sql)?;
        for db in self.fed.dbs() {
            match plan_for_db(&bound, self.fed.global_schema(), db.id()) {
                Some(plan) => println!("{}", plan.describe(&bound)),
                None => println!("-- {} hosts no constituent of the range class", db.name()),
            }
        }
        Ok(())
    }

    fn make_strategy_by(&self, name: &str) -> Option<Box<dyn ExecutionStrategy>> {
        match name.to_ascii_uppercase().as_str() {
            "CA" => Some(Box::new(Centralized)),
            "BL" => Some(Box::new(BasicLocalized::new())),
            "PL" => Some(Box::new(ParallelLocalized::new())),
            "BL-S" => Some(Box::new(BasicLocalized::with_signatures())),
            "PL-S" => Some(Box::new(ParallelLocalized::with_signatures())),
            _ => None,
        }
    }

    fn query(&mut self, sql: &str) -> Result<(), Box<dyn std::error::Error>> {
        let strategy = self
            .make_strategy_by(&self.strategy_name)
            .expect("configured strategy is valid");
        let dnf = parse_dnf(sql)?;
        let mut sim = Simulation::new(SystemParams::paper_default(), self.fed.num_dbs());
        let answer = run_disjunctive(strategy.as_ref(), &self.fed, &dnf, &mut sim)?;
        for row in answer.certain() {
            println!("certain  {row}");
        }
        for row in answer.maybe() {
            let unsolved: Vec<String> = row.unsolved().map(|p| p.to_string()).collect();
            println!("maybe    {}  [unsolved: {}]", row.row(), unsolved.join(","));
        }
        if answer.is_empty() {
            println!("(no results)");
        }
        println!("-- {} via {}: {}", answer, self.strategy_name, sim.metrics());
        self.last_ledger = Some(sim.ledger().clone());
        Ok(())
    }
}
