//! Single-site object DBMS substrate for FedOQ.
//!
//! Each site of the federation runs one [`ComponentDb`]: a component schema
//! ([`schema`]) of classes whose attributes are primitive or *complex*
//! (references to other classes, forming the class composition hierarchy),
//! class extents ([`extent`]), and a local evaluator ([`eval`]) that walks
//! path expressions and scores predicates under three-valued logic while
//! counting the comparisons and object fetches that the simulation charges
//! for.
//!
//! # Example
//!
//! ```
//! use fedoq_object::{DbId, Value};
//! use fedoq_store::{AttrType, ClassDef, ComponentDb, ComponentSchema};
//!
//! let schema = ComponentSchema::new(vec![
//!     ClassDef::new("Teacher")
//!         .attr("name", AttrType::text())
//!         .attr("speciality", AttrType::text()),
//! ])?;
//! let mut db = ComponentDb::new(DbId::new(0), "DB0", schema);
//! let kelly = db.insert_named("Teacher", &[("name", Value::text("Kelly")),
//!                                          ("speciality", Value::text("database"))])?;
//! assert_eq!(db.object(kelly).unwrap().value(0), &Value::text("Kelly"));
//! # Ok::<(), fedoq_store::StoreError>(())
//! ```

// Library code must surface errors as values, never panic on them:
// test modules, which may unwrap freely, are exempt via cfg_attr.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod db;
pub mod error;
pub mod eval;
pub mod extent;
pub mod index;
pub mod local_query;
pub mod pages;
pub mod par;
pub mod persist;
pub mod schema;
pub mod stats;

pub use db::{Change, ComponentDb, IndexId, ObjectMut};
pub use error::StoreError;
pub use eval::{CompiledPath, CompiledPredicate, EvalCounter, PathWalk};
pub use extent::Extent;
pub use index::{HashIndex, IndexKey, MaintainedIndex};
pub use local_query::{LocalQuery, LocalQueryResult, LocalRow, ParallelScan};
pub use pages::{load_db_paged, recover_db_paged, save_db_paged, PagedDb, RecoveryReport};
pub use par::{map_chunks, worker_shares};
pub use persist::{load_db, save_db, PersistError};
pub use schema::{AttrDef, AttrType, ClassDef, ComponentSchema, PrimitiveType};
pub use stats::ClassStats;
