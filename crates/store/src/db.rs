//! The component database: one autonomous site's schema plus extents.

use crate::error::StoreError;
use crate::extent::Extent;
use crate::index::{resolve_index_slots, MaintainedIndex};
use crate::schema::{AttrType, ComponentSchema, PrimitiveType};
use fedoq_object::{ClassId, DbId, LOid, Object, Value, ValueKind};
use std::collections::HashMap;
use std::fmt;
use std::ops::{Deref, DerefMut};

/// One recorded mutation of a change-tracking [`ComponentDb`] (see
/// [`ComponentDb::set_change_tracking`]). The federation layer drains
/// these to update its derived structures (GOid tables, signatures)
/// incrementally instead of rebuilding them from scratch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Change {
    /// A fresh object was inserted (or restored from persistence).
    Insert(LOid),
    /// An object was retracted.
    Retract(LOid),
    /// An object was updated in place through [`ComponentDb::object_mut`].
    Update(LOid),
}

/// A handle to a maintained secondary index (see
/// [`ComponentDb::create_index`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IndexId(pub(crate) usize);

/// One component database of the federation: a named site with its own
/// schema, extents, and LOid allocation.
///
/// # Example
///
/// ```
/// use fedoq_object::{DbId, Value};
/// use fedoq_store::{AttrType, ClassDef, ComponentDb, ComponentSchema};
///
/// let schema = ComponentSchema::new(vec![
///     ClassDef::new("Department").attr("name", AttrType::text()),
///     ClassDef::new("Teacher")
///         .attr("name", AttrType::text())
///         .attr("department", AttrType::complex("Department")),
/// ])?;
/// let mut db = ComponentDb::new(DbId::new(1), "DB1", schema);
/// let cs = db.insert_named("Department", &[("name", Value::text("CS"))])?;
/// let t1 = db.insert_named("Teacher", &[("name", Value::text("Jeffery")),
///                                       ("department", Value::Ref(cs))])?;
/// assert_eq!(db.object(t1).unwrap().value(1), &Value::Ref(cs));
/// # Ok::<(), fedoq_store::StoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ComponentDb {
    id: DbId,
    name: String,
    schema: ComponentSchema,
    extents: Vec<Extent>,
    loid_class: HashMap<LOid, ClassId>,
    next_serial: u64,
    /// Mutation counter: bumped by every insert/restore/retract/in-place
    /// update. Standalone [`crate::HashIndex`]es stamp themselves with it
    /// and refuse stale probes.
    generation: u64,
    indexes: Vec<MaintainedIndex>,
    track_changes: bool,
    changes: Vec<Change>,
}

impl ComponentDb {
    /// Creates an empty component database with the given site id and name.
    pub fn new(id: DbId, name: impl Into<String>, schema: ComponentSchema) -> ComponentDb {
        let extents = (0..schema.len())
            .map(|i| Extent::new(ClassId::new(i as u32)))
            .collect();
        ComponentDb {
            id,
            name: name.into(),
            schema,
            extents,
            loid_class: HashMap::new(),
            next_serial: 0,
            generation: 0,
            indexes: Vec::new(),
            track_changes: false,
            changes: Vec::new(),
        }
    }

    /// The mutation generation: 0 at construction, +1 per mutation
    /// (insert, restore, retract, or in-place update).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Turns the change log on or off. While on, every mutation records a
    /// [`Change`]; [`ComponentDb::drain_changes`] hands them over. Turning
    /// tracking off clears any pending entries.
    pub fn set_change_tracking(&mut self, on: bool) {
        self.track_changes = on;
        if !on {
            self.changes.clear();
        }
    }

    /// `true` while the change log is recording mutations.
    pub fn change_tracking(&self) -> bool {
        self.track_changes
    }

    /// Takes (and clears) the recorded changes since the last drain.
    pub fn drain_changes(&mut self) -> Vec<Change> {
        std::mem::take(&mut self.changes)
    }

    fn record(&mut self, change: Change) {
        self.generation += 1;
        if self.track_changes {
            self.changes.push(change);
        }
    }

    /// Creates (or finds) a maintained equality index over `attrs` of
    /// `class_name`. Unlike a standalone [`crate::HashIndex`], the returned
    /// index is owned by the database and kept in sync by every subsequent
    /// mutation, so it can never go stale.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::UnknownClass`] for an unknown class name,
    /// [`StoreError::MissingAttribute`] for unknown attribute names, and
    /// [`StoreError::NotIndexable`] for float/complex attributes.
    pub fn create_index(
        &mut self,
        class_name: &str,
        attrs: &[&str],
    ) -> Result<IndexId, StoreError> {
        let class = self
            .schema
            .class_id(class_name)
            .ok_or_else(|| StoreError::UnknownClass(class_name.to_owned()))?;
        let slots = resolve_index_slots(self, class, attrs)?;
        if let Some(pos) = self
            .indexes
            .iter()
            .position(|ix| ix.class == class && ix.attrs == slots)
        {
            return Ok(IndexId(pos));
        }
        let mut index = MaintainedIndex::new(class, slots);
        for object in self.extents[class.index()].iter() {
            index.add(object);
        }
        self.indexes.push(index);
        Ok(IndexId(self.indexes.len() - 1))
    }

    /// The maintained index with handle `id`, if it exists.
    pub fn index(&self, id: IndexId) -> Option<&MaintainedIndex> {
        self.indexes.get(id.0)
    }

    /// The maintained index over exactly `slots` of `class`, if one was
    /// created — the probe point of the indexed query fast path.
    pub fn index_on(&self, class: ClassId, slots: &[usize]) -> Option<&MaintainedIndex> {
        self.indexes
            .iter()
            .find(|ix| ix.class == class && ix.attrs == slots)
    }

    /// Number of maintained indexes.
    pub fn num_indexes(&self) -> usize {
        self.indexes.len()
    }

    fn index_add(&mut self, class: ClassId, loid: LOid) {
        if self.indexes.is_empty() {
            return;
        }
        let Some(object) = self.extents[class.index()].get(loid) else {
            return;
        };
        for index in self.indexes.iter_mut().filter(|ix| ix.class == class) {
            index.add(object);
        }
    }

    fn index_remove(&mut self, object: &Object) {
        for index in self
            .indexes
            .iter_mut()
            .filter(|ix| ix.class == object.class())
        {
            index.remove(object);
        }
    }

    /// The site id.
    pub fn id(&self) -> DbId {
        self.id
    }

    /// The human-readable site name (e.g. `"DB1"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The component schema.
    pub fn schema(&self) -> &ComponentSchema {
        &self.schema
    }

    /// Inserts an object with values in class attribute order, allocating a
    /// fresh LOid.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::ArityMismatch`] if the value count differs from
    /// the class arity, [`StoreError::TypeMismatch`] if a non-null value has
    /// the wrong kind for its attribute, or [`StoreError::UnknownClass`] via
    /// the named variants.
    pub fn insert(&mut self, class: ClassId, values: Vec<Value>) -> Result<LOid, StoreError> {
        let def = self.schema.class(class);
        if values.len() != def.arity() {
            return Err(StoreError::ArityMismatch {
                class: def.name().to_owned(),
                expected: def.arity(),
                got: values.len(),
            });
        }
        for (attr, value) in def.attrs().iter().zip(&values) {
            if !value_matches(attr.ty(), value) {
                return Err(StoreError::TypeMismatch {
                    class: def.name().to_owned(),
                    attr: attr.name().to_owned(),
                });
            }
        }
        let loid = LOid::new(self.id, self.next_serial);
        self.next_serial += 1;
        self.extents[class.index()].insert(Object::new(loid, class, values));
        self.loid_class.insert(loid, class);
        self.index_add(class, loid);
        self.record(Change::Insert(loid));
        Ok(loid)
    }

    /// Inserts an object by class name with `(attribute, value)` pairs;
    /// attributes not mentioned are set to null.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::UnknownClass`] for an unknown class name,
    /// [`StoreError::MissingAttribute`] for an unknown attribute name, and
    /// the same errors as [`ComponentDb::insert`] otherwise.
    pub fn insert_named(
        &mut self,
        class_name: &str,
        pairs: &[(&str, Value)],
    ) -> Result<LOid, StoreError> {
        let class = self
            .schema
            .class_id(class_name)
            .ok_or_else(|| StoreError::UnknownClass(class_name.to_owned()))?;
        let def = self.schema.class(class);
        let mut values = vec![Value::Null; def.arity()];
        for (attr, value) in pairs {
            let idx = def
                .attr_index(attr)
                .ok_or_else(|| StoreError::MissingAttribute {
                    class: class_name.to_owned(),
                    attr: (*attr).to_owned(),
                })?;
            values[idx] = value.clone();
        }
        self.insert(class, values)
    }

    /// Fetches an object by LOid, from whatever class extent holds it.
    pub fn object(&self, loid: LOid) -> Option<&Object> {
        let class = *self.loid_class.get(&loid)?;
        self.extents[class.index()].get(loid)
    }

    /// Mutable fetch by LOid. The returned guard dereferences to the
    /// object; when it drops, the database reindexes the object, bumps the
    /// mutation generation, and records the update in the change log — so
    /// in-place mutation cannot silently bypass the maintained indexes.
    pub fn object_mut(&mut self, loid: LOid) -> Option<ObjectMut<'_>> {
        let class = *self.loid_class.get(&loid)?;
        if !self.extents[class.index()].contains(loid) {
            return None;
        }
        // Un-index under the pre-update values; the guard's drop re-adds
        // the object under whatever values it ends up with.
        if !self.indexes.is_empty() {
            if let Some(object) = self.extents[class.index()].get(loid) {
                for index in self.indexes.iter_mut().filter(|ix| ix.class == class) {
                    index.remove(object);
                }
            }
        }
        Some(ObjectMut {
            db: self,
            loid,
            class,
        })
    }

    /// The class holding `loid`, if it exists here.
    pub fn class_of(&self, loid: LOid) -> Option<ClassId> {
        self.loid_class.get(&loid).copied()
    }

    /// The extent of a class.
    ///
    /// # Panics
    ///
    /// Panics if `class` does not belong to this database's schema.
    pub fn extent(&self, class: ClassId) -> &Extent {
        &self.extents[class.index()]
    }

    /// The extent of a class by name, if the class exists.
    pub fn extent_by_name(&self, class_name: &str) -> Option<&Extent> {
        self.schema.class_id(class_name).map(|c| self.extent(c))
    }

    /// Total number of stored objects across all extents.
    pub fn object_count(&self) -> usize {
        self.extents.iter().map(Extent::len).sum()
    }

    /// Restores an object under its original LOid (used when loading a
    /// persisted database; see [`crate::persist`]). Advances the LOid
    /// allocator past the restored serial.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ComponentDb::insert`], plus
    /// [`StoreError::DanglingRef`] if `loid` belongs to another database.
    pub(crate) fn restore(
        &mut self,
        class: ClassId,
        loid: LOid,
        values: Vec<Value>,
    ) -> Result<(), StoreError> {
        if loid.db() != self.id {
            return Err(StoreError::DanglingRef(loid));
        }
        let def = self.schema.class(class);
        if values.len() != def.arity() {
            return Err(StoreError::ArityMismatch {
                class: def.name().to_owned(),
                expected: def.arity(),
                got: values.len(),
            });
        }
        for (attr, value) in def.attrs().iter().zip(&values) {
            if !value_matches(attr.ty(), value) {
                return Err(StoreError::TypeMismatch {
                    class: def.name().to_owned(),
                    attr: attr.name().to_owned(),
                });
            }
        }
        self.next_serial = self.next_serial.max(loid.serial() + 1);
        // A restore may replace an object under the same LOid: un-index
        // the old version before the extent swap.
        if !self.indexes.is_empty() {
            if let Some(old) = self.extents[class.index()].get(loid) {
                for index in self.indexes.iter_mut().filter(|ix| ix.class == class) {
                    index.remove(old);
                }
            }
        }
        self.extents[class.index()].insert(Object::new(loid, class, values));
        self.loid_class.insert(loid, class);
        self.index_add(class, loid);
        self.record(Change::Insert(loid));
        Ok(())
    }

    /// Retracts the object with `loid` from its extent, returning it.
    ///
    /// References held by other objects are left in place: a dangling
    /// reference reads as null under the three-valued evaluator, which is
    /// exactly the paper's missing-data situation — retracting an
    /// isomeric copy downgrades answers that depended on it to maybes.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::DanglingRef`] if no object with `loid`
    /// exists here.
    pub fn retract(&mut self, loid: LOid) -> Result<Object, StoreError> {
        let class = self
            .loid_class
            .remove(&loid)
            .ok_or(StoreError::DanglingRef(loid))?;
        let removed = self.extents[class.index()]
            .remove(loid)
            .ok_or(StoreError::DanglingRef(loid))?;
        self.index_remove(&removed);
        self.record(Change::Retract(loid));
        Ok(removed)
    }

    /// Checks that every complex attribute references an existing object.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::DanglingRef`] naming the first missing target.
    pub fn validate_refs(&self) -> Result<(), StoreError> {
        for extent in &self.extents {
            for object in extent.iter() {
                for value in object.values() {
                    if let Some(target) = value.as_ref_loid() {
                        if self.object(target).is_none() {
                            return Err(StoreError::DanglingRef(target));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// The mutable-access guard returned by [`ComponentDb::object_mut`].
///
/// Dereferences to the [`Object`]; on drop it reindexes the object and
/// bumps the database's mutation generation.
#[derive(Debug)]
pub struct ObjectMut<'a> {
    db: &'a mut ComponentDb,
    loid: LOid,
    class: ClassId,
}

impl Deref for ObjectMut<'_> {
    type Target = Object;

    fn deref(&self) -> &Object {
        self.db.extents[self.class.index()]
            .get(self.loid)
            .expect("guard holds a live object")
    }
}

impl DerefMut for ObjectMut<'_> {
    fn deref_mut(&mut self) -> &mut Object {
        self.db.extents[self.class.index()]
            .get_mut(self.loid)
            .expect("guard holds a live object")
    }
}

impl Drop for ObjectMut<'_> {
    fn drop(&mut self) {
        self.db.index_add(self.class, self.loid);
        self.db.record(Change::Update(self.loid));
    }
}

impl fmt::Display for ComponentDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} classes, {} objects)",
            self.name,
            self.schema.len(),
            self.object_count()
        )
    }
}

/// Lenient kind check: nulls fit anywhere; otherwise the value kind must
/// match the declared attribute type.
fn value_matches(ty: &AttrType, value: &Value) -> bool {
    if value.is_null() {
        return true;
    }
    match ty {
        AttrType::Primitive(p) => matches!(
            (p, value.kind()),
            (PrimitiveType::Int, ValueKind::Int)
                | (PrimitiveType::Float, ValueKind::Float)
                | (PrimitiveType::Float, ValueKind::Int)
                | (PrimitiveType::Text, ValueKind::Text)
                | (PrimitiveType::Bool, ValueKind::Bool)
        ),
        AttrType::Complex(_) => matches!(value.kind(), ValueKind::Ref | ValueKind::GRef),
        AttrType::Multi(inner) => match value {
            Value::List(items) => items.iter().all(|v| value_matches(inner, v)),
            _ => value_matches(inner, value),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexKey;
    use crate::schema::ClassDef;

    fn mkdb() -> ComponentDb {
        let schema = ComponentSchema::new(vec![
            ClassDef::new("Department").attr("name", AttrType::text()),
            ClassDef::new("Teacher")
                .attr("name", AttrType::text())
                .attr("department", AttrType::complex("Department")),
        ])
        .unwrap();
        ComponentDb::new(DbId::new(1), "DB1", schema)
    }

    #[test]
    fn insert_allocates_sequential_loids() {
        let mut db = mkdb();
        let a = db
            .insert_named("Department", &[("name", Value::text("CS"))])
            .unwrap();
        let b = db
            .insert_named("Department", &[("name", Value::text("EE"))])
            .unwrap();
        assert_eq!(a.serial() + 1, b.serial());
        assert_eq!(a.db(), DbId::new(1));
        assert_eq!(db.object_count(), 2);
    }

    #[test]
    fn insert_named_defaults_to_null() {
        let mut db = mkdb();
        let t = db
            .insert_named("Teacher", &[("name", Value::text("Haley"))])
            .unwrap();
        let obj = db.object(t).unwrap();
        assert_eq!(obj.value(0), &Value::text("Haley"));
        assert!(obj.value(1).is_null());
    }

    #[test]
    fn unknown_class_and_attr_errors() {
        let mut db = mkdb();
        assert!(matches!(
            db.insert_named("Course", &[]),
            Err(StoreError::UnknownClass(_))
        ));
        assert!(matches!(
            db.insert_named("Teacher", &[("speciality", Value::text("db"))]),
            Err(StoreError::MissingAttribute { .. })
        ));
    }

    #[test]
    fn arity_and_type_checks() {
        let mut db = mkdb();
        let dept = db.schema().class_id("Department").unwrap();
        assert!(matches!(
            db.insert(dept, vec![]),
            Err(StoreError::ArityMismatch { .. })
        ));
        assert!(matches!(
            db.insert(dept, vec![Value::Int(3)]),
            Err(StoreError::TypeMismatch { .. })
        ));
        // Nulls always pass the type check.
        assert!(db.insert(dept, vec![Value::Null]).is_ok());
    }

    #[test]
    fn object_lookup_spans_classes() {
        let mut db = mkdb();
        let d = db
            .insert_named("Department", &[("name", Value::text("CS"))])
            .unwrap();
        let t = db
            .insert_named(
                "Teacher",
                &[
                    ("name", Value::text("Jeffery")),
                    ("department", Value::Ref(d)),
                ],
            )
            .unwrap();
        assert_eq!(db.class_of(d), db.schema().class_id("Department"));
        assert_eq!(db.class_of(t), db.schema().class_id("Teacher"));
        assert_eq!(db.object(t).unwrap().value(1), &Value::Ref(d));
        assert_eq!(db.extent_by_name("Teacher").unwrap().len(), 1);
    }

    #[test]
    fn validate_refs_detects_dangling() {
        let mut db = mkdb();
        let ghost = LOid::new(DbId::new(1), 999);
        db.insert_named(
            "Teacher",
            &[
                ("name", Value::text("X")),
                ("department", Value::Ref(ghost)),
            ],
        )
        .unwrap();
        assert_eq!(db.validate_refs(), Err(StoreError::DanglingRef(ghost)));
    }

    #[test]
    fn validate_refs_passes_for_consistent_db() {
        let mut db = mkdb();
        let d = db
            .insert_named("Department", &[("name", Value::text("CS"))])
            .unwrap();
        db.insert_named(
            "Teacher",
            &[("name", Value::text("J")), ("department", Value::Ref(d))],
        )
        .unwrap();
        assert!(db.validate_refs().is_ok());
    }

    #[test]
    fn retract_removes_and_reports_missing() {
        let mut db = mkdb();
        let d = db
            .insert_named("Department", &[("name", Value::text("CS"))])
            .unwrap();
        let t = db
            .insert_named(
                "Teacher",
                &[("name", Value::text("J")), ("department", Value::Ref(d))],
            )
            .unwrap();
        let gone = db.retract(d).unwrap();
        assert_eq!(gone.value(0), &Value::text("CS"));
        assert!(db.object(d).is_none());
        assert_eq!(db.object_count(), 1);
        // The teacher now dangles — visible to validate_refs.
        assert_eq!(db.validate_refs(), Err(StoreError::DanglingRef(d)));
        assert_eq!(db.retract(d), Err(StoreError::DanglingRef(d)));
        let _ = t;
    }

    #[test]
    fn object_mut_updates_in_place() {
        let mut db = mkdb();
        let d = db
            .insert_named("Department", &[("name", Value::text("CS"))])
            .unwrap();
        db.object_mut(d)
            .unwrap()
            .set(0, Value::text("Computer Science"));
        assert_eq!(
            db.object(d).unwrap().value(0),
            &Value::text("Computer Science")
        );
    }

    #[test]
    fn float_attr_accepts_int() {
        let schema =
            ComponentSchema::new(vec![ClassDef::new("M").attr("x", AttrType::float())]).unwrap();
        let mut db = ComponentDb::new(DbId::new(0), "DB0", schema);
        assert!(db.insert_named("M", &[("x", Value::Int(3))]).is_ok());
    }

    #[test]
    fn multi_valued_attr_accepts_lists() {
        let schema = ComponentSchema::new(vec![
            ClassDef::new("M").attr("xs", AttrType::Multi(Box::new(AttrType::int())))
        ])
        .unwrap();
        let mut db = ComponentDb::new(DbId::new(0), "DB0", schema);
        assert!(db
            .insert_named(
                "M",
                &[("xs", Value::List(vec![Value::Int(1), Value::Int(2)]))]
            )
            .is_ok());
        assert!(matches!(
            db.insert_named("M", &[("xs", Value::List(vec![Value::text("no")]))]),
            Err(StoreError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn display_summarizes() {
        let db = mkdb();
        assert_eq!(db.to_string(), "DB1 (2 classes, 0 objects)");
    }

    #[test]
    fn generation_counts_every_mutation() {
        let mut db = mkdb();
        assert_eq!(db.generation(), 0);
        let d = db
            .insert_named("Department", &[("name", Value::text("CS"))])
            .unwrap();
        assert_eq!(db.generation(), 1);
        db.object_mut(d).unwrap().set(0, Value::text("EE"));
        assert_eq!(db.generation(), 2);
        db.retract(d).unwrap();
        assert_eq!(db.generation(), 3);
    }

    #[test]
    fn change_log_records_when_tracking() {
        let mut db = mkdb();
        let untracked = db
            .insert_named("Department", &[("name", Value::text("CS"))])
            .unwrap();
        assert!(db.drain_changes().is_empty());
        db.set_change_tracking(true);
        let d = db
            .insert_named("Department", &[("name", Value::text("EE"))])
            .unwrap();
        db.object_mut(d).unwrap().set(0, Value::text("ME"));
        db.retract(untracked).unwrap();
        assert_eq!(
            db.drain_changes(),
            vec![
                Change::Insert(d),
                Change::Update(d),
                Change::Retract(untracked)
            ]
        );
        assert!(db.drain_changes().is_empty());
        db.set_change_tracking(false);
        db.retract(d).unwrap();
        assert!(db.drain_changes().is_empty());
    }

    fn indexed_db() -> (ComponentDb, IndexId) {
        let schema = ComponentSchema::new(vec![ClassDef::new("Student")
            .attr("s-no", AttrType::int())
            .attr("dept", AttrType::text())])
        .unwrap();
        let mut db = ComponentDb::new(DbId::new(0), "DB0", schema);
        let id = db.create_index("Student", &["dept"]).unwrap();
        (db, id)
    }

    #[test]
    fn maintained_index_follows_inserts_updates_retracts() {
        let (mut db, id) = indexed_db();
        let a = db
            .insert_named(
                "Student",
                &[("s-no", Value::Int(1)), ("dept", Value::text("cs"))],
            )
            .unwrap();
        let b = db
            .insert_named(
                "Student",
                &[("s-no", Value::Int(2)), ("dept", Value::text("cs"))],
            )
            .unwrap();
        let c = db
            .insert_named("Student", &[("s-no", Value::Int(3))])
            .unwrap(); // dept null
        let key = IndexKey::Text("cs".into());
        let ix = db.index(id).unwrap();
        assert_eq!(ix.matches(&key), &[a, b]);
        assert!(ix.unknowns().contains(&c));

        // In-place update moves the object between keys.
        db.object_mut(a).unwrap().set(1, Value::text("ee"));
        let ix = db.index(id).unwrap();
        assert_eq!(ix.matches(&key), &[b]);
        assert_eq!(ix.matches(&IndexKey::Text("ee".into())), &[a]);

        // Filling in the null removes it from the unknown set.
        db.object_mut(c).unwrap().set(1, Value::text("cs"));
        let ix = db.index(id).unwrap();
        assert!(!ix.unknowns().contains(&c));
        assert_eq!(ix.matches(&key), &[b, c]);

        // Retraction drops the entry entirely.
        db.retract(b).unwrap();
        let ix = db.index(id).unwrap();
        assert_eq!(ix.matches(&key), &[c]);
        db.retract(c).unwrap();
        db.retract(a).unwrap();
        let ix = db.index(id).unwrap();
        assert_eq!(ix.distinct_keys(), 0);
        assert!(ix.unknowns().is_empty());
    }

    #[test]
    fn create_index_is_idempotent_and_validates() {
        let (mut db, id) = indexed_db();
        assert_eq!(db.create_index("Student", &["dept"]).unwrap(), id);
        assert_eq!(db.num_indexes(), 1);
        assert!(matches!(
            db.create_index("Nope", &["x"]),
            Err(StoreError::UnknownClass(_))
        ));
        assert!(matches!(
            db.create_index("Student", &["gpa"]),
            Err(StoreError::MissingAttribute { .. })
        ));
        let class = db.schema().class_id("Student").unwrap();
        let dept_slot = 1;
        assert!(db.index_on(class, &[dept_slot]).is_some());
        assert!(db.index_on(class, &[0, 1]).is_none());
    }

    #[test]
    fn index_built_over_existing_extent() {
        let schema =
            ComponentSchema::new(vec![ClassDef::new("S").attr("k", AttrType::int())]).unwrap();
        let mut db = ComponentDb::new(DbId::new(0), "DB0", schema);
        let a = db.insert_named("S", &[("k", Value::Int(7))]).unwrap();
        let id = db.create_index("S", &["k"]).unwrap();
        assert_eq!(db.index(id).unwrap().matches(&IndexKey::Int(7)), &[a]);
    }
}
