//! The component database: one autonomous site's schema plus extents.

use crate::error::StoreError;
use crate::extent::Extent;
use crate::schema::{AttrType, ComponentSchema, PrimitiveType};
use fedoq_object::{ClassId, DbId, LOid, Object, Value, ValueKind};
use std::collections::HashMap;
use std::fmt;

/// One component database of the federation: a named site with its own
/// schema, extents, and LOid allocation.
///
/// # Example
///
/// ```
/// use fedoq_object::{DbId, Value};
/// use fedoq_store::{AttrType, ClassDef, ComponentDb, ComponentSchema};
///
/// let schema = ComponentSchema::new(vec![
///     ClassDef::new("Department").attr("name", AttrType::text()),
///     ClassDef::new("Teacher")
///         .attr("name", AttrType::text())
///         .attr("department", AttrType::complex("Department")),
/// ])?;
/// let mut db = ComponentDb::new(DbId::new(1), "DB1", schema);
/// let cs = db.insert_named("Department", &[("name", Value::text("CS"))])?;
/// let t1 = db.insert_named("Teacher", &[("name", Value::text("Jeffery")),
///                                       ("department", Value::Ref(cs))])?;
/// assert_eq!(db.object(t1).unwrap().value(1), &Value::Ref(cs));
/// # Ok::<(), fedoq_store::StoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ComponentDb {
    id: DbId,
    name: String,
    schema: ComponentSchema,
    extents: Vec<Extent>,
    loid_class: HashMap<LOid, ClassId>,
    next_serial: u64,
}

impl ComponentDb {
    /// Creates an empty component database with the given site id and name.
    pub fn new(id: DbId, name: impl Into<String>, schema: ComponentSchema) -> ComponentDb {
        let extents = (0..schema.len())
            .map(|i| Extent::new(ClassId::new(i as u32)))
            .collect();
        ComponentDb {
            id,
            name: name.into(),
            schema,
            extents,
            loid_class: HashMap::new(),
            next_serial: 0,
        }
    }

    /// The site id.
    pub fn id(&self) -> DbId {
        self.id
    }

    /// The human-readable site name (e.g. `"DB1"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The component schema.
    pub fn schema(&self) -> &ComponentSchema {
        &self.schema
    }

    /// Inserts an object with values in class attribute order, allocating a
    /// fresh LOid.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::ArityMismatch`] if the value count differs from
    /// the class arity, [`StoreError::TypeMismatch`] if a non-null value has
    /// the wrong kind for its attribute, or [`StoreError::UnknownClass`] via
    /// the named variants.
    pub fn insert(&mut self, class: ClassId, values: Vec<Value>) -> Result<LOid, StoreError> {
        let def = self.schema.class(class);
        if values.len() != def.arity() {
            return Err(StoreError::ArityMismatch {
                class: def.name().to_owned(),
                expected: def.arity(),
                got: values.len(),
            });
        }
        for (attr, value) in def.attrs().iter().zip(&values) {
            if !value_matches(attr.ty(), value) {
                return Err(StoreError::TypeMismatch {
                    class: def.name().to_owned(),
                    attr: attr.name().to_owned(),
                });
            }
        }
        let loid = LOid::new(self.id, self.next_serial);
        self.next_serial += 1;
        self.extents[class.index()].insert(Object::new(loid, class, values));
        self.loid_class.insert(loid, class);
        Ok(loid)
    }

    /// Inserts an object by class name with `(attribute, value)` pairs;
    /// attributes not mentioned are set to null.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::UnknownClass`] for an unknown class name,
    /// [`StoreError::MissingAttribute`] for an unknown attribute name, and
    /// the same errors as [`ComponentDb::insert`] otherwise.
    pub fn insert_named(
        &mut self,
        class_name: &str,
        pairs: &[(&str, Value)],
    ) -> Result<LOid, StoreError> {
        let class = self
            .schema
            .class_id(class_name)
            .ok_or_else(|| StoreError::UnknownClass(class_name.to_owned()))?;
        let def = self.schema.class(class);
        let mut values = vec![Value::Null; def.arity()];
        for (attr, value) in pairs {
            let idx = def
                .attr_index(attr)
                .ok_or_else(|| StoreError::MissingAttribute {
                    class: class_name.to_owned(),
                    attr: (*attr).to_owned(),
                })?;
            values[idx] = value.clone();
        }
        self.insert(class, values)
    }

    /// Fetches an object by LOid, from whatever class extent holds it.
    pub fn object(&self, loid: LOid) -> Option<&Object> {
        let class = *self.loid_class.get(&loid)?;
        self.extents[class.index()].get(loid)
    }

    /// Mutable fetch by LOid.
    pub fn object_mut(&mut self, loid: LOid) -> Option<&mut Object> {
        let class = *self.loid_class.get(&loid)?;
        self.extents[class.index()].get_mut(loid)
    }

    /// The class holding `loid`, if it exists here.
    pub fn class_of(&self, loid: LOid) -> Option<ClassId> {
        self.loid_class.get(&loid).copied()
    }

    /// The extent of a class.
    ///
    /// # Panics
    ///
    /// Panics if `class` does not belong to this database's schema.
    pub fn extent(&self, class: ClassId) -> &Extent {
        &self.extents[class.index()]
    }

    /// The extent of a class by name, if the class exists.
    pub fn extent_by_name(&self, class_name: &str) -> Option<&Extent> {
        self.schema.class_id(class_name).map(|c| self.extent(c))
    }

    /// Total number of stored objects across all extents.
    pub fn object_count(&self) -> usize {
        self.extents.iter().map(Extent::len).sum()
    }

    /// Restores an object under its original LOid (used when loading a
    /// persisted database; see [`crate::persist`]). Advances the LOid
    /// allocator past the restored serial.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ComponentDb::insert`], plus
    /// [`StoreError::DanglingRef`] if `loid` belongs to another database.
    pub(crate) fn restore(
        &mut self,
        class: ClassId,
        loid: LOid,
        values: Vec<Value>,
    ) -> Result<(), StoreError> {
        if loid.db() != self.id {
            return Err(StoreError::DanglingRef(loid));
        }
        let def = self.schema.class(class);
        if values.len() != def.arity() {
            return Err(StoreError::ArityMismatch {
                class: def.name().to_owned(),
                expected: def.arity(),
                got: values.len(),
            });
        }
        for (attr, value) in def.attrs().iter().zip(&values) {
            if !value_matches(attr.ty(), value) {
                return Err(StoreError::TypeMismatch {
                    class: def.name().to_owned(),
                    attr: attr.name().to_owned(),
                });
            }
        }
        self.next_serial = self.next_serial.max(loid.serial() + 1);
        self.extents[class.index()].insert(Object::new(loid, class, values));
        self.loid_class.insert(loid, class);
        Ok(())
    }

    /// Retracts the object with `loid` from its extent, returning it.
    ///
    /// References held by other objects are left in place: a dangling
    /// reference reads as null under the three-valued evaluator, which is
    /// exactly the paper's missing-data situation — retracting an
    /// isomeric copy downgrades answers that depended on it to maybes.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::DanglingRef`] if no object with `loid`
    /// exists here.
    pub fn retract(&mut self, loid: LOid) -> Result<Object, StoreError> {
        let class = self
            .loid_class
            .remove(&loid)
            .ok_or(StoreError::DanglingRef(loid))?;
        self.extents[class.index()]
            .remove(loid)
            .ok_or(StoreError::DanglingRef(loid))
    }

    /// Checks that every complex attribute references an existing object.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::DanglingRef`] naming the first missing target.
    pub fn validate_refs(&self) -> Result<(), StoreError> {
        for extent in &self.extents {
            for object in extent.iter() {
                for value in object.values() {
                    if let Some(target) = value.as_ref_loid() {
                        if self.object(target).is_none() {
                            return Err(StoreError::DanglingRef(target));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for ComponentDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} classes, {} objects)",
            self.name,
            self.schema.len(),
            self.object_count()
        )
    }
}

/// Lenient kind check: nulls fit anywhere; otherwise the value kind must
/// match the declared attribute type.
fn value_matches(ty: &AttrType, value: &Value) -> bool {
    if value.is_null() {
        return true;
    }
    match ty {
        AttrType::Primitive(p) => matches!(
            (p, value.kind()),
            (PrimitiveType::Int, ValueKind::Int)
                | (PrimitiveType::Float, ValueKind::Float)
                | (PrimitiveType::Float, ValueKind::Int)
                | (PrimitiveType::Text, ValueKind::Text)
                | (PrimitiveType::Bool, ValueKind::Bool)
        ),
        AttrType::Complex(_) => matches!(value.kind(), ValueKind::Ref | ValueKind::GRef),
        AttrType::Multi(inner) => match value {
            Value::List(items) => items.iter().all(|v| value_matches(inner, v)),
            _ => value_matches(inner, value),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ClassDef;

    fn mkdb() -> ComponentDb {
        let schema = ComponentSchema::new(vec![
            ClassDef::new("Department").attr("name", AttrType::text()),
            ClassDef::new("Teacher")
                .attr("name", AttrType::text())
                .attr("department", AttrType::complex("Department")),
        ])
        .unwrap();
        ComponentDb::new(DbId::new(1), "DB1", schema)
    }

    #[test]
    fn insert_allocates_sequential_loids() {
        let mut db = mkdb();
        let a = db
            .insert_named("Department", &[("name", Value::text("CS"))])
            .unwrap();
        let b = db
            .insert_named("Department", &[("name", Value::text("EE"))])
            .unwrap();
        assert_eq!(a.serial() + 1, b.serial());
        assert_eq!(a.db(), DbId::new(1));
        assert_eq!(db.object_count(), 2);
    }

    #[test]
    fn insert_named_defaults_to_null() {
        let mut db = mkdb();
        let t = db
            .insert_named("Teacher", &[("name", Value::text("Haley"))])
            .unwrap();
        let obj = db.object(t).unwrap();
        assert_eq!(obj.value(0), &Value::text("Haley"));
        assert!(obj.value(1).is_null());
    }

    #[test]
    fn unknown_class_and_attr_errors() {
        let mut db = mkdb();
        assert!(matches!(
            db.insert_named("Course", &[]),
            Err(StoreError::UnknownClass(_))
        ));
        assert!(matches!(
            db.insert_named("Teacher", &[("speciality", Value::text("db"))]),
            Err(StoreError::MissingAttribute { .. })
        ));
    }

    #[test]
    fn arity_and_type_checks() {
        let mut db = mkdb();
        let dept = db.schema().class_id("Department").unwrap();
        assert!(matches!(
            db.insert(dept, vec![]),
            Err(StoreError::ArityMismatch { .. })
        ));
        assert!(matches!(
            db.insert(dept, vec![Value::Int(3)]),
            Err(StoreError::TypeMismatch { .. })
        ));
        // Nulls always pass the type check.
        assert!(db.insert(dept, vec![Value::Null]).is_ok());
    }

    #[test]
    fn object_lookup_spans_classes() {
        let mut db = mkdb();
        let d = db
            .insert_named("Department", &[("name", Value::text("CS"))])
            .unwrap();
        let t = db
            .insert_named(
                "Teacher",
                &[
                    ("name", Value::text("Jeffery")),
                    ("department", Value::Ref(d)),
                ],
            )
            .unwrap();
        assert_eq!(db.class_of(d), db.schema().class_id("Department"));
        assert_eq!(db.class_of(t), db.schema().class_id("Teacher"));
        assert_eq!(db.object(t).unwrap().value(1), &Value::Ref(d));
        assert_eq!(db.extent_by_name("Teacher").unwrap().len(), 1);
    }

    #[test]
    fn validate_refs_detects_dangling() {
        let mut db = mkdb();
        let ghost = LOid::new(DbId::new(1), 999);
        db.insert_named(
            "Teacher",
            &[
                ("name", Value::text("X")),
                ("department", Value::Ref(ghost)),
            ],
        )
        .unwrap();
        assert_eq!(db.validate_refs(), Err(StoreError::DanglingRef(ghost)));
    }

    #[test]
    fn validate_refs_passes_for_consistent_db() {
        let mut db = mkdb();
        let d = db
            .insert_named("Department", &[("name", Value::text("CS"))])
            .unwrap();
        db.insert_named(
            "Teacher",
            &[("name", Value::text("J")), ("department", Value::Ref(d))],
        )
        .unwrap();
        assert!(db.validate_refs().is_ok());
    }

    #[test]
    fn retract_removes_and_reports_missing() {
        let mut db = mkdb();
        let d = db
            .insert_named("Department", &[("name", Value::text("CS"))])
            .unwrap();
        let t = db
            .insert_named(
                "Teacher",
                &[("name", Value::text("J")), ("department", Value::Ref(d))],
            )
            .unwrap();
        let gone = db.retract(d).unwrap();
        assert_eq!(gone.value(0), &Value::text("CS"));
        assert!(db.object(d).is_none());
        assert_eq!(db.object_count(), 1);
        // The teacher now dangles — visible to validate_refs.
        assert_eq!(db.validate_refs(), Err(StoreError::DanglingRef(d)));
        assert_eq!(db.retract(d), Err(StoreError::DanglingRef(d)));
        let _ = t;
    }

    #[test]
    fn object_mut_updates_in_place() {
        let mut db = mkdb();
        let d = db
            .insert_named("Department", &[("name", Value::text("CS"))])
            .unwrap();
        db.object_mut(d)
            .unwrap()
            .set(0, Value::text("Computer Science"));
        assert_eq!(
            db.object(d).unwrap().value(0),
            &Value::text("Computer Science")
        );
    }

    #[test]
    fn float_attr_accepts_int() {
        let schema =
            ComponentSchema::new(vec![ClassDef::new("M").attr("x", AttrType::float())]).unwrap();
        let mut db = ComponentDb::new(DbId::new(0), "DB0", schema);
        assert!(db.insert_named("M", &[("x", Value::Int(3))]).is_ok());
    }

    #[test]
    fn multi_valued_attr_accepts_lists() {
        let schema = ComponentSchema::new(vec![
            ClassDef::new("M").attr("xs", AttrType::Multi(Box::new(AttrType::int())))
        ])
        .unwrap();
        let mut db = ComponentDb::new(DbId::new(0), "DB0", schema);
        assert!(db
            .insert_named(
                "M",
                &[("xs", Value::List(vec![Value::Int(1), Value::Int(2)]))]
            )
            .is_ok());
        assert!(matches!(
            db.insert_named("M", &[("xs", Value::List(vec![Value::text("no")]))]),
            Err(StoreError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn display_summarizes() {
        let db = mkdb();
        assert_eq!(db.to_string(), "DB1 (2 classes, 0 objects)");
    }
}
