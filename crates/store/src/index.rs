//! Hash indexes on indexable attributes.
//!
//! Used by the isomerism detector (key-equality grouping) and by local
//! query evaluation when an equality predicate hits an indexed attribute.

use crate::db::ComponentDb;
use crate::error::StoreError;
use fedoq_object::{ClassId, LOid, Object, Value};
use std::collections::{HashMap, HashSet};

/// A hashable projection of a [`Value`] usable as an index key.
///
/// Floats and references are not indexable (floats lack `Eq`; reference
/// identity is database-local); nulls are excluded from indexes — an index
/// probe must never claim a null matches.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IndexKey {
    /// Integer key.
    Int(i64),
    /// Text key.
    Text(String),
    /// Boolean key.
    Bool(bool),
    /// Compound key over several attributes.
    Compound(Vec<IndexKey>),
}

impl IndexKey {
    /// Converts a value to an index key; `None` for nulls and non-indexable
    /// kinds.
    pub fn from_value(value: &Value) -> Option<IndexKey> {
        match value {
            Value::Int(v) => Some(IndexKey::Int(*v)),
            Value::Text(s) => Some(IndexKey::Text(s.clone())),
            Value::Bool(b) => Some(IndexKey::Bool(*b)),
            _ => None,
        }
    }

    /// Builds a compound key from several values; `None` if any component
    /// is null or non-indexable. A single-component key is returned bare,
    /// so single-attribute probes built with [`IndexKey::from_value`] hit
    /// the same entries.
    pub fn compound<'a, I>(values: I) -> Option<IndexKey>
    where
        I: IntoIterator<Item = &'a Value>,
    {
        let mut keys: Vec<IndexKey> = values
            .into_iter()
            .map(IndexKey::from_value)
            .collect::<Option<_>>()?;
        Some(if keys.len() == 1 {
            keys.pop().expect("len checked")
        } else {
            IndexKey::Compound(keys)
        })
    }
}

/// An equality hash index over one or more attributes of a class.
///
/// # Example
///
/// ```
/// use fedoq_object::{DbId, Value};
/// use fedoq_store::{AttrType, ClassDef, ComponentDb, ComponentSchema, HashIndex};
///
/// let schema = ComponentSchema::new(vec![
///     ClassDef::new("Student").attr("s-no", AttrType::int()).attr("name", AttrType::text()),
/// ])?;
/// let mut db = ComponentDb::new(DbId::new(0), "DB0", schema);
/// let john = db.insert_named("Student", &[("s-no", Value::Int(804301)),
///                                         ("name", Value::text("John"))])?;
/// let class = db.schema().class_id("Student").unwrap();
/// let index = HashIndex::build(&db, class, &["s-no"])?;
/// assert_eq!(index.lookup_values(&[Value::Int(804301)]), vec![john]);
/// # Ok::<(), fedoq_store::StoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct HashIndex {
    class: ClassId,
    attrs: Vec<usize>,
    map: HashMap<IndexKey, Vec<LOid>>,
    nulls: Vec<LOid>,
    generation: u64,
}

/// Resolves index attribute names into slots, rejecting non-indexable
/// (float/complex/multi) attributes.
pub(crate) fn resolve_index_slots(
    db: &ComponentDb,
    class: ClassId,
    attrs: &[&str],
) -> Result<Vec<usize>, StoreError> {
    let def = db.schema().class(class);
    let mut slots = Vec::with_capacity(attrs.len());
    for name in attrs {
        let idx = def
            .attr_index(name)
            .ok_or_else(|| StoreError::MissingAttribute {
                class: def.name().to_owned(),
                attr: (*name).to_owned(),
            })?;
        let ty = def.attrs()[idx].ty();
        let indexable = matches!(
            ty,
            crate::schema::AttrType::Primitive(
                crate::schema::PrimitiveType::Int
                    | crate::schema::PrimitiveType::Text
                    | crate::schema::PrimitiveType::Bool
            )
        );
        if !indexable {
            return Err(StoreError::NotIndexable {
                class: def.name().to_owned(),
                attr: (*name).to_owned(),
            });
        }
        slots.push(idx);
    }
    Ok(slots)
}

impl HashIndex {
    /// Builds an index over `attrs` of `class` by scanning its extent.
    /// Objects whose key contains a null are excluded from the key map but
    /// remembered in the null list — an equality probe can then return the
    /// exact matches *and* the objects whose match status is unknown.
    ///
    /// The index is stamped with the database's current mutation
    /// generation; the checked probes ([`HashIndex::probe`]) refuse to
    /// answer once the database has moved on.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::MissingAttribute`] for unknown attribute names
    /// and [`StoreError::NotIndexable`] for float/complex attributes.
    pub fn build(
        db: &ComponentDb,
        class: ClassId,
        attrs: &[&str],
    ) -> Result<HashIndex, StoreError> {
        let slots = resolve_index_slots(db, class, attrs)?;
        let mut map: HashMap<IndexKey, Vec<LOid>> = HashMap::new();
        let mut nulls = Vec::new();
        for object in db.extent(class).iter() {
            match IndexKey::compound(slots.iter().map(|&i| object.value(i))) {
                Some(key) => map.entry(key).or_default().push(object.loid()),
                None => nulls.push(object.loid()),
            }
        }
        Ok(HashIndex {
            class,
            attrs: slots,
            map,
            nulls,
            generation: db.generation(),
        })
    }

    /// The indexed class.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// The indexed attribute slots.
    pub fn attr_slots(&self) -> &[usize] {
        &self.attrs
    }

    /// The database mutation generation this index was built under.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// LOids whose key equals `key`.
    ///
    /// This accessor does **not** check staleness — use [`HashIndex::probe`]
    /// when the database may have been mutated since the build.
    pub fn lookup(&self, key: &IndexKey) -> &[LOid] {
        self.map.get(key).map_or(&[], Vec::as_slice)
    }

    /// LOids whose indexed attributes equal `values` (same order as the
    /// build call). Returns an empty vec if any value is null/unindexable.
    pub fn lookup_values(&self, values: &[Value]) -> Vec<LOid> {
        match IndexKey::compound(values.iter()) {
            Some(key) => self.lookup(&key).to_vec(),
            None => Vec::new(),
        }
    }

    /// Objects whose key contains a null: their equality status against any
    /// probe key is *unknown*, never a match.
    pub fn null_loids(&self) -> &[LOid] {
        &self.nulls
    }

    /// Staleness-checked lookup: LOids whose key equals `key`, or
    /// [`StoreError::StaleIndex`] if `db` has been mutated since the index
    /// was built.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::StaleIndex`] on generation mismatch.
    pub fn probe<'a>(&'a self, db: &ComponentDb, key: &IndexKey) -> Result<&'a [LOid], StoreError> {
        self.check_fresh(db)?;
        Ok(self.lookup(key))
    }

    /// Staleness-checked [`HashIndex::lookup_values`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::StaleIndex`] on generation mismatch.
    pub fn probe_values(
        &self,
        db: &ComponentDb,
        values: &[Value],
    ) -> Result<Vec<LOid>, StoreError> {
        self.check_fresh(db)?;
        Ok(self.lookup_values(values))
    }

    fn check_fresh(&self, db: &ComponentDb) -> Result<(), StoreError> {
        if db.generation() != self.generation {
            return Err(StoreError::StaleIndex {
                built_at: self.generation,
                now: db.generation(),
            });
        }
        Ok(())
    }

    /// Iterates over `(key, loids)` groups — the isomerism detector groups
    /// same-key objects across databases this way.
    pub fn groups(&self) -> impl Iterator<Item = (&IndexKey, &[LOid])> {
        self.map.iter().map(|(k, v)| (k, v.as_slice()))
    }
}

/// A secondary index owned and *maintained* by a [`ComponentDb`]: every
/// insert, retract, restore, and in-place update keeps it in sync, so it
/// can never go stale the way a standalone [`HashIndex`] can.
///
/// Created through [`ComponentDb::create_index`] and probed through
/// [`ComponentDb::index_on`].
#[derive(Debug, Clone)]
pub struct MaintainedIndex {
    pub(crate) class: ClassId,
    pub(crate) attrs: Vec<usize>,
    pub(crate) map: HashMap<IndexKey, Vec<LOid>>,
    pub(crate) nulls: HashSet<LOid>,
}

impl MaintainedIndex {
    pub(crate) fn new(class: ClassId, attrs: Vec<usize>) -> MaintainedIndex {
        MaintainedIndex {
            class,
            attrs,
            map: HashMap::new(),
            nulls: HashSet::new(),
        }
    }

    /// The indexed class.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// The indexed attribute slots, in index-key order.
    pub fn attr_slots(&self) -> &[usize] {
        &self.attrs
    }

    /// Number of distinct (fully non-null) keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// LOids whose key equals `key` (insertion order).
    pub fn matches(&self, key: &IndexKey) -> &[LOid] {
        self.map.get(key).map_or(&[], Vec::as_slice)
    }

    /// Objects whose key contains a null: equality against any probe key
    /// is unknown for them, never a claimed match.
    pub fn unknowns(&self) -> &HashSet<LOid> {
        &self.nulls
    }

    fn key_of(&self, object: &Object) -> Option<IndexKey> {
        IndexKey::compound(self.attrs.iter().map(|&i| object.value(i)))
    }

    pub(crate) fn add(&mut self, object: &Object) {
        match self.key_of(object) {
            Some(key) => self.map.entry(key).or_default().push(object.loid()),
            None => {
                self.nulls.insert(object.loid());
            }
        }
    }

    pub(crate) fn remove(&mut self, object: &Object) {
        let loid = object.loid();
        match self.key_of(object) {
            Some(key) => {
                if let Some(group) = self.map.get_mut(&key) {
                    group.retain(|&l| l != loid);
                    if group.is_empty() {
                        self.map.remove(&key);
                    }
                }
            }
            None => {
                self.nulls.remove(&loid);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, ClassDef, ComponentSchema};
    use fedoq_object::DbId;

    fn db_with_students() -> (ComponentDb, Vec<LOid>) {
        let schema = ComponentSchema::new(vec![ClassDef::new("Student")
            .attr("s-no", AttrType::int())
            .attr("name", AttrType::text())
            .attr("gpa", AttrType::float())])
        .unwrap();
        let mut db = ComponentDb::new(DbId::new(0), "DB0", schema);
        let loids = vec![
            db.insert_named(
                "Student",
                &[("s-no", Value::Int(1)), ("name", Value::text("a"))],
            )
            .unwrap(),
            db.insert_named(
                "Student",
                &[("s-no", Value::Int(2)), ("name", Value::text("b"))],
            )
            .unwrap(),
            db.insert_named(
                "Student",
                &[("s-no", Value::Int(1)), ("name", Value::text("c"))],
            )
            .unwrap(),
            db.insert_named("Student", &[("name", Value::text("no-key"))])
                .unwrap(),
        ];
        (db, loids)
    }

    #[test]
    fn build_and_lookup() {
        let (db, loids) = db_with_students();
        let class = db.schema().class_id("Student").unwrap();
        let index = HashIndex::build(&db, class, &["s-no"]).unwrap();
        assert_eq!(
            index.lookup_values(&[Value::Int(1)]),
            vec![loids[0], loids[2]]
        );
        assert_eq!(index.lookup_values(&[Value::Int(2)]), vec![loids[1]]);
        assert!(index.lookup_values(&[Value::Int(9)]).is_empty());
        assert_eq!(index.distinct_keys(), 2);
    }

    #[test]
    fn nulls_are_not_indexed() {
        let (db, _) = db_with_students();
        let class = db.schema().class_id("Student").unwrap();
        let index = HashIndex::build(&db, class, &["s-no"]).unwrap();
        assert!(index.lookup_values(&[Value::Null]).is_empty());
    }

    #[test]
    fn compound_keys() {
        let (db, loids) = db_with_students();
        let class = db.schema().class_id("Student").unwrap();
        let index = HashIndex::build(&db, class, &["s-no", "name"]).unwrap();
        assert_eq!(
            index.lookup_values(&[Value::Int(1), Value::text("a")]),
            vec![loids[0]]
        );
        assert_eq!(
            index.lookup_values(&[Value::Int(1), Value::text("c")]),
            vec![loids[2]]
        );
        assert!(index
            .lookup_values(&[Value::Int(1), Value::text("z")])
            .is_empty());
    }

    #[test]
    fn float_attribute_rejected() {
        let (db, _) = db_with_students();
        let class = db.schema().class_id("Student").unwrap();
        let err = HashIndex::build(&db, class, &["gpa"]).unwrap_err();
        assert!(matches!(err, StoreError::NotIndexable { .. }));
    }

    #[test]
    fn unknown_attribute_rejected() {
        let (db, _) = db_with_students();
        let class = db.schema().class_id("Student").unwrap();
        let err = HashIndex::build(&db, class, &["nope"]).unwrap_err();
        assert!(matches!(err, StoreError::MissingAttribute { .. }));
    }

    #[test]
    fn groups_cover_all_indexed_objects() {
        let (db, _) = db_with_students();
        let class = db.schema().class_id("Student").unwrap();
        let index = HashIndex::build(&db, class, &["s-no"]).unwrap();
        let total: usize = index.groups().map(|(_, v)| v.len()).sum();
        assert_eq!(total, 3); // the null-key object is excluded
    }

    #[test]
    fn stale_probe_is_rejected_after_mutation() {
        let (mut db, _) = db_with_students();
        let class = db.schema().class_id("Student").unwrap();
        let index = HashIndex::build(&db, class, &["s-no"]).unwrap();
        let built_at = index.generation();
        // Fresh probes succeed.
        assert_eq!(index.probe(&db, &IndexKey::Int(2)).unwrap().len(), 1);
        db.insert_named("Student", &[("s-no", Value::Int(2))])
            .unwrap();
        // Any mutation invalidates the standalone index.
        let err = index.probe(&db, &IndexKey::Int(2)).unwrap_err();
        assert_eq!(
            err,
            StoreError::StaleIndex {
                built_at,
                now: db.generation()
            }
        );
        assert!(index.probe_values(&db, &[Value::Int(2)]).is_err());
        // Rebuilding re-stamps and probes work again.
        let index = HashIndex::build(&db, class, &["s-no"]).unwrap();
        assert_eq!(index.probe(&db, &IndexKey::Int(2)).unwrap().len(), 2);
    }

    #[test]
    fn null_keyed_objects_are_listed_not_matched() {
        let (db, loids) = db_with_students();
        let class = db.schema().class_id("Student").unwrap();
        let index = HashIndex::build(&db, class, &["s-no"]).unwrap();
        assert_eq!(index.null_loids(), &[loids[3]]);
        for key in [IndexKey::Int(1), IndexKey::Int(2), IndexKey::Int(9)] {
            assert!(!index.lookup(&key).contains(&loids[3]));
        }
    }

    #[test]
    fn index_key_from_value() {
        assert_eq!(IndexKey::from_value(&Value::Int(5)), Some(IndexKey::Int(5)));
        assert_eq!(
            IndexKey::from_value(&Value::text("x")),
            Some(IndexKey::Text("x".into()))
        );
        assert_eq!(
            IndexKey::from_value(&Value::Bool(true)),
            Some(IndexKey::Bool(true))
        );
        assert_eq!(IndexKey::from_value(&Value::Null), None);
        assert_eq!(IndexKey::from_value(&Value::Float(1.0)), None);
    }
}
