//! Chunked parallel mapping over extent slices.
//!
//! The scan-and-evaluate loops of the query pipeline are embarrassingly
//! parallel: each object is classified independently and the per-chunk
//! partial results merge associatively. [`map_chunks`] splits a slice
//! into fixed-size chunks and maps a pure function over them on a
//! work-stealing pool of scoped threads — workers pull the next
//! unclaimed chunk from a shared atomic cursor, so a straggler chunk
//! never idles the rest of the pool. Results are returned **in chunk
//! order** regardless of which worker produced them, which is the whole
//! determinism argument: the merged output is byte-identical to a
//! sequential left-to-right scan.
//!
//! [`worker_shares`] models the same schedule for the cost simulation:
//! given per-chunk work counts it returns the per-worker totals of a
//! round-robin assignment, which the simulation charges as overlapping
//! busy time (`Simulation::cpu_parallel`).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Splits `items` into chunks of `chunk` elements and maps `f` over each
/// chunk on up to `threads` scoped worker threads, returning the per-chunk
/// results in chunk order.
///
/// `f` receives the chunk index and the chunk slice. With `threads <= 1`
/// (or a single chunk) the map runs inline on the caller's thread; the
/// output is identical either way.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins every worker first).
pub fn map_chunks<T, R, F>(items: &[T], threads: usize, chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let chunk = chunk.max(1);
    let n_chunks = items.len().div_ceil(chunk);
    if threads <= 1 || n_chunks <= 1 {
        return items
            .chunks(chunk)
            .enumerate()
            .map(|(i, slice)| f(i, slice))
            .collect();
    }
    let workers = threads.min(n_chunks);
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| {
                let mut produced = Vec::new();
                loop {
                    let c = cursor.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    let lo = c * chunk;
                    let hi = (lo + chunk).min(items.len());
                    produced.push((c, f(c, &items[lo..hi])));
                }
                produced
            }));
        }
        let mut tagged: Vec<(usize, R)> = Vec::with_capacity(n_chunks);
        for handle in handles {
            tagged.extend(handle.join().expect("chunk worker panicked"));
        }
        tagged.sort_by_key(|&(i, _)| i);
        tagged.into_iter().map(|(_, r)| r).collect()
    })
}

/// Per-worker work totals of a round-robin assignment of `costs` (one
/// entry per chunk) to `threads` workers: worker `w` takes chunks `w`,
/// `w + threads`, `w + 2·threads`, …
///
/// This is the deterministic schedule the simulation charges for — the
/// real pool's dynamic stealing can only do better, so the modeled
/// critical path is a safe upper bound.
pub fn worker_shares(costs: &[u64], threads: usize) -> Vec<u64> {
    let threads = threads.max(1).min(costs.len().max(1));
    let mut shares = vec![0u64; threads];
    for (i, &c) in costs.iter().enumerate() {
        shares[i % threads] += c;
    }
    shares
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_map_matches_sequential_in_any_pool_size() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.chunks(7).map(|c| c.iter().sum()).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = map_chunks(&items, threads, 7, |_, slice| slice.iter().sum::<u64>());
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn chunk_indices_arrive_in_order() {
        let items: Vec<u32> = (0..100).collect();
        let got = map_chunks(&items, 8, 9, |i, _| i);
        let expect: Vec<usize> = (0..items.len().div_ceil(9)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(map_chunks(&empty, 8, 16, |_, s| s.len()).is_empty());
        assert_eq!(map_chunks(&[1u8], 8, 16, |_, s| s.len()), vec![1]);
        // chunk=0 is clamped to 1 rather than looping forever.
        assert_eq!(map_chunks(&[1u8, 2], 1, 0, |_, s| s.len()), vec![1, 1]);
    }

    #[test]
    fn shares_preserve_total_work() {
        let costs = [5u64, 1, 9, 2, 2, 7];
        for threads in [1, 2, 3, 4, 8] {
            let shares = worker_shares(&costs, threads);
            assert_eq!(shares.iter().sum::<u64>(), costs.iter().sum::<u64>());
            assert!(shares.len() <= threads.max(1));
        }
        assert_eq!(worker_shares(&costs, 2), vec![5 + 9 + 2, 1 + 2 + 7]);
        assert_eq!(worker_shares(&[], 4), vec![0]);
    }
}
