//! Component schemas: classes, attributes, and the composition hierarchy.
//!
//! A component schema describes the classes of *one* component database.
//! Attributes are either **primitive** (int/float/text/bool) or **complex**
//! — a reference to a domain class, forming the class composition hierarchy
//! the paper's nested predicates walk. Classes may declare a *key*: a set
//! of attributes whose values identify the real-world entity, used by the
//! isomerism detector in `fedoq-schema`.

use crate::error::StoreError;
use fedoq_object::ClassId;
use std::collections::HashMap;
use std::fmt;

/// The primitive attribute types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimitiveType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Text,
    /// Boolean.
    Bool,
}

impl fmt::Display for PrimitiveType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PrimitiveType::Int => "int",
            PrimitiveType::Float => "float",
            PrimitiveType::Text => "text",
            PrimitiveType::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// The type of an attribute: primitive, complex (a reference to another
/// class), or multi-valued (the paper's future-work extension).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// A primitive attribute.
    Primitive(PrimitiveType),
    /// A complex attribute: a reference into the named domain class.
    Complex(String),
    /// A multi-valued attribute of the given element type.
    Multi(Box<AttrType>),
}

impl AttrType {
    /// Shorthand for `Primitive(Int)`.
    pub fn int() -> AttrType {
        AttrType::Primitive(PrimitiveType::Int)
    }

    /// Shorthand for `Primitive(Float)`.
    pub fn float() -> AttrType {
        AttrType::Primitive(PrimitiveType::Float)
    }

    /// Shorthand for `Primitive(Text)`.
    pub fn text() -> AttrType {
        AttrType::Primitive(PrimitiveType::Text)
    }

    /// Shorthand for `Primitive(Bool)`.
    pub fn bool() -> AttrType {
        AttrType::Primitive(PrimitiveType::Bool)
    }

    /// Shorthand for a complex attribute with the given domain class.
    pub fn complex(domain: impl Into<String>) -> AttrType {
        AttrType::Complex(domain.into())
    }

    /// `true` iff this is a complex attribute (directly or as a
    /// multi-valued attribute of complex elements).
    pub fn is_complex(&self) -> bool {
        match self {
            AttrType::Complex(_) => true,
            AttrType::Multi(inner) => inner.is_complex(),
            AttrType::Primitive(_) => false,
        }
    }

    /// The domain class name, if complex.
    pub fn domain(&self) -> Option<&str> {
        match self {
            AttrType::Complex(d) => Some(d),
            AttrType::Multi(inner) => inner.domain(),
            AttrType::Primitive(_) => None,
        }
    }
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrType::Primitive(p) => write!(f, "{p}"),
            AttrType::Complex(d) => write!(f, "ref<{d}>"),
            AttrType::Multi(inner) => write!(f, "set<{inner}>"),
        }
    }
}

/// One attribute definition: a name and a type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDef {
    name: String,
    ty: AttrType,
}

impl AttrDef {
    /// Creates an attribute definition.
    pub fn new(name: impl Into<String>, ty: AttrType) -> AttrDef {
        AttrDef {
            name: name.into(),
            ty,
        }
    }

    /// The attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute type.
    pub fn ty(&self) -> &AttrType {
        &self.ty
    }
}

/// A class definition: name, ordered attributes, and an optional key.
///
/// Built with a chainable constructor:
///
/// ```
/// use fedoq_store::{AttrType, ClassDef};
///
/// let student = ClassDef::new("Student")
///     .attr("s-no", AttrType::int())
///     .attr("name", AttrType::text())
///     .attr("advisor", AttrType::complex("Teacher"))
///     .key(["s-no"]);
/// assert_eq!(student.arity(), 3);
/// assert_eq!(student.attr_index("advisor"), Some(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassDef {
    name: String,
    attrs: Vec<AttrDef>,
    key: Vec<String>,
}

impl ClassDef {
    /// Creates an empty class definition with the given name.
    pub fn new(name: impl Into<String>) -> ClassDef {
        ClassDef {
            name: name.into(),
            attrs: Vec::new(),
            key: Vec::new(),
        }
    }

    /// Appends an attribute (chainable).
    pub fn attr(mut self, name: impl Into<String>, ty: AttrType) -> ClassDef {
        self.attrs.push(AttrDef::new(name, ty));
        self
    }

    /// Declares the key attributes identifying the real-world entity
    /// (chainable). Used by isomerism identification.
    pub fn key<I, S>(mut self, attrs: I) -> ClassDef
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.key = attrs.into_iter().map(Into::into).collect();
        self
    }

    /// The class name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// The attribute definitions in slot order.
    pub fn attrs(&self) -> &[AttrDef] {
        &self.attrs
    }

    /// The declared key attribute names (may be empty).
    pub fn key_attrs(&self) -> &[String] {
        &self.key
    }

    /// Slot index of the named attribute; `None` means the attribute is
    /// missing from this class (the paper's *missing attribute*).
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }

    /// The definition of the named attribute, if present.
    pub fn attr_def(&self, name: &str) -> Option<&AttrDef> {
        self.attrs.iter().find(|a| a.name == name)
    }

    /// `true` iff the class defines the named attribute.
    pub fn has_attr(&self, name: &str) -> bool {
        self.attr_index(name).is_some()
    }
}

/// The schema of one component database: an ordered set of classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentSchema {
    classes: Vec<ClassDef>,
    by_name: HashMap<String, ClassId>,
}

impl ComponentSchema {
    /// Validates and builds a schema from class definitions.
    ///
    /// # Errors
    ///
    /// Returns an error if class or attribute names are duplicated, a
    /// complex attribute references an undefined class, or a key names an
    /// attribute the class does not define.
    pub fn new(classes: Vec<ClassDef>) -> Result<ComponentSchema, StoreError> {
        let mut by_name = HashMap::with_capacity(classes.len());
        for (i, c) in classes.iter().enumerate() {
            if by_name
                .insert(c.name.clone(), ClassId::new(i as u32))
                .is_some()
            {
                return Err(StoreError::DuplicateClass(c.name.clone()));
            }
        }
        for c in &classes {
            let mut seen = HashMap::new();
            for a in &c.attrs {
                if seen.insert(a.name.as_str(), ()).is_some() {
                    return Err(StoreError::DuplicateAttr {
                        class: c.name.clone(),
                        attr: a.name.clone(),
                    });
                }
                if let Some(domain) = a.ty.domain() {
                    if !by_name.contains_key(domain) {
                        return Err(StoreError::UnknownDomainClass {
                            class: c.name.clone(),
                            attr: a.name.clone(),
                            domain: domain.to_owned(),
                        });
                    }
                }
            }
            for k in &c.key {
                if !c.has_attr(k) {
                    return Err(StoreError::BadKey {
                        class: c.name.clone(),
                        attr: k.clone(),
                    });
                }
            }
        }
        Ok(ComponentSchema { classes, by_name })
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// `true` iff the schema defines no classes.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// The class id for a name, if defined.
    pub fn class_id(&self, name: &str) -> Option<ClassId> {
        self.by_name.get(name).copied()
    }

    /// The definition of a class by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this schema.
    pub fn class(&self, id: ClassId) -> &ClassDef {
        &self.classes[id.index()]
    }

    /// The definition of a class by name, if defined.
    pub fn class_by_name(&self, name: &str) -> Option<&ClassDef> {
        self.class_id(name).map(|id| self.class(id))
    }

    /// Iterates over `(id, def)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, &ClassDef)> {
        self.classes
            .iter()
            .enumerate()
            .map(|(i, c)| (ClassId::new(i as u32), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn school() -> ComponentSchema {
        ComponentSchema::new(vec![
            ClassDef::new("Department").attr("name", AttrType::text()),
            ClassDef::new("Teacher")
                .attr("name", AttrType::text())
                .attr("department", AttrType::complex("Department")),
            ClassDef::new("Student")
                .attr("s-no", AttrType::int())
                .attr("name", AttrType::text())
                .attr("advisor", AttrType::complex("Teacher"))
                .key(["s-no"]),
        ])
        .unwrap()
    }

    #[test]
    fn lookup_by_name_and_id() {
        let s = school();
        let student = s.class_id("Student").unwrap();
        assert_eq!(s.class(student).name(), "Student");
        assert_eq!(s.class_by_name("Teacher").unwrap().arity(), 2);
        assert!(s.class_id("Course").is_none());
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn attr_index_reports_missing_attributes() {
        let s = school();
        let student = s.class_by_name("Student").unwrap();
        assert_eq!(student.attr_index("advisor"), Some(2));
        assert_eq!(student.attr_index("address"), None);
        assert!(!student.has_attr("address"));
    }

    #[test]
    fn complex_attribute_introspection() {
        let s = school();
        let advisor = s
            .class_by_name("Student")
            .unwrap()
            .attr_def("advisor")
            .unwrap();
        assert!(advisor.ty().is_complex());
        assert_eq!(advisor.ty().domain(), Some("Teacher"));
        let name = s
            .class_by_name("Student")
            .unwrap()
            .attr_def("name")
            .unwrap();
        assert!(!name.ty().is_complex());
        assert_eq!(name.ty().domain(), None);
    }

    #[test]
    fn multi_valued_attribute_type() {
        let t = AttrType::Multi(Box::new(AttrType::complex("Teacher")));
        assert!(t.is_complex());
        assert_eq!(t.domain(), Some("Teacher"));
        assert_eq!(t.to_string(), "set<ref<Teacher>>");
    }

    #[test]
    fn duplicate_class_rejected() {
        let err = ComponentSchema::new(vec![ClassDef::new("A"), ClassDef::new("A")]).unwrap_err();
        assert_eq!(err, StoreError::DuplicateClass("A".into()));
    }

    #[test]
    fn duplicate_attr_rejected() {
        let err = ComponentSchema::new(vec![ClassDef::new("A")
            .attr("x", AttrType::int())
            .attr("x", AttrType::text())])
        .unwrap_err();
        assert!(matches!(err, StoreError::DuplicateAttr { .. }));
    }

    #[test]
    fn unknown_domain_rejected() {
        let err =
            ComponentSchema::new(vec![ClassDef::new("A").attr("r", AttrType::complex("Nope"))])
                .unwrap_err();
        assert!(matches!(err, StoreError::UnknownDomainClass { .. }));
    }

    #[test]
    fn bad_key_rejected() {
        let err = ComponentSchema::new(vec![ClassDef::new("A")
            .attr("x", AttrType::int())
            .key(["y"])])
        .unwrap_err();
        assert!(matches!(err, StoreError::BadKey { .. }));
    }

    #[test]
    fn key_attrs_preserved() {
        let s = school();
        assert_eq!(s.class_by_name("Student").unwrap().key_attrs(), ["s-no"]);
        assert!(s.class_by_name("Teacher").unwrap().key_attrs().is_empty());
    }

    #[test]
    fn iter_yields_all_classes_in_order() {
        let s = school();
        let names: Vec<&str> = s.iter().map(|(_, c)| c.name()).collect();
        assert_eq!(names, ["Department", "Teacher", "Student"]);
    }

    #[test]
    fn display_of_types() {
        assert_eq!(AttrType::int().to_string(), "int");
        assert_eq!(AttrType::complex("X").to_string(), "ref<X>");
        assert_eq!(PrimitiveType::Bool.to_string(), "bool");
    }
}
