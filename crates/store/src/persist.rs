//! Persistence: a versioned binary format for component databases.
//!
//! Autonomous sites need their data to survive restarts; [`save_db`]
//! writes one [`ComponentDb`] — schema and extents, LOids preserved — and
//! [`load_db`] restores it exactly. The format is self-contained
//! little-endian binary with a magic/version header; loading validates
//! everything through the normal schema/type checks, so a corrupted or
//! hand-edited file cannot produce an inconsistent database.
//!
//! # Example
//!
//! ```
//! use fedoq_object::{DbId, Value};
//! use fedoq_store::{persist, AttrType, ClassDef, ComponentDb, ComponentSchema};
//!
//! let schema = ComponentSchema::new(vec![
//!     ClassDef::new("Student").attr("s-no", AttrType::int()).key(["s-no"]),
//! ])?;
//! let mut db = ComponentDb::new(DbId::new(0), "DB0", schema);
//! db.insert_named("Student", &[("s-no", Value::Int(804301))])?;
//!
//! let mut buffer = Vec::new();
//! persist::save_db(&db, &mut buffer)?;
//! let restored = persist::load_db(&mut buffer.as_slice())?;
//! assert_eq!(restored.object_count(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::db::ComponentDb;
use crate::error::StoreError;
use crate::schema::{AttrType, ClassDef, ComponentSchema, PrimitiveType};
use fedoq_object::{ClassId, DbId, GOid, LOid, Value};
use std::fmt;
use std::io::{self, Read, Write};

/// File magic: "FDQ" + format version 1.
const MAGIC: [u8; 4] = *b"FDQ1";

/// Maximum nesting depth of encoded attribute types and values. The wire
/// codec enforces the same style of fail-closed bound (FQ305): without it,
/// a crafted file of nested `Multi`/`List` tags drives unbounded recursion.
pub(crate) const MAX_DEPTH: u32 = 32;

/// Errors raised while saving or loading a database.
#[derive(Debug)]
#[non_exhaustive]
pub enum PersistError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The input does not start with the `FDQ1` magic.
    BadMagic,
    /// The input is structurally invalid (truncated, bad tag, bad UTF-8).
    Corrupt(String),
    /// The restored data failed schema validation.
    Store(StoreError),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o failure: {e}"),
            PersistError::BadMagic => f.write_str("not a FedOQ database file (bad magic)"),
            PersistError::Corrupt(msg) => write!(f, "corrupt database file: {msg}"),
            PersistError::Store(e) => write!(f, "restored data failed validation: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<StoreError> for PersistError {
    fn from(e: StoreError) -> Self {
        PersistError::Store(e)
    }
}

/// Writes `db` to `out`. A `&mut` reference works as the writer.
///
/// # Errors
///
/// Propagates I/O failures as [`PersistError::Io`].
pub fn save_db<W: Write>(db: &ComponentDb, out: &mut W) -> Result<(), PersistError> {
    out.write_all(&MAGIC)?;
    write_header(db, out)?;
    // Extents.
    for (class_id, _) in db.schema().iter() {
        let extent = db.extent(class_id);
        write_u32(out, extent.len() as u32)?;
        for object in extent.iter() {
            write_u64(out, object.loid().serial())?;
            for value in object.values() {
                write_value(out, value)?;
            }
        }
    }
    Ok(())
}

/// Reads a database written by [`save_db`]. A `&mut &[u8]` works as the
/// reader.
///
/// # Errors
///
/// [`PersistError::BadMagic`] for foreign input, [`PersistError::Corrupt`]
/// for malformed bytes, [`PersistError::Store`] if the restored data fails
/// validation.
pub fn load_db<R: Read>(input: &mut R) -> Result<ComponentDb, PersistError> {
    let mut magic = [0u8; 4];
    input.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let (mut db, arities) = read_header(input)?;
    let db_id = db.id();
    for (class_idx, &arity) in arities.iter().enumerate() {
        let class = ClassId::new(class_idx as u32);
        let count = read_u32(input)? as usize;
        for _ in 0..count {
            let serial = read_u64(input)?;
            let mut values = Vec::with_capacity(arity);
            for _ in 0..arity {
                values.push(read_value(input, 0)?);
            }
            db.restore(class, LOid::new(db_id, serial), values)?;
        }
    }
    Ok(db)
}

/// Writes the common header (site id, name, schema) shared by the flat
/// `FDQ1` and the paged `FQP1` formats (the magic itself is written by the
/// caller).
pub(crate) fn write_header<W: Write>(db: &ComponentDb, out: &mut W) -> Result<(), PersistError> {
    write_u16(out, db.id().raw())?;
    write_str(out, db.name())?;
    write_u32(out, db.schema().len() as u32)?;
    for (_, class) in db.schema().iter() {
        write_str(out, class.name())?;
        write_u32(out, class.arity() as u32)?;
        for attr in class.attrs() {
            write_str(out, attr.name())?;
            write_attr_type(out, attr.ty())?;
        }
        write_u32(out, class.key_attrs().len() as u32)?;
        for key in class.key_attrs() {
            write_str(out, key)?;
        }
    }
    Ok(())
}

/// Reads the header written by [`write_header`], returning an empty
/// database plus the per-class arities (needed to decode extent rows).
pub(crate) fn read_header<R: Read>(
    input: &mut R,
) -> Result<(ComponentDb, Vec<usize>), PersistError> {
    let db_id = DbId::new(read_u16(input)?);
    let name = read_str(input)?;
    let num_classes = read_u32(input)? as usize;
    if num_classes > 1 << 16 {
        return Err(PersistError::Corrupt("implausible class count".into()));
    }
    let mut class_defs = Vec::with_capacity(num_classes.min(1 << 10));
    let mut arities = Vec::with_capacity(num_classes.min(1 << 10));
    for _ in 0..num_classes {
        let class_name = read_str(input)?;
        let arity = read_u32(input)? as usize;
        if arity > 1 << 16 {
            return Err(PersistError::Corrupt("implausible arity".into()));
        }
        arities.push(arity);
        let mut def = ClassDef::new(class_name);
        for _ in 0..arity {
            let attr_name = read_str(input)?;
            let ty = read_attr_type(input, 0)?;
            def = def.attr(attr_name, ty);
        }
        let num_keys = read_u32(input)? as usize;
        if num_keys > arity {
            return Err(PersistError::Corrupt(
                "more key attributes than attributes".into(),
            ));
        }
        let mut keys = Vec::with_capacity(num_keys);
        for _ in 0..num_keys {
            keys.push(read_str(input)?);
        }
        class_defs.push(def.key(keys));
    }
    let schema = ComponentSchema::new(class_defs)?;
    Ok((ComponentDb::new(db_id, name, schema), arities))
}

// --- primitives ---------------------------------------------------------

pub(crate) fn write_u16<W: Write>(out: &mut W, v: u16) -> io::Result<()> {
    out.write_all(&v.to_le_bytes())
}

pub(crate) fn write_u32<W: Write>(out: &mut W, v: u32) -> io::Result<()> {
    out.write_all(&v.to_le_bytes())
}

pub(crate) fn write_u64<W: Write>(out: &mut W, v: u64) -> io::Result<()> {
    out.write_all(&v.to_le_bytes())
}

pub(crate) fn write_str<W: Write>(out: &mut W, s: &str) -> io::Result<()> {
    write_u32(out, s.len() as u32)?;
    out.write_all(s.as_bytes())
}

pub(crate) fn read_u16<R: Read>(input: &mut R) -> Result<u16, PersistError> {
    let mut buf = [0u8; 2];
    input.read_exact(&mut buf)?;
    Ok(u16::from_le_bytes(buf))
}

pub(crate) fn read_u32<R: Read>(input: &mut R) -> Result<u32, PersistError> {
    let mut buf = [0u8; 4];
    input.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

pub(crate) fn read_u64<R: Read>(input: &mut R) -> Result<u64, PersistError> {
    let mut buf = [0u8; 8];
    input.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

pub(crate) fn read_str<R: Read>(input: &mut R) -> Result<String, PersistError> {
    let len = read_u32(input)? as u64;
    if len > 1 << 24 {
        return Err(PersistError::Corrupt("implausible string length".into()));
    }
    // Never pre-allocate from the untrusted length: `take` + `read_to_end`
    // grows the buffer only as bytes actually arrive, so a lying prefix on
    // truncated input errors out instead of reserving gigabytes.
    let mut buf = Vec::new();
    input.take(len).read_to_end(&mut buf)?;
    if buf.len() as u64 != len {
        return Err(PersistError::Corrupt("truncated string".into()));
    }
    String::from_utf8(buf).map_err(|_| PersistError::Corrupt("invalid UTF-8".into()))
}

fn check_depth(depth: u32) -> Result<(), PersistError> {
    if depth >= MAX_DEPTH {
        return Err(PersistError::Corrupt(format!(
            "nesting deeper than {MAX_DEPTH} levels"
        )));
    }
    Ok(())
}

fn write_attr_type<W: Write>(out: &mut W, ty: &AttrType) -> io::Result<()> {
    match ty {
        AttrType::Primitive(PrimitiveType::Int) => out.write_all(&[0]),
        AttrType::Primitive(PrimitiveType::Float) => out.write_all(&[1]),
        AttrType::Primitive(PrimitiveType::Text) => out.write_all(&[2]),
        AttrType::Primitive(PrimitiveType::Bool) => out.write_all(&[3]),
        AttrType::Complex(domain) => {
            out.write_all(&[4])?;
            write_str(out, domain)
        }
        AttrType::Multi(inner) => {
            out.write_all(&[5])?;
            write_attr_type(out, inner)
        }
    }
}

fn read_attr_type<R: Read>(input: &mut R, depth: u32) -> Result<AttrType, PersistError> {
    check_depth(depth)?;
    let mut tag = [0u8; 1];
    input.read_exact(&mut tag)?;
    Ok(match tag[0] {
        0 => AttrType::int(),
        1 => AttrType::float(),
        2 => AttrType::text(),
        3 => AttrType::bool(),
        4 => AttrType::Complex(read_str(input)?),
        5 => AttrType::Multi(Box::new(read_attr_type(input, depth + 1)?)),
        other => return Err(PersistError::Corrupt(format!("unknown type tag {other}"))),
    })
}

pub(crate) fn write_value<W: Write>(out: &mut W, value: &Value) -> io::Result<()> {
    match value {
        Value::Null => out.write_all(&[0]),
        Value::Int(v) => {
            out.write_all(&[1])?;
            out.write_all(&v.to_le_bytes())
        }
        Value::Float(v) => {
            out.write_all(&[2])?;
            out.write_all(&v.to_bits().to_le_bytes())
        }
        Value::Text(s) => {
            out.write_all(&[3])?;
            write_str(out, s)
        }
        Value::Bool(v) => out.write_all(&[4, u8::from(*v)]),
        Value::Ref(l) => {
            out.write_all(&[5])?;
            write_u16(out, l.db().raw())?;
            write_u64(out, l.serial())
        }
        Value::GRef(g) => {
            out.write_all(&[6])?;
            write_u64(out, g.serial())
        }
        Value::List(items) => {
            out.write_all(&[7])?;
            write_u32(out, items.len() as u32)?;
            for item in items {
                write_value(out, item)?;
            }
            Ok(())
        }
    }
}

pub(crate) fn read_value<R: Read>(input: &mut R, depth: u32) -> Result<Value, PersistError> {
    check_depth(depth)?;
    let mut tag = [0u8; 1];
    input.read_exact(&mut tag)?;
    Ok(match tag[0] {
        0 => Value::Null,
        1 => {
            let mut buf = [0u8; 8];
            input.read_exact(&mut buf)?;
            Value::Int(i64::from_le_bytes(buf))
        }
        2 => {
            let mut buf = [0u8; 8];
            input.read_exact(&mut buf)?;
            Value::Float(f64::from_bits(u64::from_le_bytes(buf)))
        }
        3 => Value::Text(read_str(input)?),
        4 => {
            let mut buf = [0u8; 1];
            input.read_exact(&mut buf)?;
            Value::Bool(buf[0] != 0)
        }
        5 => {
            let db = DbId::new(read_u16(input)?);
            Value::Ref(LOid::new(db, read_u64(input)?))
        }
        6 => Value::GRef(GOid::new(read_u64(input)?)),
        7 => {
            let len = read_u32(input)? as usize;
            if len > 1 << 16 {
                return Err(PersistError::Corrupt("implausible list length".into()));
            }
            // Bounded by actual input, not the untrusted count.
            let mut items = Vec::new();
            for _ in 0..len {
                items.push(read_value(input, depth + 1)?);
            }
            Value::List(items)
        }
        other => return Err(PersistError::Corrupt(format!("unknown value tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> ComponentDb {
        let schema = ComponentSchema::new(vec![
            ClassDef::new("Topic").attr("name", AttrType::text()),
            ClassDef::new("Teacher")
                .attr("name", AttrType::text())
                .attr("salary", AttrType::float())
                .attr("tenured", AttrType::bool())
                .attr(
                    "topics",
                    AttrType::Multi(Box::new(AttrType::complex("Topic"))),
                )
                .key(["name"]),
        ])
        .unwrap();
        let mut db = ComponentDb::new(DbId::new(2), "Campus", schema);
        let a = db
            .insert_named("Topic", &[("name", Value::text("db"))])
            .unwrap();
        let b = db
            .insert_named("Topic", &[("name", Value::text("net"))])
            .unwrap();
        db.insert_named(
            "Teacher",
            &[
                ("name", Value::text("Kelly")),
                ("salary", Value::Float(92.5)),
                ("tenured", Value::Bool(true)),
                ("topics", Value::List(vec![Value::Ref(a), Value::Ref(b)])),
            ],
        )
        .unwrap();
        db.insert_named("Teacher", &[("name", Value::text("Haley"))])
            .unwrap(); // nulls
        db
    }

    fn round_trip(db: &ComponentDb) -> ComponentDb {
        let mut buffer = Vec::new();
        save_db(db, &mut buffer).unwrap();
        load_db(&mut buffer.as_slice()).unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let db = sample_db();
        let restored = round_trip(&db);
        assert_eq!(restored.id(), db.id());
        assert_eq!(restored.name(), db.name());
        assert_eq!(restored.schema(), db.schema());
        assert_eq!(restored.object_count(), db.object_count());
        for (class_id, _) in db.schema().iter() {
            for object in db.extent(class_id).iter() {
                assert_eq!(restored.object(object.loid()), Some(object));
            }
        }
        restored.validate_refs().unwrap();
    }

    #[test]
    fn restored_db_keeps_allocating_fresh_loids() {
        let db = sample_db();
        let max_serial = db
            .extent_by_name("Teacher")
            .unwrap()
            .loids()
            .chain(db.extent_by_name("Topic").unwrap().loids())
            .map(LOid::serial)
            .max()
            .unwrap();
        let mut restored = round_trip(&db);
        let fresh = restored
            .insert_named("Topic", &[("name", Value::text("ai"))])
            .unwrap();
        assert!(fresh.serial() > max_serial);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = load_db(&mut &b"NOPE...."[..]).unwrap_err();
        assert!(matches!(err, PersistError::BadMagic));
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn truncated_input_is_an_io_error() {
        let db = sample_db();
        let mut buffer = Vec::new();
        save_db(&db, &mut buffer).unwrap();
        buffer.truncate(buffer.len() / 2);
        let err = load_db(&mut buffer.as_slice()).unwrap_err();
        assert!(matches!(
            err,
            PersistError::Io(_) | PersistError::Corrupt(_)
        ));
    }

    #[test]
    fn corrupt_value_tag_is_detected() {
        let db = sample_db();
        let mut buffer = Vec::new();
        save_db(&db, &mut buffer).unwrap();
        // Smash the final byte region where values live.
        let len = buffer.len();
        buffer[len - 1] = 0xEE;
        let result = load_db(&mut buffer.as_slice());
        assert!(result.is_err());
    }

    #[test]
    fn empty_database_round_trips() {
        let schema =
            ComponentSchema::new(vec![ClassDef::new("Empty").attr("x", AttrType::int())]).unwrap();
        let db = ComponentDb::new(DbId::new(0), "Nil", schema);
        let restored = round_trip(&db);
        assert_eq!(restored.object_count(), 0);
        assert_eq!(restored.schema().len(), 1);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_value() -> impl Strategy<Value = Value> {
            prop_oneof![
                Just(Value::Null),
                any::<i64>().prop_map(Value::Int),
                any::<f64>()
                    .prop_filter("finite", |f| f.is_finite())
                    .prop_map(Value::Float),
                "[ -~]{0,16}".prop_map(Value::Text),
                any::<bool>().prop_map(Value::Bool),
            ]
        }

        proptest! {
            /// Any database of scalar rows survives a save/load round trip
            /// bit-for-bit.
            #[test]
            fn random_scalar_databases_round_trip(
                rows in proptest::collection::vec(
                    (arb_value(), arb_value()), 0..20),
                db_index in 0u16..8,
            ) {
                let schema = ComponentSchema::new(vec![ClassDef::new("R")
                    .attr("a", AttrType::int())
                    .attr("b", AttrType::text())])
                .unwrap();
                let mut db = ComponentDb::new(DbId::new(db_index), "R", schema);
                for (a, b) in rows {
                    // Coerce to the declared kinds; nulls always fit.
                    let a = match a {
                        Value::Int(_) | Value::Null => a,
                        other => Value::Int(other.to_string().len() as i64),
                    };
                    let b = match b {
                        Value::Text(_) | Value::Null => b,
                        other => Value::Text(other.to_string()),
                    };
                    db.insert_named("R", &[("a", a), ("b", b)]).unwrap();
                }
                let restored = round_trip(&db);
                prop_assert_eq!(restored.object_count(), db.object_count());
                for object in db.extent_by_name("R").unwrap().iter() {
                    prop_assert_eq!(restored.object(object.loid()), Some(object));
                }
            }

            /// Flipping any single byte of the payload never panics the
            /// loader: it either errors or yields some database.
            #[test]
            fn corrupted_bytes_never_panic(flip in 4usize..200, bit in 0u8..8) {
                let db = sample_db();
                let mut buffer = Vec::new();
                save_db(&db, &mut buffer).unwrap();
                if flip < buffer.len() {
                    buffer[flip] ^= 1 << bit;
                }
                let _ = load_db(&mut buffer.as_slice());
            }

            /// A lying length prefix (string or list) errors out instead of
            /// allocating what it claims: decoding is bounded by the bytes
            /// that actually arrive, never by the untrusted prefix.
            #[test]
            fn corrupt_lengths_error_instead_of_allocating(
                claimed in 1u32 << 20..u32::MAX,
                tail in proptest::collection::vec(any::<u8>(), 0..64),
            ) {
                // Text value whose declared length dwarfs the input.
                let mut buf = vec![3u8];
                buf.extend_from_slice(&claimed.to_le_bytes());
                buf.extend_from_slice(&tail);
                prop_assert!(read_value(&mut buf.as_slice(), 0).is_err());
                // List value claiming billions of elements.
                let mut buf = vec![7u8];
                buf.extend_from_slice(&claimed.to_le_bytes());
                buf.extend_from_slice(&tail);
                prop_assert!(read_value(&mut buf.as_slice(), 0).is_err());
            }

            /// Nesting deeper than MAX_DEPTH is rejected, not recursed into:
            /// a stream of list tags cannot blow the stack.
            #[test]
            fn deep_nesting_is_capped(extra in 0u32..64) {
                let depth = MAX_DEPTH + extra;
                let mut buf = Vec::new();
                for _ in 0..depth {
                    buf.push(7u8); // list of...
                    buf.extend_from_slice(&1u32.to_le_bytes()); // ...one element
                }
                buf.push(0u8); // innermost: Null
                let err = read_value(&mut buf.as_slice(), 0).unwrap_err();
                prop_assert!(err.to_string().contains("nesting"));
            }
        }
    }

    #[test]
    fn error_display_and_source() {
        let e = PersistError::Corrupt("oops".into());
        assert!(e.to_string().contains("oops"));
        assert!(std::error::Error::source(&e).is_none());
        let e = PersistError::from(io::Error::other("disk"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
