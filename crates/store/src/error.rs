//! Error type for the store substrate.

use fedoq_object::LOid;
use std::fmt;

/// Errors raised by schema construction, object insertion, and evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// A class name appears twice in a component schema.
    DuplicateClass(String),
    /// An attribute name appears twice in a class definition.
    DuplicateAttr { class: String, attr: String },
    /// A complex attribute's domain class is not defined in the schema.
    UnknownDomainClass {
        class: String,
        attr: String,
        domain: String,
    },
    /// A class name was not found in the schema.
    UnknownClass(String),
    /// An attribute name was not found in a class. This is exactly the
    /// paper's *missing attribute* situation when raised during path
    /// compilation.
    MissingAttribute { class: String, attr: String },
    /// A path expression stepped through a primitive attribute.
    NotComplex { class: String, attr: String },
    /// An inserted object's value vector length differs from the class arity.
    ArityMismatch {
        class: String,
        expected: usize,
        got: usize,
    },
    /// A referenced object does not exist in its extent.
    DanglingRef(LOid),
    /// An object was inserted with a value of the wrong kind.
    TypeMismatch { class: String, attr: String },
    /// A key declared on a class names an attribute it does not have.
    BadKey { class: String, attr: String },
    /// An index was requested on a non-indexable (float/complex) attribute.
    NotIndexable { class: String, attr: String },
    /// An index probe ran against a database that has been mutated since
    /// the index was built; the index contents can no longer be trusted.
    StaleIndex {
        /// The database generation the index was built under.
        built_at: u64,
        /// The database generation at probe time.
        now: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::DuplicateClass(c) => write!(f, "duplicate class {c:?} in schema"),
            StoreError::DuplicateAttr { class, attr } => {
                write!(f, "duplicate attribute {attr:?} in class {class:?}")
            }
            StoreError::UnknownDomainClass {
                class,
                attr,
                domain,
            } => write!(
                f,
                "complex attribute {class}.{attr} references undefined class {domain:?}"
            ),
            StoreError::UnknownClass(c) => write!(f, "unknown class {c:?}"),
            StoreError::MissingAttribute { class, attr } => {
                write!(
                    f,
                    "class {class:?} has no attribute {attr:?} (missing attribute)"
                )
            }
            StoreError::NotComplex { class, attr } => {
                write!(
                    f,
                    "attribute {class}.{attr} is primitive and cannot be dereferenced"
                )
            }
            StoreError::ArityMismatch {
                class,
                expected,
                got,
            } => write!(
                f,
                "class {class:?} expects {expected} attribute values, got {got}"
            ),
            StoreError::DanglingRef(l) => write!(f, "reference to nonexistent object {l}"),
            StoreError::TypeMismatch { class, attr } => {
                write!(f, "value for {class}.{attr} has the wrong kind")
            }
            StoreError::BadKey { class, attr } => {
                write!(
                    f,
                    "key attribute {attr:?} is not defined in class {class:?}"
                )
            }
            StoreError::NotIndexable { class, attr } => {
                write!(f, "attribute {class}.{attr} cannot be indexed")
            }
            StoreError::StaleIndex { built_at, now } => {
                write!(
                    f,
                    "stale index: built at generation {built_at}, database is at generation {now}"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;
    use fedoq_object::DbId;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = StoreError::MissingAttribute {
            class: "Student".into(),
            attr: "address".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("Student") && msg.contains("address"));
        assert!(msg.contains("missing attribute"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        takes_err(StoreError::UnknownClass("X".into()));
    }

    #[test]
    fn dangling_ref_displays_loid() {
        let e = StoreError::DanglingRef(LOid::new(DbId::new(1), 9));
        assert!(e.to_string().contains("o9@DB1"));
    }
}
