//! Local evaluation: compiled path expressions and predicates.
//!
//! Compilation resolves a dotted [`Path`] against one component database's
//! schema, failing with [`StoreError::MissingAttribute`] when a step names
//! an attribute the local class does not define — this is precisely the
//! *static* unsolvability test the query decomposer uses to strip
//! predicates on missing attributes from local queries.
//!
//! Evaluation walks the compiled path through object references, yielding
//! [`Value::Null`] as soon as a null blocks the walk (the *dynamic* source
//! of missing data), and records every object fetched and every comparison
//! made in an [`EvalCounter`] so the simulation can charge for the work.

use crate::db::ComponentDb;
use crate::error::StoreError;
use fedoq_object::{ClassId, CmpOp, LOid, Object, Path, Truth, Value};
use std::fmt;

/// Tally of billable work done by local evaluation.
///
/// The simulation converts these into time: comparisons at `T_c` each, and
/// fetched objects into disk bytes at `T_d` per byte.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalCounter {
    /// Number of value comparisons performed.
    pub comparisons: u64,
    /// Number of objects dereferenced/fetched from extents.
    pub objects_fetched: u64,
}

impl EvalCounter {
    /// A zeroed counter.
    pub fn new() -> EvalCounter {
        EvalCounter::default()
    }

    /// Adds another counter's tallies into this one.
    pub fn absorb(&mut self, other: EvalCounter) {
        self.comparisons += other.comparisons;
        self.objects_fetched += other.objects_fetched;
    }
}

impl fmt::Display for EvalCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cmp, {} fetch",
            self.comparisons, self.objects_fetched
        )
    }
}

/// One resolved step of a compiled path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PathStep {
    /// Class the step starts from.
    class: ClassId,
    /// Attribute slot read in that class.
    attr_idx: usize,
    /// Domain class, for all but the final (primitive) step.
    domain: Option<ClassId>,
}

/// A path expression resolved against one component database's schema.
///
/// # Example
///
/// ```
/// use fedoq_object::{DbId, Path, Value};
/// use fedoq_store::{AttrType, ClassDef, CompiledPath, ComponentDb, ComponentSchema, EvalCounter};
///
/// let schema = ComponentSchema::new(vec![
///     ClassDef::new("Department").attr("name", AttrType::text()),
///     ClassDef::new("Teacher")
///         .attr("name", AttrType::text())
///         .attr("department", AttrType::complex("Department")),
/// ])?;
/// let mut db = ComponentDb::new(DbId::new(0), "DB0", schema);
/// let cs = db.insert_named("Department", &[("name", Value::text("CS"))])?;
/// let t = db.insert_named("Teacher", &[("name", Value::text("Jeffery")),
///                                      ("department", Value::Ref(cs))])?;
///
/// let teacher = db.schema().class_id("Teacher").unwrap();
/// let path: Path = "department.name".parse().unwrap();
/// let compiled = CompiledPath::compile(&db, teacher, &path)?;
/// let mut counter = EvalCounter::new();
/// let walk = compiled.walk(&db, db.object(t).unwrap(), &mut counter);
/// assert_eq!(walk.value, Value::text("CS"));
/// assert_eq!(walk.visited, vec![cs]);
/// # Ok::<(), fedoq_store::StoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledPath {
    path: Path,
    root: ClassId,
    steps: Vec<PathStep>,
}

/// The outcome of walking a compiled path from one object.
#[derive(Debug, Clone, PartialEq)]
pub struct PathWalk {
    /// The value reached, or [`Value::Null`] if a null blocked the walk
    /// (or the terminal attribute itself was null).
    pub value: Value,
    /// LOids of the intermediate (branch-class) objects dereferenced, in
    /// walk order. These are the objects that become *unsolved items* when
    /// the value is missing.
    pub visited: Vec<LOid>,
}

impl CompiledPath {
    /// Resolves `path` starting from `root` in `db`'s schema.
    ///
    /// # Errors
    ///
    /// * [`StoreError::MissingAttribute`] — a step names an attribute the
    ///   class does not define (the missing-attribute conflict);
    /// * [`StoreError::NotComplex`] — a non-final step names a primitive
    ///   attribute;
    /// * [`StoreError::UnknownClass`] — a complex attribute's domain class
    ///   is absent (cannot happen for validated schemas).
    pub fn compile(
        db: &ComponentDb,
        root: ClassId,
        path: &Path,
    ) -> Result<CompiledPath, StoreError> {
        let schema = db.schema();
        let mut steps = Vec::with_capacity(path.len());
        let mut class = root;
        let n = path.len();
        for (i, attr) in path.steps().enumerate() {
            let def = schema.class(class);
            let idx = def
                .attr_index(attr)
                .ok_or_else(|| StoreError::MissingAttribute {
                    class: def.name().to_owned(),
                    attr: attr.to_owned(),
                })?;
            let attr_def = &def.attrs()[idx];
            let domain = if i + 1 < n {
                let domain_name = attr_def
                    .ty()
                    .domain()
                    .ok_or_else(|| StoreError::NotComplex {
                        class: def.name().to_owned(),
                        attr: attr.to_owned(),
                    })?;
                let domain_id = schema
                    .class_id(domain_name)
                    .ok_or_else(|| StoreError::UnknownClass(domain_name.to_owned()))?;
                Some(domain_id)
            } else {
                None
            };
            steps.push(PathStep {
                class,
                attr_idx: idx,
                domain,
            });
            if let Some(d) = domain {
                class = d;
            }
        }
        Ok(CompiledPath {
            path: path.clone(),
            root,
            steps,
        })
    }

    /// The source path expression.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The range class this path was compiled against.
    pub fn root(&self) -> ClassId {
        self.root
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `false` — compiled paths are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The class each step starts from; `classes()[0]` is the root.
    pub fn step_class(&self, i: usize) -> Option<ClassId> {
        self.steps.get(i).map(|s| s.class)
    }

    /// The local attribute slot each step reads.
    pub fn step_attr(&self, i: usize) -> Option<usize> {
        self.steps.get(i).map(|s| s.attr_idx)
    }

    /// Walks the path from `object`, fetching referenced objects from `db`.
    ///
    /// Each dereference increments `counter.objects_fetched`. A dangling
    /// reference is treated as null (autonomous sites may be mutually
    /// inconsistent; a missing target is missing data).
    pub fn walk(&self, db: &ComponentDb, object: &Object, counter: &mut EvalCounter) -> PathWalk {
        debug_assert_eq!(object.class(), self.root);
        let mut visited = Vec::new();
        let value = self.walk_steps(db, object, 0, &mut visited, counter);
        PathWalk { value, visited }
    }

    fn walk_steps(
        &self,
        db: &ComponentDb,
        object: &Object,
        step_idx: usize,
        visited: &mut Vec<LOid>,
        counter: &mut EvalCounter,
    ) -> Value {
        let step = &self.steps[step_idx];
        let value = object.value(step.attr_idx);
        if step.domain.is_none() {
            return value.clone();
        }
        match value {
            Value::Null => Value::Null,
            Value::Ref(loid) => match db.object(*loid) {
                Some(next) => {
                    counter.objects_fetched += 1;
                    visited.push(*loid);
                    self.walk_steps(db, next, step_idx + 1, visited, counter)
                }
                None => Value::Null,
            },
            Value::List(items) => {
                // Multi-valued complex attribute: walk each element and
                // collect the results (existential comparison semantics).
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    match item {
                        Value::Ref(loid) => match db.object(*loid) {
                            Some(next) => {
                                counter.objects_fetched += 1;
                                visited.push(*loid);
                                out.push(self.walk_steps(db, next, step_idx + 1, visited, counter));
                            }
                            None => out.push(Value::Null),
                        },
                        _ => out.push(Value::Null),
                    }
                }
                Value::List(out)
            }
            // A GRef or primitive where a local ref was expected cannot be
            // followed inside this site: treat as missing.
            _ => Value::Null,
        }
    }
}

/// A predicate `path op literal` compiled against one component database.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPredicate {
    path: CompiledPath,
    op: CmpOp,
    literal: Value,
}

impl CompiledPredicate {
    /// Compiles `path op literal` against `root` in `db`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CompiledPath::compile`].
    pub fn compile(
        db: &ComponentDb,
        root: ClassId,
        path: &Path,
        op: CmpOp,
        literal: Value,
    ) -> Result<CompiledPredicate, StoreError> {
        Ok(CompiledPredicate {
            path: CompiledPath::compile(db, root, path)?,
            op,
            literal,
        })
    }

    /// The compiled path.
    pub fn compiled_path(&self) -> &CompiledPath {
        &self.path
    }

    /// The comparison operator.
    pub fn op(&self) -> CmpOp {
        self.op
    }

    /// The literal compared against.
    pub fn literal(&self) -> &Value {
        &self.literal
    }

    /// Evaluates the predicate on `object`, charging one comparison plus
    /// the walk's fetches to `counter`. Returns the three-valued verdict
    /// and the branch objects visited.
    pub fn eval(
        &self,
        db: &ComponentDb,
        object: &Object,
        counter: &mut EvalCounter,
    ) -> (Truth, PathWalk) {
        let walk = self.path.walk(db, object, counter);
        counter.comparisons += 1;
        let verdict = walk.value.compare(self.op, &self.literal);
        (verdict, walk)
    }
}

impl fmt::Display for CompiledPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.path.path(), self.op, self.literal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, ClassDef, ComponentSchema};
    use fedoq_object::DbId;

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    fn school_db() -> Result<(ComponentDb, LOid, LOid, LOid), StoreError> {
        let schema = ComponentSchema::new(vec![
            ClassDef::new("Department").attr("name", AttrType::text()),
            ClassDef::new("Teacher")
                .attr("name", AttrType::text())
                .attr("department", AttrType::complex("Department")),
            ClassDef::new("Student")
                .attr("name", AttrType::text())
                .attr("age", AttrType::int())
                .attr("advisor", AttrType::complex("Teacher")),
        ])?;
        let mut db = ComponentDb::new(DbId::new(1), "DB1", schema);
        let cs = db.insert_named("Department", &[("name", Value::text("CS"))])?;
        let t1 = db.insert_named(
            "Teacher",
            &[
                ("name", Value::text("Jeffery")),
                ("department", Value::Ref(cs)),
            ],
        )?;
        let s1 = db.insert_named(
            "Student",
            &[
                ("name", Value::text("John")),
                ("age", Value::Int(31)),
                ("advisor", Value::Ref(t1)),
            ],
        )?;
        Ok((db, cs, t1, s1))
    }

    fn class_id(db: &ComponentDb, name: &str) -> Result<ClassId, String> {
        db.schema()
            .class_id(name)
            .ok_or_else(|| format!("no class {name}"))
    }

    fn object(db: &ComponentDb, loid: LOid) -> Result<&Object, String> {
        db.object(loid).ok_or_else(|| format!("no object {loid}"))
    }

    #[test]
    fn compile_resolves_nested_path() -> TestResult {
        let (db, ..) = school_db()?;
        let student = class_id(&db, "Student")?;
        let p = CompiledPath::compile(&db, student, &"advisor.department.name".parse()?)?;
        assert_eq!(p.len(), 3);
        assert_eq!(p.step_class(0), db.schema().class_id("Student"));
        assert_eq!(p.step_class(1), db.schema().class_id("Teacher"));
        assert_eq!(p.step_class(2), db.schema().class_id("Department"));
        Ok(())
    }

    #[test]
    fn compile_reports_missing_attribute() -> TestResult {
        let (db, ..) = school_db()?;
        let student = class_id(&db, "Student")?;
        let err = CompiledPath::compile(&db, student, &"address.city".parse()?);
        assert_eq!(
            err,
            Err(StoreError::MissingAttribute {
                class: "Student".into(),
                attr: "address".into()
            })
        );
        // Missing attribute deeper along the path is also found.
        let err = CompiledPath::compile(&db, student, &"advisor.speciality".parse()?);
        assert_eq!(
            err,
            Err(StoreError::MissingAttribute {
                class: "Teacher".into(),
                attr: "speciality".into()
            })
        );
        Ok(())
    }

    #[test]
    fn compile_rejects_stepping_through_primitive() -> TestResult {
        let (db, ..) = school_db()?;
        let student = class_id(&db, "Student")?;
        let err = CompiledPath::compile(&db, student, &"age.value".parse()?);
        assert!(matches!(err, Err(StoreError::NotComplex { .. })));
        Ok(())
    }

    #[test]
    fn walk_follows_references_and_counts_fetches() -> TestResult {
        let (db, cs, t1, s1) = school_db()?;
        let student = class_id(&db, "Student")?;
        let p = CompiledPath::compile(&db, student, &"advisor.department.name".parse()?)?;
        let mut counter = EvalCounter::new();
        let walk = p.walk(&db, object(&db, s1)?, &mut counter);
        assert_eq!(walk.value, Value::text("CS"));
        assert_eq!(walk.visited, vec![t1, cs]);
        assert_eq!(counter.objects_fetched, 2);
        Ok(())
    }

    #[test]
    fn walk_blocked_by_null_yields_null() -> TestResult {
        let (mut db, _, t1, s1) = school_db()?;
        db.object_mut(t1)
            .ok_or("teacher missing")?
            .set(1, Value::Null); // department := null
        let student = class_id(&db, "Student")?;
        let p = CompiledPath::compile(&db, student, &"advisor.department.name".parse()?)?;
        let mut counter = EvalCounter::new();
        let walk = p.walk(&db, object(&db, s1)?, &mut counter);
        assert!(walk.value.is_null());
        assert_eq!(walk.visited, vec![t1]); // got as far as the teacher
        Ok(())
    }

    #[test]
    fn walk_treats_dangling_ref_as_null() -> TestResult {
        let (mut db, _, t1, s1) = school_db()?;
        let ghost = LOid::new(DbId::new(1), 999);
        db.object_mut(t1)
            .ok_or("teacher missing")?
            .set(1, Value::Ref(ghost));
        let student = class_id(&db, "Student")?;
        let p = CompiledPath::compile(&db, student, &"advisor.department.name".parse()?)?;
        let mut counter = EvalCounter::new();
        let walk = p.walk(&db, object(&db, s1)?, &mut counter);
        assert!(walk.value.is_null());
        Ok(())
    }

    #[test]
    fn predicate_eval_verdicts() -> TestResult {
        let (db, _, _, s1) = school_db()?;
        let student = class_id(&db, "Student")?;
        let mut counter = EvalCounter::new();

        let dept_cs = CompiledPredicate::compile(
            &db,
            student,
            &"advisor.department.name".parse()?,
            CmpOp::Eq,
            Value::text("CS"),
        )?;
        let (verdict, _) = dept_cs.eval(&db, object(&db, s1)?, &mut counter);
        assert_eq!(verdict, Truth::True);

        let age_lt =
            CompiledPredicate::compile(&db, student, &"age".parse()?, CmpOp::Lt, Value::Int(30))?;
        let (verdict, _) = age_lt.eval(&db, object(&db, s1)?, &mut counter);
        assert_eq!(verdict, Truth::False);
        assert_eq!(counter.comparisons, 2);
        Ok(())
    }

    #[test]
    fn predicate_on_null_is_unknown() -> TestResult {
        let (mut db, _, _, s1) = school_db()?;
        db.object_mut(s1)
            .ok_or("student missing")?
            .set(1, Value::Null); // age := null
        let student = class_id(&db, "Student")?;
        let pred =
            CompiledPredicate::compile(&db, student, &"age".parse()?, CmpOp::Lt, Value::Int(30))?;
        let mut counter = EvalCounter::new();
        let (verdict, walk) = pred.eval(&db, object(&db, s1)?, &mut counter);
        assert_eq!(verdict, Truth::Unknown);
        assert!(walk.visited.is_empty());
        Ok(())
    }

    #[test]
    fn multi_valued_complex_walk() -> TestResult {
        let schema = ComponentSchema::new(vec![
            ClassDef::new("Topic").attr("name", AttrType::text()),
            ClassDef::new("Teacher").attr(
                "topics",
                AttrType::Multi(Box::new(AttrType::complex("Topic"))),
            ),
        ])?;
        let mut db = ComponentDb::new(DbId::new(0), "DB0", schema);
        let a = db.insert_named("Topic", &[("name", Value::text("db"))])?;
        let b = db.insert_named("Topic", &[("name", Value::text("net"))])?;
        let t = db.insert_named(
            "Teacher",
            &[("topics", Value::List(vec![Value::Ref(a), Value::Ref(b)]))],
        )?;
        let teacher = class_id(&db, "Teacher")?;
        let pred = CompiledPredicate::compile(
            &db,
            teacher,
            &"topics.name".parse()?,
            CmpOp::Eq,
            Value::text("net"),
        )?;
        let mut counter = EvalCounter::new();
        let (verdict, walk) = pred.eval(&db, object(&db, t)?, &mut counter);
        assert_eq!(verdict, Truth::True);
        assert_eq!(walk.visited, vec![a, b]);
        Ok(())
    }

    #[test]
    fn counter_absorb_accumulates() {
        let mut a = EvalCounter {
            comparisons: 2,
            objects_fetched: 1,
        };
        a.absorb(EvalCounter {
            comparisons: 3,
            objects_fetched: 4,
        });
        assert_eq!(
            a,
            EvalCounter {
                comparisons: 5,
                objects_fetched: 5
            }
        );
        assert_eq!(a.to_string(), "5 cmp, 5 fetch");
    }
}
