//! Class extents: the stored instances of one class.

use fedoq_object::{ClassId, LOid, Object};
use std::collections::HashMap;

/// The extent of one class inside a component database.
///
/// Objects are kept in insertion order (scan order) with an LOid hash map
/// for direct fetches — the access path used when a site receives a list
/// of assistant-object LOids to check.
#[derive(Debug, Clone, Default)]
pub struct Extent {
    class: ClassId,
    objects: Vec<Object>,
    by_loid: HashMap<LOid, usize>,
}

impl Extent {
    /// Creates an empty extent for `class`.
    pub fn new(class: ClassId) -> Extent {
        Extent {
            class,
            objects: Vec::new(),
            by_loid: HashMap::new(),
        }
    }

    /// The class this extent stores.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` iff the extent holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Appends an object. Returns the previous object with the same LOid,
    /// if one existed (it is replaced).
    pub fn insert(&mut self, object: Object) -> Option<Object> {
        debug_assert_eq!(object.class(), self.class);
        match self.by_loid.get(&object.loid()) {
            Some(&slot) => Some(std::mem::replace(&mut self.objects[slot], object)),
            None => {
                self.by_loid.insert(object.loid(), self.objects.len());
                self.objects.push(object);
                None
            }
        }
    }

    /// Removes the object with `loid`, preserving the scan order of the
    /// remaining objects. Returns the removed object, if it existed.
    ///
    /// Costs O(tail): only the objects *after* the removed slot shift, and
    /// only their map entries are touched — retracting recent objects is
    /// cheap even in a million-object extent (the previous implementation
    /// walked the whole LOid map on every removal).
    pub fn remove(&mut self, loid: LOid) -> Option<Object> {
        let slot = self.by_loid.remove(&loid)?;
        let removed = self.objects.remove(slot);
        for (offset, object) in self.objects[slot..].iter().enumerate() {
            if let Some(s) = self.by_loid.get_mut(&object.loid()) {
                *s = slot + offset;
            }
        }
        Some(removed)
    }

    /// The stored objects as a contiguous slice, in scan order — the
    /// access path of the chunked parallel scans.
    pub fn objects(&self) -> &[Object] {
        &self.objects
    }

    /// Fetches an object by LOid.
    pub fn get(&self, loid: LOid) -> Option<&Object> {
        self.by_loid.get(&loid).map(|&i| &self.objects[i])
    }

    /// Mutable fetch by LOid.
    pub fn get_mut(&mut self, loid: LOid) -> Option<&mut Object> {
        let i = *self.by_loid.get(&loid)?;
        Some(&mut self.objects[i])
    }

    /// `true` iff the extent contains `loid`.
    pub fn contains(&self, loid: LOid) -> bool {
        self.by_loid.contains_key(&loid)
    }

    /// The scan-order slot of `loid`, if present — lets index probes sort
    /// their candidates back into sequential-scan order.
    pub fn position(&self, loid: LOid) -> Option<usize> {
        self.by_loid.get(&loid).copied()
    }

    /// Scans the extent in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Object> {
        self.objects.iter()
    }

    /// All LOids in scan order.
    pub fn loids(&self) -> impl Iterator<Item = LOid> + '_ {
        self.objects.iter().map(Object::loid)
    }
}

impl<'a> IntoIterator for &'a Extent {
    type Item = &'a Object;
    type IntoIter = std::slice::Iter<'a, Object>;

    fn into_iter(self) -> Self::IntoIter {
        self.objects.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedoq_object::{DbId, Value};

    fn obj(serial: u64, v: i64) -> Object {
        Object::new(
            LOid::new(DbId::new(0), serial),
            ClassId::new(0),
            vec![Value::Int(v)],
        )
    }

    #[test]
    fn insert_and_get() {
        let mut e = Extent::new(ClassId::new(0));
        assert!(e.is_empty());
        e.insert(obj(1, 10));
        e.insert(obj(2, 20));
        assert_eq!(e.len(), 2);
        assert_eq!(
            e.get(LOid::new(DbId::new(0), 2)).unwrap().value(0),
            &Value::Int(20)
        );
        assert!(e.get(LOid::new(DbId::new(0), 3)).is_none());
        assert!(e.contains(LOid::new(DbId::new(0), 1)));
    }

    #[test]
    fn insert_replaces_same_loid() {
        let mut e = Extent::new(ClassId::new(0));
        assert!(e.insert(obj(1, 10)).is_none());
        let old = e.insert(obj(1, 99)).unwrap();
        assert_eq!(old.value(0), &Value::Int(10));
        assert_eq!(e.len(), 1);
        assert_eq!(
            e.get(LOid::new(DbId::new(0), 1)).unwrap().value(0),
            &Value::Int(99)
        );
    }

    #[test]
    fn scan_preserves_insertion_order() {
        let mut e = Extent::new(ClassId::new(0));
        for s in [5, 3, 9] {
            e.insert(obj(s, s as i64));
        }
        let serials: Vec<u64> = e.loids().map(LOid::serial).collect();
        assert_eq!(serials, [5, 3, 9]);
        let count = (&e).into_iter().count();
        assert_eq!(count, 3);
    }

    #[test]
    fn remove_preserves_scan_order_and_fixes_slots() {
        let mut e = Extent::new(ClassId::new(0));
        for s in [5, 3, 9, 7] {
            e.insert(obj(s, s as i64));
        }
        let gone = e.remove(LOid::new(DbId::new(0), 3)).unwrap();
        assert_eq!(gone.value(0), &Value::Int(3));
        assert!(e.remove(LOid::new(DbId::new(0), 3)).is_none());
        let serials: Vec<u64> = e.loids().map(LOid::serial).collect();
        assert_eq!(serials, [5, 9, 7]);
        // Later objects are still reachable through the fixed-up map.
        assert_eq!(
            e.get(LOid::new(DbId::new(0), 7)).unwrap().value(0),
            &Value::Int(7)
        );
        assert_eq!(e.objects().len(), 3);
    }

    #[test]
    fn get_mut_allows_update() {
        let mut e = Extent::new(ClassId::new(0));
        e.insert(obj(1, 10));
        e.get_mut(LOid::new(DbId::new(0), 1))
            .unwrap()
            .set(0, Value::Int(11));
        assert_eq!(
            e.get(LOid::new(DbId::new(0), 1)).unwrap().value(0),
            &Value::Int(11)
        );
    }
}
