//! Paged persistent extents: the million-object on-disk format.
//!
//! The flat [`crate::persist`] format decodes everything up front, which
//! is fine for small sites but hopeless at 10^6–10^7 objects: the CA ship
//! path wants to stream one extent in bounded batches, and a loader should
//! not materialize values it will never touch. The paged `FQP1` format
//! splits each class extent into length-prefixed pages of at most
//! `page_cap` objects, followed by a commit footer:
//!
//! ```text
//! "FQP1"  header (site id, name, schema — shared with FDQ1)
//! u32     page_cap
//! per class:
//!   u32 num_pages
//!   per page: u32 payload_len · u32 num_objects · payload
//! "FQPE"  u64 total_objects        (the commit footer)
//! ```
//!
//! [`PagedDb::open`] parses only the header and the page *directory* —
//! payloads are skipped by their length prefix and borrowed as slices of
//! the input buffer, decoded lazily page by page ([`PagedDb::batches`]).
//! A save that crashed mid-write has no footer: [`PagedDb::recover`]
//! salvages every complete page and reports what was dropped, while
//! [`PagedDb::open`] refuses the file outright. All decoding shares the
//! FQ305-style bounds of the flat format: length caps, allocation bounded
//! by actual input, and a nesting-depth cap.
//!
//! # Example
//!
//! ```
//! use fedoq_object::{DbId, Value};
//! use fedoq_store::{pages, AttrType, ClassDef, ComponentDb, ComponentSchema};
//!
//! let schema = ComponentSchema::new(vec![
//!     ClassDef::new("Student").attr("s-no", AttrType::int()).key(["s-no"]),
//! ])?;
//! let mut db = ComponentDb::new(DbId::new(0), "DB0", schema);
//! for i in 0..10 {
//!     db.insert_named("Student", &[("s-no", Value::Int(i))])?;
//! }
//! let mut buffer = Vec::new();
//! pages::save_db_paged(&db, &mut buffer, 4)?; // 3 pages of ≤ 4 objects
//! let paged = pages::PagedDb::open(&buffer)?;
//! assert_eq!(paged.object_count(), 10);
//! let restored = paged.restore()?;
//! assert_eq!(restored.object_count(), 10);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::db::ComponentDb;
use crate::persist::{
    read_header, read_u32, read_u64, read_value, write_header, write_u32, write_u64, write_value,
    PersistError,
};
use fedoq_object::{ClassId, LOid, Object};
use std::io::Write;

/// File magic of the paged format: "FQP" + version 1.
const PAGED_MAGIC: [u8; 4] = *b"FQP1";
/// Footer magic: written last, so its presence certifies a complete save.
const FOOTER_MAGIC: [u8; 4] = *b"FQPE";
/// Default objects-per-page of [`save_db_paged`] callers that don't care.
pub const DEFAULT_PAGE_CAP: usize = 4096;
/// Upper bound on declared objects-per-page (fail-closed decoding).
const MAX_PAGE_OBJECTS: u32 = 1 << 20;

/// Writes `db` in the paged `FQP1` format with at most `page_cap` objects
/// per page (0 is treated as [`DEFAULT_PAGE_CAP`]).
///
/// # Errors
///
/// Propagates I/O failures as [`PersistError::Io`].
pub fn save_db_paged<W: Write>(
    db: &ComponentDb,
    out: &mut W,
    page_cap: usize,
) -> Result<(), PersistError> {
    let page_cap = if page_cap == 0 {
        DEFAULT_PAGE_CAP
    } else {
        page_cap
    };
    out.write_all(&PAGED_MAGIC)?;
    write_header(db, out)?;
    write_u32(out, page_cap as u32)?;
    let mut total: u64 = 0;
    for (class_id, _) in db.schema().iter() {
        let extent = db.extent(class_id);
        let objects = extent.objects();
        write_u32(out, objects.chunks(page_cap).len() as u32)?;
        let mut payload = Vec::new();
        for page in objects.chunks(page_cap) {
            payload.clear();
            for object in page {
                write_u64(&mut payload, object.loid().serial())?;
                for value in object.values() {
                    write_value(&mut payload, value)?;
                }
            }
            write_u32(out, payload.len() as u32)?;
            write_u32(out, page.len() as u32)?;
            out.write_all(&payload)?;
            total += page.len() as u64;
        }
    }
    out.write_all(&FOOTER_MAGIC)?;
    write_u64(out, total)?;
    Ok(())
}

/// One page's location inside the input buffer.
#[derive(Debug, Clone, Copy)]
struct PageRef {
    offset: usize,
    len: usize,
    objects: u32,
}

/// What a tolerant load salvaged from a damaged paged file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Objects restored from complete pages.
    pub salvaged_objects: u64,
    /// `true` when the commit footer was missing or wrong — the save was
    /// interrupted and some tail data may have been dropped.
    pub truncated: bool,
    /// Pages dropped because they were incomplete or failed to decode.
    pub dropped_pages: u64,
}

/// A lazily-decoded paged database over a borrowed byte buffer.
#[derive(Debug)]
pub struct PagedDb<'a> {
    bytes: &'a [u8],
    shell: ComponentDb,
    arities: Vec<usize>,
    pages: Vec<Vec<PageRef>>,
    total_objects: u64,
    truncated: bool,
}

impl<'a> PagedDb<'a> {
    /// Opens a complete paged file: parses the header and page directory
    /// (skipping payloads) and verifies the commit footer.
    ///
    /// # Errors
    ///
    /// [`PersistError::BadMagic`] for foreign input and
    /// [`PersistError::Corrupt`] for a damaged directory or a missing
    /// footer (use [`PagedDb::recover`] for crashed saves).
    pub fn open(bytes: &'a [u8]) -> Result<PagedDb<'a>, PersistError> {
        let paged = Self::parse(bytes, true)?;
        Ok(paged)
    }

    /// Opens a possibly-truncated paged file, keeping every page that is
    /// structurally complete. The report says whether the footer was
    /// missing and how many tail pages were dropped.
    ///
    /// # Errors
    ///
    /// [`PersistError::BadMagic`] for foreign input and
    /// [`PersistError::Corrupt`] if even the header is unreadable —
    /// nothing can be salvaged without the schema.
    pub fn recover(bytes: &'a [u8]) -> Result<(PagedDb<'a>, RecoveryReport), PersistError> {
        let paged = Self::parse(bytes, false)?;
        let report = RecoveryReport {
            salvaged_objects: paged.total_objects,
            truncated: paged.truncated,
            dropped_pages: 0,
        };
        Ok((paged, report))
    }

    fn parse(bytes: &'a [u8], strict: bool) -> Result<PagedDb<'a>, PersistError> {
        if bytes.len() < 4 || bytes[..4] != PAGED_MAGIC {
            return Err(PersistError::BadMagic);
        }
        let mut cursor = &bytes[4..];
        let (shell, arities) = read_header(&mut cursor)?;
        let _page_cap = read_u32(&mut cursor)?;
        let mut offset = bytes.len() - cursor.len();
        let mut pages: Vec<Vec<PageRef>> = Vec::with_capacity(arities.len());
        let mut declared: u64 = 0;
        let mut truncated = false;
        'classes: for _ in 0..arities.len() {
            let mut class_pages = Vec::new();
            let Some(num_pages) = read_u32_at(bytes, &mut offset) else {
                truncated = true;
                pages.push(class_pages);
                break 'classes;
            };
            for _ in 0..num_pages {
                let Some(len) = read_u32_at(bytes, &mut offset) else {
                    truncated = true;
                    pages.push(class_pages);
                    break 'classes;
                };
                let Some(objects) = read_u32_at(bytes, &mut offset) else {
                    truncated = true;
                    pages.push(class_pages);
                    break 'classes;
                };
                if objects > MAX_PAGE_OBJECTS {
                    return Err(PersistError::Corrupt(
                        "implausible page object count".into(),
                    ));
                }
                let len = len as usize;
                if offset + len > bytes.len() {
                    truncated = true;
                    pages.push(class_pages);
                    break 'classes;
                }
                class_pages.push(PageRef {
                    offset,
                    len,
                    objects,
                });
                declared += u64::from(objects);
                offset += len;
            }
            pages.push(class_pages);
        }
        while pages.len() < arities.len() {
            truncated = true;
            pages.push(Vec::new());
        }
        // The commit footer certifies a complete save.
        if !truncated {
            let footer_ok = offset + 12 <= bytes.len()
                && bytes[offset..offset + 4] == FOOTER_MAGIC
                && u64::from_le_bytes(
                    bytes[offset + 4..offset + 12]
                        .try_into()
                        .map_err(|_| PersistError::Corrupt("footer".into()))?,
                ) == declared;
            if !footer_ok {
                truncated = true;
            }
        }
        if strict && truncated {
            return Err(PersistError::Corrupt(
                "incomplete paged file: commit footer missing (crashed save?)".into(),
            ));
        }
        Ok(PagedDb {
            bytes,
            shell,
            arities,
            pages,
            total_objects: declared,
            truncated,
        })
    }

    /// The site id recorded in the header.
    pub fn db_id(&self) -> fedoq_object::DbId {
        self.shell.id()
    }

    /// The site name recorded in the header.
    pub fn name(&self) -> &str {
        self.shell.name()
    }

    /// The schema recorded in the header.
    pub fn schema(&self) -> &crate::schema::ComponentSchema {
        self.shell.schema()
    }

    /// Total objects declared by the page directory (complete pages only).
    pub fn object_count(&self) -> u64 {
        self.total_objects
    }

    /// Number of pages of one class.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn num_pages(&self, class: ClassId) -> usize {
        self.pages[class.index()].len()
    }

    /// `true` when the file lacked its commit footer (crashed save).
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// Decodes one page of one class into objects. Only this page's bytes
    /// are touched — the rest of the buffer stays cold.
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupt`] if the page payload is malformed.
    ///
    /// # Panics
    ///
    /// Panics if `class` or `page` is out of range.
    pub fn read_page(&self, class: ClassId, page: usize) -> Result<Vec<Object>, PersistError> {
        let page = self.pages[class.index()][page];
        let arity = self.arities[class.index()];
        let mut cursor = &self.bytes[page.offset..page.offset + page.len];
        let mut objects = Vec::with_capacity(page.objects.min(MAX_PAGE_OBJECTS) as usize);
        for _ in 0..page.objects {
            let serial = read_u64(&mut cursor)?;
            let mut values = Vec::with_capacity(arity);
            for _ in 0..arity {
                values.push(read_value(&mut cursor, 0)?);
            }
            objects.push(Object::new(
                LOid::new(self.shell.id(), serial),
                class,
                values,
            ));
        }
        if !cursor.is_empty() {
            return Err(PersistError::Corrupt(
                "page payload has trailing bytes".into(),
            ));
        }
        Ok(objects)
    }

    /// Lazily iterates one class's extent in page-sized batches — the CA
    /// ship path streams from this with bounded memory instead of
    /// materializing the whole extent.
    pub fn batches(
        &self,
        class: ClassId,
    ) -> impl Iterator<Item = Result<Vec<Object>, PersistError>> + '_ {
        (0..self.pages[class.index()].len()).map(move |p| self.read_page(class, p))
    }

    /// Decodes every page and restores a full in-memory [`ComponentDb`],
    /// running the normal schema/type validation.
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupt`] / [`PersistError::Store`] on malformed or
    /// invalid page contents.
    pub fn restore(&self) -> Result<ComponentDb, PersistError> {
        let mut db = self.shell.clone();
        for class_idx in 0..self.arities.len() {
            let class = ClassId::new(class_idx as u32);
            for batch in self.batches(class) {
                for object in batch? {
                    let loid = object.loid();
                    db.restore(class, loid, object.into_values())?;
                }
            }
        }
        Ok(db)
    }

    /// Like [`PagedDb::restore`], but drops pages that fail to decode
    /// instead of erroring — the salvage path for damaged files.
    pub fn restore_tolerant(&self) -> (ComponentDb, RecoveryReport) {
        let mut db = self.shell.clone();
        let mut report = RecoveryReport {
            truncated: self.truncated,
            ..RecoveryReport::default()
        };
        for class_idx in 0..self.arities.len() {
            let class = ClassId::new(class_idx as u32);
            for batch in self.batches(class) {
                match batch {
                    Ok(objects) => {
                        let mut salvaged = 0u64;
                        let mut ok = true;
                        for object in objects {
                            let loid = object.loid();
                            if db.restore(class, loid, object.into_values()).is_ok() {
                                salvaged += 1;
                            } else {
                                ok = false;
                            }
                        }
                        report.salvaged_objects += salvaged;
                        if !ok {
                            report.dropped_pages += 1; // partially bad page
                        }
                    }
                    Err(_) => report.dropped_pages += 1,
                }
            }
        }
        (db, report)
    }
}

fn read_u32_at(bytes: &[u8], offset: &mut usize) -> Option<u32> {
    let end = offset.checked_add(4)?;
    if end > bytes.len() {
        return None;
    }
    let v = u32::from_le_bytes(bytes[*offset..end].try_into().ok()?);
    *offset = end;
    Some(v)
}

/// Loads a complete paged file into a full in-memory database.
///
/// # Errors
///
/// Same conditions as [`PagedDb::open`] and [`PagedDb::restore`].
pub fn load_db_paged(bytes: &[u8]) -> Result<ComponentDb, PersistError> {
    PagedDb::open(bytes)?.restore()
}

/// Salvages as much as possible from a possibly-damaged paged file.
///
/// # Errors
///
/// [`PersistError::BadMagic`] / [`PersistError::Corrupt`] only when the
/// header itself is unreadable.
pub fn recover_db_paged(bytes: &[u8]) -> Result<(ComponentDb, RecoveryReport), PersistError> {
    let (paged, _) = PagedDb::recover(bytes)?;
    let (db, report) = paged.restore_tolerant();
    Ok((db, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, ClassDef, ComponentSchema};
    use fedoq_object::{DbId, Value};

    fn sample_db(rows: i64) -> ComponentDb {
        let schema = ComponentSchema::new(vec![
            ClassDef::new("Topic").attr("name", AttrType::text()),
            ClassDef::new("Student")
                .attr("s-no", AttrType::int())
                .attr("name", AttrType::text())
                .key(["s-no"]),
        ])
        .unwrap();
        let mut db = ComponentDb::new(DbId::new(3), "Campus", schema);
        let t = db
            .insert_named("Topic", &[("name", Value::text("db"))])
            .unwrap();
        let _ = t;
        for i in 0..rows {
            let name = if i % 7 == 0 {
                Value::Null
            } else {
                Value::text(format!("s{i}"))
            };
            db.insert_named("Student", &[("s-no", Value::Int(i)), ("name", name)])
                .unwrap();
        }
        db
    }

    fn saved(db: &ComponentDb, cap: usize) -> Vec<u8> {
        let mut buffer = Vec::new();
        save_db_paged(db, &mut buffer, cap).unwrap();
        buffer
    }

    #[test]
    fn round_trip_preserves_everything() {
        let db = sample_db(100);
        let buffer = saved(&db, 16);
        let restored = load_db_paged(&buffer).unwrap();
        assert_eq!(restored.id(), db.id());
        assert_eq!(restored.name(), db.name());
        assert_eq!(restored.schema(), db.schema());
        assert_eq!(restored.object_count(), db.object_count());
        for (class_id, _) in db.schema().iter() {
            for object in db.extent(class_id).iter() {
                assert_eq!(restored.object(object.loid()), Some(object));
            }
        }
    }

    #[test]
    fn directory_counts_pages_and_objects() {
        let db = sample_db(100);
        let buffer = saved(&db, 16);
        let paged = PagedDb::open(&buffer).unwrap();
        assert_eq!(paged.db_id(), DbId::new(3));
        assert_eq!(paged.name(), "Campus");
        assert_eq!(paged.object_count(), 101);
        let student = paged.schema().class_id("Student").unwrap();
        assert_eq!(paged.num_pages(student), 7); // ceil(100/16)
        assert!(!paged.is_truncated());
        // Batches stream the extent in scan order.
        let mut serials = Vec::new();
        for batch in paged.batches(student) {
            for o in batch.unwrap() {
                serials.push(o.loid().serial());
            }
        }
        let expect: Vec<u64> = db.extent(student).loids().map(LOid::serial).collect();
        assert_eq!(serials, expect);
    }

    #[test]
    fn zero_page_cap_uses_default() {
        let db = sample_db(3);
        let buffer = saved(&db, 0);
        assert_eq!(load_db_paged(&buffer).unwrap().object_count(), 4);
    }

    #[test]
    fn crashed_save_is_rejected_strictly_but_recovers() {
        let db = sample_db(100);
        let full = saved(&db, 16);
        // Chop off the footer and part of the last page — a crashed save.
        let cut = full.len() - 40;
        let damaged = &full[..cut];
        let err = PagedDb::open(damaged).unwrap_err();
        assert!(err.to_string().contains("footer"));
        let (recovered, report) = recover_db_paged(damaged).unwrap();
        assert!(report.truncated);
        assert!(report.salvaged_objects < 101);
        assert!(recovered.object_count() > 0);
        assert!(recovered.object_count() < 101);
        // Salvaged objects are intact.
        for (class_id, _) in recovered.schema().iter() {
            for object in recovered.extent(class_id).iter() {
                assert_eq!(db.object(object.loid()), Some(object));
            }
        }
    }

    #[test]
    fn truncation_at_every_boundary_never_panics() {
        let db = sample_db(40);
        let full = saved(&db, 8);
        for cut in (0..full.len()).step_by(7) {
            let damaged = &full[..cut];
            let _ = PagedDb::open(damaged);
            if let Ok((recovered, _)) = recover_db_paged(damaged) {
                assert!(recovered.object_count() <= db.object_count());
            }
        }
    }

    #[test]
    fn restored_db_keeps_allocating_fresh_loids() {
        let db = sample_db(25);
        let max_serial = db
            .extent_by_name("Student")
            .unwrap()
            .loids()
            .chain(db.extent_by_name("Topic").unwrap().loids())
            .map(LOid::serial)
            .max()
            .unwrap();
        let buffer = saved(&db, 8);
        let mut restored = load_db_paged(&buffer).unwrap();
        let fresh = restored
            .insert_named("Topic", &[("name", Value::text("ai"))])
            .unwrap();
        assert!(fresh.serial() > max_serial);
        // The recovery path advances the allocator past what it salvaged,
        // so fresh allocations never collide with surviving objects.
        let (mut salvaged, _) = recover_db_paged(&buffer[..buffer.len() - 20]).unwrap();
        let salvaged_max = salvaged
            .extent_by_name("Student")
            .unwrap()
            .loids()
            .chain(salvaged.extent_by_name("Topic").unwrap().loids())
            .map(LOid::serial)
            .max()
            .unwrap();
        let fresh = salvaged
            .insert_named("Topic", &[("name", Value::text("ml"))])
            .unwrap();
        assert!(fresh.serial() > salvaged_max);
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(matches!(
            PagedDb::open(b"NOPE....whatever"),
            Err(PersistError::BadMagic)
        ));
        let db = sample_db(1);
        let flat = {
            let mut b = Vec::new();
            crate::persist::save_db(&db, &mut b).unwrap();
            b
        };
        assert!(matches!(PagedDb::open(&flat), Err(PersistError::BadMagic)));
    }
}
