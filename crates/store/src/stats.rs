//! Per-class statistics: cardinalities and null ratios.
//!
//! The analytic cost model and the workload calibration tests use these to
//! verify that generated databases hit the Table-2 parameters (object
//! counts, missing-data ratios, predicate selectivities).

use crate::db::ComponentDb;
use fedoq_object::{ClassId, CmpOp, Truth, Value};

/// Statistics of one class extent.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassStats {
    class: ClassId,
    count: usize,
    null_counts: Vec<usize>,
}

impl ClassStats {
    /// Scans `class`'s extent in `db` and collects statistics.
    ///
    /// # Panics
    ///
    /// Panics if `class` does not belong to `db`'s schema.
    pub fn collect(db: &ComponentDb, class: ClassId) -> ClassStats {
        let arity = db.schema().class(class).arity();
        let mut null_counts = vec![0usize; arity];
        let mut count = 0usize;
        for object in db.extent(class).iter() {
            count += 1;
            for (i, v) in object.values().enumerate() {
                if v.is_null() {
                    null_counts[i] += 1;
                }
            }
        }
        ClassStats {
            class,
            count,
            null_counts,
        }
    }

    /// The class measured.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// Number of objects in the extent.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Fraction of objects whose attribute `slot` is null (0 for an empty
    /// extent).
    pub fn null_ratio(&self, slot: usize) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.null_counts[slot] as f64 / self.count as f64
        }
    }

    /// Fraction of objects with at least one null attribute — the paper's
    /// `R_m` (ratio of objects which have missing data) at instance level.
    pub fn missing_data_ratio(db: &ComponentDb, class: ClassId) -> f64 {
        let extent = db.extent(class);
        if extent.is_empty() {
            return 0.0;
        }
        let with_null = extent.iter().filter(|o| o.has_null()).count();
        with_null as f64 / extent.len() as f64
    }

    /// Measured selectivity of `attr op literal` on the extent: the
    /// fraction of objects evaluating `True` (unknowns are not selected).
    pub fn selectivity(
        db: &ComponentDb,
        class: ClassId,
        attr: &str,
        op: CmpOp,
        literal: &Value,
    ) -> Option<f64> {
        let def = db.schema().class(class);
        let slot = def.attr_index(attr)?;
        let extent = db.extent(class);
        if extent.is_empty() {
            return Some(0.0);
        }
        let hits = extent
            .iter()
            .filter(|o| o.value(slot).compare(op, literal) == Truth::True)
            .count();
        Some(hits as f64 / extent.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, ClassDef, ComponentSchema};
    use fedoq_object::DbId;

    fn sample_db() -> ComponentDb {
        let schema = ComponentSchema::new(vec![ClassDef::new("T")
            .attr("x", AttrType::int())
            .attr("y", AttrType::int())])
        .unwrap();
        let mut db = ComponentDb::new(DbId::new(0), "DB0", schema);
        for i in 0..10 {
            let x = Value::Int(i);
            let y = if i % 2 == 0 {
                Value::Int(i)
            } else {
                Value::Null
            };
            db.insert_named("T", &[("x", x), ("y", y)]).unwrap();
        }
        db
    }

    #[test]
    fn counts_and_null_ratios() {
        let db = sample_db();
        let class = db.schema().class_id("T").unwrap();
        let stats = ClassStats::collect(&db, class);
        assert_eq!(stats.count(), 10);
        assert_eq!(stats.null_ratio(0), 0.0);
        assert!((stats.null_ratio(1) - 0.5).abs() < 1e-9);
        assert_eq!(stats.class(), class);
    }

    #[test]
    fn missing_data_ratio_matches_nulls() {
        let db = sample_db();
        let class = db.schema().class_id("T").unwrap();
        assert!((ClassStats::missing_data_ratio(&db, class) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn selectivity_counts_only_true() {
        let db = sample_db();
        let class = db.schema().class_id("T").unwrap();
        let sel = ClassStats::selectivity(&db, class, "x", CmpOp::Lt, &Value::Int(5)).unwrap();
        assert!((sel - 0.5).abs() < 1e-9);
        // Half of the y values are null => unknown => unselected.
        let sel = ClassStats::selectivity(&db, class, "y", CmpOp::Ge, &Value::Int(0)).unwrap();
        assert!((sel - 0.5).abs() < 1e-9);
        assert!(ClassStats::selectivity(&db, class, "zzz", CmpOp::Eq, &Value::Int(0)).is_none());
    }

    #[test]
    fn empty_extent_edge_cases() {
        let schema =
            ComponentSchema::new(vec![ClassDef::new("E").attr("x", AttrType::int())]).unwrap();
        let db = ComponentDb::new(DbId::new(0), "DB0", schema);
        let class = db.schema().class_id("E").unwrap();
        let stats = ClassStats::collect(&db, class);
        assert_eq!(stats.count(), 0);
        assert_eq!(stats.null_ratio(0), 0.0);
        assert_eq!(ClassStats::missing_data_ratio(&db, class), 0.0);
        assert_eq!(
            ClassStats::selectivity(&db, class, "x", CmpOp::Eq, &Value::Int(0)),
            Some(0.0)
        );
    }
}
