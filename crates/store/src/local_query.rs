//! Standalone single-site queries with maybe-result semantics.
//!
//! The federation decomposes global queries into per-site work itself,
//! but the store substrate is also useful on its own: [`LocalQuery`]
//! evaluates a conjunction of path predicates over one class extent and
//! classifies each object as **certain** (all predicates true) or
//! **maybe** (none false, some unknown because of nulls), mirroring the
//! three-valued semantics the federation uses globally.
//!
//! # Example
//!
//! ```
//! use fedoq_object::{CmpOp, DbId, Value};
//! use fedoq_store::{AttrType, ClassDef, ComponentDb, ComponentSchema, LocalQuery};
//!
//! let schema = ComponentSchema::new(vec![ClassDef::new("Student")
//!     .attr("name", AttrType::text())
//!     .attr("age", AttrType::int())])?;
//! let mut db = ComponentDb::new(DbId::new(0), "DB0", schema);
//! db.insert_named("Student", &[("name", Value::text("John")), ("age", Value::Int(31))])?;
//! db.insert_named("Student", &[("name", Value::text("Tony"))])?; // age null
//!
//! let query = LocalQuery::build(&db, "Student",
//!     &[("age", CmpOp::Ge, Value::Int(30))], &["name"])?;
//! let result = query.execute(&db);
//! assert_eq!(result.certain().len(), 1); // John
//! assert_eq!(result.maybe().len(), 1);   // Tony: age unknown
//! # Ok::<(), fedoq_store::StoreError>(())
//! ```

use crate::db::ComponentDb;
use crate::error::StoreError;
use crate::eval::{CompiledPath, CompiledPredicate, EvalCounter};
use fedoq_object::{ClassId, CmpOp, LOid, Object, Truth, Value};

/// A compiled conjunctive query over one class of one component database.
#[derive(Debug, Clone)]
pub struct LocalQuery {
    class: ClassId,
    predicates: Vec<CompiledPredicate>,
    projection: Vec<CompiledPath>,
}

/// One selected object with its projected values.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalRow {
    loid: LOid,
    values: Vec<Value>,
}

impl LocalRow {
    /// The selected object.
    pub fn loid(&self) -> LOid {
        self.loid
    }

    /// The projected values, in projection order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }
}

/// The classified result of one local query.
#[derive(Debug, Clone, Default)]
pub struct LocalQueryResult {
    certain: Vec<LocalRow>,
    maybe: Vec<LocalRow>,
    counter: EvalCounter,
}

impl LocalQueryResult {
    /// Objects satisfying every predicate.
    pub fn certain(&self) -> &[LocalRow] {
        &self.certain
    }

    /// Objects blocked by nulls (no predicate false, some unknown).
    pub fn maybe(&self) -> &[LocalRow] {
        &self.maybe
    }

    /// The evaluation work performed (for cost accounting).
    pub fn counter(&self) -> EvalCounter {
        self.counter
    }

    /// Total selected rows.
    pub fn len(&self) -> usize {
        self.certain.len() + self.maybe.len()
    }

    /// `true` iff nothing was selected.
    pub fn is_empty(&self) -> bool {
        self.certain.is_empty() && self.maybe.is_empty()
    }
}

impl LocalQuery {
    /// Compiles a query over `class_name` with `(path, op, literal)`
    /// predicates and a projection of path expressions.
    ///
    /// # Errors
    ///
    /// * [`StoreError::UnknownClass`] — unknown class name;
    /// * [`StoreError::MissingAttribute`] / [`StoreError::NotComplex`] —
    ///   a path does not resolve against the schema.
    pub fn build(
        db: &ComponentDb,
        class_name: &str,
        predicates: &[(&str, CmpOp, Value)],
        projection: &[&str],
    ) -> Result<LocalQuery, StoreError> {
        let class = db
            .schema()
            .class_id(class_name)
            .ok_or_else(|| StoreError::UnknownClass(class_name.to_owned()))?;
        let predicates = predicates
            .iter()
            .map(|(path, op, literal)| {
                let parsed = path.parse().map_err(|_| StoreError::MissingAttribute {
                    class: class_name.to_owned(),
                    attr: (*path).to_owned(),
                })?;
                CompiledPredicate::compile(db, class, &parsed, *op, literal.clone())
            })
            .collect::<Result<_, _>>()?;
        let projection = projection
            .iter()
            .map(|path| {
                let parsed = path.parse().map_err(|_| StoreError::MissingAttribute {
                    class: class_name.to_owned(),
                    attr: (*path).to_owned(),
                })?;
                CompiledPath::compile(db, class, &parsed)
            })
            .collect::<Result<_, _>>()?;
        Ok(LocalQuery {
            class,
            predicates,
            projection,
        })
    }

    /// The queried class.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// Number of conjuncts.
    pub fn num_predicates(&self) -> usize {
        self.predicates.len()
    }

    /// Scans the class extent, classifying each object.
    pub fn execute(&self, db: &ComponentDb) -> LocalQueryResult {
        let mut result = LocalQueryResult::default();
        self.scan_slice(db, db.extent(self.class).objects(), &mut result);
        result
    }

    /// Scans the class extent in chunks of `chunk` objects over up to
    /// `threads` worker threads (see [`crate::par`]), merging the partial
    /// results in chunk order. The classification, row order, and
    /// evaluation counters are byte-identical to [`execute`]: the merge is
    /// a deterministic left-to-right concatenation, so parallelism is
    /// invisible in the output.
    ///
    /// [`execute`]: LocalQuery::execute
    pub fn execute_chunked(&self, db: &ComponentDb, threads: usize, chunk: usize) -> ParallelScan {
        let objects = db.extent(self.class).objects();
        let partials = crate::par::map_chunks(objects, threads, chunk, |_, slice| {
            let mut partial = LocalQueryResult::default();
            self.scan_slice(db, slice, &mut partial);
            partial
        });
        let mut result = LocalQueryResult::default();
        let mut chunk_comparisons = Vec::with_capacity(partials.len());
        for partial in partials {
            chunk_comparisons.push(partial.counter.comparisons);
            result.certain.extend(partial.certain);
            result.maybe.extend(partial.maybe);
            result.counter.absorb(partial.counter);
        }
        ParallelScan {
            result,
            chunk_comparisons,
        }
    }

    fn scan_slice(&self, db: &ComponentDb, objects: &[Object], result: &mut LocalQueryResult) {
        'objects: for object in objects {
            let mut unknown = false;
            for predicate in &self.predicates {
                let (verdict, _) = predicate.eval(db, object, &mut result.counter);
                match verdict {
                    Truth::True => {}
                    Truth::False => continue 'objects,
                    Truth::Unknown => unknown = true,
                }
            }
            let values = self
                .projection
                .iter()
                .map(|p| p.walk(db, object, &mut result.counter).value)
                .collect();
            let row = LocalRow {
                loid: object.loid(),
                values,
            };
            if unknown {
                result.maybe.push(row);
            } else {
                result.certain.push(row);
            }
        }
    }
}

/// A chunked scan's merged result plus its per-chunk comparison counts,
/// which a cost model can turn into per-worker shares
/// ([`crate::par::worker_shares`]).
#[derive(Debug, Clone, Default)]
pub struct ParallelScan {
    /// The merged classification, identical to a sequential scan.
    pub result: LocalQueryResult,
    /// Comparisons performed per chunk, in chunk order.
    pub chunk_comparisons: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, ClassDef, ComponentSchema};
    use fedoq_object::DbId;

    fn school() -> ComponentDb {
        let schema = ComponentSchema::new(vec![
            ClassDef::new("Department").attr("name", AttrType::text()),
            ClassDef::new("Teacher")
                .attr("name", AttrType::text())
                .attr("department", AttrType::complex("Department")),
            ClassDef::new("Student")
                .attr("name", AttrType::text())
                .attr("age", AttrType::int())
                .attr("advisor", AttrType::complex("Teacher")),
        ])
        .unwrap();
        let mut db = ComponentDb::new(DbId::new(0), "DB0", schema);
        let cs = db
            .insert_named("Department", &[("name", Value::text("CS"))])
            .unwrap();
        let ee = db
            .insert_named("Department", &[("name", Value::text("EE"))])
            .unwrap();
        let t1 = db
            .insert_named(
                "Teacher",
                &[
                    ("name", Value::text("Kelly")),
                    ("department", Value::Ref(cs)),
                ],
            )
            .unwrap();
        let t2 = db
            .insert_named(
                "Teacher",
                &[
                    ("name", Value::text("Abel")),
                    ("department", Value::Ref(ee)),
                ],
            )
            .unwrap();
        db.insert_named(
            "Student",
            &[
                ("name", Value::text("John")),
                ("age", Value::Int(31)),
                ("advisor", Value::Ref(t1)),
            ],
        )
        .unwrap();
        db.insert_named(
            "Student",
            &[("name", Value::text("Tony")), ("advisor", Value::Ref(t1))], // age null
        )
        .unwrap();
        db.insert_named(
            "Student",
            &[
                ("name", Value::text("Mary")),
                ("age", Value::Int(24)),
                ("advisor", Value::Ref(t2)),
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn conjunction_with_nested_predicates() {
        let db = school();
        let q = LocalQuery::build(
            &db,
            "Student",
            &[
                ("age", CmpOp::Ge, Value::Int(20)),
                ("advisor.department.name", CmpOp::Eq, Value::text("CS")),
            ],
            &["name", "advisor.name"],
        )
        .unwrap();
        assert_eq!(q.num_predicates(), 2);
        let result = q.execute(&db);
        assert_eq!(result.certain().len(), 1);
        assert_eq!(
            result.certain()[0].values(),
            &[Value::text("John"), Value::text("Kelly")]
        );
        // Tony: age unknown, advisor CS true => maybe. Mary: EE => dropped.
        assert_eq!(result.maybe().len(), 1);
        assert_eq!(result.maybe()[0].values()[0], Value::text("Tony"));
        assert_eq!(result.len(), 2);
        assert!(!result.is_empty());
        assert!(result.counter().comparisons > 0);
    }

    #[test]
    fn empty_predicates_select_everything_certain() {
        let db = school();
        let q = LocalQuery::build(&db, "Student", &[], &["name"]).unwrap();
        let result = q.execute(&db);
        assert_eq!(result.certain().len(), 3);
        assert!(result.maybe().is_empty());
    }

    #[test]
    fn build_errors() {
        let db = school();
        assert!(matches!(
            LocalQuery::build(&db, "Course", &[], &[]),
            Err(StoreError::UnknownClass(_))
        ));
        assert!(matches!(
            LocalQuery::build(&db, "Student", &[("height", CmpOp::Eq, Value::Int(1))], &[]),
            Err(StoreError::MissingAttribute { .. })
        ));
        assert!(matches!(
            LocalQuery::build(&db, "Student", &[], &["age.years"]),
            Err(StoreError::NotComplex { .. })
        ));
    }

    #[test]
    fn chunked_execution_is_indistinguishable_from_sequential() {
        let db = school();
        let q = LocalQuery::build(
            &db,
            "Student",
            &[
                ("age", CmpOp::Ge, Value::Int(20)),
                ("advisor.department.name", CmpOp::Eq, Value::text("CS")),
            ],
            &["name"],
        )
        .unwrap();
        let sequential = q.execute(&db);
        for (threads, chunk) in [(1, 1), (2, 1), (8, 2), (8, 64)] {
            let scan = q.execute_chunked(&db, threads, chunk);
            assert_eq!(scan.result.certain(), sequential.certain());
            assert_eq!(scan.result.maybe(), sequential.maybe());
            assert_eq!(scan.result.counter(), sequential.counter());
            assert_eq!(
                scan.chunk_comparisons.iter().sum::<u64>(),
                sequential.counter().comparisons
            );
        }
    }

    #[test]
    fn row_accessors() {
        let db = school();
        let q = LocalQuery::build(
            &db,
            "Student",
            &[("name", CmpOp::Eq, Value::text("John"))],
            &["age"],
        )
        .unwrap();
        let result = q.execute(&db);
        let row = &result.certain()[0];
        assert_eq!(row.values(), &[Value::Int(31)]);
        assert_eq!(row.loid().db(), DbId::new(0));
    }
}
