//! The `fedoq-check` CLI: static plan-soundness analysis and
//! actor-protocol checking over the workspace examples.
//!
//! ```text
//! fedoq-check [--all]            run every check (default)
//! fedoq-check --plans            plan-soundness analysis only
//! fedoq-check --protocol         actor-protocol audit only
//! fedoq-check --concurrency      schedule-explore the TCP serving layer
//! fedoq-check --wire             audit the wire codec surface
//! fedoq-check --live             audit a live reactor's resolution trail
//! fedoq-check --self-test        seeded-unsound cases must be rejected
//! fedoq-check --lints            print the lint catalog
//! fedoq-check --sql "SELECT .."  analyze one query (university schema)
//! fedoq-check --strategy bl      restrict --sql/--plans to one strategy
//! fedoq-check --seeds N          generated workloads per strategy (default 8)
//! ```
//!
//! Exit status: 0 when no deny-level finding fired, 1 otherwise, 2 on
//! usage or setup errors. This is the contract the CI `check` job relies
//! on.

use fedoq_check::plan::PlanConfig;
use fedoq_check::{
    analyze_query, analyze_wire, check_protocol, explore_serving, lints, ExploreOpts, Report,
    Severity, StrategyKind,
};
use fedoq_query::bind;
use fedoq_workload::{generate, university, WorkloadParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

struct Options {
    plans: bool,
    protocol: bool,
    concurrency: bool,
    wire: bool,
    live: bool,
    self_test: bool,
    list_lints: bool,
    sql: Option<String>,
    strategy: Option<StrategyKind>,
    seeds: u64,
}

fn usage() -> String {
    "usage: fedoq-check [--all|--plans|--protocol|--concurrency|--wire|--live|--self-test|--lints] \
     [--sql QUERY] [--strategy ca|bl|pl] [--seeds N]"
        .to_owned()
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        plans: false,
        protocol: false,
        concurrency: false,
        wire: false,
        live: false,
        self_test: false,
        list_lints: false,
        sql: None,
        strategy: None,
        seeds: 8,
    };
    let mut explicit = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => explicit = false,
            "--plans" => {
                opts.plans = true;
                explicit = true;
            }
            "--protocol" => {
                opts.protocol = true;
                explicit = true;
            }
            "--concurrency" => {
                opts.concurrency = true;
                explicit = true;
            }
            "--wire" => {
                opts.wire = true;
                explicit = true;
            }
            "--live" => {
                opts.live = true;
                explicit = true;
            }
            "--self-test" => {
                opts.self_test = true;
                explicit = true;
            }
            "--lints" => {
                opts.list_lints = true;
                explicit = true;
            }
            "--sql" => {
                let q = it.next().ok_or_else(|| "--sql needs a query".to_owned())?;
                opts.sql = Some(q.clone());
                explicit = true;
            }
            "--strategy" => {
                let name = it
                    .next()
                    .ok_or_else(|| "--strategy needs a name".to_owned())?;
                opts.strategy = Some(
                    StrategyKind::parse(name)
                        .ok_or_else(|| format!("unknown strategy `{name}`"))?,
                );
            }
            "--seeds" => {
                let n = it
                    .next()
                    .ok_or_else(|| "--seeds needs a count".to_owned())?;
                opts.seeds = n.parse().map_err(|_| format!("bad seed count `{n}`"))?;
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if !explicit {
        opts.plans = true;
        opts.protocol = true;
        opts.concurrency = true;
        opts.wire = true;
        opts.live = true;
        opts.self_test = true;
    }
    Ok(opts)
}

fn strategies(filter: Option<StrategyKind>) -> Vec<StrategyKind> {
    match filter {
        Some(s) => vec![s],
        None => StrategyKind::ALL.to_vec(),
    }
}

/// Prints a report (findings only — clean reports stay quiet unless
/// `verbose`) and folds its counts into the totals.
fn emit(report: &Report, totals: &mut (usize, usize, usize), verbose: bool) {
    totals.0 += report.count(Severity::Deny);
    totals.1 += report.count(Severity::Warn);
    totals.2 += report.count(Severity::Info);
    if verbose || !report.diagnostics.is_empty() {
        print!("{report}");
    }
}

fn run_plans(opts: &Options, totals: &mut (usize, usize, usize)) -> Result<(), String> {
    let fed = university::federation().map_err(|e| e.to_string())?;
    let bound = fed
        .parse_and_bind(university::Q1)
        .map_err(|e| e.to_string())?;
    let config = PlanConfig::default();
    println!("== plan soundness: university {} ==", university::Q1);
    for strategy in strategies(opts.strategy) {
        let report = analyze_query(&bound, fed.global_schema(), strategy, &config);
        emit(&report, totals, true);
    }

    println!("== plan soundness: {} generated workloads ==", opts.seeds);
    let params = WorkloadParams::paper_default().scaled(0.05);
    for seed in 0..opts.seeds {
        let sample_config = params.sample(&mut StdRng::seed_from_u64(seed));
        let sample = generate(&sample_config, seed);
        let bound = bind(&sample.query, sample.federation.global_schema())
            .map_err(|e| format!("seed {seed}: {e}"))?;
        for strategy in strategies(opts.strategy) {
            let report =
                analyze_query(&bound, sample.federation.global_schema(), strategy, &config);
            emit(&report, totals, false);
        }
    }
    println!("analyzed {} generated workloads", opts.seeds);
    Ok(())
}

fn run_protocol_audit(totals: &mut (usize, usize, usize)) -> Result<(), String> {
    let fed = university::federation().map_err(|e| e.to_string())?;
    let bound = fed
        .parse_and_bind(university::Q1)
        .map_err(|e| e.to_string())?;
    println!("== actor protocol: university {} ==", university::Q1);
    let report = check_protocol(&fed, &bound);
    emit(&report, totals, true);
    Ok(())
}

fn run_concurrency_audit(totals: &mut (usize, usize, usize)) -> Result<(), String> {
    println!("== concurrency: schedule-exploring the TCP serving layer ==");
    let outcome = explore_serving(&ExploreOpts::default());
    println!(
        "explored {} schedules ({} distinct interleavings)",
        outcome.schedules_run, outcome.distinct_schedules
    );
    emit(&outcome.report, totals, true);
    Ok(())
}

fn run_wire_audit(totals: &mut (usize, usize, usize)) -> Result<(), String> {
    let surface = fedoq_wire::surface();
    println!(
        "== wire codec: version {}, grammar {:#018x}, {} tag families ==",
        surface.version,
        surface.fingerprint,
        surface.families.len()
    );
    let mut report = Report::new("wire codec surface", String::new());
    analyze_wire(&surface, &mut report);
    emit(&report, totals, true);
    Ok(())
}

/// Drives a real reactor over the university federation — four standing
/// Q1 subscriptions, a mutation that resolves the paper's maybe row, a
/// partition-and-heal cycle — and audits the recorded trail for FQ308.
fn run_live_audit(totals: &mut (usize, usize, usize)) -> Result<(), String> {
    use fedoq_live::{LiveReactor, LiveStrategy};
    use fedoq_object::{DbId, Value};

    println!("== live reactor: auditing a standing-query trail ==");
    let fed = university::federation().map_err(|e| e.to_string())?;
    let mut reactor = LiveReactor::new(fed);
    for strategy in LiveStrategy::all() {
        reactor
            .register(university::Q1, strategy, 5)
            .map_err(|e| e.to_string())?;
    }
    // Haley (Tony's advisor) gains a copy with a non-database
    // speciality: the paper's maybe row resolves to eliminated.
    reactor
        .mutate(DbId::new(1), |db| {
            db.insert_named(
                "Teacher",
                &[
                    ("name", Value::text("Haley")),
                    ("speciality", Value::text("network")),
                ],
            )
            .map(|_| ())
        })
        .map_err(|e| e.to_string())?;
    reactor
        .set_site_down(DbId::new(1))
        .map_err(|e| e.to_string())?;
    reactor.heal_site(DbId::new(1)).map_err(|e| e.to_string())?;
    let trail = reactor.take_trace();
    let resolutions = trail
        .iter()
        .filter(|e| matches!(e, fedoq_live::LiveTraceEvent::Resolved { .. }))
        .count();
    println!(
        "audited {} trail events ({} resolutions, {} evaluations)",
        trail.len(),
        resolutions,
        reactor.eval_count()
    );
    let mut report = Report::new("university Q1 standing-query trail", String::new());
    fedoq_check::analyze_live(&trail, &mut report);
    emit(&report, totals, true);
    Ok(())
}

fn run_self_test() -> Result<(), String> {
    println!("== self-test: seeded-unsound inputs ==");
    let cases = fedoq_check::self_test()?;
    for case in &cases {
        println!(
            "rejected `{}` with {} ({:?})",
            case.name,
            case.expect,
            case.report.fired_ids()
        );
    }
    Ok(())
}

fn run_sql(opts: &Options, sql: &str, totals: &mut (usize, usize, usize)) -> Result<(), String> {
    let fed = university::federation().map_err(|e| e.to_string())?;
    let bound = fed.parse_and_bind(sql).map_err(|e| e.to_string())?;
    for strategy in strategies(opts.strategy) {
        let report = analyze_query(
            &bound,
            fed.global_schema(),
            strategy,
            &PlanConfig::default(),
        );
        emit(&report, totals, true);
    }
    Ok(())
}

fn list_lints() {
    println!("{:<8} {:<22} {:<6} summary", "id", "slug", "level");
    for lint in lints::ALL {
        println!(
            "{:<8} {:<22} {:<6} {}",
            lint.id,
            lint.slug,
            lint.severity.to_string(),
            lint.summary
        );
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };

    if opts.list_lints {
        list_lints();
        return ExitCode::SUCCESS;
    }

    let mut totals = (0usize, 0usize, 0usize);
    let outcome: Result<(), String> = (|| {
        if let Some(sql) = &opts.sql {
            run_sql(&opts, sql, &mut totals)?;
        }
        if opts.plans {
            run_plans(&opts, &mut totals)?;
        }
        if opts.protocol {
            run_protocol_audit(&mut totals)?;
        }
        if opts.concurrency {
            run_concurrency_audit(&mut totals)?;
        }
        if opts.wire {
            run_wire_audit(&mut totals)?;
        }
        if opts.live {
            run_live_audit(&mut totals)?;
        }
        if opts.self_test {
            run_self_test()?;
        }
        Ok(())
    })();

    if let Err(message) = outcome {
        eprintln!("fedoq-check: {message}");
        return ExitCode::from(2);
    }
    let (deny, warn, info) = totals;
    println!("fedoq-check: {deny} deny, {warn} warn, {info} info");
    if deny > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
