//! Seeded-unsound inputs proving the checker detects what it claims to.
//!
//! Each [`UnsoundCase`] plants one specific defect — a mislabeled phase
//! order, a stripped assistant lookup, an incapable certify source, a
//! silent actor, a double-replying actor — into the university example
//! and records which lint must fire. `fedoq-check --self-test` (and the
//! `check_soundness` integration test) fails unless every case is
//! rejected with its expected id: a checker that stops detecting is
//! itself a defect.

use crate::analyze::analyze_plan;
use crate::diag::Report;
use crate::plan::{derive_plan, PlanConfig, PlanStep, StrategyKind};
use crate::protocol::{analyze_run, run_protocol, ActorBug, Schedule};
use fedoq_net::DistributedStrategy;
use fedoq_object::DbId;
use fedoq_query::PredId;
use fedoq_workload::university;

/// One deliberately unsound input and the lint that must reject it.
#[derive(Debug, Clone)]
pub struct UnsoundCase {
    /// Short case name (shown by `--self-test`).
    pub name: &'static str,
    /// The lint id that must fire.
    pub expect: &'static str,
    /// The checker's findings on the seeded input.
    pub report: Report,
}

/// Builds and checks all five seeded-unsound cases.
pub fn seeded_unsound_cases() -> Vec<UnsoundCase> {
    let fed = university::federation().expect("university federation builds");
    let schema = fed.global_schema().clone();
    let bound = fed
        .parse_and_bind(university::Q1)
        .expect("Q1 binds against the university schema");
    let config = PlanConfig::default();
    let mut cases = Vec::new();

    // 1. A PL-shaped plan (lookups before evaluation) labeled BL: its
    //    steps violate BL's P->O->I phase order.
    let mut plan = derive_plan(&bound, &schema, StrategyKind::Pl, &config);
    plan.strategy = StrategyKind::Bl;
    cases.push(UnsoundCase {
        name: "phase-order",
        expect: "FQ100",
        report: analyze_plan(&bound, &schema, &plan),
    });

    // 2. A BL plan with the speciality lookups stripped: the predicate
    //    stays maybe-producing although a decider exists.
    let mut plan = derive_plan(&bound, &schema, StrategyKind::Bl, &config);
    plan.steps
        .retain(|s| !matches!(s, PlanStep::Lookup { pred, .. } if pred.index() == 1));
    cases.push(UnsoundCase {
        name: "uncovered-maybe",
        expect: "FQ101",
        report: analyze_plan(&bound, &schema, &plan),
    });

    // 3. A BL plan whose certification also consumes speciality verdicts
    //    from DB0 — whose Teacher constituent lacks the attribute.
    let mut plan = derive_plan(&bound, &schema, StrategyKind::Bl, &config);
    for step in &mut plan.steps {
        if let PlanStep::Certify { sources } = step {
            sources.push((PredId::new(1), DbId::new(0)));
        }
    }
    cases.push(UnsoundCase {
        name: "incapable-certifier",
        expect: "FQ102",
        report: analyze_plan(&bound, &schema, &plan),
    });

    // 4. A silent site: its delivered requests orphan their correlation
    //    ids.
    let run = run_protocol(
        &fed,
        &bound,
        DistributedStrategy::bl(),
        &Schedule::uniform(),
        ActorBug::Silent(DbId::new(1)),
    );
    let mut report = Report::new("BL protocol with a silent DB1", bound.source().to_string());
    analyze_run(&run, None, &mut report);
    cases.push(UnsoundCase {
        name: "orphaned-rpc",
        expect: "FQ202",
        report,
    });

    // 5. A double-replying site: the router discards the second reply as
    //    stale, so only the trace audit can see the bug.
    let run = run_protocol(
        &fed,
        &bound,
        DistributedStrategy::bl(),
        &Schedule::uniform(),
        ActorBug::DoubleReply(DbId::new(1)),
    );
    let mut report = Report::new(
        "BL protocol with a double-replying DB1",
        bound.source().to_string(),
    );
    analyze_run(&run, None, &mut report);
    cases.push(UnsoundCase {
        name: "double-reply",
        expect: "FQ201",
        report,
    });

    cases
}

/// Verifies every seeded case is rejected with its expected lint id.
/// `Err` carries a human-readable explanation of the first failure.
pub fn self_test() -> Result<Vec<UnsoundCase>, String> {
    let cases = seeded_unsound_cases();
    for case in &cases {
        if !case.report.fired(case.expect) {
            return Err(format!(
                "seeded case `{}` was NOT rejected: expected {} to fire, got {:?}\n{}",
                case.name,
                case.expect,
                case.report.fired_ids(),
                case.report
            ));
        }
        if case.report.is_sound() {
            return Err(format!(
                "seeded case `{}` fired {} but the report still counts as sound",
                case.name, case.expect
            ));
        }
    }
    Ok(cases)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_seeded_case_is_rejected() {
        let cases = self_test().unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(cases.len(), 5);
        let expected: Vec<&str> = cases.iter().map(|c| c.expect).collect();
        assert_eq!(expected, vec!["FQ100", "FQ101", "FQ102", "FQ202", "FQ201"]);
    }
}
