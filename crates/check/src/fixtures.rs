//! Seeded-unsound inputs proving the checker detects what it claims to.
//!
//! Each [`UnsoundCase`] plants one specific defect — a mislabeled phase
//! order, a stripped assistant lookup, an incapable certify source, a
//! silent actor, a double-replying actor, a lock-order inversion, an
//! unguarded shared cell, a raw condvar wait, a schedule-dependent
//! result, a ghost wire variant, a disabled codec bound, a silent
//! grammar change, a replan that re-dispatches merged work, a live
//! reactor certifying a maybe with no flipping change on record — into
//! the university example (or a miniature threaded model, a doctored
//! wire surface, or a doctored trace) and records which lint must fire.
//! `fedoq-check --self-test` (and the `check_soundness` integration
//! test) fails unless every case is rejected with its expected id: a
//! checker that stops detecting is itself a defect.
//!
//! The concurrency cases (FQ300–FQ302) execute real threads on the
//! instrumented [`crate::sync`] shim and feed the recorded trace to
//! [`analyze_trace`]; the wire cases (FQ304–FQ306) clone the codec's
//! real self-computed surface and doctor exactly one table each, so the
//! lints are exercised through the same entry points production uses.

use crate::analyze::analyze_plan;
use crate::concurrency::{analyze_trace, check_divergence};
use crate::diag::Report;
use crate::plan::{derive_plan, PlanConfig, PlanStep, StrategyKind};
use crate::protocol::{analyze_run, run_protocol, ActorBug, Schedule};
use crate::replan::analyze_replans;
use crate::sync::{begin_trace, Condvar, Mutex, TracedData};
use crate::wirecheck::analyze_wire;
use fedoq_net::DistributedStrategy;
use fedoq_object::DbId;
use fedoq_query::PredId;
use fedoq_wire::ProbeOutcome;
use fedoq_workload::university;
use std::sync::Arc;
use std::time::Duration;

/// One deliberately unsound input and the lint that must reject it.
#[derive(Debug, Clone)]
pub struct UnsoundCase {
    /// Short case name (shown by `--self-test`).
    pub name: &'static str,
    /// The lint id that must fire.
    pub expect: &'static str,
    /// The checker's findings on the seeded input.
    pub report: Report,
}

/// Builds and checks all fourteen seeded-unsound cases.
pub fn seeded_unsound_cases() -> Vec<UnsoundCase> {
    let fed = university::federation().expect("university federation builds");
    let schema = fed.global_schema().clone();
    let bound = fed
        .parse_and_bind(university::Q1)
        .expect("Q1 binds against the university schema");
    let config = PlanConfig::default();
    let mut cases = Vec::new();

    // 1. A PL-shaped plan (lookups before evaluation) labeled BL: its
    //    steps violate BL's P->O->I phase order.
    let mut plan = derive_plan(&bound, &schema, StrategyKind::Pl, &config);
    plan.strategy = StrategyKind::Bl;
    cases.push(UnsoundCase {
        name: "phase-order",
        expect: "FQ100",
        report: analyze_plan(&bound, &schema, &plan),
    });

    // 2. A BL plan with the speciality lookups stripped: the predicate
    //    stays maybe-producing although a decider exists.
    let mut plan = derive_plan(&bound, &schema, StrategyKind::Bl, &config);
    plan.steps
        .retain(|s| !matches!(s, PlanStep::Lookup { pred, .. } if pred.index() == 1));
    cases.push(UnsoundCase {
        name: "uncovered-maybe",
        expect: "FQ101",
        report: analyze_plan(&bound, &schema, &plan),
    });

    // 3. A BL plan whose certification also consumes speciality verdicts
    //    from DB0 — whose Teacher constituent lacks the attribute.
    let mut plan = derive_plan(&bound, &schema, StrategyKind::Bl, &config);
    for step in &mut plan.steps {
        if let PlanStep::Certify { sources } = step {
            sources.push((PredId::new(1), DbId::new(0)));
        }
    }
    cases.push(UnsoundCase {
        name: "incapable-certifier",
        expect: "FQ102",
        report: analyze_plan(&bound, &schema, &plan),
    });

    // 4. A silent site: its delivered requests orphan their correlation
    //    ids.
    let run = run_protocol(
        &fed,
        &bound,
        DistributedStrategy::bl(),
        &Schedule::uniform(),
        ActorBug::Silent(DbId::new(1)),
    );
    let mut report = Report::new("BL protocol with a silent DB1", bound.source().to_string());
    analyze_run(&run, None, &mut report);
    cases.push(UnsoundCase {
        name: "orphaned-rpc",
        expect: "FQ202",
        report,
    });

    // 5. A double-replying site: the router discards the second reply as
    //    stale, so only the trace audit can see the bug.
    let run = run_protocol(
        &fed,
        &bound,
        DistributedStrategy::bl(),
        &Schedule::uniform(),
        ActorBug::DoubleReply(DbId::new(1)),
    );
    let mut report = Report::new(
        "BL protocol with a double-replying DB1",
        bound.source().to_string(),
    );
    analyze_run(&run, None, &mut report);
    cases.push(UnsoundCase {
        name: "double-reply",
        expect: "FQ201",
        report,
    });

    cases.extend(concurrency_cases());
    cases.extend(wire_cases());
    cases.extend(replan_cases());
    cases.extend(live_cases());
    cases
}

/// The FQ300–FQ303 cases: miniature threaded models executing real
/// threads on the instrumented shim, each planting one concurrency bug
/// pattern the serving layer must never exhibit.
fn concurrency_cases() -> Vec<UnsoundCase> {
    let mut cases = Vec::new();

    // 6. Lock-order inversion: one thread takes a before b, another
    //    takes b before a. The threads are joined sequentially, so the
    //    fixture never actually deadlocks — the acquisition graph still
    //    carries the cycle, which is exactly what FQ300 judges.
    let session = begin_trace();
    let a = Arc::new(Mutex::new("fixture.lock-a", ()));
    let b = Arc::new(Mutex::new("fixture.lock-b", ()));
    let forward = {
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        std::thread::spawn(move || {
            let _ga = a.lock();
            let _gb = b.lock();
        })
    };
    let _ = forward.join();
    let backward = std::thread::spawn(move || {
        let _gb = b.lock();
        let _ga = a.lock();
    });
    let _ = backward.join();
    let trace = session.finish();
    let mut report = Report::new("threads locking fixture.lock-a/b in opposite orders", "");
    analyze_trace(&trace, &mut report);
    cases.push(UnsoundCase {
        name: "lock-order-cycle",
        expect: "FQ300",
        report,
    });

    // 7. Lockset race: two threads pound a shared counter holding no
    //    lock at all — the empty-intersection case Eraser exists for.
    let session = begin_trace();
    let cell = Arc::new(TracedData::new("fixture.unguarded-counter", 0u64));
    let writers: Vec<_> = (0..2)
        .map(|_| {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                for _ in 0..16 {
                    cell.update(|v| *v += 1);
                }
            })
        })
        .collect();
    for w in writers {
        let _ = w.join();
    }
    let trace = session.finish();
    let mut report = Report::new("two threads incrementing an unguarded counter", "");
    analyze_trace(&trace, &mut report);
    cases.push(UnsoundCase {
        name: "lockset-race",
        expect: "FQ301",
        report,
    });

    // 8. Raw untimed condvar wait: the caller's own predicate loop is
    //    invisible to the shim, so nothing bounds a lost wakeup — the
    //    exact pattern the job queue must avoid.
    let session = begin_trace();
    let pair = Arc::new((
        Mutex::new("fixture.raw-flag", false),
        Condvar::new("fixture.raw-ready"),
    ));
    let waiter = {
        let pair = Arc::clone(&pair);
        std::thread::spawn(move || {
            let (lock, cond) = &*pair;
            let mut flag = lock.lock();
            while !*flag {
                flag = cond.wait(flag); // raw untimed: the FQ302 pattern
            }
        })
    };
    // Let the waiter reach the park before releasing it, so the trace
    // actually contains the raw wait being judged.
    std::thread::sleep(Duration::from_millis(20));
    *pair.0.lock() = true;
    while !waiter.is_finished() {
        pair.1.notify_all();
        std::thread::sleep(Duration::from_millis(1));
    }
    let _ = waiter.join();
    let trace = session.finish();
    let mut report = Report::new("a worker parked in a raw untimed condvar wait", "");
    analyze_trace(&trace, &mut report);
    cases.push(UnsoundCase {
        name: "condvar-wakeup-loss",
        expect: "FQ302",
        report,
    });

    // 9. Schedule-dependent answers: two workers drain a job queue and
    //    append results in *completion* order; job 0 is made slow, so
    //    the output order depends on which worker got it — the bug
    //    FQ303 exists to catch, in miniature.
    let queue = Arc::new(Mutex::new("fixture.model-jobs", vec![3u64, 2, 1, 0]));
    let out = Arc::new(Mutex::new("fixture.model-out", Vec::<String>::new()));
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let queue = Arc::clone(&queue);
            let out = Arc::clone(&out);
            std::thread::spawn(move || loop {
                let Some(job) = queue.lock().pop() else {
                    return;
                };
                if job == 0 {
                    std::thread::sleep(Duration::from_millis(50));
                }
                out.lock().push(format!("C row{job}"));
            })
        })
        .collect();
    for w in workers {
        let _ = w.join();
    }
    let got = out.lock().clone();
    let baseline: Vec<String> = (0..4).map(|j| format!("C row{j}")).collect();
    let mut report = Report::new(
        "a two-worker model answering in completion order",
        String::new(),
    );
    check_divergence("model query", 0, &got, &baseline, &mut report);
    cases.push(UnsoundCase {
        name: "schedule-divergent-answer",
        expect: "FQ303",
        report,
    });

    cases
}

/// The FQ304–FQ306 cases: the codec's *real* self-computed surface with
/// exactly one table doctored each — a variant added without a decoder
/// arm, a disabled depth bound, a grammar change without a version bump.
fn wire_cases() -> Vec<UnsoundCase> {
    let clean = fedoq_wire::surface();
    let mut cases = Vec::new();

    // 10. A ghost variant: the encoder table gains a tag the decoder
    //     does not accept — what the surface would look like if a
    //     variant were added to an enum without extending the codec.
    let mut surface = clean.clone();
    if let Some(family) = surface.families.iter_mut().find(|f| f.name == "value") {
        family.encoder.push((9, "GhostVariant"));
    }
    let mut report = Report::new("a value variant added without a decoder arm", "");
    analyze_wire(&surface, &mut report);
    cases.push(UnsoundCase {
        name: "ghost-wire-variant",
        expect: "FQ304",
        report,
    });

    // 11. A disabled bound: the over-deep value probe reports Accepted,
    //     as it would if the depth cap were removed from the decoder.
    let mut surface = clean.clone();
    surface.bounds.overdeep_value = ProbeOutcome::Accepted;
    let mut report = Report::new("a codec whose value-depth bound was removed", "");
    analyze_wire(&surface, &mut report);
    cases.push(UnsoundCase {
        name: "unbounded-value-depth",
        expect: "FQ305",
        report,
    });

    // 12. A silent grammar change: the fingerprint moved while the
    //     version (and pin) stood still.
    let mut surface = clean;
    surface.fingerprint ^= 0xDEAD_BEEF;
    let mut report = Report::new("a grammar change shipped without a version bump", "");
    analyze_wire(&surface, &mut report);
    cases.push(UnsoundCase {
        name: "silent-grammar-change",
        expect: "FQ306",
        report,
    });

    cases
}

/// The FQ307 case: a doctored scheduler replan decision that
/// re-dispatches a site whose reply was already merged — what the
/// dispatch trace would record if the merge-once guard were lost.
fn replan_cases() -> Vec<UnsoundCase> {
    let replan = fedoq_sched::ReplanEvent {
        query: 7,
        at_us: 12_000.0,
        hosting: vec![DbId::new(0), DbId::new(1), DbId::new(2)],
        completed: vec![DbId::new(0), DbId::new(1)],
        // DB1 is already merged, yet the replan dispatches it again.
        redispatched: vec![DbId::new(1), DbId::new(2)],
        retained: Vec::new(),
    };
    let mut report = Report::new("a replan re-dispatching a merged site", "");
    analyze_replans(&[replan], &mut report);
    vec![UnsoundCase {
        name: "replan-overlap",
        expect: "FQ307",
        report,
    }]
}

/// The FQ308 case: a doctored live-reactor trail that certifies a maybe
/// row although the only logged change touched an unrelated class and no
/// site ever healed — what the trace would record if the reactor's
/// footprint filter certified from stale state.
fn live_cases() -> Vec<UnsoundCase> {
    use fedoq_live::{LiveTraceEvent, SubId};
    use fedoq_object::{GOid, GlobalClassId};
    let trail = vec![
        LiveTraceEvent::Registered {
            sub: SubId::new(0),
            classes: vec![GlobalClassId::new(0)],
        },
        // The only recorded cause touches class 3...
        LiveTraceEvent::Change {
            seq: 0,
            db: DbId::new(1),
            class: Some(GlobalClassId::new(3)),
        },
        // ...yet the reactor certifies a row whose condition lived
        // entirely in class 0 on a never-healed site.
        LiveTraceEvent::Resolved {
            sub: SubId::new(0),
            goid: GOid::new(42),
            to_certain: true,
            classes: vec![GlobalClassId::new(0)],
            sites: vec![DbId::new(0)],
        },
    ];
    let mut report = Report::new("a live reactor certifying a maybe with no cause", "");
    crate::live::analyze_live(&trail, &mut report);
    vec![UnsoundCase {
        name: "live-unfounded-flip",
        expect: "FQ308",
        report,
    }]
}

/// Verifies every seeded case is rejected with its expected lint id.
/// `Err` carries a human-readable explanation of the first failure.
pub fn self_test() -> Result<Vec<UnsoundCase>, String> {
    let cases = seeded_unsound_cases();
    for case in &cases {
        if !case.report.fired(case.expect) {
            return Err(format!(
                "seeded case `{}` was NOT rejected: expected {} to fire, got {:?}\n{}",
                case.name,
                case.expect,
                case.report.fired_ids(),
                case.report
            ));
        }
        if case.report.is_sound() {
            return Err(format!(
                "seeded case `{}` fired {} but the report still counts as sound",
                case.name, case.expect
            ));
        }
    }
    Ok(cases)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_seeded_case_is_rejected() {
        let cases = self_test().unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(cases.len(), 14);
        let expected: Vec<&str> = cases.iter().map(|c| c.expect).collect();
        assert_eq!(
            expected,
            vec![
                "FQ100", "FQ101", "FQ102", "FQ202", "FQ201", "FQ300", "FQ301", "FQ302", "FQ303",
                "FQ304", "FQ305", "FQ306", "FQ307", "FQ308",
            ]
        );
    }
}
