//! `fedoq-check`: static plan-soundness analysis and actor-protocol
//! checking for FedOQ.
//!
//! The runtime crates can only tell you a query went wrong *after*
//! running it against instance data. This crate verifies executions
//! before they run, from two directions:
//!
//! * **Plan soundness** ([`analyze`]) — an abstract interpreter over the
//!   three-valued truth lattice ([`lattice`]) consumes a decomposed
//!   global query plus the schema's availability facts and checks a
//!   strategy's plan ([`plan`]) without touching a single object:
//!   phase-order invariants (CA is O→I→P, BL is P→O→I, PL is O→P→I),
//!   coverage of every maybe-producing predicate by a reachable
//!   assistant lookup, that certification never sources verdicts from a
//!   site lacking the attribute, dead conjunctions, and target
//!   completion gaps.
//! * **Actor protocol** ([`protocol`]) — models `fedoq-net`'s
//!   Request/Response pairs as a session protocol and replays real
//!   executions on the deterministic virtual-time runtime under bounded
//!   delivery reorderings and straggler spikes, auditing the message
//!   trace for deadlocks, orphaned correlation ids, double replies,
//!   unsolicited responses, and schedule-dependent answers.
//! * **Concurrency & wire safety** ([`concurrency`], [`wirecheck`]) —
//!   the TCP serving layer's real OS threads run on the instrumented
//!   [`sync`] shim; [`concurrency`] interprets the recorded traces
//!   (lock-order cycles FQ300, Eraser lockset races FQ301, condvar
//!   wakeup loss FQ302) and a seeded schedule explorer asserts the
//!   served answers are schedule-independent (FQ303). [`wirecheck`]
//!   abstractly interprets the wire codec's self-computed surface:
//!   enum-tag exhaustiveness and collisions (FQ304), frame size/depth
//!   bounds (FQ305), and version-skew soundness (FQ306).
//! * **Trace audits** ([`replan`], [`live`]) — recorded runtime
//!   decisions replayed after the fact: mid-flight replans must never
//!   re-dispatch merged work or drop a hosting site (FQ307), and every
//!   maybe resolution a live reactor emits must be founded on a logged
//!   change or heal that could have flipped its condition (FQ308).
//!
//! Both pillars report structured [`diag::Diagnostic`]s carrying a
//! stable lint id from the [`lints`] catalog, a severity, an optional
//! span into the query text, and a fix hint. The `fedoq-check` binary
//! runs them over the workspace examples and exits nonzero on any
//! deny-level finding; [`fixtures`] holds the seeded-unsound inputs the
//! checker must keep rejecting (`fedoq-check --self-test`).
//!
//! # Example
//!
//! ```
//! use fedoq_check::{analyze_query, PlanConfig, StrategyKind};
//! use fedoq_workload::university;
//!
//! let fed = university::federation()?;
//! let query = fed.parse_and_bind(university::Q1)?;
//! let report = analyze_query(
//!     &query,
//!     fed.global_schema(),
//!     StrategyKind::Bl,
//!     &PlanConfig::default(),
//! );
//! assert!(report.is_sound());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod analyze;
pub mod concurrency;
pub mod diag;
pub mod fixtures;
pub mod lattice;
pub mod lints;
pub mod live;
pub mod plan;
pub mod protocol;
pub mod replan;
pub mod wirecheck;

/// The instrumented synchronization shim the serving layer is built on
/// (re-exported so checker-side code and fixtures name one crate).
pub use fedoq_sync as sync;

pub use analyze::{analyze_all, analyze_plan, analyze_query, analyze_staleness};
pub use concurrency::{analyze_trace, explore_serving, ExploreOpts, ExploreOutcome};
pub use diag::{Diagnostic, Lint, Report, Severity};
pub use fixtures::{seeded_unsound_cases, self_test, UnsoundCase};
pub use lattice::TruthSet;
pub use live::analyze_live;
pub use plan::{derive_plan, PlanConfig, PlanIr, PlanStep, StrategyKind};
pub use protocol::{
    check_protocol, run_protocol, run_protocol_with_pipeline, ActorBug, ProtocolRun, Schedule,
};
pub use replan::analyze_replans;
pub use wirecheck::analyze_wire;
