//! Pillar 1: the static plan-soundness analyzer.
//!
//! [`analyze_plan`] abstractly interprets a [`PlanIr`] over the
//! three-valued truth lattice ([`crate::lattice`]), consuming only the
//! decomposed query and the schema's availability facts — never instance
//! data. It verifies the strategy's phase-order invariant, that every
//! maybe-producing predicate is covered by a reachable assistant lookup
//! (or is provably uncertifiable and must surface as maybe), that
//! certification is never sourced from a site lacking the attribute, and
//! flags dead conjunctions and target-completion gaps.

use crate::diag::{Diagnostic, Report};
use crate::lattice::TruthSet;
use crate::lints;
use crate::plan::{
    deciders, derive_plan, terminal_capable, PlanConfig, PlanIr, PlanStep, StrategyKind,
};
use fedoq_object::{CmpOp, GlobalClassId, Value};
use fedoq_query::{plan_for_db, BoundQuery, PredId};
use fedoq_schema::GlobalSchema;
use std::ops::Range;

/// Derives the canonical plan for `strategy` and analyzes it — the
/// everyday entry point (`fedoq-check --plans`, the shell's `check`).
pub fn analyze_query(
    bound: &BoundQuery,
    schema: &GlobalSchema,
    strategy: StrategyKind,
    config: &PlanConfig,
) -> Report {
    let plan = derive_plan(bound, schema, strategy, config);
    analyze_plan(bound, schema, &plan)
}

/// Analyzes every strategy's derived plan.
pub fn analyze_all(bound: &BoundQuery, schema: &GlobalSchema) -> Vec<Report> {
    StrategyKind::ALL
        .iter()
        .map(|s| analyze_query(bound, schema, *s, &PlanConfig::default()))
        .collect()
}

/// Statically analyzes one plan against the schema's availability facts.
pub fn analyze_plan(bound: &BoundQuery, schema: &GlobalSchema, plan: &PlanIr) -> Report {
    let source = bound.source().to_string();
    let mut report = Report::new(
        format!("{} plan for `{source}`", plan.strategy),
        source.clone(),
    );
    check_phase_order(plan, &mut report);
    check_coverage(bound, schema, plan, &mut report);
    check_certify_sources(bound, schema, plan, &mut report);
    check_dead_subqueries(bound, &mut report);
    check_target_gaps(bound, schema, plan, &mut report);
    report
}

/// Byte span of predicate `pred` in the rendered query text, anchored on
/// its dotted path (`X.advisor.speciality`). The rendered literal may be
/// quoted differently than the bound value, so the path is the reliable
/// anchor.
fn pred_span(bound: &BoundQuery, pred: PredId, source: &str) -> Option<Range<usize>> {
    let rendered = bound.predicate(pred).to_string();
    let path = rendered.split(' ').next()?;
    let needle = format!("{}.{path}", bound.source().var());
    source.find(&needle).map(|s| s..s + needle.len())
}

/// FQ100: every step's phase rank (under the plan's strategy) must be
/// non-decreasing.
fn check_phase_order(plan: &PlanIr, report: &mut Report) {
    let order: Vec<String> = plan
        .strategy
        .phase_order()
        .iter()
        .map(ToString::to_string)
        .collect();
    let mut max_rank = 0;
    let mut max_phase = None;
    for step in &plan.steps {
        let phase = step.phase();
        let rank = plan.strategy.phase_rank(phase);
        if rank < max_rank {
            let prior = max_phase.unwrap_or(phase);
            report.push(
                Diagnostic::new(
                    lints::PHASE_ORDER,
                    format!(
                        "step `{}` runs in phase {phase}, but phase {prior} work already ran; \
                         {} requires {}",
                        step.describe(),
                        plan.strategy,
                        order.join("->"),
                    ),
                )
                .with_hint(format!(
                    "reorder the plan so every {phase} step precedes the first {prior} step"
                )),
            );
        } else {
            max_rank = rank;
            max_phase = Some(phase);
        }
    }
}

/// FQ101/FQ105: every maybe-producing predicate must either be covered
/// by a lookup reaching a decider, or be provably uncertifiable.
fn check_coverage(bound: &BoundQuery, schema: &GlobalSchema, plan: &PlanIr, report: &mut Report) {
    if plan.strategy == StrategyKind::Ca {
        check_centralized_coverage(bound, schema, plan, report);
        return;
    }
    for db in crate::plan::all_dbs(schema) {
        let Some(site_plan) = plan_for_db(bound, schema, db) else {
            continue;
        };
        for tp in site_plan.truncated_preds(bound) {
            // The abstract value of a truncated predicate is {U}: it is
            // maybe-producing by construction, and only a decider's
            // verdict can remove Unknown from the possibilities.
            debug_assert!(TruthSet::UNKNOWN.may_be_unknown());
            let path = bound.predicate(tp.pred).path();
            let ds = deciders(schema, path, tp.prefix_len);
            let span = pred_span(bound, tp.pred, &report.source);
            if ds.is_empty() {
                let mut d = Diagnostic::new(
                    lints::UNCERTIFIABLE_MAYBE,
                    format!(
                        "predicate {} is blocked at {db} (prefix {}/{}) and no site can decide \
                         it: matching rows must surface as maybe answers",
                        tp.pred,
                        tp.prefix_len,
                        path.len()
                    ),
                );
                if let Some(span) = span {
                    d = d.with_span(span);
                }
                report.push(d);
                continue;
            }
            let covered = plan.steps.iter().any(|s| {
                matches!(
                    s,
                    PlanStep::Lookup { from, assistant, pred }
                        if *from == db && *pred == tp.pred && ds.contains(assistant)
                )
            });
            if !covered {
                let names: Vec<String> = ds.iter().map(ToString::to_string).collect();
                let mut d = Diagnostic::new(
                    lints::UNCOVERED_MAYBE,
                    format!(
                        "predicate {} is maybe-producing at {db} but no assistant lookup \
                         reaches a decider",
                        tp.pred
                    ),
                )
                .with_hint(format!(
                    "add a lookup from {db} to one of the capable sites: {}",
                    names.join(", ")
                ));
                if let Some(span) = span {
                    d = d.with_span(span);
                }
                report.push(d);
            }
        }
    }
}

/// CA coverage: the merged global objects decide a predicate iff every
/// step of its path is defined by *some* shipped constituent and the
/// plan actually merges copies.
fn check_centralized_coverage(
    bound: &BoundQuery,
    schema: &GlobalSchema,
    plan: &PlanIr,
    report: &mut Report,
) {
    let shipped: Vec<_> = plan
        .steps
        .iter()
        .filter_map(|s| match s {
            PlanStep::Ship { db } => Some(*db),
            _ => None,
        })
        .collect();
    let merges = plan
        .steps
        .iter()
        .any(|s| matches!(s, PlanStep::MergeCopies));
    for pred in bound.predicates() {
        let uncovered_step = pred.path().steps().find(|(class, slot)| {
            !shipped.iter().any(|db| {
                schema
                    .class(*class)
                    .constituent_for(*db)
                    .is_some_and(|c| !c.is_missing(*slot))
            })
        });
        let problem = if !merges {
            Some("the plan never merges isomeric copies".to_owned())
        } else {
            uncovered_step.map(|(class, slot)| {
                let class = schema.class(class);
                format!(
                    "no shipped site defines {}.{}",
                    class.name(),
                    class.attr(slot).name()
                )
            })
        };
        if let Some(problem) = problem {
            let mut d = Diagnostic::new(
                lints::UNCOVERED_MAYBE,
                format!(
                    "predicate {} cannot be decided from the shipped extents: {problem}",
                    pred.id()
                ),
            )
            .with_hint("ship every involved extent and merge copies before evaluating".to_owned());
            if let Some(span) = pred_span(bound, pred.id(), &report.source) {
                d = d.with_span(span);
            }
            report.push(d);
        }
    }
}

/// FQ102: certification may only consume verdicts from sites defining
/// the predicate's terminal attribute.
fn check_certify_sources(
    bound: &BoundQuery,
    schema: &GlobalSchema,
    plan: &PlanIr,
    report: &mut Report,
) {
    for step in &plan.steps {
        let PlanStep::Certify { sources } = step else {
            continue;
        };
        for (pred, db) in sources {
            if pred.index() >= bound.predicates().len() {
                continue;
            }
            let path = bound.predicate(*pred).path();
            let capable = terminal_capable(schema, path);
            if !capable.contains(db) {
                let last = path.len() - 1;
                let class = schema.class(path.class(last));
                let names: Vec<String> = capable.iter().map(ToString::to_string).collect();
                let mut d = Diagnostic::new(
                    lints::INCAPABLE_CERTIFIER,
                    format!(
                        "certification of {pred} takes verdicts from {db}, whose {} constituent \
                         lacks `{}`: it can only answer unknown",
                        class.name(),
                        class.attr(path.slot(last)).name()
                    ),
                )
                .with_hint(if names.is_empty() {
                    "no site defines the attribute; the predicate is uncertifiable".to_owned()
                } else {
                    format!(
                        "source verdicts from a defining site instead: {}",
                        names.join(", ")
                    )
                });
                if let Some(span) = pred_span(bound, *pred, &report.source) {
                    d = d.with_span(span);
                }
                report.push(d);
            }
        }
    }
}

/// The numeric view of a literal, when it has one.
fn num(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// `true` iff `a` and `b` (predicates over the same path) can never both
/// hold. Conservative: only flags contradictions provable from the
/// literals alone.
fn contradicts(a: (CmpOp, &Value), b: (CmpOp, &Value)) -> bool {
    use CmpOp::{Eq, Ge, Gt, Le, Lt, Ne};
    let ((op_a, lit_a), (op_b, lit_b)) = (a, b);
    // Equality conflicts work for every literal type.
    match (op_a, op_b) {
        (Eq, Eq) if lit_a != lit_b => return true,
        (Eq, Ne) | (Ne, Eq) if lit_a == lit_b => return true,
        _ => {}
    }
    // Order conflicts need a numeric view.
    let (Some(x), Some(y)) = (num(lit_a), num(lit_b)) else {
        return false;
    };
    let unsat = |(op1, v1): (CmpOp, f64), (op2, v2): (CmpOp, f64)| -> bool {
        match (op1, op2) {
            // v = v1 against an upper/lower bound.
            (Eq, Lt) => v1 >= v2,
            (Eq, Le) => v1 > v2,
            (Eq, Gt) => v1 <= v2,
            (Eq, Ge) => v1 < v2,
            // x < v1 (or <= v1) against x > v2 (or >= v2).
            (Lt, Gt) | (Lt, Ge) | (Le, Gt) => v1 <= v2,
            (Le, Ge) => v1 < v2,
            _ => false,
        }
    };
    unsat((op_a, x), (op_b, y)) || unsat((op_b, y), (op_a, x))
}

/// FQ103: conjunct pairs over the same path whose literal constraints
/// are mutually exclusive.
fn check_dead_subqueries(bound: &BoundQuery, report: &mut Report) {
    let preds = bound.predicates();
    for i in 0..preds.len() {
        for j in i + 1..preds.len() {
            let (a, b) = (&preds[i], &preds[j]);
            let same_path: bool = {
                let sa: Vec<(GlobalClassId, usize)> = a.path().steps().collect();
                let sb: Vec<(GlobalClassId, usize)> = b.path().steps().collect();
                sa == sb
            };
            if !same_path {
                continue;
            }
            if contradicts((a.op(), a.literal()), (b.op(), b.literal())) {
                let mut d = Diagnostic::new(
                    lints::DEAD_SUBQUERY,
                    format!(
                        "conjuncts {} and {} over the same path can never both hold: \
                         the query returns no certain rows",
                        a.id(),
                        b.id()
                    ),
                )
                .with_hint("remove or rewrite one of the contradictory conjuncts".to_owned());
                if let Some(span) = pred_span(bound, b.id(), &report.source) {
                    d = d.with_span(span);
                }
                report.push(d);
            }
        }
    }
}

/// FQ106: compares the statistics catalog's scan generation against the
/// federation's current mutation generation — the adaptive planner's
/// pre-flight check (the shell's `plan` command runs it before ranking).
///
/// Generations are plain counters so this pillar stays independent of
/// the planner crate: pass `StatsCatalog::generation()` and
/// `Federation::generation()`.
pub fn analyze_staleness(subject: &str, catalog_generation: u64, fed_generation: u64) -> Report {
    let mut report = Report::new(subject, String::new());
    if catalog_generation != fed_generation {
        report.push(
            Diagnostic::new(
                lints::STALE_CATALOG,
                format!(
                    "statistics catalog was scanned at generation {catalog_generation} but the \
                     federation is at generation {fed_generation}: cardinalities, null fractions, \
                     and isomeric overlap may misprice every candidate plan"
                ),
            )
            .with_hint(
                "refresh the catalog before planning (`stats refresh` in the shell, or \
                 `refresh_catalog`/`StatsCatalog::rescan` in code); observations survive a rescan"
                    .to_owned(),
            ),
        );
    }
    report
}

/// FQ104: a localized plan must fetch locally unprojectable targets (CA
/// projects from the merged copies, so it is exempt).
fn check_target_gaps(
    bound: &BoundQuery,
    schema: &GlobalSchema,
    plan: &PlanIr,
    report: &mut Report,
) {
    if plan.strategy == StrategyKind::Ca {
        return;
    }
    for db in crate::plan::all_dbs(schema) {
        let Some(site_plan) = plan_for_db(bound, schema, db) else {
            continue;
        };
        for (i, target) in bound.targets().iter().enumerate() {
            let prefix = site_plan.target_prefix_len(i);
            if prefix >= target.len() {
                continue;
            }
            let completed = plan.steps.iter().any(|s| {
                matches!(
                    s,
                    PlanStep::CompleteTarget { from, target: t, .. } if *from == db && *t == i
                )
            });
            if !completed {
                report.push(
                    Diagnostic::new(
                        lints::TARGET_GAP,
                        format!(
                            "target #{i} (`{}.{}`) projects only {prefix}/{} steps at {db} and \
                             no completion step fetches the rest: its values come back null",
                            bound.source().var(),
                            bound.source().targets()[i],
                            target.len()
                        ),
                    )
                    .with_hint(
                        "enable complete_targets (or add a CompleteTarget step) so assistants \
                         supply the missing values"
                            .to_owned(),
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedoq_object::DbId;
    use fedoq_workload::university;

    fn setting() -> (GlobalSchema, BoundQuery) {
        let fed = university::federation().expect("university federation builds");
        let bound = fed
            .parse_and_bind(university::Q1)
            .expect("Q1 binds against the university schema");
        (fed.global_schema().clone(), bound)
    }

    #[test]
    fn derived_plans_are_sound() {
        let (schema, bound) = setting();
        for report in analyze_all(&bound, &schema) {
            assert!(report.is_sound(), "{report}");
        }
    }

    #[test]
    fn stale_catalog_warns_and_hints_a_refresh() {
        let fresh = analyze_staleness("plan for q", 3, 3);
        assert!(fresh.diagnostics.is_empty());
        assert!(fresh.is_sound());
        let stale = analyze_staleness("plan for q", 3, 5);
        assert!(stale.fired("FQ106"), "{stale}");
        // Warn-level: the plan is still correct, just possibly mispriced.
        assert!(stale.is_sound());
        let d = &stale.diagnostics[0];
        assert!(d.message.contains("generation 3"));
        assert!(d.message.contains("generation 5"));
        assert!(d.hint.as_deref().unwrap_or("").contains("refresh"));
    }

    #[test]
    fn mislabeled_strategy_violates_phase_order() {
        let (schema, bound) = setting();
        let mut plan = derive_plan(&bound, &schema, StrategyKind::Pl, &PlanConfig::default());
        plan.strategy = StrategyKind::Bl; // lookups now precede evaluation
        let report = analyze_plan(&bound, &schema, &plan);
        assert!(report.fired("FQ100"), "{report}");
        assert!(!report.is_sound());
    }

    #[test]
    fn stripped_lookups_leave_a_maybe_uncovered() {
        let (schema, bound) = setting();
        let mut plan = derive_plan(&bound, &schema, StrategyKind::Bl, &PlanConfig::default());
        plan.steps
            .retain(|s| !matches!(s, PlanStep::Lookup { pred, .. } if pred.index() == 1));
        let report = analyze_plan(&bound, &schema, &plan);
        assert!(report.fired("FQ101"), "{report}");
        // The finding points into the query text at the speciality
        // predicate.
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.lint.id == "FQ101")
            .expect("FQ101 fired");
        let span = d.span.clone().expect("span attached");
        assert!(report.source[span].contains("speciality"));
    }

    #[test]
    fn incapable_certify_source_is_rejected() {
        let (schema, bound) = setting();
        let mut plan = derive_plan(&bound, &schema, StrategyKind::Bl, &PlanConfig::default());
        for step in &mut plan.steps {
            if let PlanStep::Certify { sources } = step {
                // DB0's Teacher constituent lacks `speciality`.
                sources.push((PredId::new(1), DbId::new(0)));
            }
        }
        let report = analyze_plan(&bound, &schema, &plan);
        assert!(report.fired("FQ102"), "{report}");
    }

    #[test]
    fn contradictory_conjuncts_are_dead() {
        let fed = university::federation().expect("university federation builds");
        let bound = fed
            .parse_and_bind("SELECT X.name FROM Student X WHERE X.age > 30 AND X.age < 20")
            .expect("query binds");
        let report = analyze_query(
            &bound,
            fed.global_schema(),
            StrategyKind::Bl,
            &PlanConfig::default(),
        );
        assert!(report.fired("FQ103"), "{report}");
        assert!(report.is_sound(), "FQ103 is a warning, not a deny");
    }

    #[test]
    fn missing_completion_step_is_a_target_gap() {
        let (schema, bound) = setting();
        // Universally projectable targets: no gap regardless of config.
        let no_completion = PlanConfig {
            complete_targets: false,
        };
        let report = analyze_query(&bound, &schema, StrategyKind::Bl, &no_completion);
        assert!(!report.fired("FQ104"), "{report}");

        // A query targeting address.city: DB0 cannot project it.
        let fed = university::federation().expect("university federation builds");
        let bound = fed
            .parse_and_bind("SELECT X.address.city FROM Student X WHERE X.s-no >= 0")
            .expect("query binds");
        let report = analyze_query(
            &bound,
            fed.global_schema(),
            StrategyKind::Bl,
            &no_completion,
        );
        assert!(report.fired("FQ104"), "{report}");
        let covered = analyze_query(
            &bound,
            fed.global_schema(),
            StrategyKind::Bl,
            &PlanConfig::default(),
        );
        assert!(!covered.fired("FQ104"), "{covered}");
    }

    #[test]
    fn contradiction_table_is_conservative() {
        use CmpOp::*;
        let i = Value::Int(5);
        let j = Value::Int(10);
        assert!(contradicts((Eq, &i), (Eq, &j)));
        assert!(contradicts((Eq, &i), (Ne, &i)));
        assert!(contradicts((Gt, &j), (Lt, &i)));
        assert!(contradicts((Ge, &j), (Le, &i)));
        assert!(contradicts((Eq, &i), (Gt, &j)));
        assert!(!contradicts((Gt, &i), (Lt, &j))); // 5 < x < 10 is satisfiable
        assert!(!contradicts((Ne, &i), (Ne, &j)));
        let t = Value::text("a");
        let u = Value::text("b");
        assert!(contradicts((Eq, &t), (Eq, &u)));
        assert!(!contradicts((Lt, &t), (Gt, &u))); // no numeric view: stay quiet
    }
}
