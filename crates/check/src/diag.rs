//! The diagnostics format shared by both analysis pillars.
//!
//! Every finding is a [`Diagnostic`]: a stable lint id from the
//! [`catalog`](crate::lints), a severity, a message, an optional byte
//! span into the rendered query text, and a fix hint. Diagnostics are
//! collected into a [`Report`]; a report with any deny-level entry fails
//! the `fedoq-check` CLI (and the CI job running it).

use std::fmt;
use std::ops::Range;

/// How severely a lint finding is treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: a property worth knowing, never a defect.
    Info,
    /// Suspicious but not unsound; does not fail the check run.
    Warn,
    /// Unsound: the plan or protocol can produce a wrong answer.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

/// One lint of the catalog: a stable id, a slug, and its default severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lint {
    /// Stable id (`FQ1xx` = plan soundness, `FQ2xx` = actor protocol).
    pub id: &'static str,
    /// Short kebab-case name.
    pub slug: &'static str,
    /// Severity findings of this lint carry.
    pub severity: Severity,
    /// One-line description for `fedoq-check --lints`.
    pub summary: &'static str,
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The lint that fired.
    pub lint: Lint,
    /// What went wrong, concretely.
    pub message: String,
    /// Byte span into [`Report::source`] (the rendered query text), when
    /// the finding points at a specific predicate or target.
    pub span: Option<Range<usize>>,
    /// How to fix it.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// A finding with neither span nor hint.
    pub fn new(lint: Lint, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            lint,
            message: message.into(),
            span: None,
            hint: None,
        }
    }

    /// Attaches a source span (chainable).
    pub fn with_span(mut self, span: Range<usize>) -> Diagnostic {
        self.span = Some(span);
        self
    }

    /// Attaches a fix hint (chainable).
    pub fn with_hint(mut self, hint: impl Into<String>) -> Diagnostic {
        self.hint = Some(hint.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{} {}]: {}",
            self.lint.severity, self.lint.id, self.lint.slug, self.message
        )?;
        if let Some(hint) = &self.hint {
            write!(f, "\n  = help: {hint}")?;
        }
        Ok(())
    }
}

/// The findings of one analysis run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Label identifying what was analyzed (query + strategy, or the
    /// protocol run).
    pub subject: String,
    /// The rendered query text spans point into (empty for protocol
    /// findings).
    pub source: String,
    /// The findings, in discovery order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report about `subject` with source text `source`.
    pub fn new(subject: impl Into<String>, source: impl Into<String>) -> Report {
        Report {
            subject: subject.into(),
            source: source.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Records a finding.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Absorbs another report's findings (keeping this report's subject).
    pub fn absorb(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// `true` iff no deny-level finding was recorded.
    pub fn is_sound(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| d.lint.severity == Severity::Deny)
    }

    /// Count of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.lint.severity == severity)
            .count()
    }

    /// `true` iff the given lint id fired at least once.
    pub fn fired(&self, lint_id: &str) -> bool {
        self.diagnostics.iter().any(|d| d.lint.id == lint_id)
    }

    /// The distinct lint ids that fired, in first-fire order.
    pub fn fired_ids(&self) -> Vec<&'static str> {
        let mut out: Vec<&'static str> = Vec::new();
        for d in &self.diagnostics {
            if !out.contains(&d.lint.id) {
                out.push(d.lint.id);
            }
        }
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return writeln!(f, "{}: clean", self.subject);
        }
        writeln!(
            f,
            "{}: {} deny, {} warn, {} info",
            self.subject,
            self.count(Severity::Deny),
            self.count(Severity::Warn),
            self.count(Severity::Info),
        )?;
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
            if let Some(span) = &d.span {
                if !self.source.is_empty() && span.end <= self.source.len() {
                    writeln!(f, "  --> {}", self.source)?;
                    let mut carets = String::with_capacity(span.end + 6);
                    carets.push_str("      ");
                    for i in 0..span.end {
                        carets.push(if i < span.start { ' ' } else { '^' });
                    }
                    writeln!(f, "{carets}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints;

    #[test]
    fn severity_gates_soundness() {
        let mut r = Report::new("q", "SELECT X FROM C X");
        assert!(r.is_sound());
        r.push(Diagnostic::new(lints::TARGET_GAP, "gap"));
        assert!(r.is_sound()); // warn only
        r.push(Diagnostic::new(lints::PHASE_ORDER, "bad").with_hint("reorder"));
        assert!(!r.is_sound());
        assert!(r.fired("FQ100"));
        assert_eq!(r.fired_ids(), vec!["FQ104", "FQ100"]);
        assert_eq!(r.count(Severity::Deny), 1);
    }

    #[test]
    fn display_renders_span_carets() {
        let mut r = Report::new("q", "SELECT X.a FROM C X WHERE X.a = 1");
        r.push(Diagnostic::new(lints::DEAD_SUBQUERY, "unsat").with_span(26..33));
        let text = r.to_string();
        assert!(text.contains("FQ103"));
        assert!(text.contains("^^^^^^^"));
    }
}
