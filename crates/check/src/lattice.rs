//! The abstract domain of the plan analyzer: sets of three-valued
//! truths.
//!
//! The analyzer never looks at instance data, so it cannot know what a
//! predicate evaluates to — only what it *may* evaluate to at each site.
//! That abstraction is a [`TruthSet`]: a subset of
//! `{True, False, Unknown}` ordered by inclusion. Joins union the
//! possibilities; the Kleene connectives lift pointwise. A predicate
//! blocked by a missing attribute is `{Unknown}`; a locally evaluable
//! predicate over nullable data is the full set; certification by a
//! capable decider removes `Unknown` from the possibilities.

use fedoq_object::Truth;
use std::fmt;

/// A subset of the three truth values — the analyzer's abstract value
/// for one predicate at one site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TruthSet(u8);

const BIT_FALSE: u8 = 1;
const BIT_UNKNOWN: u8 = 2;
const BIT_TRUE: u8 = 4;

fn bit(t: Truth) -> u8 {
    match t {
        Truth::False => BIT_FALSE,
        Truth::Unknown => BIT_UNKNOWN,
        Truth::True => BIT_TRUE,
    }
}

impl TruthSet {
    /// The empty set (bottom: an unreachable evaluation).
    pub const EMPTY: TruthSet = TruthSet(0);
    /// All three values (top: nothing is known statically).
    pub const ANY: TruthSet = TruthSet(BIT_FALSE | BIT_UNKNOWN | BIT_TRUE);
    /// Only `Unknown` — a predicate statically blocked by a missing
    /// attribute.
    pub const UNKNOWN: TruthSet = TruthSet(BIT_UNKNOWN);
    /// `{True, False}` — a decided predicate (no nulls possible).
    pub const DECIDED: TruthSet = TruthSet(BIT_FALSE | BIT_TRUE);

    /// The singleton set of one truth value.
    pub fn just(t: Truth) -> TruthSet {
        TruthSet(bit(t))
    }

    /// `true` iff `t` is a possible outcome.
    pub fn contains(self, t: Truth) -> bool {
        self.0 & bit(t) != 0
    }

    /// `true` iff no outcome is possible.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// `true` iff the predicate may come out unknown — the static
    /// signature of a *maybe-producing* predicate.
    pub fn may_be_unknown(self) -> bool {
        self.contains(Truth::Unknown)
    }

    /// `true` iff every possible outcome is decided (no `Unknown`).
    pub fn is_certain(self) -> bool {
        !self.is_empty() && !self.may_be_unknown()
    }

    /// Least upper bound: either evaluation may happen.
    pub fn join(self, other: TruthSet) -> TruthSet {
        TruthSet(self.0 | other.0)
    }

    /// Greatest lower bound: outcomes possible under both abstractions.
    pub fn meet(self, other: TruthSet) -> TruthSet {
        TruthSet(self.0 & other.0)
    }

    /// Removes `Unknown` from the possibilities — the effect of a
    /// successful certification by a capable decider.
    pub fn certified(self) -> TruthSet {
        TruthSet(self.0 & !BIT_UNKNOWN)
    }

    /// Iterates over the contained truth values.
    pub fn iter(self) -> impl Iterator<Item = Truth> {
        [Truth::False, Truth::Unknown, Truth::True]
            .into_iter()
            .filter(move |t| self.contains(*t))
    }

    /// Strong Kleene conjunction lifted to sets: every pairwise `and` of
    /// possible outcomes is a possible outcome of the conjunction.
    pub fn and(self, other: TruthSet) -> TruthSet {
        let mut out = TruthSet::EMPTY;
        for a in self.iter() {
            for b in other.iter() {
                out = out.join(TruthSet::just(a.and(b)));
            }
        }
        out
    }

    /// Conjunction of many abstract predicate values (`{True}` for an
    /// empty iterator, the identity of `and`).
    pub fn and_all<I: IntoIterator<Item = TruthSet>>(iter: I) -> TruthSet {
        iter.into_iter()
            .fold(TruthSet::just(Truth::True), TruthSet::and)
    }
}

impl fmt::Display for TruthSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self
            .iter()
            .map(|t| match t {
                Truth::False => "F",
                Truth::Unknown => "U",
                Truth::True => "T",
            })
            .collect();
        write!(f, "{{{}}}", names.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_operations() {
        assert!(TruthSet::ANY.contains(Truth::Unknown));
        assert!(TruthSet::UNKNOWN.may_be_unknown());
        assert!(!TruthSet::DECIDED.may_be_unknown());
        assert!(TruthSet::DECIDED.is_certain());
        assert_eq!(TruthSet::UNKNOWN.join(TruthSet::DECIDED), TruthSet::ANY);
        assert_eq!(TruthSet::ANY.meet(TruthSet::DECIDED), TruthSet::DECIDED);
        assert_eq!(TruthSet::ANY.certified(), TruthSet::DECIDED);
        assert!(TruthSet::UNKNOWN.certified().is_empty());
        assert_eq!(TruthSet::ANY.to_string(), "{F,U,T}");
    }

    #[test]
    fn lifted_conjunction_matches_kleene() {
        // False dominates: anything AND a possibly-false value may be false.
        let f = TruthSet::just(Truth::False);
        assert_eq!(TruthSet::ANY.and(f), f);
        // {T} and {U} = {U}: an undecided conjunct keeps the row maybe.
        let t = TruthSet::just(Truth::True);
        assert_eq!(t.and(TruthSet::UNKNOWN), TruthSet::UNKNOWN);
        // A certified conjunction of decided predicates stays decided.
        assert_eq!(
            TruthSet::and_all([TruthSet::DECIDED, TruthSet::DECIDED]),
            TruthSet::DECIDED
        );
        // Empty conjunction is vacuously true.
        assert_eq!(TruthSet::and_all([]), TruthSet::just(Truth::True));
        // One blocked conjunct poisons certainty of the whole query.
        let q = TruthSet::and_all([TruthSet::DECIDED, TruthSet::UNKNOWN]);
        assert!(q.may_be_unknown());
        assert!(q.contains(Truth::False));
        assert!(!q.contains(Truth::True));
    }
}
