//! The replan-soundness auditor (FQ307).
//!
//! The concurrent scheduler may re-price and re-dispatch *unfinished*
//! sites mid-flight when they straggle; each decision is recorded as a
//! [`ReplanEvent`] in the dispatch trace. This module audits those
//! events for the two ways a replan can corrupt an answer:
//!
//! * **re-dispatching merged work** — a site whose reply is already
//!   folded into the merge must never be asked again: certifying its
//!   verdicts twice double-counts evidence and can promote a maybe row;
//! * **dropping a hosting site** — every hosting site must remain
//!   covered (completed, re-dispatched, or retained in flight), or its
//!   extent silently stops participating in absence elimination.
//!
//! The scheduler's merge accumulator enforces the first property
//! structurally at run time; this auditor proves it *held* for a
//! recorded run, so a refactor that loses the guard is caught by the
//! same trace-replay tests that check fairness.

use crate::diag::{Diagnostic, Report};
use crate::lints;
use fedoq_sched::ReplanEvent;

/// Audits every recorded replan decision, appending FQ307 findings.
pub fn analyze_replans(replans: &[ReplanEvent], report: &mut Report) {
    for replan in replans {
        for site in &replan.redispatched {
            if replan.completed.contains(site) {
                report.push(
                    Diagnostic::new(
                        lints::REPLAN_UNSOUND,
                        format!(
                            "query {}: replan at {:.0}us re-dispatched site {site:?} \
                             whose reply was already merged",
                            replan.query, replan.at_us
                        ),
                    )
                    .with_hint(
                        "skip sites the merge accumulator already recorded; \
                         re-certifying merged verdicts double-counts evidence"
                            .to_string(),
                    ),
                );
            }
        }
        for site in &replan.hosting {
            let covered = replan.completed.contains(site)
                || replan.redispatched.contains(site)
                || replan.retained.contains(site);
            if !covered {
                report.push(
                    Diagnostic::new(
                        lints::REPLAN_UNSOUND,
                        format!(
                            "query {}: replan at {:.0}us left hosting site {site:?} \
                             uncovered (neither completed, re-dispatched, nor retained)",
                            replan.query, replan.at_us
                        ),
                    )
                    .with_hint(
                        "every hosting site must stay covered by some dispatch or a \
                         merged reply, or its absence elimination is lost"
                            .to_string(),
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedoq_object::DbId;

    fn event(completed: &[u16], redispatched: &[u16], retained: &[u16]) -> ReplanEvent {
        ReplanEvent {
            query: 0,
            at_us: 1_000.0,
            hosting: vec![DbId::new(0), DbId::new(1), DbId::new(2)],
            completed: completed.iter().map(|&d| DbId::new(d)).collect(),
            redispatched: redispatched.iter().map(|&d| DbId::new(d)).collect(),
            retained: retained.iter().map(|&d| DbId::new(d)).collect(),
        }
    }

    #[test]
    fn sound_replans_pass() {
        let mut report = Report::new("sound replan", "");
        analyze_replans(&[event(&[0], &[1], &[2])], &mut report);
        assert!(report.diagnostics.is_empty());
    }

    #[test]
    fn redispatching_merged_work_is_denied() {
        let mut report = Report::new("overlapping replan", "");
        analyze_replans(&[event(&[0, 1], &[1], &[2])], &mut report);
        assert!(report.fired("FQ307"));
        assert!(!report.is_sound());
    }

    #[test]
    fn dropping_a_hosting_site_is_denied() {
        let mut report = Report::new("lossy replan", "");
        analyze_replans(&[event(&[0], &[1], &[])], &mut report);
        assert!(report.fired("FQ307"));
    }
}
