//! Pillar 2: the actor-protocol checker.
//!
//! The Request/Response pairs of `fedoq-net` form a session protocol:
//! every delivered request must be answered exactly once, on its own
//! correlation id, and the certified answer must not depend on the
//! message delivery schedule. This module replays real executions on the
//! deterministic virtual-time runtime under a [`TraceTransport`] that
//! both *perturbs* delivery (bounded reorderings and a straggler spike)
//! and *records* every dispatched envelope, then audits the trace:
//!
//! * a run that never produces the client's answer is a deadlock
//!   ([`crate::lints::DEADLOCK`]);
//! * two responses on one correlation id is a double reply
//!   ([`crate::lints::DOUBLE_REPLY`]) — the router hides the second as
//!   stale, so only the trace can see it;
//! * a delivered request whose id never gets a response is orphaned
//!   ([`crate::lints::ORPHANED_RPC`]);
//! * a response on an id no request used is unsolicited
//!   ([`crate::lints::UNSOLICITED_RESPONSE`]);
//! * an answer whose certain/maybe classification changes under a
//!   lossless reordering depends on the schedule
//!   ([`crate::lints::SCHEDULE_DIVERGENCE`]).
//!
//! Seeded actor bugs ([`ActorBug`]) exist so the checker can prove it
//! detects what it claims to detect (`fedoq-check --self-test`).

use crate::diag::{Diagnostic, Report};
use crate::lints;
use fedoq_core::handlers::{answer_check_requests, answer_target_requests};
use fedoq_core::{Federation, LookupCache, PipelineConfig, QueryAnswer};
use fedoq_net::actor::{run_global, run_site, Ctx};
use fedoq_net::msg::{Envelope, LookupReply, Payload, Request, Response, ShipReply};
use fedoq_net::router::Net;
use fedoq_net::rpc::{call, RpcConfig};
use fedoq_net::rt::Runtime;
use fedoq_net::transport::Transport;
use fedoq_net::DistributedStrategy;
use fedoq_object::DbId;
use fedoq_query::BoundQuery;
use fedoq_sim::{Phase, Simulation, Site, SystemParams};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Virtual time the client lingers after its answer so in-flight
/// deliveries, retries, and stale responses land before the trace is
/// audited. Must exceed the largest schedule perturbation.
const DRAIN_US: f64 = 3e7;

/// One dispatched envelope, as the trace sees it.
#[derive(Debug, Clone)]
pub struct Event {
    /// Dispatch order (0-based).
    pub seq: u64,
    /// Sending site.
    pub from: Site,
    /// Receiving site.
    pub to: Site,
    /// Correlation id.
    pub rpc: u64,
    /// Message kind (`Certify`, `LocalEval`, ...).
    pub kind: &'static str,
    /// `true` for the response half of an RPC.
    pub is_response: bool,
}

fn payload_kind(payload: &Payload) -> (&'static str, bool) {
    match payload {
        Payload::Request(r) => (r.kind(), false),
        Payload::Response(r) => (
            match r {
                Response::Certify(_) => "Certify",
                Response::LocalEval(_) => "LocalEval",
                Response::AssistantLookup(_) => "AssistantLookup",
                Response::ShipObjects(_) => "ShipObjects",
                Response::BatchAssistantLookup(_) => "BatchAssistantLookup",
                Response::BatchCertify(_) => "BatchCertify",
            },
            true,
        ),
    }
}

/// A deterministic delivery schedule: the i-th dispatched message is
/// delayed by `base_us + slots[i mod len] * slot_us`, plus an optional
/// straggler spike on one dispatch index. Lossless — every message is
/// delivered — so reorderings, not losses, are what it explores.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Schedule name (appears in diagnostics).
    pub name: &'static str,
    /// Fixed delay applied to every message (virtual µs).
    pub base_us: f64,
    /// One reordering slot's worth of extra delay (virtual µs).
    pub slot_us: f64,
    /// Slot multipliers, cycled over the dispatch sequence.
    pub slots: Vec<f64>,
    /// `(dispatch index, extra delay)`: one message becomes a straggler,
    /// outliving the caller's timeout so retry and stale-response paths
    /// run.
    pub spike: Option<(u64, f64)>,
}

impl Schedule {
    /// Every message delayed equally: delivery order equals send order.
    /// The reference schedule the others are compared against.
    pub fn uniform() -> Schedule {
        Schedule {
            name: "uniform",
            base_us: 10.0,
            slot_us: 0.0,
            slots: vec![0.0],
            spike: None,
        }
    }

    /// Bounded reorderings: cycles of distinct slot delays shuffle the
    /// delivery order of nearby messages without tripping any timeout
    /// (max extra delay ≪ the 20 ms RPC window).
    pub fn permutations() -> Vec<Schedule> {
        let named: [(&'static str, [f64; 3]); 5] = [
            ("perm-021", [0.0, 2.0, 1.0]),
            ("perm-102", [1.0, 0.0, 2.0]),
            ("perm-120", [1.0, 2.0, 0.0]),
            ("perm-201", [2.0, 0.0, 1.0]),
            ("perm-210", [2.0, 1.0, 0.0]),
        ];
        named
            .iter()
            .map(|(name, slots)| Schedule {
                name,
                base_us: 10.0,
                slot_us: 250.0,
                slots: slots.to_vec(),
                spike: None,
            })
            .collect()
    }

    /// One message delayed far past its caller's timeout: the caller
    /// must retry on a fresh correlation id and discard the late reply
    /// as stale instead of mistaking it for the retry's.
    pub fn stragglers() -> Vec<Schedule> {
        [("straggle-2", 2), ("straggle-5", 5)]
            .iter()
            .map(|&(name, at)| Schedule {
                name,
                base_us: 10.0,
                slot_us: 0.0,
                slots: vec![0.0],
                spike: Some((at, 5e6)),
            })
            .collect()
    }
}

/// A lossless transport that applies a [`Schedule`] and records every
/// dispatched envelope.
pub struct TraceTransport {
    schedule: Schedule,
    events: Rc<RefCell<Vec<Event>>>,
    seq: u64,
}

impl TraceTransport {
    /// A transport applying `schedule`, appending events to `events`.
    pub fn new(schedule: Schedule, events: Rc<RefCell<Vec<Event>>>) -> TraceTransport {
        TraceTransport {
            schedule,
            events,
            seq: 0,
        }
    }
}

impl Transport for TraceTransport {
    fn name(&self) -> &'static str {
        "trace"
    }

    fn dispatch(&mut self, env: &Envelope, _now_us: f64) -> Option<f64> {
        let seq = self.seq;
        self.seq += 1;
        let (kind, is_response) = payload_kind(&env.payload);
        self.events.borrow_mut().push(Event {
            seq,
            from: env.from,
            to: env.to,
            rpc: env.rpc,
            kind,
            is_response,
        });
        let slot = self.schedule.slots[seq as usize % self.schedule.slots.len()];
        let mut delay = self.schedule.base_us + slot * self.schedule.slot_us;
        if let Some((at, extra)) = self.schedule.spike {
            if at == seq {
                delay += extra;
            }
        }
        Some(delay)
    }

    fn stats(&self) -> (u64, u64) {
        (self.seq, 0)
    }
}

/// A deliberately broken actor, for self-testing the checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActorBug {
    /// All actors behave.
    Healthy,
    /// This site receives requests but never responds: every request
    /// delivered to it orphans its correlation id.
    Silent(DbId),
    /// This site answers every `AssistantLookup` twice on the same
    /// correlation id.
    DoubleReply(DbId),
}

/// A silent site: the mailbox drains, nothing comes back.
async fn run_silent_site(ctx: Ctx<'_>, db: DbId) {
    loop {
        let _ = ctx.net.recv(Site::Db(db)).await;
    }
}

/// A double-replying site: correct verdicts, sent twice per lookup.
async fn run_double_reply_site(ctx: Ctx<'_>, db: DbId) {
    loop {
        let env = ctx.net.recv(Site::Db(db)).await;
        let Payload::Request(ref request) = env.payload else {
            continue;
        };
        match request.clone() {
            Request::AssistantLookup { checks, targets } => {
                let reply = {
                    let mut sim = ctx.sim.borrow_mut();
                    LookupReply {
                        verdicts: answer_check_requests(ctx.fed, ctx.query, db, &checks, &mut sim),
                        values: answer_target_requests(ctx.fed, ctx.query, db, &targets, &mut sim),
                    }
                };
                ctx.net
                    .respond(&env, 0, Response::AssistantLookup(reply.clone()));
                // The bug: a second reply on the same correlation id.
                ctx.net.respond(&env, 0, Response::AssistantLookup(reply));
            }
            Request::BatchAssistantLookup { checks, targets } => {
                let reply = {
                    let mut sim = ctx.sim.borrow_mut();
                    LookupReply {
                        verdicts: answer_check_requests(ctx.fed, ctx.query, db, &checks, &mut sim),
                        values: answer_target_requests(ctx.fed, ctx.query, db, &targets, &mut sim),
                    }
                };
                ctx.net
                    .respond(&env, 0, Response::BatchAssistantLookup(reply.clone()));
                // The bug again, on the batched path.
                ctx.net
                    .respond(&env, 0, Response::BatchAssistantLookup(reply));
            }
            Request::LocalEval { .. } => {
                ctx.net
                    .respond(&env, 0, Response::LocalEval(Box::default()));
            }
            Request::ShipObjects => {
                ctx.net
                    .respond(&env, 0, Response::ShipObjects(ShipReply::default()));
            }
            Request::Certify { .. }
            | Request::BatchCertify { .. }
            | Request::HybridCertify { .. } => {}
        }
    }
}

/// Why a protocol run produced no answer.
#[derive(Debug, Clone)]
pub enum ProtocolFailure {
    /// The client never heard back: the protocol stalled (deadlock).
    Stalled(String),
    /// The protocol completed but delivered an execution error (e.g. CA
    /// over a dead site). The messaging itself worked.
    Error(String),
}

/// One recorded execution of a strategy under a schedule.
#[derive(Debug, Clone)]
pub struct ProtocolRun {
    /// Strategy name (`CA`, `BL`, `PL`).
    pub strategy: &'static str,
    /// Schedule name.
    pub schedule: &'static str,
    /// The certified answer, or why there is none.
    pub answer: Result<QueryAnswer, ProtocolFailure>,
    /// Every dispatched envelope, in dispatch order.
    pub events: Vec<Event>,
    /// Responses the router discarded as stale.
    pub stale: u64,
    /// RPC retries performed.
    pub retries: u64,
}

/// Executes `strategy` over the virtual-time runtime under `schedule`,
/// optionally replacing one site actor with a seeded bug, and records
/// the full message trace.
pub fn run_protocol(
    fed: &Federation,
    query: &BoundQuery,
    strategy: DistributedStrategy,
    schedule: &Schedule,
    bug: ActorBug,
) -> ProtocolRun {
    run_protocol_with_pipeline(
        fed,
        query,
        strategy,
        schedule,
        bug,
        PipelineConfig::sequential(),
    )
}

/// Like [`run_protocol`] under an explicit [`PipelineConfig`]: a batched
/// pipeline makes the actors speak `BatchAssistantLookup` fragments, and
/// an enabled cache is shared by the run's actors (fresh per run).
pub fn run_protocol_with_pipeline(
    fed: &Federation,
    query: &BoundQuery,
    strategy: DistributedStrategy,
    schedule: &Schedule,
    bug: ActorBug,
    pipeline: PipelineConfig,
) -> ProtocolRun {
    let cache = pipeline
        .cache
        .then(|| Rc::new(RefCell::new(LookupCache::default())));
    let events: Rc<RefCell<Vec<Event>>> = Rc::new(RefCell::new(Vec::new()));
    let transport: Rc<RefCell<dyn Transport>> = Rc::new(RefCell::new(TraceTransport::new(
        schedule.clone(),
        Rc::clone(&events),
    )));
    let sim = Rc::new(RefCell::new(Simulation::new(
        SystemParams::paper_default(),
        fed.num_dbs(),
    )));
    let rt = Runtime::new();
    let net = Net::new(rt.handle(), Rc::clone(&transport), fed.num_dbs());
    let rpc = RpcConfig::default();
    for db in fed.dbs() {
        let ctx = Ctx {
            fed,
            query,
            net: net.clone(),
            sim: Rc::clone(&sim),
            rpc,
            pipeline,
            cache: cache.clone(),
        };
        match bug {
            ActorBug::Silent(b) if b == db.id() => rt.handle().spawn(run_silent_site(ctx, db.id())),
            ActorBug::DoubleReply(b) if b == db.id() => {
                rt.handle().spawn(run_double_reply_site(ctx, db.id()));
            }
            _ => rt.handle().spawn(run_site(ctx, db.id())),
        }
    }
    rt.handle().spawn(run_global(Ctx {
        fed,
        query,
        net: net.clone(),
        sim: Rc::clone(&sim),
        rpc,
        pipeline,
        cache,
    }));

    let client_net = net.clone();
    let handle = rt.handle();
    let outcome = rt.run(async move {
        let cfg = RpcConfig {
            timeout_us: 1e12,
            per_byte_us: 0.0,
            retries: 0,
            backoff_us: 0.0,
            backoff_factor: 1.0,
        };
        let response = call(
            &client_net,
            Site::Global,
            Site::Global,
            Request::Certify { strategy },
            0,
            Phase::Ship,
            cfg,
        )
        .await;
        handle.sleep(DRAIN_US).await;
        response
    });
    let answer = match outcome {
        Err(deadlock) => Err(ProtocolFailure::Stalled(deadlock.to_string())),
        Ok(Err(rpc_err)) => Err(ProtocolFailure::Stalled(rpc_err.to_string())),
        Ok(Ok(Response::Certify(reply))) => reply
            .answer
            .map_err(|e| ProtocolFailure::Error(e.to_string())),
        Ok(Ok(_)) => Err(ProtocolFailure::Error(
            "mismatched response to Certify".to_owned(),
        )),
    };
    let trace = events.borrow().clone();
    ProtocolRun {
        strategy: strategy.name(),
        schedule: schedule.name,
        answer,
        events: trace,
        stale: net.stale_responses(),
        retries: net.retries(),
    }
}

/// Audits one run's trace; `reference` enables the schedule-divergence
/// comparison (FQ204) against the uniform schedule's answer.
pub fn analyze_run(run: &ProtocolRun, reference: Option<&QueryAnswer>, report: &mut Report) {
    let tag = format!("[{} under {}]", run.strategy, run.schedule);
    if let Err(ProtocolFailure::Stalled(why)) = &run.answer {
        report.push(
            Diagnostic::new(
                lints::DEADLOCK,
                format!("{tag} the client never received an answer: {why}"),
            )
            .with_hint(
                "some actor is waiting on a message that can no longer arrive; check every \
                 request path for a matching respond"
                    .to_owned(),
            ),
        );
    }

    // Per correlation id: the request (if any) and the response count.
    let mut requests: BTreeMap<u64, &Event> = BTreeMap::new();
    let mut responses: BTreeMap<u64, u64> = BTreeMap::new();
    for ev in &run.events {
        if ev.is_response {
            *responses.entry(ev.rpc).or_default() += 1;
        } else {
            requests.entry(ev.rpc).or_insert(ev);
        }
    }
    for (rpc, count) in &responses {
        match requests.get(rpc) {
            None => {
                report.push(Diagnostic::new(
                    lints::UNSOLICITED_RESPONSE,
                    format!(
                        "{tag} a response was sent on correlation id {rpc}, which no request used"
                    ),
                ));
            }
            Some(req) if *count > 1 => {
                report.push(
                    Diagnostic::new(
                        lints::DOUBLE_REPLY,
                        format!(
                            "{tag} {} answered {} request #{rpc} from {} {count} times; the \
                             router discards the extras as stale, masking the bug",
                            req.to, req.kind, req.from
                        ),
                    )
                    .with_hint("respond exactly once per received request".to_owned()),
                );
            }
            Some(_) => {}
        }
    }
    for (rpc, req) in &requests {
        if !responses.contains_key(rpc) {
            report.push(
                Diagnostic::new(
                    lints::ORPHANED_RPC,
                    format!(
                        "{tag} {} request #{rpc} from {} was delivered to {} and never answered",
                        req.kind, req.from, req.to
                    ),
                )
                .with_hint(format!(
                    "every request arm of {}'s event loop must send a response (or the caller \
                     retries forever)",
                    req.to
                )),
            );
        }
    }

    if let (Ok(answer), Some(reference)) = (&run.answer, reference) {
        if !answer.same_classification(reference) {
            report.push(
                Diagnostic::new(
                    lints::SCHEDULE_DIVERGENCE,
                    format!(
                        "{tag} the certified answer differs from the uniform schedule's \
                         ({} vs {} certain, {} vs {} maybe): classification depends on \
                         message delivery order",
                        answer.certain().len(),
                        reference.certain().len(),
                        answer.maybe().len(),
                        reference.maybe().len()
                    ),
                )
                .with_hint(
                    "merge and certification must be order-insensitive; look for state that \
                     keeps only the first or last reply"
                        .to_owned(),
                ),
            );
        }
    }
}

/// Runs every strategy under the reference schedule, five bounded
/// reorderings, and two straggler schedules, auditing each trace.
///
/// Straggler runs are exempt from the divergence comparison: blowing an
/// RPC past its retry budget legitimately degrades localized answers
/// (certain rows may become degraded maybes) — that is the designed
/// behavior, not a protocol bug.
pub fn check_protocol(fed: &Federation, query: &BoundQuery) -> Report {
    let source = query.source().to_string();
    let mut report = Report::new(format!("actor protocol for `{source}`"), source);
    let strategies = [
        DistributedStrategy::ca(),
        DistributedStrategy::bl(),
        DistributedStrategy::pl(),
    ];
    // Both wire dialects are audited: the legacy one-message-per-peer
    // shape, and the batched pipeline speaking BatchAssistantLookup
    // fragments with the shared lookup cache enabled.
    let pipelines = [
        PipelineConfig::sequential(),
        PipelineConfig::sequential().with_batch(4).with_cache(),
    ];
    for pipeline in pipelines {
        for strategy in strategies {
            let reference = run_protocol_with_pipeline(
                fed,
                query,
                strategy,
                &Schedule::uniform(),
                ActorBug::Healthy,
                pipeline,
            );
            analyze_run(&reference, None, &mut report);
            let reference_answer = reference.answer.ok();
            for schedule in Schedule::permutations() {
                let run = run_protocol_with_pipeline(
                    fed,
                    query,
                    strategy,
                    &schedule,
                    ActorBug::Healthy,
                    pipeline,
                );
                analyze_run(&run, reference_answer.as_ref(), &mut report);
            }
            for schedule in Schedule::stragglers() {
                let run = run_protocol_with_pipeline(
                    fed,
                    query,
                    strategy,
                    &schedule,
                    ActorBug::Healthy,
                    pipeline,
                );
                analyze_run(&run, None, &mut report);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedoq_core::oracle_answer;
    use fedoq_workload::university;

    fn setting() -> (Federation, BoundQuery) {
        let fed = university::federation().expect("university federation builds");
        let bound = fed
            .parse_and_bind(university::Q1)
            .expect("Q1 binds against the university schema");
        (fed, bound)
    }

    #[test]
    fn healthy_runs_match_the_oracle_and_audit_clean() {
        let (fed, bound) = setting();
        let oracle = oracle_answer(&fed, &bound);
        for strategy in [
            DistributedStrategy::ca(),
            DistributedStrategy::bl(),
            DistributedStrategy::pl(),
        ] {
            let run = run_protocol(
                &fed,
                &bound,
                strategy,
                &Schedule::uniform(),
                ActorBug::Healthy,
            );
            let answer = run.answer.clone().expect("healthy run answers");
            assert!(
                answer.same_classification(&oracle),
                "{} diverged from the oracle",
                strategy.name()
            );
            let mut report = Report::new("test", "");
            analyze_run(&run, Some(&oracle), &mut report);
            assert!(report.diagnostics.is_empty(), "{report}");
        }
    }

    #[test]
    fn silent_site_orphans_its_requests() {
        let (fed, bound) = setting();
        let run = run_protocol(
            &fed,
            &bound,
            DistributedStrategy::bl(),
            &Schedule::uniform(),
            ActorBug::Silent(DbId::new(1)),
        );
        let mut report = Report::new("test", "");
        analyze_run(&run, None, &mut report);
        assert!(report.fired("FQ202"), "{report}");
        // The answer still arrives — localized strategies degrade.
        assert!(run.answer.is_ok());
    }

    #[test]
    fn double_reply_is_caught_even_though_the_router_hides_it() {
        let (fed, bound) = setting();
        let run = run_protocol(
            &fed,
            &bound,
            DistributedStrategy::bl(),
            &Schedule::uniform(),
            ActorBug::DoubleReply(DbId::new(1)),
        );
        assert!(
            run.stale > 0,
            "the second reply should be discarded as stale"
        );
        let mut report = Report::new("test", "");
        analyze_run(&run, None, &mut report);
        assert!(report.fired("FQ201"), "{report}");
    }

    #[test]
    fn straggler_schedules_exercise_retry_and_stale_paths() {
        let (fed, bound) = setting();
        let mut saw_retry = false;
        for schedule in Schedule::stragglers() {
            let run = run_protocol(
                &fed,
                &bound,
                DistributedStrategy::bl(),
                &schedule,
                ActorBug::Healthy,
            );
            saw_retry |= run.retries > 0;
            let mut report = Report::new("test", "");
            analyze_run(&run, None, &mut report);
            assert!(report.diagnostics.is_empty(), "{report}");
        }
        assert!(saw_retry, "a 5s spike must blow at least one RPC window");
    }

    #[test]
    fn full_protocol_check_passes_on_the_university_example() {
        let (fed, bound) = setting();
        let report = check_protocol(&fed, &bound);
        assert!(report.is_sound(), "{report}");
        assert!(report.diagnostics.is_empty(), "{report}");
    }
}
