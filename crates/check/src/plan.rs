//! A strategy-agnostic plan IR the analyzer can interpret.
//!
//! The runtime strategies never materialize their step sequence — it is
//! implicit in control flow. The analyzer needs it explicit: a
//! [`PlanIr`] is the linearized sequence of phase-tagged steps a
//! strategy performs for one query, derived purely from the decomposed
//! query and the schema's availability facts ([`derive_plan`]). Fixtures
//! and tutorials can also build *unsound* plans by editing the derived
//! steps, which is exactly what the seeded self-test does.

use fedoq_object::DbId;
use fedoq_query::{plan_for_db, BoundPath, BoundQuery, PredId};
use fedoq_schema::GlobalSchema;
use fedoq_sim::{Phase, Site};
use std::collections::BTreeSet;
use std::fmt;

/// Which of the paper's strategies a plan implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// Centralized: ship all extents, evaluate at the global site
    /// (O→I→P after shipping).
    Ca,
    /// BasicLocalized: evaluate locally, then look up assistants, then
    /// certify (P→O→I).
    Bl,
    /// ParallelLocalized: static assistant lookups overlap local
    /// evaluation (O→P→I).
    Pl,
}

impl StrategyKind {
    /// All strategies, in the paper's order.
    pub const ALL: [StrategyKind; 3] = [StrategyKind::Ca, StrategyKind::Bl, StrategyKind::Pl];

    /// The paper's name.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::Ca => "CA",
            StrategyKind::Bl => "BL",
            StrategyKind::Pl => "PL",
        }
    }

    /// Parses a strategy name (`ca`, `bl`, `pl`; signature-pruning
    /// suffixes are accepted and ignored — pruning does not change the
    /// phase structure).
    pub fn parse(name: &str) -> Option<StrategyKind> {
        match name.to_ascii_lowercase().as_str() {
            "ca" => Some(StrategyKind::Ca),
            "bl" | "bl-s" => Some(StrategyKind::Bl),
            "pl" | "pl-s" => Some(StrategyKind::Pl),
            _ => None,
        }
    }

    /// The strategy's phase order, starting from the shipping phase.
    pub fn phase_order(self) -> [Phase; 4] {
        match self {
            StrategyKind::Ca => [Phase::Ship, Phase::O, Phase::I, Phase::P],
            StrategyKind::Bl => [Phase::Ship, Phase::P, Phase::O, Phase::I],
            StrategyKind::Pl => [Phase::Ship, Phase::O, Phase::P, Phase::I],
        }
    }

    /// Rank of `phase` in this strategy's order (lower runs earlier).
    pub fn phase_rank(self, phase: Phase) -> usize {
        self.phase_order()
            .iter()
            .position(|p| *p == phase)
            .unwrap_or(usize::MAX)
    }
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One step of a linearized plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanStep {
    /// Ship a site's projected extents to the global site (CA).
    Ship {
        /// The shipping site.
        db: DbId,
    },
    /// Merge isomeric copies into global objects at the global site
    /// (CA's phase O).
    MergeCopies,
    /// Ask an assistant site to decide a predicate's unsolved items.
    Lookup {
        /// Site holding the unsolved items.
        from: DbId,
        /// Site answering from its assistant copies.
        assistant: DbId,
        /// The predicate being decided.
        pred: PredId,
    },
    /// Fetch a locally unprojectable target's values from an assistant.
    CompleteTarget {
        /// Site with the projection gap.
        from: DbId,
        /// Site supplying the values.
        assistant: DbId,
        /// Target index in the select list.
        target: usize,
    },
    /// Evaluate the local query at a site (phase P).
    LocalEval {
        /// Evaluating site (`Site::Global` for CA's merged evaluation).
        site: Site,
        /// Predicates evaluated here.
        preds: Vec<PredId>,
    },
    /// Integrate verdicts into the certified answer (phase I).
    Certify {
        /// `(predicate, site)` pairs certification may take verdicts
        /// from.
        sources: Vec<(PredId, DbId)>,
    },
}

impl PlanStep {
    /// The execution phase this step belongs to.
    pub fn phase(&self) -> Phase {
        match self {
            PlanStep::Ship { .. } => Phase::Ship,
            PlanStep::MergeCopies | PlanStep::Lookup { .. } | PlanStep::CompleteTarget { .. } => {
                Phase::O
            }
            PlanStep::LocalEval { .. } => Phase::P,
            PlanStep::Certify { .. } => Phase::I,
        }
    }

    /// A short human-readable rendering.
    pub fn describe(&self) -> String {
        match self {
            PlanStep::Ship { db } => format!("ship extents of {db}"),
            PlanStep::MergeCopies => "merge isomeric copies at global".to_owned(),
            PlanStep::Lookup {
                from,
                assistant,
                pred,
            } => format!("lookup {pred}: {from} -> {assistant}"),
            PlanStep::CompleteTarget {
                from,
                assistant,
                target,
            } => format!("complete target #{target}: {from} -> {assistant}"),
            PlanStep::LocalEval { site, preds } => {
                let ps: Vec<String> = preds.iter().map(ToString::to_string).collect();
                format!("eval [{}] at {site}", ps.join(","))
            }
            PlanStep::Certify { sources } => format!("certify ({} verdict sources)", sources.len()),
        }
    }
}

/// A strategy's linearized plan for one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanIr {
    /// The strategy the plan claims to implement.
    pub strategy: StrategyKind,
    /// The steps, in execution order.
    pub steps: Vec<PlanStep>,
}

impl fmt::Display for PlanIr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} plan ({} steps):", self.strategy, self.steps.len())?;
        for (i, step) in self.steps.iter().enumerate() {
            writeln!(f, "  {i}. [{}] {}", step.phase(), step.describe())?;
        }
        Ok(())
    }
}

/// Options for plan derivation, mirroring the runtime's
/// `LocalizedConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanConfig {
    /// Emit [`PlanStep::CompleteTarget`] steps for locally
    /// unprojectable targets (the runtime's `complete_targets`).
    pub complete_targets: bool,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig {
            complete_targets: true,
        }
    }
}

/// Every component database the schema knows about.
pub fn all_dbs(schema: &GlobalSchema) -> Vec<DbId> {
    let mut dbs: BTreeSet<DbId> = BTreeSet::new();
    for (_, class) in schema.iter() {
        dbs.extend(class.hosting_dbs());
    }
    dbs.into_iter().collect()
}

/// Sites able to decide `path` from step `from` on: every remaining step
/// must be defined by the site's constituent of the step's class. These
/// are the *deciders* an assistant lookup can target.
pub fn deciders(schema: &GlobalSchema, path: &BoundPath, from: usize) -> Vec<DbId> {
    all_dbs(schema)
        .into_iter()
        .filter(|&db| {
            path.steps().skip(from).all(|(class, slot)| {
                schema
                    .class(class)
                    .constituent_for(db)
                    .is_some_and(|c| !c.is_missing(slot))
            })
        })
        .collect()
}

/// Sites whose constituent of the path's terminal class defines the
/// terminal attribute — the only sites whose verdicts can certify the
/// predicate.
pub fn terminal_capable(schema: &GlobalSchema, path: &BoundPath) -> Vec<DbId> {
    let last = path.len() - 1;
    let class = schema.class(path.class(last));
    class
        .constituents()
        .iter()
        .filter(|c| !c.is_missing(path.slot(last)))
        .map(fedoq_schema::Constituent::db)
        .collect()
}

/// Derives the canonical (sound-by-construction) plan a strategy
/// executes for `bound`, from schema-level availability facts alone.
pub fn derive_plan(
    bound: &BoundQuery,
    schema: &GlobalSchema,
    strategy: StrategyKind,
    config: &PlanConfig,
) -> PlanIr {
    match strategy {
        StrategyKind::Ca => derive_centralized(bound, schema),
        StrategyKind::Bl => derive_localized(bound, schema, StrategyKind::Bl, config),
        StrategyKind::Pl => derive_localized(bound, schema, StrategyKind::Pl, config),
    }
}

fn derive_centralized(bound: &BoundQuery, schema: &GlobalSchema) -> PlanIr {
    let mut ship_dbs: BTreeSet<DbId> = BTreeSet::new();
    for class in bound.involved_classes() {
        ship_dbs.extend(schema.class(class).hosting_dbs());
    }
    let mut steps: Vec<PlanStep> = ship_dbs
        .into_iter()
        .map(|db| PlanStep::Ship { db })
        .collect();
    steps.push(PlanStep::MergeCopies);
    // Phase I: missing values are instantiated from whichever merged copy
    // defines the attribute, so certification may source any
    // terminal-capable site.
    let mut sources = Vec::new();
    for pred in bound.predicates() {
        for db in terminal_capable(schema, pred.path()) {
            sources.push((pred.id(), db));
        }
    }
    steps.push(PlanStep::Certify { sources });
    steps.push(PlanStep::LocalEval {
        site: Site::Global,
        preds: bound
            .predicates()
            .iter()
            .map(fedoq_query::BoundPredicate::id)
            .collect(),
    });
    PlanIr {
        strategy: StrategyKind::Ca,
        steps,
    }
}

fn derive_localized(
    bound: &BoundQuery,
    schema: &GlobalSchema,
    strategy: StrategyKind,
    config: &PlanConfig,
) -> PlanIr {
    let hosting: Vec<_> = all_dbs(schema)
        .into_iter()
        .filter_map(|db| plan_for_db(bound, schema, db))
        .collect();

    let mut evals = Vec::new();
    let mut lookups = Vec::new();
    let mut completions = Vec::new();
    let mut sources = Vec::new();
    for site_plan in &hosting {
        let db = site_plan.db();
        evals.push(PlanStep::LocalEval {
            site: Site::Db(db),
            preds: site_plan.local_preds().collect(),
        });
        for pred in site_plan.local_preds() {
            sources.push((pred, db));
        }
        for tp in site_plan.truncated_preds(bound) {
            let path = bound.predicate(tp.pred).path();
            for assistant in deciders(schema, path, tp.prefix_len) {
                lookups.push(PlanStep::Lookup {
                    from: db,
                    assistant,
                    pred: tp.pred,
                });
                sources.push((tp.pred, assistant));
            }
        }
        if config.complete_targets {
            for (i, target) in bound.targets().iter().enumerate() {
                let prefix = site_plan.target_prefix_len(i);
                if prefix < target.len() {
                    for assistant in deciders(schema, target, prefix) {
                        completions.push(PlanStep::CompleteTarget {
                            from: db,
                            assistant,
                            target: i,
                        });
                    }
                }
            }
        }
    }

    let mut steps = Vec::new();
    match strategy {
        // BL: P (local evaluation) -> O (lookups) -> I (certification).
        StrategyKind::Bl => {
            steps.extend(evals);
            steps.extend(lookups);
            steps.extend(completions);
        }
        // PL: O (static lookups) -> P (evaluation) -> I.
        StrategyKind::Pl => {
            steps.extend(lookups);
            steps.extend(completions);
            steps.extend(evals);
        }
        StrategyKind::Ca => unreachable!("derive_localized is never called for CA"),
    }
    steps.push(PlanStep::Certify { sources });
    PlanIr { strategy, steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedoq_workload::university;

    fn setting() -> (GlobalSchema, BoundQuery) {
        let fed = university::federation().expect("university federation builds");
        let bound = fed
            .parse_and_bind(university::Q1)
            .expect("Q1 binds against the university schema");
        (fed.global_schema().clone(), bound)
    }

    #[test]
    fn phase_ranks_encode_the_paper_orders() {
        assert_eq!(StrategyKind::Ca.phase_rank(Phase::O), 1);
        assert_eq!(StrategyKind::Ca.phase_rank(Phase::P), 3);
        assert_eq!(StrategyKind::Bl.phase_rank(Phase::P), 1);
        assert_eq!(StrategyKind::Bl.phase_rank(Phase::I), 3);
        assert_eq!(StrategyKind::Pl.phase_rank(Phase::O), 1);
        assert_eq!(StrategyKind::Pl.phase_rank(Phase::P), 2);
        assert_eq!(StrategyKind::parse("BL-S"), Some(StrategyKind::Bl));
        assert_eq!(StrategyKind::parse("nope"), None);
    }

    #[test]
    fn derived_plans_follow_their_phase_order() {
        let (schema, bound) = setting();
        for strategy in StrategyKind::ALL {
            let plan = derive_plan(&bound, &schema, strategy, &PlanConfig::default());
            let mut max_rank = 0;
            for step in &plan.steps {
                let rank = strategy.phase_rank(step.phase());
                assert!(
                    rank >= max_rank,
                    "{strategy}: step `{}` out of order",
                    step.describe()
                );
                max_rank = rank;
            }
        }
    }

    #[test]
    fn bl_plan_covers_every_truncated_predicate() {
        let (schema, bound) = setting();
        let plan = derive_plan(&bound, &schema, StrategyKind::Bl, &PlanConfig::default());
        // DB0 lacks address and speciality: its two truncated predicates
        // must each get at least one lookup.
        let db0 = DbId::new(0);
        for pred in [PredId::new(0), PredId::new(1)] {
            assert!(
                plan.steps.iter().any(|s| matches!(
                    s,
                    PlanStep::Lookup { from, pred: p, .. } if *from == db0 && *p == pred
                )),
                "no lookup covers {pred} at {db0}"
            );
        }
        assert!(plan.to_string().contains("certify"));
    }

    #[test]
    fn deciders_follow_availability() {
        let (schema, bound) = setting();
        // Predicate 1 is advisor.speciality; only the paper's DB2 (our
        // DB1) stores Teacher.speciality.
        let path = bound.predicate(PredId::new(1)).path();
        assert_eq!(deciders(&schema, path, 1), vec![DbId::new(1)]);
        assert_eq!(terminal_capable(&schema, path), vec![DbId::new(1)]);
        assert_eq!(all_dbs(&schema).len(), 3);
    }
}
