//! The FQ300-series concurrency analyzer for the TCP serving layer.
//!
//! The serving layer (`fedoq-wire`'s hub, job queue, and worker pool)
//! coordinates real OS threads through the instrumented primitives of
//! [`fedoq_sync`]. This module consumes their traces from two angles:
//!
//! * [`analyze_trace`] — pure trace interpretation. Builds the
//!   lock-acquisition-order graph from `Acquire` events (each held lock
//!   contributes an edge to the newly acquired one) and reports any
//!   cycle as FQ300; runs the Eraser lockset algorithm over
//!   [`fedoq_sync::TracedData`] accesses (intersecting the locks held at
//!   every access to a cell) and reports empty-intersection shared
//!   writes as FQ301; audits condvar discipline (raw *untimed* waits
//!   lose wakeups — FQ302; guarded and raw-timed waits are accepted).
//! * [`explore_serving`] — the deterministic schedule explorer. Boots a
//!   real federation *in this process* ([`fedoq_wire::spawn_site`] ×3 +
//!   [`fedoq_wire::spawn_serve`]), then replays the same query set under
//!   seeded chaos schedules ([`fedoq_sync::Chaos`]: yields, short
//!   sleeps, rare stragglers). Each seed's trace is fingerprinted with
//!   [`fedoq_sync::Trace::signature`]; seeds that reproduce an already
//!   seen acquisition interleaving are counted but not re-analyzed — a
//!   bounded DPOR-style reduction that spends the schedule budget on
//!   *distinct* interleavings. Every schedule's rendered answers must be
//!   byte-identical to the single-threaded
//!   [`fedoq_net::DistributedExecutor::run_local`] baseline; divergence
//!   is FQ303 (the thread-schedule analogue of FQ204).
//!
//! The explorer leaks its daemon threads by design (site and serve
//! stacks run until process exit), so it is built for one-shot CLI and
//! test processes, not long-lived embedders.

use crate::diag::{Diagnostic, Report};
use crate::lints;
use fedoq_net::{DistributedExecutor, DistributedStrategy, RpcConfig};
use fedoq_sync::{begin_trace, set_chaos, Chaos, EventKind, LockId, Trace};
use fedoq_wire::{render_answer, spawn_serve, spawn_site, ServeOpts, SiteOpts, WireClient};
use fedoq_workload::university;
use std::collections::{BTreeMap, BTreeSet};

// ---------------------------------------------------------------------
// Trace interpretation: FQ300 / FQ301 / FQ302.
// ---------------------------------------------------------------------

/// Runs the three trace lints over `trace`, pushing findings into
/// `report`. Lock-order edges and condvar findings are keyed by *label*
/// (the class of lock), so one diagnostic covers every instance of a
/// pattern; lockset intersection runs per *instance* (two threads must
/// share an actual lock, not just a label, to be protected).
pub fn analyze_trace(trace: &Trace, report: &mut Report) {
    lock_order_cycles(trace, report);
    lockset_races(trace, report);
    condvar_discipline(trace, report);
}

/// FQ300: cycles in the label-level lock-acquisition-order graph.
fn lock_order_cycles(trace: &Trace, report: &mut Report) {
    // held → acquired edges, collapsed to labels.
    let mut edges: BTreeMap<&'static str, BTreeSet<&'static str>> = BTreeMap::new();
    for ev in &trace.events {
        let EventKind::Acquire { lock, held } = &ev.kind else {
            continue;
        };
        for h in held {
            if h.label != lock.label {
                edges.entry(h.label).or_default().insert(lock.label);
            }
        }
    }
    // For every edge a→b, a path b→…→a closes a cycle. Dedup cycles by
    // their unordered endpoint pair so each inversion reports once.
    let mut seen: BTreeSet<(&str, &str)> = BTreeSet::new();
    for (&a, succs) in &edges {
        for &b in succs {
            let key = if a < b { (a, b) } else { (b, a) };
            if seen.contains(&key) {
                continue;
            }
            if let Some(path) = find_path(&edges, b, a) {
                seen.insert(key);
                let mut cycle = vec![a];
                cycle.extend(path);
                report.push(
                    Diagnostic::new(
                        lints::LOCK_ORDER_CYCLE,
                        format!(
                            "locks are acquired in cyclic order: {}",
                            cycle
                                .iter()
                                .map(|l| format!("`{l}`"))
                                .collect::<Vec<_>>()
                                .join(" -> ")
                        ),
                    )
                    .with_hint(format!(
                        "impose one global acquisition order (e.g. always take `{}` before \
                         `{}`), or narrow one critical section so the locks are never held \
                         together",
                        key.0, key.1
                    )),
                );
            }
        }
    }
}

/// BFS path `from → … → to` through the label graph, inclusive of `to`.
fn find_path(
    edges: &BTreeMap<&'static str, BTreeSet<&'static str>>,
    from: &'static str,
    to: &'static str,
) -> Option<Vec<&'static str>> {
    let mut prev: BTreeMap<&'static str, &'static str> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([from]);
    let mut visited = BTreeSet::from([from]);
    while let Some(node) = queue.pop_front() {
        if node == to {
            let mut path = vec![node];
            let mut cur = node;
            while let Some(&p) = prev.get(cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for &next in edges.get(node).into_iter().flatten() {
            if visited.insert(next) {
                prev.insert(next, node);
                queue.push_back(next);
            }
        }
    }
    None
}

/// FQ301: the Eraser lockset discipline over [`fedoq_sync::TracedData`]
/// accesses.
fn lockset_races(trace: &Trace, report: &mut Report) {
    struct CellState {
        threads: BTreeSet<u64>,
        any_write: bool,
        /// Intersection of locks held across all accesses; `None`
        /// before the first access.
        lockset: Option<BTreeSet<LockId>>,
    }
    let mut cells: BTreeMap<LockId, CellState> = BTreeMap::new();
    for ev in &trace.events {
        let EventKind::Access { cell, write, locks } = &ev.kind else {
            continue;
        };
        let state = cells.entry(*cell).or_insert(CellState {
            threads: BTreeSet::new(),
            any_write: false,
            lockset: None,
        });
        state.threads.insert(ev.thread);
        state.any_write |= write;
        let held: BTreeSet<LockId> = locks.iter().copied().collect();
        state.lockset = Some(match state.lockset.take() {
            None => held,
            Some(prev) => prev.intersection(&held).copied().collect(),
        });
    }
    let mut fired: BTreeSet<&'static str> = BTreeSet::new();
    for (cell, state) in &cells {
        let unprotected = matches!(&state.lockset, Some(set) if set.is_empty());
        if state.threads.len() >= 2 && state.any_write && unprotected && fired.insert(cell.label) {
            report.push(
                Diagnostic::new(
                    lints::LOCKSET_RACE,
                    format!(
                        "cell `{}` is written by {} threads with no common lock",
                        cell.label,
                        state.threads.len()
                    ),
                )
                .with_hint(format!(
                    "guard every access to `{}` with one shared fedoq_sync::Mutex \
                     (the lockset intersection across accesses must stay non-empty)",
                    cell.label
                )),
            );
        }
    }
}

/// FQ302: raw untimed condvar waits (nothing re-checks the predicate,
/// nothing bounds a lost wakeup).
fn condvar_discipline(trace: &Trace, report: &mut Report) {
    let mut fired: BTreeSet<(&'static str, &'static str)> = BTreeSet::new();
    for ev in &trace.events {
        let EventKind::WaitBegin {
            cond,
            lock,
            timed,
            guarded,
        } = &ev.kind
        else {
            continue;
        };
        if !timed && !guarded && fired.insert((cond, lock.label)) {
            report.push(
                Diagnostic::new(
                    lints::CONDVAR_WAKEUP_LOSS,
                    format!(
                        "condvar `{cond}` is waited on raw and untimed (lock `{}`); a notify \
                         landing before the park is lost and the waiter sleeps forever",
                        lock.label
                    ),
                )
                .with_hint(
                    "use wait_while / wait_timeout_while (the shim re-checks the predicate), \
                     or wait_timeout where empty wakeups are handled by contract",
                ),
            );
        }
    }
}

/// FQ303 helper: diffs one schedule's rendered answer against the
/// schedule-independent baseline, reporting divergence. `what` names
/// the workload (strategy, query) and `seed` the schedule that
/// produced `got`.
pub fn check_divergence(
    what: &str,
    seed: u64,
    got: &[String],
    baseline: &[String],
    report: &mut Report,
) {
    if got != baseline {
        report.push(
            Diagnostic::new(
                lints::ANSWER_DIVERGENCE,
                format!(
                    "seed {seed}: {what} diverged from the single-threaded baseline \
                     ({} vs {} rows)",
                    got.len(),
                    baseline.len()
                ),
            )
            .with_hint(
                "worker interleaving is leaking into results; make the answer a pure \
                 function of the query and the data, not of thread timing",
            ),
        );
    }
}

// ---------------------------------------------------------------------
// The schedule explorer: FQ303 (plus FQ300–302 on live traces).
// ---------------------------------------------------------------------

/// Explorer configuration.
#[derive(Debug, Clone)]
pub struct ExploreOpts {
    /// Chaos seeds to try, in order.
    pub seeds: Vec<u64>,
    /// Stop once this many *distinct* acquisition interleavings have
    /// been analyzed (the DPOR-style budget; seeds reproducing a seen
    /// signature are skipped cheaply).
    pub target_schedules: usize,
    /// Serve worker threads.
    pub workers: usize,
    /// Strategies each schedule executes (every one is diffed against
    /// its single-threaded baseline).
    pub strategies: Vec<&'static str>,
}

impl Default for ExploreOpts {
    fn default() -> ExploreOpts {
        ExploreOpts {
            seeds: (1..=12).collect(),
            target_schedules: 6,
            workers: 2,
            strategies: vec!["ca", "bl", "pl"],
        }
    }
}

/// What one explorer run did, beyond the findings.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// The findings (FQ300–FQ303).
    pub report: Report,
    /// Seeds actually executed.
    pub schedules_run: usize,
    /// Distinct acquisition interleavings among them.
    pub distinct_schedules: usize,
}

/// Generous wall-clock RPC policy: schedule exploration perturbs timing
/// on purpose, so classification must never hinge on a deadline.
fn explorer_rpc() -> RpcConfig {
    RpcConfig {
        timeout_us: 5_000_000.0,
        retries: 3,
        ..RpcConfig::default()
    }
}

/// Boots a university federation inside this process and drives it
/// through seeded chaos schedules, asserting answer-divergence-freedom
/// (FQ303) and running the trace lints (FQ300–302) over every distinct
/// interleaving.
///
/// Panics only if the in-process federation cannot boot at all (bind
/// failure); analysis findings are returned, never panicked.
pub fn explore_serving(opts: &ExploreOpts) -> ExploreOutcome {
    let mut report = Report::new(
        format!(
            "schedule explorer: university Q1 x {:?}, {} workers, {} seeds",
            opts.strategies,
            opts.workers,
            opts.seeds.len()
        ),
        String::new(),
    );

    // Single-threaded baselines first, before any chaos is installed.
    let mut baseline: BTreeMap<&'static str, Vec<String>> = BTreeMap::new();
    let fed = university::federation().expect("university federation builds");
    let query = fed.parse_and_bind(university::Q1).expect("Q1 binds");
    for &name in &opts.strategies {
        let strategy = DistributedStrategy::parse(name).expect("known strategy");
        let outcome = DistributedExecutor::new()
            .run_local(&fed, &query, strategy)
            .expect("local baseline executes");
        baseline.insert(name, render_answer(&outcome.answer));
    }

    // One in-process federation for the whole exploration: three site
    // stacks plus the serve frontend, all on loopback.
    let rpc = explorer_rpc();
    let mut site_addrs = Vec::new();
    for db in 0..3u16 {
        let addr = spawn_site(&SiteOpts {
            db,
            listen: "127.0.0.1:0".into(),
            workload: "university".into(),
            rpc,
            pipeline: Default::default(),
        })
        .expect("site spawns in-process");
        site_addrs.push(addr.to_string());
    }
    let serve_addr = spawn_serve(&ServeOpts {
        listen: "127.0.0.1:0".into(),
        sites: site_addrs,
        workload: "university".into(),
        workers: opts.workers.max(1),
        rpc,
        pipeline: Default::default(),
    })
    .expect("serve spawns in-process");

    let mut session = begin_trace();
    let mut signatures: BTreeSet<u64> = BTreeSet::new();
    let mut schedules_run = 0usize;
    for &seed in &opts.seeds {
        if signatures.len() >= opts.target_schedules {
            break;
        }
        set_chaos(Some(Chaos::seeded(seed)));
        // A fresh connection per seed so connection setup is part of the
        // perturbed schedule too.
        let answers: Vec<(&'static str, Result<Vec<String>, String>)> =
            match WireClient::connect(&serve_addr.to_string()) {
                Ok(mut client) => opts
                    .strategies
                    .iter()
                    .map(|&name| {
                        let got = match client.query(university::Q1, name) {
                            Ok(Ok(answer)) => Ok(answer.rows),
                            Ok(Err(e)) => Err(format!("server error: {e}")),
                            Err(e) => Err(format!("transport error: {e}")),
                        };
                        (name, got)
                    })
                    .collect(),
                Err(e) => vec![("connect", Err(format!("connect error: {e}")))],
            };
        set_chaos(None);
        schedules_run += 1;

        let slice = session.take();
        for (name, got) in &answers {
            match got {
                Ok(rows) => {
                    if let Some(expected) = baseline.get(name) {
                        check_divergence(
                            &format!("strategy {name}"),
                            seed,
                            rows,
                            expected,
                            &mut report,
                        );
                    }
                }
                Err(e) => {
                    report.push(Diagnostic::new(
                        lints::ANSWER_DIVERGENCE,
                        format!("seed {seed}: strategy {name} failed under chaos: {e}"),
                    ));
                }
            }
        }
        // Only distinct interleavings pay for trace analysis.
        if signatures.insert(slice.signature(&[])) {
            analyze_trace(&slice, &mut report);
        }
    }
    drop(session.finish());

    ExploreOutcome {
        distinct_schedules: signatures.len(),
        schedules_run,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace_is_clean() {
        let mut report = Report::new("empty", "");
        analyze_trace(&Trace::default(), &mut report);
        assert!(report.diagnostics.is_empty());
    }

    #[test]
    fn path_finder_handles_chains_and_absence() {
        let mut edges: BTreeMap<&'static str, BTreeSet<&'static str>> = BTreeMap::new();
        edges.entry("a").or_default().insert("b");
        edges.entry("b").or_default().insert("c");
        assert_eq!(find_path(&edges, "a", "c"), Some(vec!["a", "b", "c"]));
        assert_eq!(find_path(&edges, "c", "a"), None);
    }
}
