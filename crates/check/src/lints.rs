//! The lint catalog: every check `fedoq-check` can report, with stable
//! ids.
//!
//! `FQ1xx` lints come from the plan-soundness analyzer
//! ([`crate::analyze`]); `FQ2xx` lints come from the actor-protocol
//! checker ([`crate::protocol`]); `FQ3xx` lints come from the
//! concurrency analyzer ([`crate::concurrency`]), the wire-codec
//! auditor ([`crate::wirecheck`]), the replan auditor
//! ([`crate::replan`]), and the live-trace auditor ([`crate::live`]).
//! Ids are stable across releases so CI suppressions and documentation
//! can reference them.

use crate::diag::{Lint, Severity};

/// FQ100: a plan step runs in a phase earlier steps should follow.
///
/// The paper's strategies are *defined* by their phase orders — CA is
/// O→I→P, BL is P→O→I, PL is O→P→I. A plan whose steps violate its
/// strategy's order computes something else entirely (e.g. certifying
/// before the assistant verdicts exist).
pub const PHASE_ORDER: Lint = Lint {
    id: "FQ100",
    slug: "phase-order",
    severity: Severity::Deny,
    summary: "plan steps violate the strategy's phase-order invariant",
};

/// FQ101: a maybe-producing predicate has a reachable decider but no
/// lookup step covering it.
///
/// A predicate truncated at a site produces unknown verdicts there; if
/// some other site *could* decide it (it defines the whole remaining
/// path) but the plan never asks, rows are reported maybe — or worse,
/// certified from incomplete evidence — when the federation actually
/// holds the answer.
pub const UNCOVERED_MAYBE: Lint = Lint {
    id: "FQ101",
    slug: "uncovered-maybe",
    severity: Severity::Deny,
    summary: "maybe-producing predicate has deciders but no assistant lookup",
};

/// FQ102: certification consumes verdicts from a site that lacks the
/// attribute.
///
/// A site whose constituent class is missing the predicate's terminal
/// attribute can only ever answer *unknown*; sourcing certification from
/// it risks promoting a maybe row to certain on no evidence.
pub const INCAPABLE_CERTIFIER: Lint = Lint {
    id: "FQ102",
    slug: "incapable-certifier",
    severity: Severity::Deny,
    summary: "certification sourced from a site lacking the attribute",
};

/// FQ103: a conjunction is provably unsatisfiable from the literals
/// alone.
///
/// Two conjuncts over the same path whose value constraints cannot be
/// met simultaneously (e.g. `p = 1 and p = 2`) make the whole query
/// dead: it can never return a certain row and the plan's work is
/// wasted.
pub const DEAD_SUBQUERY: Lint = Lint {
    id: "FQ103",
    slug: "dead-subquery",
    severity: Severity::Warn,
    summary: "conjunction is statically unsatisfiable",
};

/// FQ104: a target path is not fully projectable at a site and no
/// completion step fetches the remainder.
pub const TARGET_GAP: Lint = Lint {
    id: "FQ104",
    slug: "target-gap",
    severity: Severity::Warn,
    summary: "locally unprojectable target has no completion step",
};

/// FQ105: a truncated predicate has *no* decider anywhere in the
/// federation.
///
/// Informational: nothing is wrong — the paper's semantics require the
/// affected rows to surface as maybe results, and the analyzer confirms
/// the plan cannot (and must not) certify them.
pub const UNCERTIFIABLE_MAYBE: Lint = Lint {
    id: "FQ105",
    slug: "uncertifiable-maybe",
    severity: Severity::Info,
    summary: "predicate has no decider; matching rows must surface as maybe",
};

/// FQ106: a plan was priced against a statistics catalog older than the
/// federation's mutation generation.
///
/// The adaptive planner ranks strategies from scanned cardinalities,
/// null fractions, and isomeric overlap; once a store mutates, those
/// numbers describe a federation that no longer exists. The chosen plan
/// still returns the correct answer (planning never changes results) —
/// it just may no longer be the cheapest.
pub const STALE_CATALOG: Lint = Lint {
    id: "FQ106",
    slug: "stale-catalog",
    severity: Severity::Warn,
    summary: "plan priced against a statistics catalog older than the federation",
};

/// FQ200: an execution reached a state where no progress is possible.
pub const DEADLOCK: Lint = Lint {
    id: "FQ200",
    slug: "deadlock",
    severity: Severity::Deny,
    summary: "message protocol deadlocks under some delivery schedule",
};

/// FQ201: one request was answered more than once.
///
/// The router gives at-most-once completion per correlation id, so the
/// extra replies are silently discarded as stale — masking an actor bug
/// that would double-charge a real network.
pub const DOUBLE_REPLY: Lint = Lint {
    id: "FQ201",
    slug: "double-reply",
    severity: Severity::Deny,
    summary: "a request was answered more than once",
};

/// FQ202: a delivered request's correlation id never received a reply.
pub const ORPHANED_RPC: Lint = Lint {
    id: "FQ202",
    slug: "orphaned-rpc",
    severity: Severity::Deny,
    summary: "a delivered request was never answered (orphaned correlation id)",
};

/// FQ203: a response was sent for a correlation id no request used.
pub const UNSOLICITED_RESPONSE: Lint = Lint {
    id: "FQ203",
    slug: "unsolicited-response",
    severity: Severity::Deny,
    summary: "response sent for an unknown correlation id",
};

/// FQ204: the certified answer changed under a different delivery
/// schedule.
///
/// The deterministic runtime makes answers a function of the delivery
/// order; a strategy whose classification depends on that order is
/// mishandling stale responses or racing its own phases.
pub const SCHEDULE_DIVERGENCE: Lint = Lint {
    id: "FQ204",
    slug: "schedule-divergence",
    severity: Severity::Deny,
    summary: "answer classification depends on the message delivery schedule",
};

/// FQ300: two threads acquire the same locks in opposite orders.
///
/// The serving layer holds locks across writer flushes and job
/// hand-offs; a cycle in the lock-acquisition-order graph means some
/// interleaving deadlocks both threads — on a real deployment that is a
/// hung frontend, not a failed test.
pub const LOCK_ORDER_CYCLE: Lint = Lint {
    id: "FQ300",
    slug: "lock-order-cycle",
    severity: Severity::Deny,
    summary: "threads acquire locks in cyclic order; some schedule deadlocks",
};

/// FQ301: a shared cell is written without any common lock (Eraser's
/// lockset discipline).
///
/// If the intersection of locks held across all accesses to a cell is
/// empty while at least two threads touch it and at least one writes,
/// no mutual exclusion protects the cell; on the real wire that is a
/// data race, and under the explorer it shows up as answers that depend
/// on thread timing.
pub const LOCKSET_RACE: Lint = Lint {
    id: "FQ301",
    slug: "lockset-race",
    severity: Severity::Deny,
    summary: "shared cell accessed by multiple threads with no common lock",
};

/// FQ302: a condition variable is waited on raw and untimed.
///
/// An untimed `wait` outside a predicate loop loses wakeups: a notify
/// that lands between the predicate check and the park never arrives,
/// and the waiter sleeps forever. Guarded waits (`wait_while`,
/// `wait_timeout_while`) re-check the predicate; raw *timed* waits are
/// accepted where the timeout is the contract (the hub's inbound poll).
pub const CONDVAR_WAKEUP_LOSS: Lint = Lint {
    id: "FQ302",
    slug: "condvar-wakeup-loss",
    severity: Severity::Deny,
    summary: "raw untimed condvar wait can miss its wakeup and sleep forever",
};

/// FQ303: the served answer changed across explored thread schedules.
///
/// The schedule explorer runs the same query set against the same
/// federation under seeded thread perturbations; every schedule must
/// produce byte-identical rendered answers. Divergence means worker
/// interleaving leaks into results — the concurrent analogue of FQ204.
pub const ANSWER_DIVERGENCE: Lint = Lint {
    id: "FQ303",
    slug: "answer-divergence",
    severity: Severity::Deny,
    summary: "served answer depends on the thread schedule",
};

/// FQ304: encoder and decoder tag tables disagree for a wire family.
///
/// Every tag the encoder can emit must be accepted by the decoder
/// (otherwise peers reject live traffic), and every tag the decoder
/// accepts must be emitted by some variant (otherwise dead tags mask
/// version skew). Computed from the shipped codec, not a description.
pub const TAG_TABLE_MISMATCH: Lint = Lint {
    id: "FQ304",
    slug: "tag-table-mismatch",
    severity: Severity::Deny,
    summary: "encoder/decoder tag tables disagree for a wire enum family",
};

/// FQ305: a resource-bound probe was accepted or panicked.
///
/// Oversized frame/sequence/string headers and over-deep value nests
/// are attacker-controlled allocations; each probe must be *rejected*
/// with a decode error. Acceptance is an unbounded allocation, a panic
/// is a remote crash.
pub const BOUND_VIOLATION: Lint = Lint {
    id: "FQ305",
    slug: "bound-violation",
    severity: Severity::Deny,
    summary: "hostile size/depth input not cleanly rejected by the codec",
};

/// FQ306: wire versioning is unsound — skewed frames get through, or
/// the grammar changed without a version bump.
///
/// Frames stamped `VERSION ± 1` must be rejected (not panic, not parse);
/// and the grammar fingerprint may only move together with the version.
/// A silent grammar change ships peers that disagree about bytes while
/// claiming the same version.
pub const VERSION_SKEW: Lint = Lint {
    id: "FQ306",
    slug: "version-skew",
    severity: Severity::Deny,
    summary: "version-skewed frames accepted, or grammar changed without a version bump",
};

/// FQ307: a mid-flight replan re-dispatched completed work or dropped a
/// hosting site.
///
/// The scheduler may re-price and re-dispatch *unfinished* sites when
/// they straggle, but a site whose reply is already merged must never
/// be dispatched again (certifying its verdicts twice can promote a
/// maybe row on double-counted evidence), and every hosting site must
/// stay covered — completed, re-dispatched, or retained in flight — or
/// its absence elimination is silently lost.
pub const REPLAN_UNSOUND: Lint = Lint {
    id: "FQ307",
    slug: "replan-unsound",
    severity: Severity::Deny,
    summary: "mid-flight replan re-dispatched merged work or dropped a hosting site",
};

/// FQ308: a live delta stream certified (or eliminated) a maybe row
/// without any logged change or heal that could have flipped its
/// condition.
///
/// The live reactor records every consumed change, every reachability
/// transition, and every maybe resolution with the classes/sites of the
/// condition atoms it attributes the flip to. A resolution is *founded*
/// only if some earlier logged change touched one of those classes (or
/// was class-unresolvable, a wildcard) or some earlier heal restored one
/// of those sites. An unfounded resolution means the incremental path
/// invented evidence — the exact failure the differential suite exists
/// to rule out, made auditable from a recorded trace.
pub const UNFOUNDED_FLIP: Lint = Lint {
    id: "FQ308",
    slug: "live-unfounded-flip",
    severity: Severity::Deny,
    summary: "live delta resolved a maybe with no logged change satisfying its condition",
};

/// Every lint in the catalog, in id order.
pub const ALL: [Lint; 21] = [
    PHASE_ORDER,
    UNCOVERED_MAYBE,
    INCAPABLE_CERTIFIER,
    DEAD_SUBQUERY,
    TARGET_GAP,
    UNCERTIFIABLE_MAYBE,
    STALE_CATALOG,
    DEADLOCK,
    DOUBLE_REPLY,
    ORPHANED_RPC,
    UNSOLICITED_RESPONSE,
    SCHEDULE_DIVERGENCE,
    LOCK_ORDER_CYCLE,
    LOCKSET_RACE,
    CONDVAR_WAKEUP_LOSS,
    ANSWER_DIVERGENCE,
    TAG_TABLE_MISMATCH,
    BOUND_VIOLATION,
    VERSION_SKEW,
    REPLAN_UNSOUND,
    UNFOUNDED_FLIP,
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn ids_are_unique_and_stable() {
        let ids: BTreeSet<&str> = ALL.iter().map(|l| l.id).collect();
        assert_eq!(ids.len(), ALL.len());
        assert!(ALL.iter().all(|l| l.id.starts_with("FQ")));
        // Plan lints are FQ1xx, protocol lints FQ2xx, concurrency and
        // wire-safety lints FQ3xx.
        assert!(ALL.iter().filter(|l| l.id < "FQ200").count() == 7);
        assert!(
            ALL.iter()
                .filter(|l| ("FQ200".."FQ300").contains(&l.id))
                .count()
                == 5
        );
        assert!(ALL.iter().filter(|l| l.id >= "FQ300").count() == 9);
    }
}
