//! The live-trace auditor (FQ308).
//!
//! The subscription reactor in `fedoq-live` records an audit trail: the
//! change records it consumed (with their resolved global classes), the
//! reachability transitions it observed, and — for every maybe row it
//! certified or eliminated — the classes and sites of the condition
//! atoms it attributes the flip to. This module replays that trail and
//! checks each resolution is *founded*:
//!
//! * some **earlier** logged change touched one of the resolution's
//!   classes, or was class-unresolvable (a wildcard — the reactor is
//!   allowed to re-evaluate everything for it); or
//! * some **earlier** heal restored one of the resolution's sites
//!   (degraded rows re-condition when a partition heals).
//!
//! A resolution with neither is a reclassification the recorded inputs
//! cannot explain: either the reactor invented evidence or the trace is
//! incomplete — both must fail loudly rather than ship a wrong certain
//! row to a subscriber.

use crate::diag::{Diagnostic, Report};
use crate::lints;
use fedoq_live::LiveTraceEvent;
use fedoq_object::{DbId, GlobalClassId};

/// Audits a recorded reactor trail, appending FQ308 findings.
pub fn analyze_live(trace: &[LiveTraceEvent], report: &mut Report) {
    // Everything a *later* resolution may cite as its cause.
    let mut touched: Vec<Option<GlobalClassId>> = Vec::new();
    let mut healed: Vec<DbId> = Vec::new();
    for event in trace {
        match event {
            LiveTraceEvent::Change { class, .. } => touched.push(*class),
            LiveTraceEvent::SiteHealed { db } => healed.push(*db),
            LiveTraceEvent::Resolved {
                sub,
                goid,
                to_certain,
                classes,
                sites,
            } => {
                let wildcard = touched.iter().any(Option::is_none);
                let by_change = wildcard || classes.iter().any(|c| touched.contains(&Some(*c)));
                let by_heal = sites.iter().any(|s| healed.contains(s));
                if !by_change && !by_heal {
                    let verdict = if *to_certain {
                        "certified"
                    } else {
                        "eliminated"
                    };
                    report.push(
                        Diagnostic::new(
                            lints::UNFOUNDED_FLIP,
                            format!(
                                "subscription {sub}: {verdict} maybe row {goid} but no \
                                 logged change touched its condition's classes {classes:?} \
                                 and no heal restored its sites {sites:?}",
                            ),
                        )
                        .with_hint(
                            "a resolution must follow a change record whose class is in \
                             the flipped condition (or is unresolvable) or a heal of one \
                             of its sites; re-check the reactor's footprint filtering"
                                .to_string(),
                        ),
                    );
                }
            }
            LiveTraceEvent::Registered { .. }
            | LiveTraceEvent::SiteDown { .. }
            | LiveTraceEvent::Unregistered { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedoq_live::SubId;
    use fedoq_object::GOid;

    fn resolved(classes: &[u32], sites: &[u16]) -> LiveTraceEvent {
        LiveTraceEvent::Resolved {
            sub: SubId::new(0),
            goid: GOid::new(7),
            to_certain: true,
            classes: classes.iter().map(|&c| GlobalClassId::new(c)).collect(),
            sites: sites.iter().map(|&d| DbId::new(d)).collect(),
        }
    }

    fn change(seq: u64, class: Option<u32>) -> LiveTraceEvent {
        LiveTraceEvent::Change {
            seq,
            db: DbId::new(0),
            class: class.map(GlobalClassId::new),
        }
    }

    #[test]
    fn a_resolution_after_a_matching_change_is_founded() {
        let mut report = Report::new("founded flip", "");
        analyze_live(&[change(0, Some(2)), resolved(&[2], &[0])], &mut report);
        assert!(report.diagnostics.is_empty());
    }

    #[test]
    fn a_wildcard_change_founds_any_resolution() {
        let mut report = Report::new("wildcard flip", "");
        analyze_live(&[change(0, None), resolved(&[5], &[])], &mut report);
        assert!(report.diagnostics.is_empty());
    }

    #[test]
    fn a_heal_founds_a_resolution_on_that_site() {
        let mut report = Report::new("healed flip", "");
        analyze_live(
            &[
                LiveTraceEvent::SiteHealed { db: DbId::new(1) },
                resolved(&[9], &[1]),
            ],
            &mut report,
        );
        assert!(report.diagnostics.is_empty());
    }

    #[test]
    fn a_resolution_with_no_cause_is_denied() {
        let mut report = Report::new("unfounded flip", "");
        analyze_live(&[change(0, Some(1)), resolved(&[2], &[0])], &mut report);
        assert!(report.fired("FQ308"));
        assert!(!report.is_sound());
    }

    #[test]
    fn cause_must_precede_the_resolution() {
        let mut report = Report::new("flip before its change", "");
        analyze_live(&[resolved(&[2], &[]), change(0, Some(2))], &mut report);
        assert!(report.fired("FQ308"));
    }
}
