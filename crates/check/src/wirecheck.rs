//! The FQ304–FQ306 wire-codec auditor.
//!
//! [`analyze_wire`] judges a [`fedoq_wire::WireSurface`] — the
//! self-description `fedoq-wire` computes from its *shipped*
//! encoder/decoder code (exemplar encodings per enum variant, decoder
//! tag probing, hostile-input probes, version-skew probes). Because the
//! surface is derived from the real codec rather than a hand-written
//! table, these lints fail exactly when the code drifts:
//!
//! * **FQ304** — per-family encoder/decoder tag agreement: a variant
//!   the encoder emits but the decoder rejects breaks live peers; a tag
//!   the decoder accepts but nothing emits is a dead tag masking skew;
//!   duplicate encoder tags are a collision (two variants
//!   indistinguishable on the wire).
//! * **FQ305** — resource bounds: the oversized-frame/seq/string and
//!   over-deep-value probes must each be *rejected*. `Accepted` is an
//!   attacker-sized allocation; `Panicked` is a remote crash.
//! * **FQ306** — versioning: frames stamped `VERSION ± 1` must be
//!   rejected cleanly, and the grammar fingerprint may only change
//!   together with the version (a silent grammar change ships peers
//!   that disagree about bytes while claiming compatibility).

use crate::diag::{Diagnostic, Report};
use crate::lints;
use fedoq_wire::{ProbeOutcome, WireSurface};

/// Runs the three codec lints over `surface`, pushing findings into
/// `report`.
pub fn analyze_wire(surface: &WireSurface, report: &mut Report) {
    tag_tables(surface, report);
    bounds(surface, report);
    versioning(surface, report);
}

/// FQ304: encoder/decoder tag-table agreement per family.
fn tag_tables(surface: &WireSurface, report: &mut Report) {
    for family in &surface.families {
        let mut seen: Vec<u8> = Vec::new();
        for (tag, variant) in &family.encoder {
            if seen.contains(tag) {
                report.push(
                    Diagnostic::new(
                        lints::TAG_TABLE_MISMATCH,
                        format!(
                            "family `{}`: tag {tag} is emitted by more than one variant \
                             (including `{variant}`)",
                            family.name
                        ),
                    )
                    .with_hint("assign each variant a distinct tag byte"),
                );
            }
            seen.push(*tag);
            if !family.decoder_accepts.contains(tag) {
                report.push(
                    Diagnostic::new(
                        lints::TAG_TABLE_MISMATCH,
                        format!(
                            "family `{}`: encoder emits tag {tag} (`{variant}`) but the \
                             decoder rejects it as unknown",
                            family.name
                        ),
                    )
                    .with_hint(format!(
                        "add a decoder arm for `{variant}` — peers currently drop every \
                         frame carrying it"
                    )),
                );
            }
        }
        for tag in &family.decoder_accepts {
            if !family.encoder.iter().any(|(t, _)| t == tag) {
                report.push(
                    Diagnostic::new(
                        lints::TAG_TABLE_MISMATCH,
                        format!(
                            "family `{}`: decoder accepts tag {tag} that no encoder \
                             variant emits (dead tag)",
                            family.name
                        ),
                    )
                    .with_hint(
                        "remove the dead decoder arm, or add the missing variant to the \
                         encoder table — dead tags mask version skew",
                    ),
                );
            }
        }
    }
}

fn bound_finding(
    report: &mut Report,
    what: &str,
    outcome: ProbeOutcome,
    cap: impl std::fmt::Display,
) {
    match outcome {
        ProbeOutcome::Rejected => {}
        ProbeOutcome::Accepted => report.push(
            Diagnostic::new(
                lints::BOUND_VIOLATION,
                format!("{what} beyond the cap ({cap}) was accepted as well-formed"),
            )
            .with_hint("reject attacker-controlled sizes before allocating"),
        ),
        ProbeOutcome::Panicked => report.push(
            Diagnostic::new(
                lints::BOUND_VIOLATION,
                format!("{what} beyond the cap ({cap}) made the decoder panic"),
            )
            .with_hint("return a WireError instead of panicking on hostile input"),
        ),
    }
}

/// FQ305: hostile size/depth probes must all be rejected.
fn bounds(surface: &WireSurface, report: &mut Report) {
    let b = &surface.bounds;
    bound_finding(report, "a frame length", b.oversized_frame, b.max_frame);
    bound_finding(report, "a sequence count", b.oversized_seq, b.max_seq);
    bound_finding(report, "a string length", b.oversized_str, b.max_frame);
    bound_finding(report, "value nesting", b.overdeep_value, b.max_depth);
}

/// FQ306: skewed versions must be rejected; the grammar may only change
/// together with the version.
fn versioning(surface: &WireSurface, report: &mut Report) {
    for probe in &surface.skew {
        match probe.outcome {
            ProbeOutcome::Rejected => {}
            ProbeOutcome::Accepted => report.push(
                Diagnostic::new(
                    lints::VERSION_SKEW,
                    format!(
                        "a frame stamped version {} was accepted by a version-{} decoder",
                        probe.version, surface.version
                    ),
                )
                .with_hint("reject mismatched versions in the frame header check"),
            ),
            ProbeOutcome::Panicked => report.push(
                Diagnostic::new(
                    lints::VERSION_SKEW,
                    format!(
                        "a frame stamped version {} made the version-{} decoder panic",
                        probe.version, surface.version
                    ),
                )
                .with_hint("version mismatch must be a clean WireError, never a panic"),
            ),
        }
    }
    if surface.version == surface.pin_version && surface.fingerprint != surface.pin_fingerprint {
        report.push(
            Diagnostic::new(
                lints::VERSION_SKEW,
                format!(
                    "the wire grammar changed (fingerprint {:#018x}, pinned {:#018x}) but \
                     the protocol version is still {}",
                    surface.fingerprint, surface.pin_fingerprint, surface.version
                ),
            )
            .with_hint(
                "bump fedoq_wire::frame::VERSION and re-pin GRAMMAR_PIN — old and new \
                 peers would otherwise disagree about bytes while claiming compatibility",
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_surface_is_clean() {
        let mut report = Report::new("wire", "");
        analyze_wire(&fedoq_wire::surface(), &mut report);
        assert!(
            report.diagnostics.is_empty(),
            "shipped codec must audit clean:\n{report}"
        );
    }
}
