//! Synthetic federation and query generation from a [`SampleConfig`].
//!
//! The generated world is a chain of global classes `C1 → C2 → … → Cn`
//! (the composition hierarchy a nested query walks). Each class has a
//! pool of *entities* with consistent attribute values; an entity
//! materializes as isomeric objects in one or more databases. Branch-class
//! placement follows the references, so every local reference resolves
//! inside its own database. Missing attributes follow the sampled
//! `present` matrix; nulls are injected on present predicate attributes at
//! the sampled `R_m` rate.

use crate::params::SampleConfig;
use fedoq_core::Federation;
use fedoq_object::{CmpOp, LOid, Value};
use fedoq_query::Query;
use fedoq_schema::Correspondences;
use fedoq_store::{AttrType, ClassDef, ComponentDb, ComponentSchema};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Number of target attributes every class carries (`t0`, `t1`).
const TARGET_ATTRS: usize = 2;
/// Value domain for range predicates.
const DOMAIN: i64 = 1000;

/// One generated workload: a federation plus a query over it.
#[derive(Debug, Clone)]
pub struct GeneratedSample {
    /// The synthetic federation.
    pub federation: Federation,
    /// The global query (unbound; bind with
    /// [`Federation::parse_and_bind`] or `fedoq_query::bind`).
    pub query: Query,
    /// The configuration that produced it.
    pub config: SampleConfig,
}

/// Per-class entity pool.
struct ClassEntities {
    /// `values[e][j]` — predicate attribute values (consistent across
    /// copies).
    pred_values: Vec<Vec<i64>>,
    /// `targets[e][t]` — target attribute values.
    target_values: Vec<Vec<i64>>,
    /// `refs[e]` — referenced entity of the next class (unused for the
    /// last class).
    refs: Vec<usize>,
    /// `placed[db]` — entities materialized in each database, in
    /// insertion order.
    placed: Vec<Vec<usize>>,
}

/// Generates one federation + query pair, deterministically from `seed`.
///
/// # Example
///
/// ```
/// use fedoq_workload::{generate, WorkloadParams};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let params = WorkloadParams::paper_default().scaled(0.01);
/// let config = params.sample(&mut StdRng::seed_from_u64(1));
/// let sample = generate(&config, 1);
/// assert_eq!(sample.federation.num_dbs(), 3);
/// ```
pub fn generate(config: &SampleConfig, seed: u64) -> GeneratedSample {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_f0e0_d00d_cafe);
    let pools = build_entities(config, &mut rng);
    let dbs = build_databases(config, &pools, &mut rng);
    let federation =
        Federation::new(dbs, &Correspondences::new()).expect("generated schemas always integrate");
    let query = build_query(config);
    GeneratedSample {
        federation,
        query,
        config: config.clone(),
    }
}

fn build_entities(config: &SampleConfig, rng: &mut StdRng) -> Vec<ClassEntities> {
    let mut pools: Vec<ClassEntities> = Vec::with_capacity(config.n_classes);
    for k in 0..config.n_classes {
        let pool_size = config.entity_pool(k);
        let n_p = config.preds_per_class[k];
        let sel = config.selectivity[k];
        let pred_domain = if config.eq_predicates {
            ((1.0 / sel.max(1e-6)).round() as i64).max(1)
        } else {
            DOMAIN
        };
        let mut pred_values = Vec::with_capacity(pool_size);
        let mut target_values = Vec::with_capacity(pool_size);
        let mut refs = Vec::with_capacity(pool_size);
        for _ in 0..pool_size {
            pred_values.push((0..n_p).map(|_| rng.gen_range(0..pred_domain)).collect());
            target_values.push(
                (0..TARGET_ATTRS)
                    .map(|_| rng.gen_range(0..DOMAIN))
                    .collect(),
            );
            refs.push(0); // wired below once the next pool's size is known
        }
        pools.push(ClassEntities {
            pred_values,
            target_values,
            refs,
            placed: vec![Vec::new(); config.n_db],
        });
    }

    // Wire entity-level references: class k points into the first
    // `R_r * pool` entities of class k+1 (the rest stay unreferenced).
    for k in 0..config.n_classes.saturating_sub(1) {
        let next_pool = pools[k + 1].pred_values.len();
        let referenced =
            ((config.ref_ratio[k] * next_pool as f64).ceil() as usize).clamp(1, next_pool);
        let pool = pools[k].pred_values.len();
        for e in 0..pool {
            pools[k].refs[e] = rng.gen_range(0..referenced);
        }
    }

    // Place the root class: R_iso of entities get N_iso copies.
    let db_indices: Vec<usize> = (0..config.n_db).collect();
    let root_pool = pools[0].pred_values.len();
    for e in 0..root_pool {
        let copies = if config.n_db > 1 && rng.gen_bool(config.iso_ratio) {
            config.n_iso.min(config.n_db)
        } else {
            1
        };
        let mut dbs = db_indices.clone();
        dbs.shuffle(rng);
        for &db in dbs.iter().take(copies) {
            pools[0].placed[db].push(e);
        }
    }

    // Branch classes: placement follows the references (every local ref
    // must resolve locally), topped up with random extras to reach the
    // sampled N_o.
    for k in 1..config.n_classes {
        let pool = pools[k].pred_values.len();
        for db in 0..config.n_db {
            let mut present = vec![false; pool];
            let mut placed = Vec::new();
            for idx in 0..pools[k - 1].placed[db].len() {
                let parent = pools[k - 1].placed[db][idx];
                let target = pools[k - 1].refs[parent];
                if !present[target] {
                    present[target] = true;
                    placed.push(target);
                }
            }
            let want = config.objects[db][k];
            let mut extras: Vec<usize> = (0..pool).filter(|&e| !present[e]).collect();
            extras.shuffle(rng);
            for e in extras {
                if placed.len() >= want {
                    break;
                }
                placed.push(e);
            }
            pools[k].placed[db] = placed;
        }
    }
    pools
}

fn class_name(k: usize) -> String {
    format!("C{}", k + 1)
}

fn build_databases(
    config: &SampleConfig,
    pools: &[ClassEntities],
    rng: &mut StdRng,
) -> Vec<ComponentDb> {
    let mut dbs = Vec::with_capacity(config.n_db);
    for db_idx in 0..config.n_db {
        let mut class_defs = Vec::with_capacity(config.n_classes);
        for k in 0..config.n_classes {
            let mut def = ClassDef::new(class_name(k)).attr("key", AttrType::int());
            for (j, present) in config.present[db_idx][k].iter().enumerate() {
                if *present {
                    def = def.attr(format!("p{j}"), AttrType::int());
                }
            }
            for t in 0..TARGET_ATTRS {
                def = def.attr(format!("t{t}"), AttrType::int());
            }
            if k + 1 < config.n_classes {
                def = def.attr("next", AttrType::complex(class_name(k + 1)));
            }
            class_defs.push(def.key(["key"]));
        }
        let schema = ComponentSchema::new(class_defs).expect("generated schema is valid");
        let mut db = ComponentDb::new(
            fedoq_object::DbId::new(db_idx as u16),
            format!("DB{db_idx}"),
            schema,
        );

        // Insert bottom-up so references resolve; remember each entity's
        // LOid per class.
        let mut loids: Vec<Vec<Option<LOid>>> = (0..config.n_classes)
            .map(|k| vec![None; pools[k].pred_values.len()])
            .collect();
        for k in (0..config.n_classes).rev() {
            let n_p = config.preds_per_class[k];
            let class_id = db.schema().class_id(&class_name(k)).expect("class exists");
            let arity = db.schema().class(class_id).arity();
            let present = &config.present[db_idx][k];
            let null_rate = config.null_ratio[db_idx][k];
            for &e in &pools[k].placed[db_idx] {
                let mut values = Vec::with_capacity(arity);
                values.push(Value::Int(e as i64)); // key
                let null_attr = if null_rate > 0.0 && rng.gen_bool(null_rate) {
                    let present_count = present.iter().filter(|p| **p).count();
                    if present_count > 0 {
                        Some(rng.gen_range(0..present_count))
                    } else {
                        None
                    }
                } else {
                    None
                };
                let mut present_seen = 0;
                for (j, is_present) in present.iter().enumerate().take(n_p) {
                    if *is_present {
                        if null_attr == Some(present_seen) {
                            values.push(Value::Null);
                        } else {
                            values.push(Value::Int(pools[k].pred_values[e][j]));
                        }
                        present_seen += 1;
                    }
                }
                for t in 0..TARGET_ATTRS {
                    values.push(Value::Int(pools[k].target_values[e][t]));
                }
                if k + 1 < config.n_classes {
                    let target_entity = pools[k].refs[e];
                    let target_loid = loids[k + 1][target_entity]
                        .expect("reference targets are placed before their referrers");
                    values.push(Value::Ref(target_loid));
                }
                let loid = db
                    .insert(class_id, values)
                    .expect("generated object is valid");
                loids[k][e] = Some(loid);
            }
        }
        dbs.push(db);
    }
    dbs
}

fn build_query(config: &SampleConfig) -> Query {
    let mut query = Query::new(class_name(0));
    for t in 0..config.n_targets.min(TARGET_ATTRS) {
        query = query.target(&format!("t{t}"));
    }
    for k in 0..config.n_classes {
        let sel = config.selectivity[k];
        for j in 0..config.preds_per_class[k] {
            let mut path = String::new();
            for _ in 0..k {
                path.push_str("next.");
            }
            path.push_str(&format!("p{j}"));
            if config.eq_predicates {
                query = query.filter(&path, CmpOp::Eq, Value::Int(0));
            } else {
                let threshold = ((sel * DOMAIN as f64).round() as i64).clamp(0, DOMAIN);
                query = query.filter(&path, CmpOp::Lt, Value::Int(threshold));
            }
        }
    }
    query
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::WorkloadParams;
    use fedoq_core::oracle_answer;
    use fedoq_query::bind;
    use fedoq_store::ClassStats;

    fn small_config(seed: u64) -> SampleConfig {
        let params = WorkloadParams::paper_default().scaled(0.02); // ~100-120 objects
        params.sample(&mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn generation_is_deterministic() {
        let c = small_config(11);
        let a = generate(&c, 5);
        let b = generate(&c, 5);
        assert_eq!(a.query, b.query);
        assert_eq!(a.federation.num_dbs(), b.federation.num_dbs());
        let qa = bind(&a.query, a.federation.global_schema()).unwrap();
        let qb = bind(&b.query, b.federation.global_schema()).unwrap();
        assert_eq!(
            oracle_answer(&a.federation, &qa),
            oracle_answer(&b.federation, &qb)
        );
    }

    #[test]
    fn references_always_resolve() {
        for seed in 0..5 {
            let c = small_config(seed);
            let sample = generate(&c, seed);
            for db in sample.federation.dbs() {
                db.validate_refs().unwrap();
            }
        }
    }

    #[test]
    fn object_counts_match_the_sampled_n_o() {
        let c = small_config(3);
        let sample = generate(&c, 3);
        for (db_idx, db) in sample.federation.dbs().iter().enumerate() {
            // Root class count is entity-placement driven (averages N_o);
            // branch classes are topped up to at least reach N_o unless
            // reference coverage exceeds it.
            for k in 1..c.n_classes {
                let extent = db.extent_by_name(&class_name(k)).unwrap();
                assert!(
                    extent.len() >= c.objects[db_idx][k].min(c.entity_pool(k)),
                    "class {k} in db {db_idx}: {} objects",
                    extent.len()
                );
            }
        }
    }

    #[test]
    fn isomerism_ratio_is_approximately_r_iso() {
        let params = WorkloadParams::paper_default().scaled(0.2); // ~1000-1200 per db
        let c = params.sample(&mut StdRng::seed_from_u64(9));
        let sample = generate(&c, 9);
        let fed = &sample.federation;
        let root = fed.global_schema().class_id("C1").unwrap();
        let table = fed.catalog().table(root);
        let total = table.len() as f64;
        let replicated = table.iter().filter(|(_, ls)| ls.len() > 1).count() as f64;
        let measured = replicated / total;
        assert!(
            (measured - c.iso_ratio).abs() < 0.06,
            "measured {measured:.3} vs expected {:.3}",
            c.iso_ratio
        );
    }

    #[test]
    fn predicate_selectivity_is_calibrated() {
        let params = WorkloadParams::paper_default().scaled(0.5);
        let mut rng = StdRng::seed_from_u64(21);
        let c = params.sample(&mut rng);
        let sample = generate(&c, 21);
        let fed = &sample.federation;
        // Measure the root class's first predicate, if present somewhere.
        let k = 0;
        if c.preds_per_class[k] == 0 {
            return;
        }
        for (db_idx, db) in fed.dbs().iter().enumerate() {
            if !c.present[db_idx][k].first().copied().unwrap_or(false) {
                continue;
            }
            let class = db.schema().class_id("C1").unwrap();
            let threshold = ((c.selectivity[k] * DOMAIN as f64).round() as i64).clamp(0, DOMAIN);
            let measured =
                ClassStats::selectivity(db, class, "p0", CmpOp::Lt, &Value::Int(threshold))
                    .unwrap();
            // Nulls depress the measured rate slightly; allow slack.
            assert!(
                (measured - c.selectivity[k]).abs() < 0.15,
                "db {db_idx}: measured {measured:.3} vs target {:.3}",
                c.selectivity[k]
            );
        }
    }

    #[test]
    fn null_injection_respects_missing_data_ratio() {
        let mut params = WorkloadParams::paper_default().scaled(0.5);
        params.null_ratio = 0.2..=0.2;
        params.preds_per_class = 2..=2;
        params.n_classes = 1..=1;
        let c = params.sample(&mut StdRng::seed_from_u64(4));
        let sample = generate(&c, 4);
        for (db_idx, db) in sample.federation.dbs().iter().enumerate() {
            // Only meaningful when every predicate attribute is present.
            if !c.present[db_idx][0].iter().all(|p| *p) {
                continue;
            }
            let class = db.schema().class_id("C1").unwrap();
            let measured = ClassStats::missing_data_ratio(db, class);
            assert!(
                (measured - 0.2).abs() < 0.08,
                "db {db_idx}: measured null ratio {measured:.3}"
            );
        }
    }

    #[test]
    fn query_shape_matches_config() {
        let c = small_config(13);
        let sample = generate(&c, 13);
        let total_preds: usize = c.preds_per_class.iter().sum();
        assert_eq!(sample.query.predicates().len(), total_preds);
        assert_eq!(sample.query.targets().len(), c.n_targets.min(TARGET_ATTRS));
        // The query binds against the generated global schema.
        let bound = bind(&sample.query, sample.federation.global_schema()).unwrap();
        assert_eq!(bound.predicates().len(), total_preds);
    }

    #[test]
    fn eq_predicate_mode_generates_equality_queries() {
        let mut params = WorkloadParams::paper_default().scaled(0.02);
        params.eq_predicates = true;
        params.preds_per_class = 1..=3;
        let c = params.sample(&mut StdRng::seed_from_u64(2));
        let sample = generate(&c, 2);
        assert!(sample
            .query
            .predicates()
            .iter()
            .all(|p| p.op() == CmpOp::Eq));
    }
}
