//! Workload substrate for FedOQ.
//!
//! Two workload sources drive the tests, examples, and benchmarks:
//!
//! * [`university`] — the paper's running example, reproduced datum by
//!   datum: the DB1/DB2/DB3 schemas of Figure 1, the object instances of
//!   Figure 4, the GOid mapping of Figure 5, and query Q1 of Figure 3;
//! * [`params`] + [`generate()`] — the Table-2 parameterized generator: a
//!   chain of global classes over `N_db` component databases, populated
//!   with isomeric entities, missing attributes, calibrated predicate
//!   selectivities, and injected nulls, together with a random conjunctive
//!   global query.
//!
//! # Example
//!
//! ```
//! use fedoq_workload::university;
//! use fedoq_core::{oracle_answer, Federation};
//!
//! let fed = university::federation()?;
//! let q1 = fed.parse_and_bind(university::Q1)?;
//! let answer = oracle_answer(&fed, &q1);
//! assert_eq!(answer.certain().len(), 1); // (Hedy, Kelly)
//! assert_eq!(answer.maybe().len(), 1);   // (Tony, Haley)
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod generate;
pub mod params;
pub mod predict;
pub mod university;

pub use generate::{generate, GeneratedSample};
pub use params::{SampleConfig, WorkloadParams};
pub use predict::{analytic_inputs, predict_fig10, predict_fig11, predict_fig9, PredictedPoint};
