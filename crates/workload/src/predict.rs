//! Analytic predictions of the paper's figures.
//!
//! This module joins the workload parameter model (this crate) to the
//! closed-form cost model (`fedoq-analytic`, which sits below it):
//! [`analytic_inputs`] reduces a [`WorkloadParams`] to the model's
//! expected-value aggregates, and each `predict_fig*` function sweeps
//! the same parameter as the corresponding executed experiment in
//! `fedoq-bench`, returning per-strategy [`TimeEstimate`]s so the
//! harness can print the predicted curves next to the measured ones.
//! Predictions are shape-level: orderings, growth directions, and
//! crossovers (see EXPERIMENTS.md for the comparison).

use crate::params::WorkloadParams;
use fedoq_analytic::{estimate, AnalyticInputs, StrategyKind, TimeEstimate};
use fedoq_sim::SystemParams;

/// Builds model aggregates from a [`WorkloadParams`] by taking range
/// midpoints — the expectation of the paper's 500-sample draw.
pub fn analytic_inputs(params: &WorkloadParams, system: SystemParams) -> AnalyticInputs {
    let mid_usize =
        |r: &std::ops::RangeInclusive<usize>| (*r.start() as f64 + *r.end() as f64) / 2.0;
    let preds = mid_usize(&params.preds_per_class);
    // E[N_pa] = N_p/2, so on average half the predicate attributes are
    // missing per site; nulls add the sampled R_m on top.
    let null_mid = (params.null_ratio.start() + params.null_ratio.end()) / 2.0;
    let unsolved_ratio = (0.5 + null_mid).min(1.0);
    let per_pred_sel = match params.forced_selectivity {
        Some(s) => s,
        None if preds < 0.5 => 1.0,
        None => 0.45f64.powf(preds.sqrt()).powf(1.0 / preds.max(1.0)),
    };
    // Local predicates are roughly half the class's predicates.
    let local_selectivity = per_pred_sel.powf(preds / 2.0);
    AnalyticInputs {
        params: system,
        n_db: params.n_db as f64,
        n_classes: mid_usize(&params.n_classes),
        objects: mid_usize(&params.objects_per_class),
        preds_per_class: preds,
        // key + present predicate attrs (≈ N_p/2) + two targets + ref.
        attrs_per_class: 1.0 + preds / 2.0 + 2.0 + 1.0,
        local_selectivity,
        iso_ratio: params.effective_iso_ratio(),
        n_iso: params.n_iso as f64,
        unsolved_ratio,
    }
}

/// One predicted sweep point: the swept value and CA/BL/PL estimates
/// (ordered like [`StrategyKind::ALL`]).
pub type PredictedPoint = (f64, [TimeEstimate; 3]);

fn predict(inputs: &AnalyticInputs) -> [TimeEstimate; 3] {
    [
        estimate(StrategyKind::Centralized, inputs),
        estimate(StrategyKind::BasicLocalized, inputs),
        estimate(StrategyKind::ParallelLocalized, inputs),
    ]
}

/// Predicted Figure 9: times vs. objects per constituent class.
pub fn predict_fig9() -> Vec<PredictedPoint> {
    [1000.0, 2000.0, 3000.0, 4000.0, 5000.0, 6000.0]
        .into_iter()
        .map(|objects| {
            let mut inputs = analytic_inputs(
                &WorkloadParams::paper_default(),
                SystemParams::paper_default(),
            );
            inputs.objects = objects;
            (objects, predict(&inputs))
        })
        .collect()
}

/// Predicted Figure 10: times vs. number of component databases
/// (`R_iso` follows the paper's formula).
pub fn predict_fig10() -> Vec<PredictedPoint> {
    (2..=8)
        .map(|n_db| {
            let mut params = WorkloadParams::paper_default();
            params.n_db = n_db;
            let inputs = analytic_inputs(&params, SystemParams::paper_default());
            (n_db as f64, predict(&inputs))
        })
        .collect()
}

/// Predicted Figure 11: times vs. local predicate selectivity
/// (`N_o` restricted to 1000–2000 as in the paper).
pub fn predict_fig11() -> Vec<PredictedPoint> {
    [0.1, 0.3, 0.5, 0.7, 0.9]
        .into_iter()
        .map(|selectivity| {
            let mut params = WorkloadParams::paper_default();
            params.objects_per_class = 1000..=2000;
            params.forced_selectivity = Some(selectivity);
            let mut inputs = analytic_inputs(&params, SystemParams::paper_default());
            // The forced value is the per-predicate selectivity; the
            // class-level local selectivity compounds over the local
            // predicates (≈ N_p/2 of them).
            inputs.local_selectivity = selectivity.powf(inputs.preds_per_class / 2.0);
            (selectivity, predict(&inputs))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_inputs_match_the_analytic_baseline() {
        // AnalyticInputs::paper_default hardcodes the midpoints of
        // WorkloadParams::paper_default; the general conversion must
        // reproduce it exactly (the analytic crate's tests depend on it).
        let general = analytic_inputs(
            &WorkloadParams::paper_default(),
            SystemParams::paper_default(),
        );
        let baked = AnalyticInputs::paper_default(SystemParams::paper_default());
        assert_eq!(general, baked);
    }

    #[test]
    fn fig9_prediction_grows_and_orders_like_the_paper() {
        let points = predict_fig9();
        assert_eq!(points.len(), 6);
        for (_, [ca, bl, pl]) in &points {
            assert!(bl.total_us < ca.total_us);
            assert!(bl.response_us < ca.response_us);
            assert!(pl.response_us < ca.response_us);
        }
        let first = &points.first().unwrap().1;
        let last = &points.last().unwrap().1;
        for i in 0..3 {
            assert!(last[i].total_us > first[i].total_us);
        }
    }

    #[test]
    fn fig10_prediction_reproduces_the_pl_crossover() {
        let points = predict_fig10();
        let at = |n: f64| {
            points
                .iter()
                .find(|(x, _)| *x == n)
                .map(|(_, e)| e)
                .unwrap()
        };
        // PL below CA with few sites, above with many — the crossover.
        assert!(at(2.0)[2].total_us < at(2.0)[0].total_us);
        assert!(at(8.0)[2].total_us > at(8.0)[0].total_us);
    }

    #[test]
    fn fig11_prediction_keeps_ca_flat() {
        let points = predict_fig11();
        let ca_first = points.first().unwrap().1[0].total_us;
        let ca_last = points.last().unwrap().1[0].total_us;
        assert_eq!(ca_first, ca_last);
        let bl_first = points.first().unwrap().1[1].total_us;
        let bl_last = points.last().unwrap().1[1].total_us;
        assert!(bl_last > bl_first);
    }
}
