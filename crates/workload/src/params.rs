//! The paper's Table-2 database and query parameters.
//!
//! [`WorkloadParams`] holds the sampling ranges; [`WorkloadParams::sample`]
//! draws one concrete [`SampleConfig`] (the paper draws 500 such sets per
//! experiment point and averages the measured times).

use rand::Rng;
use std::ops::RangeInclusive;

/// Ranges from which each experiment point draws its sample configurations
/// (Table 2). Fields are public: experiments sweep them directly.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadParams {
    /// `N_db` — number of component databases.
    pub n_db: usize,
    /// `N_c` — number of global classes involved in the query.
    pub n_classes: RangeInclusive<usize>,
    /// `N_p^k` — predicates on each involved class.
    pub preds_per_class: RangeInclusive<usize>,
    /// `N_o^{i,k}` — objects per constituent class per database.
    pub objects_per_class: RangeInclusive<usize>,
    /// `R_r^k` — ratio of next-class objects that are referenced.
    pub ref_ratio: RangeInclusive<f64>,
    /// `N_ta^{i,k}` — target attributes in the select list.
    pub target_attrs: RangeInclusive<usize>,
    /// `R_m^{i,k}` — ratio of objects given an injected null when the
    /// constituent has no missing attribute (the paper's "0 ~ 0.2").
    pub null_ratio: RangeInclusive<f64>,
    /// `R_iso^k` override; `None` uses the paper's `1 − 0.9^(N_db−1)`.
    pub iso_ratio: Option<f64>,
    /// `N_iso` — isomeric copies per replicated entity.
    pub n_iso: usize,
    /// Overrides every predicate's selectivity (the Figure-11 sweep);
    /// `None` uses the paper's `0.45^sqrt(N_p)` class selectivity split
    /// evenly across the class's predicates.
    pub forced_selectivity: Option<f64>,
    /// Generate equality predicates over a small domain instead of range
    /// predicates — the shape signature pruning (`R_ss`) applies to.
    pub eq_predicates: bool,
}

impl WorkloadParams {
    /// The Table-2 default setting.
    pub fn paper_default() -> WorkloadParams {
        WorkloadParams {
            n_db: 3,
            n_classes: 1..=4,
            preds_per_class: 0..=3,
            objects_per_class: 5000..=6000,
            ref_ratio: 0.5..=1.0,
            target_attrs: 0..=2,
            null_ratio: 0.0..=0.2,
            iso_ratio: None,
            n_iso: 2,
            forced_selectivity: None,
            eq_predicates: false,
        }
    }

    /// The effective `R_iso`: the probability that an entity has isomeric
    /// copies.
    pub fn effective_iso_ratio(&self) -> f64 {
        self.iso_ratio
            .unwrap_or_else(|| 1.0 - 0.9f64.powi(self.n_db as i32 - 1))
    }

    /// Returns a copy with the object counts scaled by `factor` (for fast
    /// tests; the shape of the workload is unchanged).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn scaled(mut self, factor: f64) -> WorkloadParams {
        assert!(factor > 0.0, "scale factor must be positive");
        let lo = ((*self.objects_per_class.start() as f64) * factor)
            .round()
            .max(1.0) as usize;
        let hi = ((*self.objects_per_class.end() as f64) * factor)
            .round()
            .max(1.0) as usize;
        self.objects_per_class = lo..=hi.max(lo);
        self
    }

    /// Draws one concrete sample configuration.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> SampleConfig {
        let n_classes = rng.gen_range(self.n_classes.clone());
        let mut preds_per_class = Vec::with_capacity(n_classes);
        let mut selectivity = Vec::with_capacity(n_classes);
        for _ in 0..n_classes {
            let n_p = rng.gen_range(self.preds_per_class.clone());
            preds_per_class.push(n_p);
            let per_pred = match self.forced_selectivity {
                Some(s) => s,
                None if n_p == 0 => 1.0,
                // R_ps = 0.45^sqrt(N_p), split evenly over the predicates.
                None => 0.45f64.powf((n_p as f64).sqrt()).powf(1.0 / n_p as f64),
            };
            selectivity.push(per_pred);
        }
        // `present[db][class][pred]`, filled per database below. Every
        // predicate attribute must exist in at least one database — a
        // global attribute is by definition defined by some constituent —
        // so a final pass repairs all-missing columns.
        let mut present = Vec::with_capacity(self.n_db);
        let mut objects = Vec::with_capacity(self.n_db);
        let mut null_ratio = Vec::with_capacity(self.n_db);
        for _ in 0..self.n_db {
            let mut db_present = Vec::with_capacity(n_classes);
            let mut db_objects = Vec::with_capacity(n_classes);
            let mut db_nulls = Vec::with_capacity(n_classes);
            for &n_p in &preds_per_class {
                // N_pa^{i,k}: how many predicate attributes this
                // constituent defines.
                let n_pa = rng.gen_range(0..=n_p);
                let mut attrs = vec![false; n_p];
                let mut chosen = 0;
                while chosen < n_pa {
                    let j = rng.gen_range(0..n_p);
                    if !attrs[j] {
                        attrs[j] = true;
                        chosen += 1;
                    }
                }
                db_present.push(attrs);
                db_objects.push(rng.gen_range(self.objects_per_class.clone()));
                // R_m = 1 is already implied by a missing attribute; the
                // sampled rate adds instance-level nulls on present attrs.
                db_nulls.push(rng.gen_range(self.null_ratio.clone()));
            }
            present.push(db_present);
            objects.push(db_objects);
            null_ratio.push(db_nulls);
        }
        for (k, &n_p) in preds_per_class.iter().enumerate() {
            for j in 0..n_p {
                let defined_somewhere = present.iter().any(|db| db[k][j]);
                if !defined_somewhere {
                    let db = rng.gen_range(0..self.n_db);
                    present[db][k][j] = true;
                }
            }
        }
        let ref_ratio = (0..n_classes)
            .map(|_| rng.gen_range(self.ref_ratio.clone()))
            .collect();
        SampleConfig {
            n_db: self.n_db,
            n_classes,
            preds_per_class,
            selectivity,
            present,
            objects,
            null_ratio,
            ref_ratio,
            n_targets: rng.gen_range(self.target_attrs.clone()),
            iso_ratio: self.effective_iso_ratio(),
            n_iso: self.n_iso,
            eq_predicates: self.eq_predicates,
        }
    }
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams::paper_default()
    }
}

/// One concrete draw from [`WorkloadParams`]: everything
/// [`crate::generate()`] needs to build a federation and its query.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleConfig {
    /// Number of component databases.
    pub n_db: usize,
    /// Number of chained global classes (`C1 → C2 → …`).
    pub n_classes: usize,
    /// Predicates per class.
    pub preds_per_class: Vec<usize>,
    /// Per-predicate selectivity per class.
    pub selectivity: Vec<f64>,
    /// `present[db][class][pred]` — does the constituent define the
    /// predicate attribute? (`false` = missing attribute.)
    pub present: Vec<Vec<Vec<bool>>>,
    /// Target object count per `[db][class]`.
    pub objects: Vec<Vec<usize>>,
    /// Null-injection rate per `[db][class]` over present predicate attrs.
    pub null_ratio: Vec<Vec<f64>>,
    /// Referenced fraction of the next class, per class.
    pub ref_ratio: Vec<f64>,
    /// Number of root target attributes in the select list.
    pub n_targets: usize,
    /// Probability that an entity has isomeric copies.
    pub iso_ratio: f64,
    /// Copies per replicated entity.
    pub n_iso: usize,
    /// Equality predicates over a small domain instead of ranges.
    pub eq_predicates: bool,
}

impl SampleConfig {
    /// Entity-pool size for class `k`: chosen so that the expected number
    /// of objects per database matches the sampled `N_o`.
    pub fn entity_pool(&self, class: usize) -> usize {
        let avg_objects: f64 = (0..self.n_db)
            .map(|db| self.objects[db][class] as f64)
            .sum::<f64>()
            / self.n_db as f64;
        let avg_copies = 1.0 + self.iso_ratio * (self.n_iso as f64 - 1.0);
        ((self.n_db as f64 * avg_objects / avg_copies).round() as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_default_matches_table_2() {
        let p = WorkloadParams::paper_default();
        assert_eq!(p.n_db, 3);
        assert_eq!(p.n_classes, 1..=4);
        assert_eq!(p.preds_per_class, 0..=3);
        assert_eq!(p.objects_per_class, 5000..=6000);
        assert_eq!(p.n_iso, 2);
        // R_iso = 1 - 0.9^2 = 0.19 for three databases.
        assert!((p.effective_iso_ratio() - 0.19).abs() < 1e-12);
    }

    #[test]
    fn sampling_respects_ranges() {
        let p = WorkloadParams::paper_default();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let c = p.sample(&mut rng);
            assert!(p.n_classes.contains(&c.n_classes));
            assert_eq!(c.preds_per_class.len(), c.n_classes);
            assert_eq!(c.present.len(), 3);
            for db in 0..3 {
                for k in 0..c.n_classes {
                    assert!(p.objects_per_class.contains(&c.objects[db][k]));
                    assert_eq!(c.present[db][k].len(), c.preds_per_class[k]);
                }
            }
            for (k, &n_p) in c.preds_per_class.iter().enumerate() {
                if n_p > 0 && p.forced_selectivity.is_none() {
                    let class_sel = c.selectivity[k].powi(n_p as i32);
                    let expect = 0.45f64.powf((n_p as f64).sqrt());
                    assert!((class_sel - expect).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let p = WorkloadParams::paper_default();
        let a = p.sample(&mut StdRng::seed_from_u64(42));
        let b = p.sample(&mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn scaled_shrinks_object_counts() {
        let p = WorkloadParams::paper_default().scaled(0.01);
        assert_eq!(p.objects_per_class, 50..=60);
        let tiny = WorkloadParams::paper_default().scaled(0.0001);
        assert!(*tiny.objects_per_class.start() >= 1);
    }

    #[test]
    fn forced_selectivity_applies_to_every_predicate() {
        let mut p = WorkloadParams::paper_default();
        p.forced_selectivity = Some(0.3);
        let c = p.sample(&mut StdRng::seed_from_u64(1));
        for (k, &n_p) in c.preds_per_class.iter().enumerate() {
            if n_p > 0 {
                assert_eq!(c.selectivity[k], 0.3);
            }
        }
    }

    #[test]
    fn entity_pool_accounts_for_isomerism() {
        let p = WorkloadParams::paper_default();
        let c = p.sample(&mut StdRng::seed_from_u64(3));
        for k in 0..c.n_classes {
            let pool = c.entity_pool(k);
            // With R_iso ≈ 0.19 and N_iso = 2, the pool is a bit below
            // N_db * N_o.
            let upper: usize = (0..3).map(|db| c.objects[db][k]).sum();
            assert!(pool <= upper);
            assert!(pool >= upper / 2);
        }
    }
}
