//! The paper's running example: the university federation.
//!
//! Reproduces Figures 1–5 of the paper exactly:
//!
//! * **DB1** — `Student(s-no, name, age, advisor, sex)`,
//!   `Teacher(name, department)`, `Department(name)`;
//! * **DB2** — `Student(s-no, name, sex, address, advisor)`,
//!   `Teacher(name, speciality)`, `Address(city, street, zipcode)`;
//! * **DB3** — `Department(name, location)`, `Teacher(name, department)`.
//!
//! The paper writes these as DB1–DB3; our zero-based site ids make them
//! `DB0`–`DB2`. Isomeric objects (same `s-no` for students, same `name`
//! for teachers/departments) reproduce the GOid mapping tables of
//! Figure 5. Running [`Q1`] must yield the paper's answer: certain
//! `(Hedy, Kelly)` and maybe `(Tony, Haley)`.

use fedoq_core::{ExecError, Federation};
use fedoq_object::{DbId, Value};
use fedoq_schema::Correspondences;
use fedoq_store::{AttrType, ClassDef, ComponentDb, ComponentSchema, StoreError};

/// The paper's query Q1 (Figure 3a).
pub const Q1: &str = "SELECT X.name, X.advisor.name FROM Student X \
                      WHERE X.address.city = 'Taipei' \
                      AND X.advisor.speciality = 'database' \
                      AND X.advisor.department.name = 'CS'";

/// Builds the three-site university federation with the paper's data.
///
/// # Errors
///
/// Never errors for the fixed data; the `Result` propagates the
/// construction APIs' error types.
pub fn federation() -> Result<Federation, ExecError> {
    let db1 = build_db1().map_err(ExecError::from)?;
    let db2 = build_db2().map_err(ExecError::from)?;
    let db3 = build_db3().map_err(ExecError::from)?;
    Federation::new(vec![db1, db2, db3], &Correspondences::new())
}

/// The paper's DB1 (our `DB0`): students with advisors and departments,
/// but no addresses and no specialities.
fn build_db1() -> Result<ComponentDb, StoreError> {
    let schema = ComponentSchema::new(vec![
        ClassDef::new("Department")
            .attr("name", AttrType::text())
            .key(["name"]),
        ClassDef::new("Teacher")
            .attr("name", AttrType::text())
            .attr("department", AttrType::complex("Department"))
            .key(["name"]),
        ClassDef::new("Student")
            .attr("s-no", AttrType::int())
            .attr("name", AttrType::text())
            .attr("age", AttrType::int())
            .attr("advisor", AttrType::complex("Teacher"))
            .attr("sex", AttrType::text())
            .key(["s-no"]),
    ])?;
    let mut db = ComponentDb::new(DbId::new(0), "DB1", schema);
    let d1 = db.insert_named("Department", &[("name", Value::text("CS"))])?;
    let _d2 = db.insert_named("Department", &[("name", Value::text("EE"))])?;
    let t1 = db.insert_named(
        "Teacher",
        &[
            ("name", Value::text("Jeffery")),
            ("department", Value::Ref(d1)),
        ],
    )?;
    let t2 = db.insert_named("Teacher", &[("name", Value::text("Abel"))])?; // department null
    let t3 = db.insert_named(
        "Teacher",
        &[
            ("name", Value::text("Haley")),
            ("department", Value::Ref(d1)),
        ],
    )?;
    // s1: John — sex is null in Figure 4(a).
    db.insert_named(
        "Student",
        &[
            ("s-no", Value::Int(804301)),
            ("name", Value::text("John")),
            ("age", Value::Int(31)),
            ("advisor", Value::Ref(t1)),
        ],
    )?;
    db.insert_named(
        "Student",
        &[
            ("s-no", Value::Int(798302)),
            ("name", Value::text("Tony")),
            ("age", Value::Int(28)),
            ("advisor", Value::Ref(t3)),
            ("sex", Value::text("male")),
        ],
    )?;
    db.insert_named(
        "Student",
        &[
            ("s-no", Value::Int(808301)),
            ("name", Value::text("Mary")),
            ("age", Value::Int(24)),
            ("advisor", Value::Ref(t2)),
            ("sex", Value::text("female")),
        ],
    )?;
    Ok(db)
}

/// The paper's DB2 (our `DB1`): students with addresses, teachers with
/// specialities but no departments.
fn build_db2() -> Result<ComponentDb, StoreError> {
    let schema = ComponentSchema::new(vec![
        ClassDef::new("Address")
            .attr("city", AttrType::text())
            .attr("street", AttrType::text())
            .attr("zipcode", AttrType::int()),
        ClassDef::new("Teacher")
            .attr("name", AttrType::text())
            .attr("speciality", AttrType::text())
            .key(["name"]),
        ClassDef::new("Student")
            .attr("s-no", AttrType::int())
            .attr("name", AttrType::text())
            .attr("sex", AttrType::text())
            .attr("address", AttrType::complex("Address"))
            .attr("advisor", AttrType::complex("Teacher"))
            .key(["s-no"]),
    ])?;
    let mut db = ComponentDb::new(DbId::new(1), "DB2", schema);
    let a1 = db.insert_named(
        "Address",
        &[
            ("city", Value::text("Taipei")),
            ("street", Value::text("Park")),
            ("zipcode", Value::Int(100)),
        ],
    )?;
    let a2 = db.insert_named(
        "Address",
        &[
            ("city", Value::text("HsinChu")),
            ("street", Value::text("Horber")),
            ("zipcode", Value::Int(800)),
        ],
    )?;
    let t1 = db.insert_named(
        "Teacher",
        &[
            ("name", Value::text("Kelly")),
            ("speciality", Value::text("database")),
        ],
    )?;
    let t2 = db.insert_named(
        "Teacher",
        &[
            ("name", Value::text("Jeffery")),
            ("speciality", Value::text("network")),
        ],
    )?;
    db.insert_named(
        "Student",
        &[
            ("s-no", Value::Int(762315)),
            ("name", Value::text("Hedy")),
            ("sex", Value::text("female")),
            ("address", Value::Ref(a1)),
            ("advisor", Value::Ref(t1)),
        ],
    )?;
    db.insert_named(
        "Student",
        &[
            ("s-no", Value::Int(804301)),
            ("name", Value::text("John")),
            ("sex", Value::text("male")),
            ("address", Value::Ref(a2)),
            ("advisor", Value::Ref(t2)),
        ],
    )?;
    db.insert_named(
        "Student",
        &[
            ("s-no", Value::Int(828307)),
            ("name", Value::text("Fanny")),
            ("sex", Value::text("female")),
            ("address", Value::Ref(a1)),
            ("advisor", Value::Ref(t2)),
        ],
    )?;
    Ok(db)
}

/// The paper's DB3 (our `DB2`): departments with locations, teachers with
/// departments but no specialities (and no students at all).
fn build_db3() -> Result<ComponentDb, StoreError> {
    let schema = ComponentSchema::new(vec![
        ClassDef::new("Department")
            .attr("name", AttrType::text())
            .attr("location", AttrType::text())
            .key(["name"]),
        ClassDef::new("Teacher")
            .attr("name", AttrType::text())
            .attr("department", AttrType::complex("Department"))
            .key(["name"]),
    ])?;
    let mut db = ComponentDb::new(DbId::new(2), "DB3", schema);
    let d1 = db.insert_named(
        "Department",
        &[
            ("name", Value::text("EE")),
            ("location", Value::text("building E")),
        ],
    )?;
    let d2 = db.insert_named("Department", &[("name", Value::text("CS"))])?; // location null
    db.insert_named(
        "Department",
        &[
            ("name", Value::text("PH")),
            ("location", Value::text("building D")),
        ],
    )?;
    db.insert_named(
        "Teacher",
        &[
            ("name", Value::text("Abel")),
            ("department", Value::Ref(d1)),
        ],
    )?;
    db.insert_named(
        "Teacher",
        &[
            ("name", Value::text("Kelly")),
            ("department", Value::Ref(d2)),
        ],
    )?;
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedoq_core::oracle_answer;
    use fedoq_object::Value;

    #[test]
    fn schemas_integrate_to_the_papers_global_schema() {
        let fed = federation().unwrap();
        let g = fed.global_schema();
        assert_eq!(g.len(), 4); // Student, Teacher, Department, Address
        let student = g.class_by_name("Student").unwrap();
        // Union: s-no, name, age, advisor, sex, address.
        assert_eq!(student.arity(), 6);
        let teacher = g.class_by_name("Teacher").unwrap();
        // Union: name, department, speciality.
        assert_eq!(teacher.arity(), 3);
    }

    #[test]
    fn missing_attributes_match_the_paper() {
        let fed = federation().unwrap();
        let g = fed.global_schema();
        let student = g.class_by_name("Student").unwrap();
        let address = student.attr_index("address").unwrap();
        let age = student.attr_index("age").unwrap();
        assert!(student
            .constituent_for(DbId::new(0))
            .unwrap()
            .is_missing(address));
        assert!(student
            .constituent_for(DbId::new(1))
            .unwrap()
            .is_missing(age));
        let teacher = g.class_by_name("Teacher").unwrap();
        let speciality = teacher.attr_index("speciality").unwrap();
        let department = teacher.attr_index("department").unwrap();
        assert!(teacher
            .constituent_for(DbId::new(0))
            .unwrap()
            .is_missing(speciality));
        assert!(teacher
            .constituent_for(DbId::new(1))
            .unwrap()
            .is_missing(department));
        assert!(teacher
            .constituent_for(DbId::new(2))
            .unwrap()
            .is_missing(speciality));
    }

    #[test]
    fn goid_tables_match_figure_5() {
        let fed = federation().unwrap();
        let g = fed.global_schema();
        // 5 student entities (John isomeric), 4 teachers (Jeffery, Abel,
        // Kelly isomeric; Haley single), 3 departments, 2 addresses.
        assert_eq!(fed.catalog().table(g.class_id("Student").unwrap()).len(), 5);
        assert_eq!(fed.catalog().table(g.class_id("Teacher").unwrap()).len(), 4);
        assert_eq!(
            fed.catalog().table(g.class_id("Department").unwrap()).len(),
            3
        );
        assert_eq!(fed.catalog().table(g.class_id("Address").unwrap()).len(), 2);
        // John's two copies share a GOid.
        let student = g.class_id("Student").unwrap();
        let table = fed.catalog().table(student);
        let pairs = table.iter().filter(|(_, ls)| ls.len() == 2).count();
        assert_eq!(pairs, 1);
    }

    #[test]
    fn q1_answer_matches_the_paper() {
        let fed = federation().unwrap();
        let q1 = fed.parse_and_bind(Q1).unwrap();
        let answer = oracle_answer(&fed, &q1);
        assert_eq!(answer.certain().len(), 1);
        assert_eq!(
            answer.certain()[0].values(),
            &[Value::text("Hedy"), Value::text("Kelly")]
        );
        assert_eq!(answer.maybe().len(), 1);
        assert_eq!(
            answer.maybe()[0].row().values(),
            &[Value::text("Tony"), Value::text("Haley")]
        );
        // Tony's unsolved predicates: address.city (p0) and
        // advisor.speciality (p1); his advisor's department is CS (true).
        let unsolved: Vec<usize> = answer.maybe()[0]
            .unsolved()
            .map(fedoq_query::PredId::index)
            .collect();
        assert_eq!(unsolved, vec![0, 1]);
    }

    #[test]
    fn referential_integrity() {
        let fed = federation().unwrap();
        for db in fed.dbs() {
            db.validate_refs().unwrap();
        }
    }
}
