//! Instrumented synchronization primitives for the FQ300 concurrency
//! lints.
//!
//! The TCP serving layer (`fedoq-wire`'s hub and job queue) coordinates
//! real OS threads with mutexes and condvars. This crate wraps
//! [`std::sync::Mutex`], [`std::sync::Condvar`], and [`std::sync::mpsc`]
//! with *labeled* shims that, when a trace session is active, record
//! every acquisition (with the set of locks already held by the thread),
//! every release, every condvar wait (tagged raw/guarded and
//! timed/untimed), every notification, and every access to a
//! [`TracedData`] cell together with the thread's lockset at that
//! moment. `fedoq-check` replays the trace to build the lock-order graph
//! (FQ300), run the Eraser lockset algorithm (FQ301), and audit condvar
//! discipline (FQ302); [`Trace::signature`] condenses a run into an
//! interleaving fingerprint so the schedule explorer can count *distinct*
//! interleavings instead of re-exploring redundant ones.
//!
//! Outside a session the wrappers cost one relaxed atomic load per
//! operation, so production binaries (`fedoq-serve`, `fedoq-site`,
//! `bench_throughput`) use them unconditionally.
//!
//! Two deliberate policy choices live here rather than in callers:
//!
//! * **Poison recovery.** A panicked thread poisons any `std` lock it
//!   held; unwrap-on-poison then cascades the panic through every other
//!   thread. [`Mutex::lock`] instead recovers the inner guard, counts
//!   the event ([`poison_recoveries`]), records it in the trace, and
//!   prints a one-time diagnostic per lock label — shared state may be
//!   mid-update, but the process keeps serving (hub/serve state is
//!   droppable-connection shaped, so this is the right trade).
//! * **Condvar discipline.** Raw untimed [`Condvar::wait`] is how
//!   wakeup-loss bugs are written; the shim marks such waits so FQ302
//!   can flag them, and offers [`Condvar::wait_while`] /
//!   [`Condvar::wait_timeout_while`] whose predicate re-check is done by
//!   the shim itself (recorded as `guarded`, never flagged).
//!
//! A seeded chaos scheduler ([`set_chaos`]) perturbs sync operations
//! with yields, short sleeps, and rare long "straggler" stalls so the
//! FQ303 schedule explorer can drive the same code through different
//! interleavings reproducibly-in-distribution from a seed.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex as StdMutex;
use std::sync::MutexGuard as StdMutexGuard;
use std::time::Duration;

// ---------------------------------------------------------------------
// Identity: labeled lock/cell instances and per-thread ids.
// ---------------------------------------------------------------------

/// Identity of one lock (or traced cell) instance: the static label
/// names the *class* (e.g. every hub writer lock shares
/// `"hub.writer"`), the instance id distinguishes individuals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LockId {
    /// The class label given at construction.
    pub label: &'static str,
    /// Globally unique instance number.
    pub instance: u64,
}

static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    /// Locks currently held by this thread, in acquisition order.
    static HELD: RefCell<Vec<LockId>> = const { RefCell::new(Vec::new()) };
}

fn thread_id() -> u64 {
    THREAD_ID.with(|id| *id)
}

fn held_snapshot() -> Vec<LockId> {
    HELD.with(|h| h.borrow().clone())
}

fn held_push(id: LockId) {
    HELD.with(|h| h.borrow_mut().push(id));
}

fn held_remove(id: LockId) {
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        if let Some(pos) = held.iter().rposition(|l| *l == id) {
            held.remove(pos);
        }
    });
}

// ---------------------------------------------------------------------
// The trace buffer and session control.
// ---------------------------------------------------------------------

/// One recorded synchronization event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Stable per-process thread number (assigned at first sync op).
    pub thread: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The kinds of events a trace records.
#[derive(Debug, Clone)]
pub enum EventKind {
    /// A mutex was acquired; `held` is the set of locks the thread
    /// already held (the acquisition-graph edges `held[i] → lock`).
    Acquire {
        /// The lock acquired.
        lock: LockId,
        /// Locks held before this acquisition, in acquisition order.
        held: Vec<LockId>,
    },
    /// A mutex was released.
    Release {
        /// The lock released.
        lock: LockId,
    },
    /// A condvar wait began (the associated lock is released for the
    /// duration of the wait and reacquired before `WaitEnd`).
    WaitBegin {
        /// Label of the condvar waited on.
        cond: &'static str,
        /// The lock released around the wait.
        lock: LockId,
        /// Whether the wait carries a timeout.
        timed: bool,
        /// Whether the shim itself re-checks a predicate (`wait_while`
        /// family). Raw waits rely on caller discipline FQ302 cannot
        /// verify, so raw *untimed* waits are flagged.
        guarded: bool,
    },
    /// The matching wait returned (lock reacquired).
    WaitEnd {
        /// Label of the condvar waited on.
        cond: &'static str,
        /// The lock reacquired after the wait.
        lock: LockId,
    },
    /// `notify_one` / `notify_all` was called.
    Notify {
        /// Label of the condvar notified.
        cond: &'static str,
        /// `true` for `notify_all`.
        all: bool,
    },
    /// A [`TracedData`] cell was accessed; `locks` is the thread's
    /// lockset at that moment (Eraser input for FQ301).
    Access {
        /// The cell accessed.
        cell: LockId,
        /// Whether the access mutated the cell.
        write: bool,
        /// Shim locks held during the access.
        locks: Vec<LockId>,
    },
    /// A poisoned lock was recovered instead of panicking.
    PoisonRecovered {
        /// The lock that was poisoned.
        lock: LockId,
    },
    /// A message was sent on an instrumented channel.
    ChannelSend {
        /// The channel's label.
        channel: &'static str,
    },
    /// A message was received from an instrumented channel.
    ChannelRecv {
        /// The channel's label.
        channel: &'static str,
    },
}

/// Hard cap on buffered events so a runaway run cannot exhaust memory;
/// [`Trace::truncated`] reports when the cap was hit.
pub const EVENT_CAP: usize = 1 << 20;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EVENTS: StdMutex<Vec<Event>> = StdMutex::new(Vec::new());
static SESSION: StdMutex<()> = StdMutex::new(());
static TRUNCATED: AtomicBool = AtomicBool::new(false);

fn record(kind: EventKind) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let ev = Event {
        thread: thread_id(),
        kind,
    };
    let mut buf = lock_recovering(&EVENTS);
    if buf.len() < EVENT_CAP {
        buf.push(ev);
    } else {
        TRUNCATED.store(true, Ordering::Relaxed);
    }
}

/// Locks an internal `std` mutex, recovering from poison (internal
/// state is a plain `Vec`/set that stays valid mid-panic).
fn lock_recovering<T>(m: &StdMutex<T>) -> StdMutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// An active recording session. Sessions are serialized process-wide
/// (beginning one blocks until any other finishes or is dropped), so
/// concurrent tests cannot pollute each other's traces.
pub struct TraceSession {
    _guard: SessionGuard,
}

struct SessionGuard(#[allow(dead_code)] StdMutexGuard<'static, ()>);

impl Drop for SessionGuard {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
    }
}

/// Starts recording sync events; blocks while another session is live.
pub fn begin_trace() -> TraceSession {
    let guard = SESSION
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    lock_recovering(&EVENTS).clear();
    TRUNCATED.store(false, Ordering::Relaxed);
    ENABLED.store(true, Ordering::SeqCst);
    TraceSession {
        _guard: SessionGuard(guard),
    }
}

impl TraceSession {
    /// Stops recording and returns everything captured.
    pub fn finish(self) -> Trace {
        ENABLED.store(false, Ordering::SeqCst);
        let events = std::mem::take(&mut *lock_recovering(&EVENTS));
        Trace {
            events,
            truncated: TRUNCATED.load(Ordering::Relaxed),
        }
    }

    /// Drains the events recorded so far without ending the session —
    /// the per-seed slices the schedule explorer fingerprints.
    pub fn take(&mut self) -> Trace {
        let events = std::mem::take(&mut *lock_recovering(&EVENTS));
        Trace {
            events,
            truncated: TRUNCATED.swap(false, Ordering::Relaxed),
        }
    }
}

/// A finished recording.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// The events, in global buffer-append order.
    pub events: Vec<Event>,
    /// Whether [`EVENT_CAP`] cut the recording short.
    pub truncated: bool,
}

impl Trace {
    /// An order-sensitive fingerprint of the interleaving: FNV-1a over
    /// the sequence of lock acquisitions (restricted to `labels` unless
    /// empty), with thread ids normalized by first appearance so the
    /// same logical schedule hashes equally across runs. Two runs with
    /// equal signatures took the same acquisition interleaving — the
    /// reduction the schedule explorer uses to skip redundant seeds.
    pub fn signature(&self, labels: &[&str]) -> u64 {
        let mut order: HashMap<u64, u64> = HashMap::new();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mix = |byte: u8, h: &mut u64| {
            *h ^= u64::from(byte);
            *h = h.wrapping_mul(0x0100_0000_01b3);
        };
        for ev in &self.events {
            let EventKind::Acquire { lock, .. } = &ev.kind else {
                continue;
            };
            if !labels.is_empty() && !labels.contains(&lock.label) {
                continue;
            }
            let next = order.len() as u64;
            let norm = *order.entry(ev.thread).or_insert(next);
            for b in norm.to_le_bytes() {
                mix(b, &mut h);
            }
            for b in lock.label.bytes() {
                mix(b, &mut h);
            }
            mix(0xff, &mut h);
        }
        h
    }
}

// ---------------------------------------------------------------------
// Poison accounting.
// ---------------------------------------------------------------------

static POISON_COUNT: AtomicU64 = AtomicU64::new(0);
static POISON_SEEN: StdMutex<BTreeSet<&'static str>> = StdMutex::new(BTreeSet::new());

/// How many poisoned acquisitions have been recovered process-wide.
pub fn poison_recoveries() -> u64 {
    POISON_COUNT.load(Ordering::Relaxed)
}

fn note_poison(lock: LockId) {
    POISON_COUNT.fetch_add(1, Ordering::Relaxed);
    record(EventKind::PoisonRecovered { lock });
    let mut seen = lock_recovering(&POISON_SEEN);
    if seen.insert(lock.label) {
        eprintln!(
            "fedoq-sync: recovered poisoned lock `{}` (a thread panicked while holding it); \
             guarded state may be mid-update",
            lock.label
        );
    }
}

// ---------------------------------------------------------------------
// Chaos: seeded schedule perturbation.
// ---------------------------------------------------------------------

/// Seeded perturbation policy for the schedule explorer: before each
/// acquisition/notification the shim may yield, sleep briefly, or (the
/// straggler case) stall long enough to reorder whole work items —
/// the permuted/straggler schedule families of the FQ200 playbook
/// transplanted to real threads.
#[derive(Debug, Clone, Copy)]
pub struct Chaos {
    /// RNG seed; equal seeds draw identical perturbation streams.
    pub seed: u64,
    /// Per-op probability (permille) of `thread::yield_now`.
    pub yield_permille: u32,
    /// Per-op probability (permille) of a short sleep.
    pub sleep_permille: u32,
    /// Upper bound of the short sleep, microseconds.
    pub max_sleep_us: u64,
    /// Per-op probability (permille) of a long straggler stall.
    pub straggler_permille: u32,
    /// Straggler stall length, microseconds.
    pub straggler_us: u64,
}

impl Chaos {
    /// The default explorer profile for `seed`.
    pub fn seeded(seed: u64) -> Chaos {
        Chaos {
            seed,
            yield_permille: 300,
            sleep_permille: 120,
            max_sleep_us: 200,
            straggler_permille: 8,
            straggler_us: 4_000,
        }
    }
}

struct ChaosState {
    cfg: Chaos,
    rng: SmallRng,
}

static CHAOS_ON: AtomicBool = AtomicBool::new(false);
static CHAOS: StdMutex<Option<ChaosState>> = StdMutex::new(None);

/// Installs (or with `None` removes) the chaos policy process-wide.
pub fn set_chaos(chaos: Option<Chaos>) {
    let mut slot = lock_recovering(&CHAOS);
    *slot = chaos.map(|cfg| ChaosState {
        cfg,
        rng: SmallRng::seed_from_u64(cfg.seed),
    });
    CHAOS_ON.store(slot.is_some(), Ordering::SeqCst);
}

enum Perturb {
    Nothing,
    Yield,
    Sleep(Duration),
}

fn draw_perturb() -> Perturb {
    let mut slot = lock_recovering(&CHAOS);
    let Some(state) = slot.as_mut() else {
        return Perturb::Nothing;
    };
    let roll: u32 = state.rng.gen_range(0u32..1000);
    let c = state.cfg;
    if roll < c.straggler_permille {
        Perturb::Sleep(Duration::from_micros(c.straggler_us))
    } else if roll < c.straggler_permille + c.sleep_permille {
        let us = state.rng.gen_range(0u64..=c.max_sleep_us);
        Perturb::Sleep(Duration::from_micros(us))
    } else if roll < c.straggler_permille + c.sleep_permille + c.yield_permille {
        Perturb::Yield
    } else {
        Perturb::Nothing
    }
}

fn perturb() {
    if !CHAOS_ON.load(Ordering::Relaxed) {
        return;
    }
    match draw_perturb() {
        Perturb::Nothing => {}
        Perturb::Yield => std::thread::yield_now(),
        Perturb::Sleep(d) => std::thread::sleep(d),
    }
}

// ---------------------------------------------------------------------
// Mutex.
// ---------------------------------------------------------------------

/// A labeled, instrumented [`std::sync::Mutex`]: acquisitions record
/// the holder's prior lockset, poison is recovered with a diagnostic.
pub struct Mutex<T> {
    label: &'static str,
    instance: u64,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// A new mutex of class `label` guarding `value`.
    pub fn new(label: &'static str, value: T) -> Mutex<T> {
        Mutex {
            label,
            instance: NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed),
            inner: StdMutex::new(value),
        }
    }

    /// This instance's identity.
    pub fn id(&self) -> LockId {
        LockId {
            label: self.label,
            instance: self.instance,
        }
    }

    /// Acquires the lock, recovering (with a diagnostic) if poisoned.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        perturb();
        let inner = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                note_poison(self.id());
                poisoned.into_inner()
            }
        };
        let held = held_snapshot();
        held_push(self.id());
        record(EventKind::Acquire {
            lock: self.id(),
            held,
        });
        MutexGuard {
            inner: Some(inner),
            lock: self,
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex")
            .field("label", &self.label)
            .field("instance", &self.instance)
            .finish_non_exhaustive()
    }
}

/// Guard for an instrumented [`Mutex`]; releasing records the event.
pub struct MutexGuard<'a, T> {
    /// `None` only transiently while suspended inside a condvar wait.
    inner: Option<StdMutexGuard<'a, T>>,
    lock: &'a Mutex<T>,
}

impl<'a, T> MutexGuard<'a, T> {
    /// Hands the raw guard to a condvar wait, recording the release.
    fn suspend(mut self) -> (StdMutexGuard<'a, T>, &'a Mutex<T>) {
        let inner = self.inner.take().expect("guard is live");
        let lock = self.lock;
        held_remove(lock.id());
        record(EventKind::Release { lock: lock.id() });
        (inner, lock)
    }

    /// Rewraps the raw guard a condvar wait returned, recording the
    /// reacquisition.
    fn resume(inner: StdMutexGuard<'a, T>, lock: &'a Mutex<T>) -> MutexGuard<'a, T> {
        let held = held_snapshot();
        held_push(lock.id());
        record(EventKind::Acquire {
            lock: lock.id(),
            held,
        });
        MutexGuard {
            inner: Some(inner),
            lock,
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard is live")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard is live")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.is_some() {
            held_remove(self.lock.id());
            record(EventKind::Release {
                lock: self.lock.id(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Condvar.
// ---------------------------------------------------------------------

/// A labeled, instrumented [`std::sync::Condvar`].
///
/// Raw [`wait`](Condvar::wait) is recorded as unguarded+untimed, which
/// FQ302 flags: nothing re-checks the predicate, so a stolen or
/// spurious wakeup is silently lost. Prefer
/// [`wait_while`](Condvar::wait_while) /
/// [`wait_timeout_while`](Condvar::wait_timeout_while) (shim-guarded),
/// or [`wait_timeout`](Condvar::wait_timeout) where the caller
/// tolerates empty wakeups by design.
pub struct Condvar {
    label: &'static str,
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A new condvar labeled `label`.
    pub fn new(label: &'static str) -> Condvar {
        Condvar {
            label,
            inner: std::sync::Condvar::new(),
        }
    }

    /// The label given at construction.
    pub fn label(&self) -> &'static str {
        self.label
    }

    fn begin(&self, lock: LockId, timed: bool, guarded: bool) {
        record(EventKind::WaitBegin {
            cond: self.label,
            lock,
            timed,
            guarded,
        });
    }

    fn end(&self, lock: LockId) {
        record(EventKind::WaitEnd {
            cond: self.label,
            lock,
        });
    }

    /// Raw untimed wait — flagged by FQ302; see the type docs.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let id = guard.lock.id();
        self.begin(id, false, false);
        let (inner, lock) = guard.suspend();
        let inner = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(poisoned) => {
                note_poison(id);
                poisoned.into_inner()
            }
        };
        self.end(id);
        MutexGuard::resume(inner, lock)
    }

    /// Raw timed wait; returns the guard and whether it timed out.
    /// Not flagged: the timeout bounds any lost wakeup, and callers of
    /// this form handle empty results by contract.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let id = guard.lock.id();
        self.begin(id, true, false);
        let (inner, lock) = guard.suspend();
        let (inner, timed_out) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, res)) => (g, res.timed_out()),
            Err(poisoned) => {
                note_poison(id);
                let (g, res) = poisoned.into_inner();
                (g, res.timed_out())
            }
        };
        self.end(id);
        (MutexGuard::resume(inner, lock), timed_out)
    }

    /// Guarded untimed wait: blocks while `condition` returns `true`,
    /// with the predicate re-checked by the shim on every wakeup.
    pub fn wait_while<'a, T, F>(&self, guard: MutexGuard<'a, T>, condition: F) -> MutexGuard<'a, T>
    where
        F: FnMut(&mut T) -> bool,
    {
        let id = guard.lock.id();
        self.begin(id, false, true);
        let (inner, lock) = guard.suspend();
        let inner = match self.inner.wait_while(inner, condition) {
            Ok(g) => g,
            Err(poisoned) => {
                note_poison(id);
                poisoned.into_inner()
            }
        };
        self.end(id);
        MutexGuard::resume(inner, lock)
    }

    /// Guarded timed wait: blocks while `condition` returns `true` or
    /// until `timeout`; returns the guard and whether it timed out.
    pub fn wait_timeout_while<'a, T, F>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
        condition: F,
    ) -> (MutexGuard<'a, T>, bool)
    where
        F: FnMut(&mut T) -> bool,
    {
        let id = guard.lock.id();
        self.begin(id, true, true);
        let (inner, lock) = guard.suspend();
        let (inner, timed_out) = match self.inner.wait_timeout_while(inner, timeout, condition) {
            Ok((g, res)) => (g, res.timed_out()),
            Err(poisoned) => {
                note_poison(id);
                let (g, res) = poisoned.into_inner();
                (g, res.timed_out())
            }
        };
        self.end(id);
        (MutexGuard::resume(inner, lock), timed_out)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        perturb();
        record(EventKind::Notify {
            cond: self.label,
            all: false,
        });
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        perturb();
        record(EventKind::Notify {
            cond: self.label,
            all: true,
        });
        self.inner.notify_all();
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar")
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------
// TracedData: shared cells for lockset (FQ301) analysis.
// ---------------------------------------------------------------------

/// A shared cell whose accesses are recorded with the accessor's
/// lockset — the input of the Eraser-style FQ301 race lint.
///
/// The cell is internally atomic (a private `std` mutex invisible to
/// the lockset model), so even deliberately "racy" fixtures execute
/// without undefined behavior; what FQ301 judges is the *protocol*:
/// two threads touching the cell, at least one writing, with no shim
/// lock in common.
pub struct TracedData<T> {
    label: &'static str,
    instance: u64,
    cell: StdMutex<T>,
}

impl<T> TracedData<T> {
    /// A new traced cell of class `label` holding `value`.
    pub fn new(label: &'static str, value: T) -> TracedData<T> {
        TracedData {
            label,
            instance: NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed),
            cell: StdMutex::new(value),
        }
    }

    /// This cell's identity.
    pub fn id(&self) -> LockId {
        LockId {
            label: self.label,
            instance: self.instance,
        }
    }

    fn access(&self, write: bool) {
        record(EventKind::Access {
            cell: self.id(),
            write,
            locks: held_snapshot(),
        });
    }

    /// Reads the cell (recorded as a read access).
    pub fn get(&self) -> T
    where
        T: Clone,
    {
        perturb();
        self.access(false);
        lock_recovering(&self.cell).clone()
    }

    /// Replaces the cell's value (recorded as a write access).
    pub fn set(&self, value: T) {
        perturb();
        self.access(true);
        *lock_recovering(&self.cell) = value;
    }

    /// Read-modify-write (recorded as a write access).
    pub fn update<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        perturb();
        self.access(true);
        f(&mut lock_recovering(&self.cell))
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for TracedData<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TracedData")
            .field("label", &self.label)
            .field("instance", &self.instance)
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------
// Channels.
// ---------------------------------------------------------------------

/// An unbounded instrumented mpsc channel labeled `label`; sends and
/// receives are recorded so channel-shaped handoffs appear in traces.
pub fn channel<T>(label: &'static str) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = std::sync::mpsc::channel();
    (Sender { label, inner: tx }, Receiver { label, inner: rx })
}

/// Sending half of an instrumented channel.
pub struct Sender<T> {
    label: &'static str,
    inner: std::sync::mpsc::Sender<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            label: self.label,
            inner: self.inner.clone(),
        }
    }
}

impl<T> Sender<T> {
    /// Sends, recording the event; `Err` means the receiver is gone.
    pub fn send(&self, value: T) -> Result<(), T> {
        perturb();
        record(EventKind::ChannelSend {
            channel: self.label,
        });
        self.inner.send(value).map_err(|e| e.0)
    }
}

/// Receiving half of an instrumented channel.
pub struct Receiver<T> {
    label: &'static str,
    inner: std::sync::mpsc::Receiver<T>,
}

impl<T> Receiver<T> {
    /// Blocking receive; `None` means every sender is gone.
    pub fn recv(&self) -> Option<T> {
        let got = self.inner.recv().ok();
        if got.is_some() {
            record(EventKind::ChannelRecv {
                channel: self.label,
            });
        }
        got
    }

    /// Non-blocking receive; `None` when the channel is currently empty
    /// or every sender is gone. Used by delta subscribers (shell `watch`,
    /// serve sessions) that drain between commands without stalling.
    pub fn try_recv(&self) -> Option<T> {
        let got = self.inner.try_recv().ok();
        if got.is_some() {
            record(EventKind::ChannelRecv {
                channel: self.label,
            });
        }
        got
    }

    /// Timed receive; `None` on timeout or disconnection.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<T> {
        let got = self.inner.recv_timeout(timeout).ok();
        if got.is_some() {
            record(EventKind::ChannelRecv {
                channel: self.label,
            });
        }
        got
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn acquire_records_prior_lockset_and_release_pairs_up() {
        let session = begin_trace();
        let a = Mutex::new("test.outer", ());
        let b = Mutex::new("test.inner", ());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        let trace = session.finish();
        let acquires: Vec<_> = trace
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Acquire { lock, held } => Some((lock.label, held.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(acquires.len(), 2);
        assert_eq!(acquires[0], ("test.outer", vec![]));
        assert_eq!(acquires[1].0, "test.inner");
        assert_eq!(acquires[1].1[0].label, "test.outer");
        let releases = trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Release { .. }))
            .count();
        assert_eq!(releases, 2);
    }

    #[test]
    fn guarded_wait_round_trips_and_marks_guarded() {
        let session = begin_trace();
        let pair = Arc::new((Mutex::new("test.queue", false), Condvar::new("test.ready")));
        let worker = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (lock, cond) = &*pair;
                let guard = lock.lock();
                let guard = cond.wait_while(guard, |ready| !*ready);
                assert!(*guard);
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        {
            let (lock, cond) = &*pair;
            *lock.lock() = true;
            cond.notify_all();
        }
        worker.join().expect("worker");
        let trace = session.finish();
        let wait = trace
            .events
            .iter()
            .find_map(|e| match &e.kind {
                EventKind::WaitBegin { guarded, timed, .. } => Some((*guarded, *timed)),
                _ => None,
            })
            .expect("a wait was recorded");
        assert_eq!(wait, (true, false));
        assert!(trace
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::WaitEnd { .. })));
    }

    #[test]
    fn traced_data_snapshots_the_lockset() {
        let session = begin_trace();
        let guard_lock = Mutex::new("test.guard", ());
        let cell = TracedData::new("test.cell", 0u64);
        {
            let _g = guard_lock.lock();
            cell.update(|v| *v += 1);
        }
        cell.set(5);
        assert_eq!(cell.get(), 5);
        let trace = session.finish();
        let accesses: Vec<_> = trace
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Access { write, locks, .. } => Some((*write, locks.len())),
                _ => None,
            })
            .collect();
        assert_eq!(accesses, vec![(true, 1), (true, 0), (false, 0)]);
    }

    #[test]
    fn poison_is_recovered_and_counted() {
        let m = Arc::new(Mutex::new("test.poisoned", 7u64));
        let before = poison_recoveries();
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
        assert!(poison_recoveries() > before);
    }

    #[test]
    fn signature_distinguishes_interleavings_and_normalizes_threads() {
        let a = Mutex::new("sig.a", ());
        let b = Mutex::new("sig.b", ());
        let session = begin_trace();
        drop(a.lock());
        drop(b.lock());
        let one = session.finish().signature(&[]);
        let session = begin_trace();
        drop(b.lock());
        drop(a.lock());
        let two = session.finish().signature(&[]);
        assert_ne!(one, two, "different orders hash differently");
        let session = begin_trace();
        drop(a.lock());
        drop(b.lock());
        let again = session.finish().signature(&[]);
        assert_eq!(one, again, "same order hashes equally");
    }

    #[test]
    fn channel_round_trip_is_recorded() {
        let session = begin_trace();
        let (tx, rx) = channel::<u32>("test.chan");
        tx.send(9).expect("receiver lives");
        assert_eq!(rx.recv(), Some(9));
        let trace = session.finish();
        assert!(trace.events.iter().any(
            |e| matches!(e.kind, EventKind::ChannelSend { channel } if channel == "test.chan")
        ));
        assert!(trace.events.iter().any(
            |e| matches!(e.kind, EventKind::ChannelRecv { channel } if channel == "test.chan")
        ));
    }
}
