//! Concurrency tests for the TCP serving layer, driven by the
//! FQ300-series analyzers.
//!
//! Every test here makes the same two-sided claim: under a stressed or
//! perturbed thread schedule the serving layer (1) keeps its answers
//! byte-identical to the single-threaded
//! [`DistributedExecutor::run_local`] baseline, and (2) leaves a sync
//! trace that the FQ300–FQ302 lints judge clean (no lock-order cycles,
//! no lockset races, no raw untimed condvar waits). The schedule
//! explorer test adds FQ303 (answer-divergence-freedom across seeded
//! chaos schedules); the kill test adds real process death mid-job.
//!
//! The in-process entry points ([`spawn_site`]/[`spawn_serve`]) leak
//! their daemon threads by design, so each test boots its own stack on
//! fresh ports and the process exits when the suite does.

use fedoq_check::{analyze_trace, explore_serving, ExploreOpts, Report};
use fedoq_net::{DistributedExecutor, DistributedStrategy, RpcConfig};
use fedoq_sync::{begin_trace, set_chaos, Chaos};
use fedoq_wire::{render_answer, spawn_serve, spawn_site, ServeOpts, SiteOpts, WireClient};
use fedoq_workload::university;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};

/// Generous deadlines: classification must come from the data, never
/// from a scheduling hiccup on a loaded CI box.
fn patient_rpc() -> RpcConfig {
    RpcConfig {
        timeout_us: 5_000_000.0,
        retries: 3,
        ..RpcConfig::default()
    }
}

/// Boots three in-process university sites plus a serve frontend with
/// `workers` worker threads; returns the serve address.
fn boot_in_process(workers: usize, rpc: RpcConfig) -> SocketAddr {
    let mut site_addrs = Vec::new();
    for db in 0..3u16 {
        let addr = spawn_site(&SiteOpts {
            db,
            listen: "127.0.0.1:0".into(),
            workload: "university".into(),
            rpc,
            pipeline: Default::default(),
        })
        .expect("site spawns");
        site_addrs.push(addr.to_string());
    }
    spawn_serve(&ServeOpts {
        listen: "127.0.0.1:0".into(),
        sites: site_addrs,
        workload: "university".into(),
        workers,
        rpc,
        pipeline: Default::default(),
    })
    .expect("serve spawns")
}

/// The single-threaded baseline rendering for one strategy.
fn local_baseline(strategy: DistributedStrategy) -> Vec<String> {
    let fed = university::federation().expect("university federation");
    let query = fed.parse_and_bind(university::Q1).expect("bind Q1");
    let outcome = DistributedExecutor::new()
        .run_local(&fed, &query, strategy)
        .expect("local execution");
    render_answer(&outcome.answer)
}

/// Asserts the FQ300–FQ302 lints find nothing in `trace`.
fn assert_trace_clean(trace: &fedoq_sync::Trace, what: &str) {
    let mut report = Report::new(what, String::new());
    analyze_trace(trace, &mut report);
    assert!(
        report.diagnostics.is_empty(),
        "{what}: shipped serving layer must trace clean:\n{report}"
    );
}

/// The TSan smoke target: hub + serve + three sites on loopback, every
/// strategy answering byte-identically, all inside one process so the
/// sanitizer sees every thread.
#[test]
fn loopback_smoke_hub_serve() {
    let session = begin_trace();
    let addr = boot_in_process(2, patient_rpc());
    let mut client = WireClient::connect(&addr.to_string()).expect("connect");
    for name in ["ca", "bl", "pl"] {
        let strategy = DistributedStrategy::parse(name).expect("known strategy");
        let answer = client
            .query(university::Q1, name)
            .expect("transport")
            .unwrap_or_else(|e| panic!("{name} over loopback failed: {e}"));
        assert_eq!(
            answer.rows,
            local_baseline(strategy),
            "strategy {name}: loopback and local answers diverge"
        );
    }
    assert_trace_clean(&session.finish(), "loopback smoke");
}

/// The full explorer: seeded chaos schedules, DPOR-style signature
/// dedup, FQ300–FQ303 all clean on the shipped code.
#[test]
fn schedule_explorer_finds_no_findings_on_shipped_code() {
    let outcome = explore_serving(&ExploreOpts {
        seeds: (100..=107).collect(),
        target_schedules: 4,
        workers: 2,
        strategies: vec!["bl", "pl"],
    });
    assert!(outcome.schedules_run > 0, "explorer never ran a schedule");
    assert!(
        outcome.distinct_schedules > 0,
        "explorer saw no distinct interleavings"
    );
    assert!(
        outcome.report.diagnostics.is_empty(),
        "explorer found FQ300-series issues in the shipped serving layer:\n{}",
        outcome.report
    );
}

/// Queue pressure: more in-flight jobs than workers from several
/// concurrent clients, under chaos perturbation. Every answer must
/// still be byte-identical to the baseline, and the trace clean.
#[test]
fn full_job_queue_keeps_answers_byte_identical() {
    let session = begin_trace();
    let addr = boot_in_process(2, patient_rpc());
    set_chaos(Some(Chaos::seeded(42)));
    let expected = local_baseline(DistributedStrategy::bl());
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = WireClient::connect(&addr.to_string()).expect("connect");
                for round in 0..4 {
                    let answer = client
                        .query(university::Q1, "bl")
                        .expect("transport")
                        .unwrap_or_else(|e| panic!("client {c} round {round}: {e}"));
                    assert_eq!(
                        answer.rows, expected,
                        "client {c} round {round}: answer depends on queue pressure"
                    );
                }
            })
        })
        .collect();
    for handle in clients {
        handle.join().expect("client thread");
    }
    set_chaos(None);
    assert_trace_clean(&session.finish(), "full job queue");
}

/// Connection churn: clients connect, run one query, and disconnect
/// concurrently. Reconnects must neither corrupt answers nor trip the
/// trace lints.
#[test]
fn concurrent_reconnect_is_schedule_safe() {
    let session = begin_trace();
    let addr = boot_in_process(2, patient_rpc());
    let expected = local_baseline(DistributedStrategy::pl());
    let churners: Vec<_> = (0..3)
        .map(|c| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                for round in 0..5 {
                    let mut client = WireClient::connect(&addr.to_string()).expect("connect");
                    let answer = client
                        .query(university::Q1, "pl")
                        .expect("transport")
                        .unwrap_or_else(|e| panic!("churner {c} round {round}: {e}"));
                    assert_eq!(
                        answer.rows, expected,
                        "churner {c} round {round}: reconnect corrupted the answer"
                    );
                    drop(client); // explicit: the disconnect is the point
                }
            })
        })
        .collect();
    for handle in churners {
        handle.join().expect("churner thread");
    }
    assert_trace_clean(&session.finish(), "concurrent reconnect");
}

/// A site process killed while jobs are in flight: the localized
/// strategy must degrade (never hang, never panic the worker), the
/// frontend must keep serving afterwards, and the serve-side trace must
/// stay clean — including the poison-recovery path never firing.
#[test]
fn killed_site_mid_job_degrades_and_serving_continues() {
    // The victim site is a real child process; its two peers and the
    // serve frontend live in this process so the trace sees them.
    let mut site_addrs = Vec::new();
    let rpc = RpcConfig {
        timeout_us: 300_000.0,
        retries: 1,
        backoff_us: 50_000.0,
        ..RpcConfig::default()
    };
    for db in 0..2u16 {
        let addr = spawn_site(&SiteOpts {
            db,
            listen: "127.0.0.1:0".into(),
            workload: "university".into(),
            rpc,
            pipeline: Default::default(),
        })
        .expect("site spawns");
        site_addrs.push(addr.to_string());
    }
    let mut victim = Command::new(env!("CARGO_BIN_EXE_fedoq-site"))
        .args([
            "--db",
            "2",
            "--workload",
            "university",
            "--rpc-timeout-us",
            "300000",
            "--rpc-retries",
            "1",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn victim site");
    let victim_addr = announced_addr(&mut victim);
    site_addrs.push(victim_addr);

    let session = begin_trace();
    let addr = spawn_serve(&ServeOpts {
        listen: "127.0.0.1:0".into(),
        sites: site_addrs,
        workload: "university".into(),
        workers: 2,
        rpc,
        pipeline: Default::default(),
    })
    .expect("serve spawns");
    let mut client = WireClient::connect(&addr.to_string()).expect("connect");

    // Healthy first, so the kill is the only variable.
    let healthy = client
        .query(university::Q1, "bl")
        .expect("transport")
        .expect("healthy BL run");
    assert!(!healthy.is_degraded(), "no site died yet");

    // Launch a query and kill the victim while it is in flight.
    let poison_before = fedoq_sync::poison_recoveries();
    let in_flight = std::thread::spawn(move || {
        let got = client.query(university::Q1, "bl");
        (client, got)
    });
    std::thread::sleep(std::time::Duration::from_millis(2));
    victim.kill().expect("kill victim");
    victim.wait().expect("reap victim");

    let (mut client, got) = in_flight.join().expect("in-flight query thread");
    // Depending on where the kill landed, the in-flight answer is
    // either still complete or degraded — but never a hang or a panic.
    let answer = got
        .expect("transport")
        .unwrap_or_else(|e| panic!("BL with a dying site must degrade, not fail: {e}"));
    assert_eq!(answer.executed, "BL");

    // The frontend keeps serving: the site is now definitely dead, so
    // the answer must be flagged degraded and implicate it.
    let after = client
        .query(university::Q1, "bl")
        .expect("transport")
        .expect("BL after the kill");
    assert!(
        after.is_degraded(),
        "dead site produced a clean answer: {:?}",
        after.degraded_sites
    );
    assert_eq!(
        fedoq_sync::poison_recoveries(),
        poison_before,
        "a site death must not poison any serve-side lock"
    );
    assert_trace_clean(&session.finish(), "kill mid-job");
}

/// Reads the `LISTENING <addr>` announcement off a child daemon.
fn announced_addr(child: &mut Child) -> String {
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("daemon announcement");
    line.trim()
        .strip_prefix("LISTENING ")
        .unwrap_or_else(|| panic!("expected LISTENING announcement, got {line:?}"))
        .to_string()
}
