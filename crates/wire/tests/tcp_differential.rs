//! Differential tests: the federation over real TCP, in real processes,
//! must classify exactly like the in-process `LocalTransport`.
//!
//! Each test spawns one `fedoq-site` process per university site plus a
//! `fedoq-serve` frontend (the actual release binaries, via
//! `CARGO_BIN_EXE_*`), runs queries through a [`WireClient`], and diffs
//! the canonically rendered answers against
//! [`DistributedExecutor::run_local`] over the same workload. The
//! site-kill tests then prove the inherited failure semantics survive
//! real process death: localized strategies degrade (provenance
//! intact), the centralized strategy reports the site unreachable.

use fedoq_net::{DistributedExecutor, DistributedStrategy};
use fedoq_wire::{render_answer, WireClient};
use fedoq_workload::university;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

/// A child process killed on drop, so failing tests leak nothing.
struct Daemon {
    child: Child,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns `bin` and waits for its `LISTENING <addr>` announcement.
fn spawn_daemon(bin: &str, args: &[String]) -> (Daemon, String) {
    let mut child = Command::new(bin)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("daemon announcement");
    let addr = line
        .trim()
        .strip_prefix("LISTENING ")
        .unwrap_or_else(|| panic!("{bin}: expected LISTENING announcement, got {line:?}"))
        .to_string();
    (Daemon { child }, addr)
}

/// Boots three university site daemons plus the serve frontend, with
/// `rpc` flags applied to every process. Returns the processes (sites
/// first, in id order) and the serve address.
fn boot_federation(rpc: &[&str]) -> (Vec<Daemon>, Daemon, String) {
    let mut sites = Vec::new();
    let mut addrs = Vec::new();
    for db in 0..3u16 {
        let mut args = vec![
            "--db".to_string(),
            db.to_string(),
            "--workload".to_string(),
            "university".to_string(),
        ];
        args.extend(rpc.iter().map(|s| (*s).to_string()));
        let (daemon, addr) = spawn_daemon(env!("CARGO_BIN_EXE_fedoq-site"), &args);
        sites.push(daemon);
        addrs.push(addr);
    }
    let mut args = vec!["--workload".to_string(), "university".to_string()];
    for addr in &addrs {
        args.push("--site".to_string());
        args.push(addr.clone());
    }
    args.push("--workers".to_string());
    args.push("2".to_string());
    args.extend(rpc.iter().map(|s| (*s).to_string()));
    let (serve, serve_addr) = spawn_daemon(env!("CARGO_BIN_EXE_fedoq-serve"), &args);
    (sites, serve, serve_addr)
}

/// The in-process baseline rendering for one strategy.
fn local_baseline(strategy: DistributedStrategy) -> Vec<String> {
    let fed = university::federation().expect("university federation");
    let query = fed.parse_and_bind(university::Q1).expect("bind Q1");
    let outcome = DistributedExecutor::new()
        .run_local(&fed, &query, strategy)
        .expect("local execution");
    render_answer(&outcome.answer)
}

#[test]
fn tcp_answers_match_local_transport_for_every_strategy() {
    // Generous deadlines: classification must come from the data, never
    // from a scheduling hiccup on a loaded CI box.
    let rpc = ["--rpc-timeout-us", "5000000", "--rpc-retries", "3"];
    let (_sites, _serve, addr) = boot_federation(&rpc);
    let mut client = WireClient::connect(&addr).expect("connect to serve");

    for name in ["ca", "bl", "pl", "bl-s", "pl-s"] {
        let strategy = DistributedStrategy::parse(name).expect("known strategy");
        let expected = local_baseline(strategy);
        let answer = client
            .query(university::Q1, name)
            .expect("transport")
            .unwrap_or_else(|e| panic!("{name} over TCP failed: {e}"));
        assert_eq!(
            answer.rows, expected,
            "strategy {name}: TCP and local answers diverge"
        );
        assert_eq!(answer.executed, strategy.name());
        assert!(
            answer.degraded_sites.is_empty(),
            "no site died, yet {name} reported degraded sites {:?}",
            answer.degraded_sites
        );
        assert!(!answer.is_degraded());
        assert!(answer.forwarded > 0, "{name} never touched the wire");
    }
}

#[test]
fn adaptive_over_tcp_executes_a_ranked_strategy_faithfully() {
    let rpc = ["--rpc-timeout-us", "5000000", "--rpc-retries", "3"];
    let (_sites, _serve, addr) = boot_federation(&rpc);
    let mut client = WireClient::connect(&addr).expect("connect to serve");

    // Several rounds: the planner may revise its choice as it observes
    // real responses, but every answer must match the executed
    // strategy's own local baseline.
    for round in 0..3 {
        let answer = client
            .query(university::Q1, "adaptive")
            .expect("transport")
            .unwrap_or_else(|e| panic!("adaptive round {round} failed: {e}"));
        assert!(
            ["CA", "BL", "PL"].contains(&answer.executed.as_str()),
            "adaptive executed unexpected strategy {:?}",
            answer.executed
        );
        let strategy =
            DistributedStrategy::parse(&answer.executed).expect("planner strategies parse");
        assert_eq!(
            answer.rows,
            local_baseline(strategy),
            "adaptive round {round} ({}) diverges from local",
            answer.executed
        );
    }
}

#[test]
fn killed_site_degrades_localized_and_fails_centralized() {
    // Tight deadlines so the dead site is declared quickly.
    let rpc = [
        "--rpc-timeout-us",
        "300000",
        "--rpc-retries",
        "1",
        "--rpc-backoff-us",
        "50000",
    ];
    let (mut sites, _serve, addr) = boot_federation(&rpc);
    let mut client = WireClient::connect(&addr).expect("connect to serve");

    // Warm path first: all sites alive, clean answers.
    let healthy = client
        .query(university::Q1, "bl")
        .expect("transport")
        .expect("healthy BL run");
    assert!(!healthy.is_degraded());

    // Kill site 2 (DB3 holds Q1's assistant data, so its loss is
    // visible) and let the sockets die.
    let mut victim = sites.remove(2);
    victim.child.kill().expect("kill site 2");
    victim.child.wait().expect("reap site 2");
    drop(victim);

    // Localized strategies answer anyway, flagged degraded.
    for name in ["bl", "pl"] {
        let answer = client
            .query(university::Q1, name)
            .expect("transport")
            .unwrap_or_else(|e| panic!("{name} with a dead site must degrade, not fail: {e}"));
        assert!(
            answer.is_degraded(),
            "{name}: dead site produced a clean answer: degraded_sites={:?} rows={:?}",
            answer.degraded_sites,
            answer.rows
        );
        assert!(
            answer.degraded_sites.contains(&2)
                || answer.rows.iter().any(|r| r.contains("(degraded)")),
            "{name}: degradation does not implicate the killed site"
        );
    }

    // The centralized strategy cannot ship from a dead site: hard error.
    let err = client
        .query(university::Q1, "ca")
        .expect("transport")
        .expect_err("CA with a dead site must fail");
    assert!(
        err.contains("unreachable"),
        "CA error should report the site unreachable, got: {err}"
    );
}
