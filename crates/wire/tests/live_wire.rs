//! Standing queries over real TCP: the subscription protocol end to end.
//!
//! A loopback `fedoq-serve` frontend hosts the session; a [`WireClient`]
//! subscribes, mutates, and unsubscribes over the wire. The load-bearing
//! assertion is the wire layer's usual one, extended to conditioned
//! answers: the snapshot a remote subscriber receives is **byte-identical**
//! to evaluating the same standing query in-process
//! ([`fedoq_live::evaluate`] + [`fedoq_live::render_conditioned`]), and
//! after a mutation the deltas delivered before the ack barrier name the
//! resolved row.
//!
//! Subscriptions evaluate in-process on the serve's workload copy, so no
//! site daemons are needed — the serve boots with an empty site table.

use fedoq_live::{evaluate, render_conditioned, LiveStrategy};
use fedoq_sim::SystemParams;
use fedoq_wire::{spawn_serve, ServeOpts, WireClient};
use fedoq_workload::university;
use std::collections::BTreeSet;

fn boot() -> WireClient {
    let addr = spawn_serve(&ServeOpts {
        listen: "127.0.0.1:0".into(),
        sites: vec![],
        workload: "university".into(),
        workers: 1,
        rpc: Default::default(),
        pipeline: Default::default(),
    })
    .expect("serve spawns in-process");
    WireClient::connect(&addr.to_string()).expect("client dials loopback")
}

/// The in-process reference rendering for one strategy.
fn reference_snapshot(strategy: LiveStrategy) -> Vec<String> {
    let fed = university::federation().expect("university federation");
    let query = fed.parse_and_bind(university::Q1).expect("bind Q1");
    let answer = evaluate(
        &fed,
        &query,
        strategy,
        SystemParams::paper_default(),
        &BTreeSet::new(),
    )
    .expect("in-process evaluation");
    render_conditioned(&answer)
}

#[test]
fn remote_snapshot_is_byte_identical_to_in_process_evaluation() {
    let mut client = boot();
    for (name, strategy) in [
        ("ca", LiveStrategy::CA),
        ("bl", LiveStrategy::BL),
        ("pl", LiveStrategy::PL),
        ("hy", LiveStrategy::HY),
    ] {
        let (watch, reply) = client
            .subscribe(university::Q1, name, 5)
            .expect("subscribe over TCP");
        let rows = reply.expect("watch accepted");
        assert_eq!(rows, reference_snapshot(strategy), "strategy {name}");
        client.unsubscribe(watch).expect("unsubscribe");
    }
}

#[test]
fn mutation_deltas_arrive_before_the_ack_barrier() {
    let mut client = boot();
    let (watch, reply) = client
        .subscribe(university::Q1, "bl", 5)
        .expect("subscribe over TCP");
    let rows = reply.expect("watch accepted");
    assert_eq!(rows.len(), 2, "{rows:?}");

    // Haley gains a non-database speciality copy at DB2: the paper's
    // maybe row (Tony) resolves to eliminated.
    let (ack, deltas) = client
        .mutate(1, "insert Teacher name='Haley',speciality='network'")
        .expect("mutate over TCP");
    let ack = ack.expect("mutation accepted");
    assert_eq!(ack.executed, "mutate");
    assert!(
        ack.rows.iter().any(|r| r.contains("inserted Teacher")),
        "{:?}",
        ack.rows
    );
    assert_eq!(deltas.len(), 1, "{deltas:?}");
    assert_eq!(deltas[0].watch, watch);
    assert_eq!(deltas[0].seq, 1);
    let lines = deltas[0].reply.as_ref().expect("delta batch");
    assert_eq!(lines.len(), 1, "{lines:?}");
    assert!(lines[0].starts_with("M>X "), "{lines:?}");

    // Errors travel as strings without poisoning the connection.
    let (bad, _) = client
        .mutate(9, "insert Teacher name=x")
        .expect("transport ok");
    assert!(bad.is_err());
    let (_, refused) = client
        .subscribe(university::Q1, "warp", 0)
        .expect("transport ok");
    assert!(refused.is_err());

    client.unsubscribe(watch).expect("unsubscribe");
}
