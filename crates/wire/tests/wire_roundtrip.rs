//! Property tests for the wire codec.
//!
//! Three guarantees, over arbitrary protocol messages:
//!
//! * **Canonical round trip** — for any envelope built through the real
//!   constructors, `encode(decode(encode(e))) == encode(e)` byte for
//!   byte (the constructors normalize — sorted answers, deduplicated
//!   unsolved sets — and the codec adds no freedom of its own).
//! * **Truncation is an error** — every strict prefix of a valid
//!   encoding is rejected, never mis-parsed or panicked on.
//! * **Garbage never panics** — arbitrary bytes either fail to decode
//!   or decode to a value whose re-encoding is a fixed point of
//!   `encode ∘ decode` (the decoder normalizes, idempotently).

use fedoq_core::handlers::{
    CheckRequest, CheckVerdict, LocalRow, LocalizedConfig, TargetRequest, UnsolvedEntry,
};
use fedoq_core::{ExecError, MaybeRow, Provenance, QueryAnswer, ResultRow};
use fedoq_net::msg::{
    CertifyReply, Envelope, LocalEvalReply, LookupReply, Payload, Request, Response, ShipReply,
};
use fedoq_net::DistributedStrategy;
use fedoq_object::{DbId, GOid, LOid, Truth, Value};
use fedoq_query::PredId;
use fedoq_sim::{Phase, Site};
use fedoq_wire::frame::{decode_payload, encode_payload, Frame, Role};
use fedoq_wire::{decode_envelope, encode_envelope};
use proptest::collection::vec;
use proptest::prelude::*;

// ------------------------------------------------------------ generators

fn arb_db() -> impl Strategy<Value = DbId> {
    (0u16..6).prop_map(DbId::new)
}

fn arb_loid() -> impl Strategy<Value = LOid> {
    (arb_db(), 0u64..1_000_000).prop_map(|(db, serial)| LOid::new(db, serial))
}

fn arb_goid() -> impl Strategy<Value = GOid> {
    (0u64..1_000_000).prop_map(GOid::new)
}

fn arb_pred() -> impl Strategy<Value = PredId> {
    (0usize..8).prop_map(PredId::new)
}

fn arb_truth() -> impl Strategy<Value = Truth> {
    prop_oneof![Just(Truth::False), Just(Truth::Unknown), Just(Truth::True)]
}

fn arb_site() -> impl Strategy<Value = Site> {
    prop_oneof![Just(Site::Global), arb_db().prop_map(Site::Db)]
}

fn arb_phase() -> impl Strategy<Value = Phase> {
    prop_oneof![
        Just(Phase::Ship),
        Just(Phase::O),
        Just(Phase::I),
        Just(Phase::P)
    ]
}

fn arb_value(depth: u32) -> BoxedStrategy<Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[ -~]{0,12}".prop_map(Value::Text),
        any::<bool>().prop_map(Value::Bool),
        arb_loid().prop_map(Value::Ref),
        arb_goid().prop_map(Value::GRef),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        prop_oneof![leaf, vec(arb_value(depth - 1), 0..3).prop_map(Value::List)].boxed()
    }
}

fn arb_strategy() -> impl Strategy<Value = DistributedStrategy> {
    let cfg = (any::<bool>(), any::<bool>()).prop_map(|(s, t)| LocalizedConfig {
        use_signatures: s,
        complete_targets: t,
    });
    prop_oneof![
        Just(DistributedStrategy::Centralized),
        cfg.clone().prop_map(DistributedStrategy::BasicLocalized),
        cfg.prop_map(DistributedStrategy::ParallelLocalized),
    ]
}

fn arb_check_request() -> impl Strategy<Value = CheckRequest> {
    (arb_loid(), arb_loid(), arb_pred(), 0usize..8).prop_map(|(item, assistant, pred, start)| {
        CheckRequest {
            item,
            assistant,
            pred,
            start,
        }
    })
}

fn arb_target_request() -> impl Strategy<Value = TargetRequest> {
    (arb_loid(), arb_loid(), 0usize..4, 0usize..8).prop_map(|(item, assistant, target, start)| {
        TargetRequest {
            item,
            assistant,
            target,
            start,
        }
    })
}

fn arb_check_verdict() -> impl Strategy<Value = CheckVerdict> {
    (arb_loid(), arb_pred(), arb_truth()).prop_map(|(item, pred, verdict)| CheckVerdict {
        item,
        pred,
        verdict,
    })
}

fn arb_unsolved_entry() -> impl Strategy<Value = UnsolvedEntry> {
    (
        arb_pred(),
        prop_oneof![Just(None), arb_loid().prop_map(Some)],
    )
        .prop_map(|(pred, item)| UnsolvedEntry { pred, item })
}

fn arb_local_row() -> impl Strategy<Value = LocalRow> {
    (
        arb_loid(),
        arb_goid(),
        vec(arb_truth(), 0..4),
        vec(arb_unsolved_entry(), 0..3),
        vec(arb_value(1), 0..3),
        vec(
            prop_oneof![Just(None), (arb_loid(), 0usize..8).prop_map(Some)],
            0..3,
        ),
    )
        .prop_map(
            |(root_loid, goid, verdicts, unsolved, targets, target_items)| LocalRow {
                root_loid,
                goid,
                verdicts,
                unsolved,
                targets,
                target_items,
            },
        )
}

fn arb_result_row() -> impl Strategy<Value = ResultRow> {
    (arb_goid(), vec(arb_value(1), 0..3)).prop_map(|(goid, values)| ResultRow::new(goid, values))
}

fn arb_maybe_row() -> impl Strategy<Value = MaybeRow> {
    (arb_result_row(), vec(arb_pred(), 1..4), any::<bool>()).prop_map(
        |(row, unsolved, degraded)| {
            let prov = if degraded {
                Provenance::Degraded
            } else {
                Provenance::Full
            };
            MaybeRow::new(row, unsolved).with_provenance(prov)
        },
    )
}

fn arb_answer() -> impl Strategy<Value = QueryAnswer> {
    (vec(arb_result_row(), 0..4), vec(arb_maybe_row(), 0..4))
        .prop_map(|(certain, maybe)| QueryAnswer::new(certain, maybe))
}

fn arb_exec_error() -> impl Strategy<Value = ExecError> {
    prop_oneof![
        "[ -~]{0,24}".prop_map(ExecError::Internal),
        "[ -~]{0,24}".prop_map(ExecError::Unreachable),
    ]
}

fn arb_certify_reply() -> impl Strategy<Value = CertifyReply> {
    (
        prop_oneof![
            arb_answer().prop_map(Ok).boxed(),
            arb_exec_error().prop_map(Err).boxed()
        ],
        vec(arb_db(), 0..3),
        any::<u64>(),
    )
        .prop_map(|(answer, degraded_sites, retries)| CertifyReply {
            answer,
            degraded_sites,
            retries,
        })
}

fn arb_lookup_reply() -> impl Strategy<Value = LookupReply> {
    (
        vec(arb_check_verdict(), 0..4),
        vec(((arb_loid(), 0usize..4), arb_value(1)), 0..4),
    )
        .prop_map(|(verdicts, values)| LookupReply { verdicts, values })
}

fn arb_request() -> BoxedStrategy<Request> {
    prop_oneof![
        arb_strategy().prop_map(|strategy| Request::Certify { strategy }),
        (any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
            |(parallel, use_signatures, complete_targets)| Request::LocalEval {
                parallel,
                use_signatures,
                complete_targets,
            }
        ),
        (
            vec(arb_check_request(), 0..4),
            vec(arb_target_request(), 0..4)
        )
            .prop_map(|(checks, targets)| Request::AssistantLookup { checks, targets }),
        Just(Request::ShipObjects),
        (
            vec(arb_check_request(), 0..4),
            vec(arb_target_request(), 0..4)
        )
            .prop_map(|(checks, targets)| Request::BatchAssistantLookup { checks, targets }),
        vec(arb_strategy(), 0..3).prop_map(|strategies| Request::BatchCertify { strategies }),
    ]
    .boxed()
}

fn arb_local_eval_reply() -> impl Strategy<Value = LocalEvalReply> {
    (
        vec(arb_local_row(), 0..3),
        vec(arb_check_verdict(), 0..3),
        vec(((arb_loid(), 0usize..4), arb_value(1)), 0..3),
        vec((arb_loid(), arb_pred()), 0..3),
        vec(arb_db(), 0..3),
    )
        .prop_map(
            |(rows, verdicts, target_values, failed_checks, degraded_peers)| LocalEvalReply {
                rows,
                verdicts,
                target_values,
                failed_checks,
                degraded_peers,
            },
        )
}

fn arb_response() -> BoxedStrategy<Response> {
    prop_oneof![
        arb_certify_reply().prop_map(|r| Response::Certify(Box::new(r))),
        arb_local_eval_reply().prop_map(|r| Response::LocalEval(Box::new(r))),
        arb_lookup_reply().prop_map(Response::AssistantLookup),
        any::<u64>().prop_map(|bytes| Response::ShipObjects(ShipReply { bytes })),
        arb_lookup_reply().prop_map(Response::BatchAssistantLookup),
        vec(arb_certify_reply(), 0..3).prop_map(Response::BatchCertify),
    ]
    .boxed()
}

fn arb_envelope() -> impl Strategy<Value = Envelope> {
    (
        arb_site(),
        arb_site(),
        any::<u64>(),
        any::<u64>(),
        arb_phase(),
        prop_oneof![
            arb_request().prop_map(Payload::Request),
            arb_response().prop_map(Payload::Response)
        ],
    )
        .prop_map(|(from, to, rpc, bytes, phase, payload)| Envelope {
            from,
            to,
            rpc,
            bytes,
            phase,
            payload,
        })
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    let role = prop_oneof![Just(Role::Serve), Just(Role::Site), Just(Role::Client)];
    prop_oneof![
        (role, prop_oneof![Just(None), (0u16..6).prop_map(Some)])
            .prop_map(|(role, site)| Frame::Hello { role, site }),
        vec((0u16..6, "[ -~]{0,16}"), 0..4).prop_map(|sites| Frame::Peers { sites }),
        (any::<u64>(), "[ -~]{0,32}", arb_envelope()).prop_map(|(tag, sql, env)| Frame::Envelope {
            tag,
            sql,
            env
        }),
        (any::<u64>(), "[ -~]{0,32}", "[a-z-]{0,8}").prop_map(|(id, sql, strategy)| Frame::Query {
            id,
            sql,
            strategy
        }),
        (any::<u64>(), "[ -~]{0,24}").prop_map(|(id, err)| Frame::Answer {
            id,
            reply: Err(err)
        }),
    ]
}

// ------------------------------------------------------------ properties

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn envelope_reencode_is_byte_identical(env in arb_envelope()) {
        let bytes = encode_envelope(&env);
        let decoded = decode_envelope(&bytes).expect("own encoding must decode");
        prop_assert_eq!(encode_envelope(&decoded), bytes);
    }

    #[test]
    fn frame_payload_reencode_is_byte_identical(frame in arb_frame()) {
        let bytes = encode_payload(&frame);
        let decoded = decode_payload(&bytes).expect("own encoding must decode");
        prop_assert_eq!(encode_payload(&decoded), bytes);
    }

    #[test]
    fn every_truncation_is_rejected_without_panic(env in arb_envelope(), cut in any::<usize>()) {
        let bytes = encode_envelope(&env);
        let cut = cut % bytes.len().max(1);
        prop_assert!(decode_envelope(&bytes[..cut]).is_err());
    }

    #[test]
    fn garbage_never_panics_and_accepted_garbage_normalizes(
        bytes in vec(any::<u8>(), 0..192)
    ) {
        // Either rejected, or accepted into a value whose encoding is a
        // fixed point (decode normalizes; encode of the result must be
        // stable under another decode/encode round).
        if let Ok(env) = decode_envelope(&bytes) {
            let canon = encode_envelope(&env);
            let again = decode_envelope(&canon).expect("canonical form must decode");
            prop_assert_eq!(encode_envelope(&again), canon);
        }
        if let Ok(frame) = decode_payload(&bytes) {
            let canon = encode_payload(&frame);
            let again = decode_payload(&canon).expect("canonical form must decode");
            prop_assert_eq!(encode_payload(&again), canon);
        }
    }

    #[test]
    fn corrupted_headers_error_cleanly(env in arb_envelope(), flip in 0usize..16, bit in 0u8..8) {
        // Flip one bit somewhere in the first 16 bytes: must never panic,
        // and on acceptance the canonical fixed point still holds.
        let mut bytes = encode_envelope(&env);
        if !bytes.is_empty() {
            let at = flip % bytes.len();
            bytes[at] ^= 1 << bit;
        }
        if let Ok(decoded) = decode_envelope(&bytes) {
            let canon = encode_envelope(&decoded);
            prop_assert!(decode_envelope(&canon).is_ok());
        }
    }
}
