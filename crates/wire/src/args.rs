//! Shared command-line parsing for the wire daemons.

use fedoq_core::PipelineConfig;
use fedoq_net::RpcConfig;

/// A parsed `--key value` flag list.
pub struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    /// Parses `args` as alternating `--key value` pairs.
    ///
    /// # Errors
    ///
    /// Rejects positional arguments and flags missing a value.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Flags, String> {
        let mut pairs = Vec::new();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument '{arg}'"));
            };
            let Some(value) = args.next() else {
                return Err(format!("flag --{key} needs a value"));
            };
            pairs.push((key.to_string(), value));
        }
        Ok(Flags { pairs })
    }

    /// The last value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The last value of `--key` parsed as `T`, or `default`.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("bad value '{raw}' for --{key}")),
        }
    }

    /// Every value of a repeatable `--key`.
    pub fn get_all(&self, key: &str) -> Vec<String> {
        self.pairs
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .collect()
    }

    /// The RPC policy from `--rpc-timeout-us`, `--rpc-retries`,
    /// `--rpc-backoff-us` (defaults where absent).
    pub fn rpc(&self) -> Result<RpcConfig, String> {
        let mut rpc = RpcConfig::default();
        rpc.timeout_us = self.get_parsed("rpc-timeout-us", rpc.timeout_us)?;
        rpc.retries = self.get_parsed("rpc-retries", rpc.retries)?;
        rpc.backoff_us = self.get_parsed("rpc-backoff-us", rpc.backoff_us)?;
        Ok(rpc)
    }

    /// The pipeline from `--threads`, `--batch`, `--cache` (defaults:
    /// sequential, unbatched, uncached — the differential baseline).
    pub fn pipeline(&self) -> Result<PipelineConfig, String> {
        let mut pipeline = PipelineConfig::default();
        pipeline.threads = self.get_parsed("threads", pipeline.threads)?;
        pipeline.batch = self.get_parsed("batch", pipeline.batch)?;
        pipeline.cache = self.get_parsed("cache", pipeline.cache)?;
        Ok(pipeline)
    }
}
