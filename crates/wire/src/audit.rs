//! Self-description of the wire grammar for the FQ304–FQ306 codec
//! lints.
//!
//! `fedoq-check`'s codec pass does not parse this crate's source; it
//! interprets the *actual* encoder/decoder tables. [`surface`] builds a
//! [`WireSurface`] by running the real code both ways:
//!
//! * **Encoder tables** — every variant of every tagged enum family is
//!   encoded from an exemplar value; the first byte is its tag. The
//!   exemplar lists are kept exhaustive by companion `match`es with no
//!   wildcard arm, so adding an enum variant without extending the
//!   table (and therefore the codec) is a compile error here.
//! * **Decoder tables** — each family's decoder is probed with every
//!   possible tag byte; a tag is *accepted* when the decoder commits to
//!   it (any outcome other than that family's unknown-tag rejection).
//! * **Bound probes** (FQ305) — deliberately oversized frames, sequence
//!   counts, strings, and over-deep value nests are fed to the real
//!   decoders under `catch_unwind`; each must reject, never panic.
//! * **Version-skew probes** (FQ306) — well-formed frames rewritten to
//!   versions `VERSION ± 1` are fed to [`read_frame`]; both must be
//!   rejected cleanly.
//!
//! The surface also carries a **grammar fingerprint** (FNV-1a over the
//! family tables and exemplar encodings) and the pinned
//! [`GRAMMAR_PIN`]. FQ306 fails when the fingerprint drifts while the
//! version stands still — the "added a message variant without bumping
//! the codec" mistake — so evolving the grammar forces a deliberate
//! choice: bump [`crate::frame::VERSION`], then re-pin.

use crate::codec::{Reader, WireError, Writer, MAX_DEPTH, MAX_FRAME, MAX_SEQ};
use crate::frame::{
    dec_role, enc_role, encode_frame, encode_payload, read_frame, Frame, Role, VERSION,
};
use crate::proto::{
    dec_phase, dec_request, dec_response, dec_site, dec_strategy, dec_truth, dec_value, enc_phase,
    enc_request, enc_response, enc_site, enc_strategy, enc_truth, enc_value,
};
use fedoq_core::handlers::LocalizedConfig;
use fedoq_core::QueryAnswer;
use fedoq_net::msg::{
    CertifyReply, Envelope, LocalEvalReply, LookupReply, Payload, Request, Response, ShipReply,
};
use fedoq_net::DistributedStrategy;
use fedoq_object::Truth;
use fedoq_object::{DbId, GOid, LOid, Value};
use fedoq_sim::{Phase, Site};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Pinned grammar identity: protocol version and grammar fingerprint at
/// the time the codec was last deliberately evolved. When the grammar
/// changes, FQ306 fires until [`crate::frame::VERSION`] is bumped *and*
/// this pin is updated to the value printed by the
/// `grammar_pin_matches_current_surface` test.
pub const GRAMMAR_PIN: (u32, u64) = (3, 0x65ba_bf2a_2240_639c);

/// One tagged enum family of the wire grammar.
#[derive(Debug, Clone)]
pub struct TagFamily {
    /// Family name (`"frame"`, `"request"`, `"value"`, …).
    pub name: &'static str,
    /// `(tag, variant name)` for every variant the encoder can emit.
    pub encoder: Vec<(u8, &'static str)>,
    /// Every tag byte the decoder commits to (does not reject as an
    /// unknown tag for this family).
    pub decoder_accepts: Vec<u8>,
}

/// What a hostile-input probe did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// The input was rejected with a decode error — the only sound
    /// outcome.
    Rejected,
    /// The input was accepted as if well-formed.
    Accepted,
    /// The decoder panicked.
    Panicked,
}

/// Results of the resource-bound probes (FQ305 input).
#[derive(Debug, Clone)]
pub struct BoundsProbe {
    /// [`MAX_FRAME`] as compiled.
    pub max_frame: usize,
    /// [`MAX_SEQ`] as compiled.
    pub max_seq: usize,
    /// [`MAX_DEPTH`] as compiled.
    pub max_depth: usize,
    /// A frame header declaring `MAX_FRAME + 1` payload bytes.
    pub oversized_frame: ProbeOutcome,
    /// A sequence header declaring `MAX_SEQ + 1` elements.
    pub oversized_seq: ProbeOutcome,
    /// A string header declaring `MAX_FRAME + 1` bytes.
    pub oversized_str: ProbeOutcome,
    /// A value nested `MAX_DEPTH + 2` lists deep.
    pub overdeep_value: ProbeOutcome,
}

/// Result of decoding a well-formed frame rewritten to another version.
#[derive(Debug, Clone)]
pub struct SkewProbe {
    /// The version the frame header claimed.
    pub version: u32,
    /// What [`read_frame`] did with it.
    pub outcome: ProbeOutcome,
}

/// Everything the FQ304–FQ306 lints need to judge the codec, computed
/// from the shipped encoder/decoder code (never from a description that
/// could drift out of sync with it).
#[derive(Debug, Clone)]
pub struct WireSurface {
    /// [`crate::frame::VERSION`] as compiled.
    pub version: u32,
    /// FNV-1a fingerprint of the grammar (families, tags, exemplar
    /// encodings, bounds).
    pub fingerprint: u64,
    /// The pinned version ([`GRAMMAR_PIN`]).
    pub pin_version: u32,
    /// The pinned fingerprint ([`GRAMMAR_PIN`]).
    pub pin_fingerprint: u64,
    /// Every tagged enum family.
    pub families: Vec<TagFamily>,
    /// Resource-bound probe results.
    pub bounds: BoundsProbe,
    /// Version-skew probe results (`VERSION ± 1`).
    pub skew: Vec<SkewProbe>,
}

// ------------------------------------------------------------ exemplars
//
// Each `*_variants` function returns one encoded exemplar per enum
// variant. The inner `name` match has no wildcard arm: adding a variant
// to the enum without teaching this table (and the codec) is a compile
// error — the static half of FQ304's exhaustiveness guarantee.

fn strategy_exemplars() -> Vec<(&'static str, Vec<u8>)> {
    fn name(s: &DistributedStrategy) -> &'static str {
        match s {
            DistributedStrategy::Centralized => "Centralized",
            DistributedStrategy::BasicLocalized(_) => "BasicLocalized",
            DistributedStrategy::ParallelLocalized(_) => "ParallelLocalized",
        }
    }
    let cfg = LocalizedConfig {
        use_signatures: false,
        complete_targets: false,
    };
    [
        DistributedStrategy::Centralized,
        DistributedStrategy::BasicLocalized(cfg),
        DistributedStrategy::ParallelLocalized(cfg),
    ]
    .iter()
    .map(|s| {
        let mut w = Writer::new();
        enc_strategy(&mut w, *s);
        (name(s), w.finish())
    })
    .collect()
}

fn value_exemplars() -> Vec<(&'static str, Vec<u8>)> {
    fn name(v: &Value) -> &'static str {
        match v {
            Value::Null => "Null",
            Value::Int(_) => "Int",
            Value::Float(_) => "Float",
            Value::Text(_) => "Text",
            Value::Bool(_) => "Bool",
            Value::Ref(_) => "Ref",
            Value::GRef(_) => "GRef",
            Value::List(_) => "List",
        }
    }
    [
        Value::Null,
        Value::Int(1),
        Value::Float(1.5),
        Value::Text("x".into()),
        Value::Bool(true),
        Value::Ref(LOid::new(DbId::new(0), 1)),
        Value::GRef(GOid::new(1)),
        Value::List(vec![Value::Null]),
    ]
    .iter()
    .map(|v| {
        let mut w = Writer::new();
        enc_value(&mut w, v);
        (name(v), w.finish())
    })
    .collect()
}

fn site_exemplars() -> Vec<(&'static str, Vec<u8>)> {
    fn name(s: &Site) -> &'static str {
        match s {
            Site::Global => "Global",
            Site::Db(_) => "Db",
        }
    }
    [Site::Global, Site::Db(DbId::new(0))]
        .iter()
        .map(|s| {
            let mut w = Writer::new();
            enc_site(&mut w, *s);
            (name(s), w.finish())
        })
        .collect()
}

fn phase_exemplars() -> Vec<(&'static str, Vec<u8>)> {
    fn name(p: &Phase) -> &'static str {
        match p {
            Phase::Ship => "Ship",
            Phase::O => "O",
            Phase::I => "I",
            Phase::P => "P",
        }
    }
    [Phase::Ship, Phase::O, Phase::I, Phase::P]
        .iter()
        .map(|p| {
            let mut w = Writer::new();
            enc_phase(&mut w, *p);
            (name(p), w.finish())
        })
        .collect()
}

fn truth_exemplars() -> Vec<(&'static str, Vec<u8>)> {
    fn name(t: &Truth) -> &'static str {
        match t {
            Truth::False => "False",
            Truth::Unknown => "Unknown",
            Truth::True => "True",
        }
    }
    [Truth::False, Truth::Unknown, Truth::True]
        .iter()
        .map(|t| {
            let mut w = Writer::new();
            enc_truth(&mut w, *t);
            (name(t), w.finish())
        })
        .collect()
}

fn role_exemplars() -> Vec<(&'static str, Vec<u8>)> {
    fn name(r: &Role) -> &'static str {
        match r {
            Role::Serve => "Serve",
            Role::Site => "Site",
            Role::Client => "Client",
        }
    }
    [Role::Serve, Role::Site, Role::Client]
        .iter()
        .map(|r| {
            let mut w = Writer::new();
            enc_role(&mut w, *r);
            (name(r), w.finish())
        })
        .collect()
}

fn request_exemplars() -> Vec<(&'static str, Vec<u8>)> {
    fn name(r: &Request) -> &'static str {
        match r {
            Request::Certify { .. } => "Certify",
            Request::LocalEval { .. } => "LocalEval",
            Request::AssistantLookup { .. } => "AssistantLookup",
            Request::ShipObjects => "ShipObjects",
            Request::BatchAssistantLookup { .. } => "BatchAssistantLookup",
            Request::BatchCertify { .. } => "BatchCertify",
            Request::HybridCertify { .. } => "HybridCertify",
        }
    }
    [
        Request::Certify {
            strategy: DistributedStrategy::Centralized,
        },
        Request::LocalEval {
            parallel: false,
            use_signatures: false,
            complete_targets: false,
        },
        Request::AssistantLookup {
            checks: vec![],
            targets: vec![],
        },
        Request::ShipObjects,
        Request::BatchAssistantLookup {
            checks: vec![],
            targets: vec![],
        },
        Request::BatchCertify { strategies: vec![] },
        Request::HybridCertify {
            parallel_sites: vec![],
            config: LocalizedConfig::default(),
        },
    ]
    .iter()
    .map(|r| {
        let mut w = Writer::new();
        enc_request(&mut w, r);
        (name(r), w.finish())
    })
    .collect()
}

fn response_exemplars() -> Vec<(&'static str, Vec<u8>)> {
    fn name(r: &Response) -> &'static str {
        match r {
            Response::Certify(_) => "Certify",
            Response::LocalEval(_) => "LocalEval",
            Response::AssistantLookup(_) => "AssistantLookup",
            Response::ShipObjects(_) => "ShipObjects",
            Response::BatchAssistantLookup(_) => "BatchAssistantLookup",
            Response::BatchCertify(_) => "BatchCertify",
        }
    }
    let certify = CertifyReply {
        answer: Ok(QueryAnswer::new(vec![], vec![])),
        degraded_sites: vec![],
        retries: 0,
    };
    let local_eval = LocalEvalReply {
        rows: vec![],
        verdicts: vec![],
        target_values: vec![],
        failed_checks: vec![],
        degraded_peers: vec![],
    };
    let lookup = LookupReply {
        verdicts: vec![],
        values: vec![],
    };
    [
        Response::Certify(Box::new(certify.clone())),
        Response::LocalEval(Box::new(local_eval)),
        Response::AssistantLookup(lookup.clone()),
        Response::ShipObjects(ShipReply { bytes: 0 }),
        Response::BatchAssistantLookup(lookup),
        Response::BatchCertify(vec![certify]),
    ]
    .iter()
    .map(|r| {
        let mut w = Writer::new();
        enc_response(&mut w, r);
        (name(r), w.finish())
    })
    .collect()
}

fn frame_exemplars() -> Vec<(&'static str, Vec<u8>)> {
    fn name(f: &Frame) -> &'static str {
        match f {
            Frame::Hello { .. } => "Hello",
            Frame::Peers { .. } => "Peers",
            Frame::Envelope { .. } => "Envelope",
            Frame::Query { .. } => "Query",
            Frame::Answer { .. } => "Answer",
            Frame::Subscribe { .. } => "Subscribe",
            Frame::Delta { .. } => "Delta",
            Frame::Unsubscribe { .. } => "Unsubscribe",
            Frame::Mutate { .. } => "Mutate",
        }
    }
    let env = Envelope {
        from: Site::Global,
        to: Site::Db(DbId::new(0)),
        rpc: 0,
        bytes: 0,
        phase: Phase::Ship,
        payload: Payload::Request(Request::ShipObjects),
    };
    [
        Frame::Hello {
            role: Role::Client,
            site: None,
        },
        Frame::Peers { sites: vec![] },
        Frame::Envelope {
            tag: 0,
            sql: String::new(),
            env,
        },
        Frame::Query {
            id: 0,
            sql: String::new(),
            strategy: String::new(),
        },
        Frame::Answer {
            id: 0,
            reply: Err(String::new()),
        },
        Frame::Subscribe {
            id: 0,
            sql: String::new(),
            strategy: String::new(),
            priority: 0,
        },
        Frame::Delta {
            id: 0,
            seq: 0,
            reply: Err(String::new()),
        },
        Frame::Unsubscribe { id: 0 },
        Frame::Mutate {
            id: 0,
            db: 0,
            spec: String::new(),
        },
    ]
    .iter()
    .map(|f| (name(f), encode_payload(f)))
    .collect()
}

// --------------------------------------------------------------- probes

/// Probes `dec` with every possible tag byte as a 1-byte input. The
/// decoder *accepts* a tag when it commits to parsing that variant —
/// any outcome (success, truncation while reading the body) other than
/// the family's unknown-tag rejection `Malformed(unknown_msg)`.
fn probe_decoder(
    unknown_msg: &'static str,
    dec: impl Fn(&[u8]) -> Result<(), WireError>,
) -> Vec<u8> {
    (0..=u8::MAX)
        .filter(|&t| !matches!(dec(&[t]), Err(WireError::Malformed(msg)) if msg == unknown_msg))
        .collect()
}

fn build_family(
    name: &'static str,
    unknown_msg: &'static str,
    exemplars: &[(&'static str, Vec<u8>)],
    dec: impl Fn(&[u8]) -> Result<(), WireError>,
) -> TagFamily {
    TagFamily {
        name,
        encoder: exemplars
            .iter()
            .map(|(variant, bytes)| (bytes.first().copied().unwrap_or(0xFF), *variant))
            .collect(),
        decoder_accepts: probe_decoder(unknown_msg, dec),
    }
}

fn guarded(f: impl FnOnce() -> bool) -> ProbeOutcome {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(true) => ProbeOutcome::Rejected,
        Ok(false) => ProbeOutcome::Accepted,
        Err(_) => ProbeOutcome::Panicked,
    }
}

fn bounds_probe() -> BoundsProbe {
    let oversized_frame = guarded(|| {
        let mut w = Writer::new();
        w.u32(crate::frame::MAGIC);
        w.u32(VERSION);
        w.u32((MAX_FRAME + 1) as u32);
        let bytes = w.finish();
        read_frame(&mut io::Cursor::new(bytes)).is_err()
    });
    let oversized_seq = guarded(|| {
        let mut w = Writer::new();
        w.u32((MAX_SEQ + 1) as u32);
        let bytes = w.finish();
        Reader::new(&bytes).seq().is_err()
    });
    let oversized_str = guarded(|| {
        let mut w = Writer::new();
        w.u32((MAX_FRAME + 1) as u32);
        let bytes = w.finish();
        Reader::new(&bytes).str().is_err()
    });
    let overdeep_value = guarded(|| {
        // MAX_DEPTH + 2 nested one-element lists around a Null: the
        // depth cap must reject it long before the stack could.
        let mut bytes = Vec::new();
        for _ in 0..(MAX_DEPTH + 2) {
            bytes.push(7u8); // Value::List tag
            bytes.extend_from_slice(&1u32.to_le_bytes());
        }
        bytes.push(0u8); // Value::Null
        dec_value(&mut Reader::new(&bytes)).is_err()
    });
    BoundsProbe {
        max_frame: MAX_FRAME,
        max_seq: MAX_SEQ,
        max_depth: MAX_DEPTH,
        oversized_frame,
        oversized_seq,
        oversized_str,
        overdeep_value,
    }
}

fn skew_probes() -> Vec<SkewProbe> {
    let good = encode_frame(&Frame::Hello {
        role: Role::Client,
        site: None,
    });
    [VERSION.wrapping_sub(1), VERSION + 1]
        .iter()
        .map(|&version| {
            let outcome = guarded(|| {
                let mut bytes = good.clone();
                bytes[4..8].copy_from_slice(&version.to_le_bytes());
                read_frame(&mut io::Cursor::new(bytes)).is_err()
            });
            SkewProbe { version, outcome }
        })
        .collect()
}

// ---------------------------------------------------------- fingerprint

/// `(family name, [(variant name, exemplar encoding)])` — the raw
/// material both the fingerprint and the encoder tables are built from.
type ExemplarTables = Vec<(&'static str, Vec<(&'static str, Vec<u8>)>)>;

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0100_0000_01b3);
    }
}

fn fingerprint(families: &ExemplarTables) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    fnv(&mut h, &VERSION.to_le_bytes());
    fnv(&mut h, &(MAX_FRAME as u64).to_le_bytes());
    fnv(&mut h, &(MAX_SEQ as u64).to_le_bytes());
    fnv(&mut h, &(MAX_DEPTH as u64).to_le_bytes());
    for (name, exemplars) in families {
        fnv(&mut h, name.as_bytes());
        for (variant, bytes) in exemplars {
            fnv(&mut h, variant.as_bytes());
            fnv(&mut h, &(bytes.len() as u64).to_le_bytes());
            fnv(&mut h, bytes);
        }
        fnv(&mut h, &[0xFE]);
    }
    h
}

/// Builds the full wire surface from the shipped codec. See the module
/// docs for what each part feeds.
pub fn surface() -> WireSurface {
    let tables: ExemplarTables = vec![
        ("frame", frame_exemplars()),
        ("role", role_exemplars()),
        ("site", site_exemplars()),
        ("phase", phase_exemplars()),
        ("truth", truth_exemplars()),
        ("value", value_exemplars()),
        ("strategy", strategy_exemplars()),
        ("request", request_exemplars()),
        ("response", response_exemplars()),
    ];
    let fingerprint = fingerprint(&tables);

    let via = |dec: fn(&mut Reader) -> Result<(), WireError>| {
        move |bytes: &[u8]| dec(&mut Reader::new(bytes))
    };
    let families = vec![
        build_family("frame", "frame tag", &tables[0].1, |bytes| {
            crate::frame::decode_payload(bytes).map(|_| ())
        }),
        build_family(
            "role",
            "role tag",
            &tables[1].1,
            via(|r| dec_role(r).map(|_| ())),
        ),
        build_family(
            "site",
            "site tag",
            &tables[2].1,
            via(|r| dec_site(r).map(|_| ())),
        ),
        build_family(
            "phase",
            "phase tag",
            &tables[3].1,
            via(|r| dec_phase(r).map(|_| ())),
        ),
        build_family(
            "truth",
            "truth tag",
            &tables[4].1,
            via(|r| dec_truth(r).map(|_| ())),
        ),
        build_family(
            "value",
            "value tag",
            &tables[5].1,
            via(|r| dec_value(r).map(|_| ())),
        ),
        build_family(
            "strategy",
            "strategy tag",
            &tables[6].1,
            via(|r| dec_strategy(r).map(|_| ())),
        ),
        build_family(
            "request",
            "request tag",
            &tables[7].1,
            via(|r| dec_request(r).map(|_| ())),
        ),
        build_family(
            "response",
            "response tag",
            &tables[8].1,
            via(|r| dec_response(r).map(|_| ())),
        ),
    ];

    WireSurface {
        version: VERSION,
        fingerprint,
        pin_version: GRAMMAR_PIN.0,
        pin_fingerprint: GRAMMAR_PIN.1,
        families,
        bounds: bounds_probe(),
        skew: skew_probes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoder_and_decoder_tables_agree_per_family() {
        for family in surface().families {
            let mut tags: Vec<u8> = family.encoder.iter().map(|(t, _)| *t).collect();
            tags.sort_unstable();
            tags.dedup();
            assert_eq!(
                tags.len(),
                family.encoder.len(),
                "{}: duplicate encoder tags",
                family.name
            );
            for (tag, variant) in &family.encoder {
                assert!(
                    family.decoder_accepts.contains(tag),
                    "{}: encoder emits tag {tag} ({variant}) the decoder rejects",
                    family.name
                );
            }
            for tag in &family.decoder_accepts {
                assert!(
                    family.encoder.iter().any(|(t, _)| t == tag),
                    "{}: decoder accepts dead tag {tag} no encoder emits",
                    family.name
                );
            }
        }
    }

    #[test]
    fn bound_and_skew_probes_all_reject() {
        let s = surface();
        assert_eq!(s.bounds.oversized_frame, ProbeOutcome::Rejected);
        assert_eq!(s.bounds.oversized_seq, ProbeOutcome::Rejected);
        assert_eq!(s.bounds.oversized_str, ProbeOutcome::Rejected);
        assert_eq!(s.bounds.overdeep_value, ProbeOutcome::Rejected);
        assert_eq!(s.skew.len(), 2);
        for probe in &s.skew {
            assert_eq!(
                probe.outcome,
                ProbeOutcome::Rejected,
                "version {} frames must be rejected",
                probe.version
            );
        }
    }

    #[test]
    fn grammar_pin_matches_current_surface() {
        let s = surface();
        assert_eq!(
            (s.version, s.fingerprint),
            GRAMMAR_PIN,
            "the wire grammar changed: bump frame::VERSION and re-pin \
             GRAMMAR_PIN to ({}, {:#018x})",
            s.version,
            s.fingerprint
        );
    }
}
