//! Length-prefixed frames: the unit of transmission on a connection.
//!
//! Every frame is `[magic u32][version u32][len u32][payload len bytes]`,
//! all little-endian. The payload starts with a one-byte frame tag:
//!
//! * [`Frame::Hello`] — first frame on every connection: who is dialing
//!   (a serve frontend, a component site, or an interactive client);
//! * [`Frame::Peers`] — serve → site: the federation's site address
//!   table, so sites can dial each other for assistant lookups;
//! * [`Frame::Envelope`] — one `fedoq-net` protocol message, tagged with
//!   its query fingerprint (requests also carry the query's SQL so a
//!   site can lazily bind sessions it has never seen);
//! * [`Frame::Query`] / [`Frame::Answer`] — the client protocol spoken
//!   by `fedoq-serve`: submit one SQL query under a strategy name, get
//!   back the canonically rendered answer or an error string;
//! * [`Frame::Subscribe`] / [`Frame::Delta`] / [`Frame::Unsubscribe`] /
//!   [`Frame::Mutate`] — the standing-query protocol: register a live
//!   subscription, receive its initial snapshot and every subsequent
//!   reclassification delta as canonically rendered strings, apply
//!   mutations that drive those deltas, and tear the watch down.
//!
//! A frame that fails to decode poisons only its connection (the reader
//! drops it); it can never panic the process.

use crate::codec::{Reader, WireError, Writer, MAX_FRAME};
use crate::proto::{dec_envelope, enc_envelope};
use fedoq_net::msg::Envelope;
use std::io::{self, Read, Write};

/// Frame magic: `FQW1` little-endian.
pub const MAGIC: u32 = 0x3157_5146;
/// Protocol version; bumped on any layout change.
///
/// v2: added `Request::HybridCertify` (per-site BL/PL schedules).
/// v3: standing-query subscription frames (Subscribe/Delta/Unsubscribe/
/// Mutate).
pub const VERSION: u32 = 3;

/// What kind of endpoint dialed a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// A `fedoq-serve` query frontend.
    Serve,
    /// A component-site daemon (`fedoq-site`).
    Site,
    /// An interactive client (shell, bench driver).
    Client,
}

/// The canonically rendered outcome of one client query.
///
/// Rows travel as strings (the `ResultRow`/`MaybeRow` display forms) so
/// a client can diff answers across transports byte for byte without
/// linking the object model.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientAnswer {
    /// The strategy that actually ran (`CA`/`BL`/`PL`/`BL-S`/`PL-S`; for
    /// `adaptive` submissions, whichever the planner picked).
    pub executed: String,
    /// Certain rows (`C {row}`) then maybe rows (`M {row} maybe[..]`),
    /// each sorted by GOid.
    pub rows: Vec<String>,
    /// Sites that stayed unreachable past the retry budget.
    pub degraded_sites: Vec<u16>,
    /// RPC retries the execution performed.
    pub retries: u64,
    /// Envelopes the serve-side transport put on the wire.
    pub forwarded: u64,
    /// Envelopes the serve-side transport failed to put on the wire.
    pub lost: u64,
    /// Server-side wall-clock execution time, µs.
    pub server_us: f64,
}

impl ClientAnswer {
    /// `true` iff any maybe row is degraded or a site was unreachable.
    pub fn is_degraded(&self) -> bool {
        !self.degraded_sites.is_empty() || self.rows.iter().any(|r| r.ends_with("(degraded)"))
    }
}

/// One frame on a wire connection.
///
/// No `PartialEq`: [`Envelope`] payloads have none. Compare frames by
/// their canonical encoding ([`encode_payload`]) instead.
#[derive(Debug, Clone)]
pub enum Frame {
    /// Connection opener: the dialer's role, and its site id if a site.
    Hello {
        /// Who is dialing.
        role: Role,
        /// The dialer's component site id (sites only).
        site: Option<u16>,
    },
    /// The federation's site address table (serve → site).
    Peers {
        /// `(site id, "host:port")` pairs.
        sites: Vec<(u16, String)>,
    },
    /// One `fedoq-net` protocol message.
    Envelope {
        /// The query fingerprint this message belongs to.
        tag: u64,
        /// The query's SQL (requests only; empty on responses). Lets a
        /// site bind a session for a fingerprint it has never seen.
        sql: String,
        /// The routed message itself.
        env: Envelope,
    },
    /// Client → serve: run one query.
    Query {
        /// Client-chosen correlation id, echoed on the answer.
        id: u64,
        /// The query's SQL.
        sql: String,
        /// Strategy name (`ca`/`bl`/`pl`/`bl-s`/`pl-s`/`adaptive`).
        strategy: String,
    },
    /// Serve → client: the outcome of one [`Frame::Query`].
    Answer {
        /// The query's correlation id.
        id: u64,
        /// The rendered answer, or the error that stopped execution.
        reply: Result<ClientAnswer, String>,
    },
    /// Client → serve: register a standing query.
    Subscribe {
        /// Client-chosen watch id, echoed on every delta.
        id: u64,
        /// The standing query's SQL.
        sql: String,
        /// Strategy name (`ca`/`bl`/`pl`/`hy`).
        strategy: String,
        /// Admission priority on the serve's ladder (higher wins).
        priority: u8,
    },
    /// Serve → client: one batch of standing-query output.
    ///
    /// `seq` 0 is the initial snapshot (canonical `C ..`/`M .. ? ..`
    /// row strings); `seq >= 1` carries reclassification deltas in
    /// their display form. Rows travel as strings for the same reason
    /// [`ClientAnswer`] rows do: byte-for-byte diffing across
    /// transports without linking the object model.
    Delta {
        /// The watch id this batch belongs to.
        id: u64,
        /// Snapshot (0) or delta-batch ordinal (monotonic per watch).
        seq: u64,
        /// Rendered rows/deltas, or the error that killed the watch.
        reply: Result<Vec<String>, String>,
    },
    /// Client → serve: tear down a standing query.
    Unsubscribe {
        /// The watch id to drop.
        id: u64,
    },
    /// Client → serve: apply one mutation to a component site's store.
    ///
    /// Acknowledged with a [`Frame::Answer`] (executed = `mutate`);
    /// any deltas it triggers follow as [`Frame::Delta`] frames.
    Mutate {
        /// Correlation id, echoed on the acknowledging answer.
        id: u64,
        /// The component site to mutate.
        db: u16,
        /// The mutation spec (`insert Class a=v,..` / `update ..`).
        spec: String,
    },
}

pub(crate) fn enc_role(w: &mut Writer, role: Role) {
    w.u8(match role {
        Role::Serve => 0,
        Role::Site => 1,
        Role::Client => 2,
    });
}

pub(crate) fn dec_role(r: &mut Reader) -> Result<Role, WireError> {
    match r.u8()? {
        0 => Ok(Role::Serve),
        1 => Ok(Role::Site),
        2 => Ok(Role::Client),
        _ => Err(WireError::Malformed("role tag")),
    }
}

fn enc_client_answer(w: &mut Writer, a: &ClientAnswer) {
    w.str(&a.executed);
    w.seq(a.rows.len());
    for row in &a.rows {
        w.str(row);
    }
    w.seq(a.degraded_sites.len());
    for db in &a.degraded_sites {
        w.u16(*db);
    }
    w.u64(a.retries);
    w.u64(a.forwarded);
    w.u64(a.lost);
    w.f64(a.server_us);
}

fn dec_client_answer(r: &mut Reader) -> Result<ClientAnswer, WireError> {
    let executed = r.str()?;
    let n = r.seq()?;
    let mut rows = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        rows.push(r.str()?);
    }
    let n = r.seq()?;
    let mut degraded_sites = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        degraded_sites.push(r.u16()?);
    }
    Ok(ClientAnswer {
        executed,
        rows,
        degraded_sites,
        retries: r.u64()?,
        forwarded: r.u64()?,
        lost: r.u64()?,
        server_us: r.f64()?,
    })
}

/// Encodes one frame payload (without the length-prefix header).
pub fn encode_payload(frame: &Frame) -> Vec<u8> {
    let mut w = Writer::new();
    match frame {
        Frame::Hello { role, site } => {
            w.u8(0);
            enc_role(&mut w, *role);
            match site {
                None => w.u8(0),
                Some(s) => {
                    w.u8(1);
                    w.u16(*s);
                }
            }
        }
        Frame::Peers { sites } => {
            w.u8(1);
            w.seq(sites.len());
            for (db, addr) in sites {
                w.u16(*db);
                w.str(addr);
            }
        }
        Frame::Envelope { tag, sql, env } => {
            w.u8(2);
            w.u64(*tag);
            w.str(sql);
            enc_envelope(&mut w, env);
        }
        Frame::Query { id, sql, strategy } => {
            w.u8(3);
            w.u64(*id);
            w.str(sql);
            w.str(strategy);
        }
        Frame::Answer { id, reply } => {
            w.u8(4);
            w.u64(*id);
            match reply {
                Ok(answer) => {
                    w.u8(0);
                    enc_client_answer(&mut w, answer);
                }
                Err(msg) => {
                    w.u8(1);
                    w.str(msg);
                }
            }
        }
        Frame::Subscribe {
            id,
            sql,
            strategy,
            priority,
        } => {
            w.u8(5);
            w.u64(*id);
            w.str(sql);
            w.str(strategy);
            w.u8(*priority);
        }
        Frame::Delta { id, seq, reply } => {
            w.u8(6);
            w.u64(*id);
            w.u64(*seq);
            match reply {
                Ok(rows) => {
                    w.u8(0);
                    w.seq(rows.len());
                    for row in rows {
                        w.str(row);
                    }
                }
                Err(msg) => {
                    w.u8(1);
                    w.str(msg);
                }
            }
        }
        Frame::Unsubscribe { id } => {
            w.u8(7);
            w.u64(*id);
        }
        Frame::Mutate { id, db, spec } => {
            w.u8(8);
            w.u64(*id);
            w.u16(*db);
            w.str(spec);
        }
    }
    w.finish()
}

/// Decodes one frame payload; the buffer must hold exactly one.
pub fn decode_payload(bytes: &[u8]) -> Result<Frame, WireError> {
    let mut r = Reader::new(bytes);
    let frame = match r.u8()? {
        0 => {
            let role = dec_role(&mut r)?;
            let site = match r.u8()? {
                0 => None,
                1 => Some(r.u16()?),
                _ => return Err(WireError::Malformed("option tag")),
            };
            Frame::Hello { role, site }
        }
        1 => {
            let n = r.seq()?;
            let mut sites = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let db = r.u16()?;
                let addr = r.str()?;
                sites.push((db, addr));
            }
            Frame::Peers { sites }
        }
        2 => {
            let tag = r.u64()?;
            let sql = r.str()?;
            let env = dec_envelope(&mut r)?;
            Frame::Envelope { tag, sql, env }
        }
        3 => {
            let id = r.u64()?;
            let sql = r.str()?;
            let strategy = r.str()?;
            Frame::Query { id, sql, strategy }
        }
        4 => {
            let id = r.u64()?;
            let reply = match r.u8()? {
                0 => Ok(dec_client_answer(&mut r)?),
                1 => Err(r.str()?),
                _ => return Err(WireError::Malformed("result tag")),
            };
            Frame::Answer { id, reply }
        }
        5 => {
            let id = r.u64()?;
            let sql = r.str()?;
            let strategy = r.str()?;
            let priority = r.u8()?;
            Frame::Subscribe {
                id,
                sql,
                strategy,
                priority,
            }
        }
        6 => {
            let id = r.u64()?;
            let seq = r.u64()?;
            let reply = match r.u8()? {
                0 => {
                    let n = r.seq()?;
                    let mut rows = Vec::with_capacity(n.min(1024));
                    for _ in 0..n {
                        rows.push(r.str()?);
                    }
                    Ok(rows)
                }
                1 => Err(r.str()?),
                _ => return Err(WireError::Malformed("result tag")),
            };
            Frame::Delta { id, seq, reply }
        }
        7 => Frame::Unsubscribe { id: r.u64()? },
        8 => {
            let id = r.u64()?;
            let db = r.u16()?;
            let spec = r.str()?;
            Frame::Mutate { id, db, spec }
        }
        _ => return Err(WireError::Malformed("frame tag")),
    };
    r.expect_end()?;
    Ok(frame)
}

/// Encodes one frame with its `[magic][version][len]` header.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let payload = encode_payload(frame);
    let mut w = Writer::new();
    w.u32(MAGIC);
    w.u32(VERSION);
    w.u32(payload.len() as u32);
    let mut bytes = w.finish();
    bytes.extend_from_slice(&payload);
    bytes
}

/// Writes one frame to `out` (header + payload, one `write_all`).
pub fn write_frame(out: &mut impl Write, frame: &Frame) -> io::Result<()> {
    out.write_all(&encode_frame(frame))
}

fn wire_io_error(e: WireError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

/// Reads one frame from `input`.
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary; any mid-frame
/// EOF, bad header, or undecodable payload is an [`io::Error`] (kind
/// `InvalidData` for protocol violations).
pub fn read_frame(input: &mut impl Read) -> io::Result<Option<Frame>> {
    let mut header = [0u8; 12];
    let mut filled = 0;
    while filled < header.len() {
        match input.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame header",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let mut r = Reader::new(&header);
    let (magic, version, len) = match (r.u32(), r.u32(), r.u32()) {
        (Ok(m), Ok(v), Ok(l)) => (m, v, l as usize),
        _ => return Err(wire_io_error(WireError::Truncated)),
    };
    if magic != MAGIC {
        return Err(wire_io_error(WireError::BadMagic));
    }
    if version != VERSION {
        return Err(wire_io_error(WireError::BadVersion(version)));
    }
    if len > MAX_FRAME {
        return Err(wire_io_error(WireError::TooLarge));
    }
    let mut payload = vec![0u8; len];
    input.read_exact(&mut payload)?;
    decode_payload(&payload).map(Some).map_err(wire_io_error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_a_byte_pipe() {
        let frames = vec![
            Frame::Hello {
                role: Role::Site,
                site: Some(2),
            },
            Frame::Peers {
                sites: vec![(0, "127.0.0.1:7000".into()), (1, "127.0.0.1:7001".into())],
            },
            Frame::Query {
                id: 9,
                sql: "SELECT X.name FROM Student X".into(),
                strategy: "adaptive".into(),
            },
            Frame::Answer {
                id: 9,
                reply: Err("no such strategy".into()),
            },
            Frame::Subscribe {
                id: 1,
                sql: "SELECT X.name FROM Teacher X WHERE X.speciality = 'database'".into(),
                strategy: "hy".into(),
                priority: 7,
            },
            Frame::Delta {
                id: 1,
                seq: 0,
                reply: Ok(vec!["C (Hedy)".into(), "M (Tony) ? d1/3.a1:null".into()]),
            },
            Frame::Delta {
                id: 1,
                seq: 3,
                reply: Err("watch evaluation failed".into()),
            },
            Frame::Mutate {
                id: 10,
                db: 1,
                spec: "insert Teacher name='Haley',speciality='network'".into(),
            },
            Frame::Unsubscribe { id: 1 },
        ];
        let mut pipe = Vec::new();
        for f in &frames {
            write_frame(&mut pipe, f).unwrap();
        }
        let mut cursor = io::Cursor::new(pipe);
        for f in &frames {
            let got = read_frame(&mut cursor).unwrap().expect("frame");
            assert_eq!(encode_payload(&got), encode_payload(f));
        }
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn bad_magic_and_truncation_are_io_errors() {
        let mut bytes = encode_frame(&Frame::Hello {
            role: Role::Client,
            site: None,
        });
        bytes[0] ^= 0xFF;
        let err = read_frame(&mut io::Cursor::new(&bytes)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let good = encode_frame(&Frame::Peers { sites: vec![] });
        let err = read_frame(&mut io::Cursor::new(&good[..good.len() - 1])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
