//! The component-site daemon: one site actor behind a TCP listener.
//!
//! `fedoq-site` hosts exactly one component database of a federation
//! (rebuilt deterministically from the shared workload spec) and serves
//! the site half of the `fedoq-net` protocol — `LocalEval`,
//! `AssistantLookup`/`BatchAssistantLookup`, `ShipObjects` — to any
//! serve frontend or peer site that dials in.
//!
//! The actor code is unchanged from the in-process runtime; what this
//! module adds is *session management*. Site handlers evaluate against
//! a bound query, but wire messages carry only a query fingerprint tag
//! (plus the SQL on requests). The daemon keeps one long-lived session
//! per fingerprint: a [`fedoq_net::router::Net`] router, a
//! [`TcpTransport`], a fresh simulation ledger, and a spawned
//! [`fedoq_net::actor::run_site`] loop, all bound to the lazily parsed
//! query. Envelopes are injected into their session's router; responses
//! the actor sends to remote sites leave through the shared [`Hub`].
//!
//! Everything runs on one deterministic runtime driven by the
//! wall-clock driver, so the site's own nested RPCs (assistant lookups
//! at peer sites) get real deadlines.

use crate::drive::wall_driver;
use crate::fed::build_workload;
use crate::frame::{Frame, Role};
use crate::hub::{Hub, Inbound};
use crate::transport::{Locality, TcpTransport};
use fedoq_core::{Federation, PipelineConfig};
use fedoq_net::actor::{run_site, Ctx};
use fedoq_net::msg::Payload;
use fedoq_net::router::Net;
use fedoq_net::{RpcConfig, Runtime, Transport};
use fedoq_object::DbId;
use fedoq_query::BoundQuery;
use fedoq_sim::{Simulation, SystemParams};
use std::cell::RefCell;
use std::collections::HashMap;
use std::io::Write as _;
use std::rc::Rc;
use std::time::Instant;

/// Configuration of one site daemon.
#[derive(Debug, Clone)]
pub struct SiteOpts {
    /// Which component site this daemon hosts.
    pub db: u16,
    /// Listen address (`127.0.0.1:0` picks a free port).
    pub listen: String,
    /// Workload spec shared by every process (see [`crate::fed`]).
    pub workload: String,
    /// Timeout/retry policy for this site's own peer RPCs.
    pub rpc: RpcConfig,
    /// Pipeline configuration for this site's handlers.
    pub pipeline: PipelineConfig,
}

/// Disjoint RPC-id base for session `seq` of site `db` (serve workers
/// use the upper half of the space; see [`crate::serve`]). Sites fold
/// into 63 buckets — a collision across *distinct* sessions is further
/// disambiguated by the per-session router, so the fold is safe.
fn rpc_base(db: u16, seq: u64) -> u64 {
    ((1 + (db as u64 & 0x3F)) << 56) | ((seq & 0xFF_FFFF) << 32)
}

/// Boots one site in-process: binds the listener, spawns the drive loop
/// on a background thread, and returns the bound address. The site runs
/// until the process exits — the entry point the schedule explorer and
/// loopback tests use to host component sites inside their own process.
///
/// The federation (and each distinct query session) is rebuilt and
/// leaked *inside* the drive thread; repeated spawns therefore leak one
/// federation each, which is the intended lifetime of a daemon and an
/// acceptable bound for an explorer run.
///
/// # Errors
///
/// Returns an error string if the workload spec is invalid, the site id
/// is out of range, or the listener cannot bind.
pub fn spawn_site(opts: &SiteOpts) -> Result<std::net::SocketAddr, String> {
    let (fed, _) = build_workload(&opts.workload)?;
    if (opts.db as usize) >= fed.num_dbs() {
        return Err(format!(
            "site {} out of range: workload has {} sites",
            opts.db,
            fed.num_dbs()
        ));
    }
    drop(fed); // validated; the drive thread rebuilds its own copy
    let hub = Hub::new(Role::Site, Some(opts.db));
    let addr = hub
        .listen(&opts.listen)
        .map_err(|e| format!("bind {}: {e}", opts.listen))?;
    let opts = opts.clone();
    std::thread::spawn(move || drive_site(hub, &opts));
    Ok(addr)
}

/// Runs the daemon forever (until the process is killed).
///
/// Prints `LISTENING <addr>` on stdout once the listener is bound — the
/// line parent processes wait for before dialing.
///
/// # Errors
///
/// Returns an error string if the workload spec is invalid, the site id
/// is out of range, or the listener cannot bind.
pub fn run_site_daemon(opts: SiteOpts) -> Result<(), String> {
    let (fed, _) = build_workload(&opts.workload)?;
    if (opts.db as usize) >= fed.num_dbs() {
        return Err(format!(
            "site {} out of range: workload has {} sites",
            opts.db,
            fed.num_dbs()
        ));
    }
    drop(fed);
    let hub = Hub::new(Role::Site, Some(opts.db));
    let addr = hub
        .listen(&opts.listen)
        .map_err(|e| format!("bind {}: {e}", opts.listen))?;
    println!("LISTENING {addr}");
    let _ = std::io::stdout().flush();
    drive_site(hub, &opts)
}

/// The site's long-lived drive loop: rebuilds the federation, then runs
/// the session-managing runtime against `hub` forever.
fn drive_site(hub: Hub, opts: &SiteOpts) -> Result<(), String> {
    // Sessions are bound to `'static` actor futures on a long-lived
    // runtime; the federation and each distinct query are leaked once
    // per drive loop, which is the intended lifetime of a daemon.
    let (fed, _) = build_workload(&opts.workload)?;
    let fed: &'static Federation = Box::leak(Box::new(fed));

    let rt: Runtime<'static> = Runtime::new();
    let handle = rt.handle();
    let db_id = DbId::new(opts.db);
    let start = Instant::now();

    // One router per query fingerprint, created on first sight of the
    // query's SQL.
    let mut sessions: HashMap<u64, Net<'static>> = HashMap::new();
    let mut session_seq: u64 = 0;

    let session_hub = hub.clone();
    let rpc = opts.rpc;
    let pipeline = opts.pipeline;
    let db = opts.db;
    let deliver = move |inbound: Inbound| {
        let Frame::Envelope { tag, sql, env } = inbound.frame else {
            return;
        };
        let net = match sessions.entry(tag) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                if sql.is_empty() {
                    // A response for a session we never opened: stale.
                    return;
                }
                let Ok(query) = fed.parse_and_bind(&sql) else {
                    // An unparseable query can never have produced a
                    // valid fingerprint at the frontend; drop it.
                    return;
                };
                let query: &'static BoundQuery = Box::leak(Box::new(query));
                let transport: Rc<RefCell<dyn Transport>> = Rc::new(RefCell::new(
                    TcpTransport::new(session_hub.clone(), Locality::Db(db), tag, sql),
                ));
                let net = Net::new(handle.clone(), transport, fed.num_dbs());
                net.seed_rpc_ids(rpc_base(db, session_seq));
                session_seq += 1;
                let sim = Rc::new(RefCell::new(Simulation::new(
                    SystemParams::paper_default(),
                    fed.num_dbs(),
                )));
                let ctx = Ctx {
                    fed,
                    query,
                    net: net.clone(),
                    sim,
                    rpc,
                    pipeline,
                    cache: None,
                };
                handle.spawn(run_site(ctx, db_id));
                v.insert(net)
            }
        };
        // Requests go to the actor's mailbox; responses resolve the
        // session's pending peer RPCs. Only envelopes addressed to this
        // site are valid here.
        match env.payload {
            Payload::Request(_) | Payload::Response(_) => net.inject(env),
        }
    };

    // The daemon's main future never completes; the wall driver blocks
    // on the hub between frames, so an idle site costs no CPU.
    let driver = wall_driver(hub, start, deliver);
    match rt.run_driven(std::future::pending::<std::convert::Infallible>(), driver) {
        Ok(never) => match never {},
        Err(deadlock) => Err(format!("site daemon stopped: {deadlock}")),
    }
}
