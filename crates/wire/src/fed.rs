//! Workload specs: every process of a federation builds the same data.
//!
//! The multi-process topology has no data-shipping bootstrap (the paper
//! assumes each component database owns its extents); instead, every
//! daemon deterministically reconstructs the federation from a shared
//! *workload spec* string passed on its command line:
//!
//! * `university` — the worked example from the paper
//!   ([`fedoq_workload::university`]);
//! * `gen:<scale>:<seed>` — a deterministic synthetic sample:
//!   [`fedoq_workload::WorkloadParams::paper_default`] scaled by
//!   `<scale>` (a float), sampled and generated from `<seed>`.
//!
//! A site daemon serves its own slice of the federation; the serve
//! frontend uses its copy for parsing, binding, planning, and GOid
//! integration. Determinism of the generator guarantees every process
//! agrees on extents, GOid mappings, and signatures.

use fedoq_core::Federation;
use fedoq_workload::{generate, university, WorkloadParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds the federation a workload spec describes, plus one
/// representative query (SQL) for smoke tests and benchmarks.
pub fn build_workload(spec: &str) -> Result<(Federation, String), String> {
    if spec == "university" {
        let fed = university::federation().map_err(|e| e.to_string())?;
        return Ok((fed, university::Q1.to_string()));
    }
    if let Some(rest) = spec.strip_prefix("gen:") {
        let mut parts = rest.splitn(2, ':');
        let scale: f64 = parts
            .next()
            .unwrap_or("")
            .parse()
            .map_err(|_| format!("bad scale in workload spec '{spec}'"))?;
        let seed: u64 = parts
            .next()
            .unwrap_or("")
            .parse()
            .map_err(|_| format!("bad seed in workload spec '{spec}'"))?;
        if !(scale > 0.0 && scale.is_finite()) {
            return Err(format!("scale must be positive in '{spec}'"));
        }
        let params = WorkloadParams::paper_default().scaled(scale);
        let config = params.sample(&mut StdRng::seed_from_u64(seed));
        let sample = generate(&config, seed);
        let sql = sample.query.to_string();
        return Ok((sample.federation, sql));
    }
    Err(format!(
        "unknown workload spec '{spec}' (expected 'university' or 'gen:<scale>:<seed>')"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn university_and_generated_specs_build() {
        let (fed, sql) = build_workload("university").unwrap();
        assert_eq!(fed.num_dbs(), 3);
        fed.parse_and_bind(&sql).unwrap();

        let (fed, sql) = build_workload("gen:0.02:7").unwrap();
        assert!(fed.num_dbs() >= 1);
        fed.parse_and_bind(&sql).unwrap();

        // Determinism: two builds agree on the query and site count.
        let (fed2, sql2) = build_workload("gen:0.02:7").unwrap();
        assert_eq!(sql, sql2);
        assert_eq!(fed.num_dbs(), fed2.num_dbs());
    }

    #[test]
    fn bad_specs_are_errors() {
        assert!(build_workload("nope").is_err());
        assert!(build_workload("gen:x:1").is_err());
        assert!(build_workload("gen:-1:1").is_err());
    }
}
