//! FedOQ on a real wire: TCP transport and multi-process serving.
//!
//! `fedoq-net` runs the paper's strategies as site actors exchanging
//! typed messages — but inside one process, over a virtual-time
//! simulator. This crate puts the same actors on a real network without
//! touching a line of strategy code:
//!
//! * [`codec`] / [`proto`] / [`frame`] — a length-prefixed binary
//!   encoding of every protocol message, canonical (byte-identical
//!   re-encode) and panic-free on malformed input;
//! * [`hub`] — TCP connections, reader threads, and correlation-id
//!   response routing, with datagram loss semantics on any failure;
//! * [`transport`] — [`transport::TcpTransport`], a forwarding
//!   [`fedoq_net::Transport`] that keeps local envelopes in-process and
//!   frames remote ones onto the wire;
//! * [`drive`] — the wall-clock idle driver mapping virtual time onto
//!   real time, so the existing RPC timeout/backoff machinery becomes
//!   a real deadline scheduler;
//! * [`site`] / [`serve`] — the `fedoq-site` and `fedoq-serve` daemons:
//!   one component site per process, and a concurrent query frontend
//!   multiplexing clients over worker threads;
//! * [`client`] — a blocking client for the serve protocol;
//! * [`live`] — per-connection standing-query sessions: the
//!   Subscribe/Delta/Unsubscribe/Mutate half of the grammar, backed by
//!   a [`fedoq_live::LiveReactor`] over the serve's workload;
//! * [`fed`] — deterministic workload reconstruction, so every process
//!   agrees on extents and GOid mappings without a bootstrap protocol.
//!
//! The load-bearing guarantee is *differential*: a query answered over
//! TCP classifies byte-identically (same certain rows, same maybe rows,
//! same provenance) to the same query over the in-process
//! [`fedoq_net::LocalTransport`] — `tests/tcp_differential.rs` proves it
//! by diffing canonical renderings across both paths, and the site-kill
//! tests show the inherited failure semantics (degraded maybe-rows for
//! BL/PL, [`fedoq_core::ExecError::Unreachable`] for CA) survive real
//! process death.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod args;
pub mod audit;
pub mod client;
pub mod codec;
pub mod drive;
pub mod fed;
pub mod frame;
pub mod hub;
pub mod live;
pub mod proto;
pub mod render;
pub mod serve;
pub mod site;
pub mod transport;

pub use audit::{surface, BoundsProbe, ProbeOutcome, SkewProbe, TagFamily, WireSurface};
pub use client::{DeltaEvent, WireClient};
pub use codec::WireError;
pub use fed::build_workload;
pub use frame::{ClientAnswer, Frame, Role};
pub use hub::Hub;
pub use live::{apply_mutation, parse_mutation, LiveSession, Mutation};
pub use proto::{decode_envelope, encode_envelope};
pub use render::render_answer;
pub use serve::{run_serve_daemon, spawn_serve, ServeOpts};
pub use site::{run_site_daemon, spawn_site, SiteOpts};
pub use transport::{Locality, TcpTransport};
