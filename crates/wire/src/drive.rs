//! The wall-clock idle driver: virtual time that tracks real time.
//!
//! `fedoq-net`'s runtime is a virtual-time simulator — when every task
//! blocks, [`fedoq_net::Runtime::run`] teleports the clock to the next
//! timer. Across real sockets that is fatally wrong: an RPC timeout
//! would "elapse" the instant the runtime went idle, long before the
//! peer had a chance to answer. [`wall_driver`] closes the gap through
//! [`fedoq_net::Runtime::run_driven`]: whenever the runtime idles, it
//! blocks on the [`Hub`]'s inbound queue (up to the next timer's *real*
//! deadline), delivers whatever arrived, and advances the virtual clock
//! to the wall-clock time elapsed since the run began. Virtual
//! microseconds thus track real microseconds, and the existing
//! size-aware RPC timeout/backoff machinery becomes a real deadline
//! scheduler with no changes above this layer.

use crate::hub::{Hub, Inbound};
use fedoq_net::IdleStep;
use std::time::{Duration, Instant};

/// Longest single block while idle; bounds how stale the virtual clock
/// can get while nothing is happening.
const MAX_IDLE_WAIT: Duration = Duration::from_millis(50);

/// An `on_idle` callback for [`fedoq_net::Runtime::run_driven`] that
/// drains `hub` into `deliver` and keeps virtual time tracking the wall
/// clock (µs elapsed since `start`).
///
/// The driver never halts on its own: a server loop is *supposed* to
/// idle forever between queries. Callers that want a bounded run put a
/// timer in the main future instead.
pub fn wall_driver(
    hub: Hub,
    start: Instant,
    mut deliver: impl FnMut(Inbound),
) -> impl FnMut(f64, Option<f64>) -> IdleStep {
    move |_now_us, next_timer_us| {
        let mut frames = hub.drain();
        if frames.is_empty() {
            // Block until something arrives or the next timer is due.
            let elapsed_us = start.elapsed().as_secs_f64() * 1e6;
            let wait = next_timer_us
                .map_or(MAX_IDLE_WAIT, |t| {
                    Duration::from_secs_f64(((t - elapsed_us).max(0.0) + 1.0) / 1e6)
                })
                .min(MAX_IDLE_WAIT);
            frames = hub.wait_inbound(wait);
        }
        for frame in frames {
            deliver(frame);
        }
        IdleStep::Advance(start.elapsed().as_secs_f64() * 1e6)
    }
}
