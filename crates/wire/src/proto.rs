//! Encoders and decoders for the typed site messages of `fedoq-net`.
//!
//! Every type that crosses a process boundary — [`Envelope`] with its
//! [`Payload`] of requests and responses, down through the handler
//! structs and [`Value`] — gets an explicit, versioned binary layout on
//! top of the [`crate::codec`] primitives. Enum variants are one-byte
//! tags in declaration order; unknown tags decode to
//! [`WireError::Malformed`], never a panic. Encoding is canonical: the
//! encoder has exactly one output per value, so `encode(decode(bytes))`
//! reproduces `bytes` for every accepted input (the round-trip property
//! `tests/wire_roundtrip.rs` exercises).
//!
//! One lossy corner, by design: [`ExecError`]'s `Schema`/`Store`/`Query`
//! variants carry rich error types that never legitimately cross the
//! wire (they arise while *binding* a query, before execution). They
//! collapse to [`ExecError::Internal`] carrying their rendered message.

use crate::codec::{Reader, WireError, Writer, MAX_DEPTH};
use fedoq_core::handlers::{
    CheckRequest, CheckVerdict, LocalRow, LocalizedConfig, TargetRequest, UnsolvedEntry,
};
use fedoq_core::{ExecError, MaybeRow, Provenance, QueryAnswer, ResultRow};
use fedoq_net::msg::{
    CertifyReply, Envelope, LocalEvalReply, LookupReply, Payload, Request, Response, ShipReply,
};
use fedoq_net::DistributedStrategy;
use fedoq_object::{DbId, GOid, LOid, Truth, Value};
use fedoq_query::PredId;
use fedoq_sim::{Phase, Site};

// ---------------------------------------------------------------- leaves

pub(crate) fn enc_db(w: &mut Writer, db: DbId) {
    w.u16(db.index() as u16);
}

pub(crate) fn dec_db(r: &mut Reader) -> Result<DbId, WireError> {
    Ok(DbId::new(r.u16()?))
}

pub(crate) fn enc_loid(w: &mut Writer, loid: LOid) {
    enc_db(w, loid.db());
    w.u64(loid.serial());
}

pub(crate) fn dec_loid(r: &mut Reader) -> Result<LOid, WireError> {
    let db = dec_db(r)?;
    Ok(LOid::new(db, r.u64()?))
}

pub(crate) fn enc_site(w: &mut Writer, site: Site) {
    match site {
        Site::Global => w.u8(0),
        Site::Db(db) => {
            w.u8(1);
            enc_db(w, db);
        }
    }
}

pub(crate) fn dec_site(r: &mut Reader) -> Result<Site, WireError> {
    match r.u8()? {
        0 => Ok(Site::Global),
        1 => Ok(Site::Db(dec_db(r)?)),
        _ => Err(WireError::Malformed("site tag")),
    }
}

pub(crate) fn enc_phase(w: &mut Writer, phase: Phase) {
    w.u8(match phase {
        Phase::Ship => 0,
        Phase::O => 1,
        Phase::I => 2,
        Phase::P => 3,
    });
}

pub(crate) fn dec_phase(r: &mut Reader) -> Result<Phase, WireError> {
    match r.u8()? {
        0 => Ok(Phase::Ship),
        1 => Ok(Phase::O),
        2 => Ok(Phase::I),
        3 => Ok(Phase::P),
        _ => Err(WireError::Malformed("phase tag")),
    }
}

pub(crate) fn enc_truth(w: &mut Writer, t: Truth) {
    w.u8(match t {
        Truth::False => 0,
        Truth::Unknown => 1,
        Truth::True => 2,
    });
}

pub(crate) fn dec_truth(r: &mut Reader) -> Result<Truth, WireError> {
    match r.u8()? {
        0 => Ok(Truth::False),
        1 => Ok(Truth::Unknown),
        2 => Ok(Truth::True),
        _ => Err(WireError::Malformed("truth tag")),
    }
}

pub(crate) fn enc_value(w: &mut Writer, v: &Value) {
    match v {
        Value::Null => w.u8(0),
        Value::Int(i) => {
            w.u8(1);
            w.i64(*i);
        }
        Value::Float(f) => {
            w.u8(2);
            w.f64(*f);
        }
        Value::Text(s) => {
            w.u8(3);
            w.str(s);
        }
        Value::Bool(b) => {
            w.u8(4);
            w.boolean(*b);
        }
        Value::Ref(loid) => {
            w.u8(5);
            enc_loid(w, *loid);
        }
        Value::GRef(goid) => {
            w.u8(6);
            w.u64(goid.serial());
        }
        Value::List(items) => {
            w.u8(7);
            w.seq(items.len());
            for item in items {
                enc_value(w, item);
            }
        }
    }
}

pub(crate) fn dec_value(r: &mut Reader) -> Result<Value, WireError> {
    dec_value_depth(r, 0)
}

fn dec_value_depth(r: &mut Reader, depth: usize) -> Result<Value, WireError> {
    if depth > MAX_DEPTH {
        return Err(WireError::Malformed("value nesting too deep"));
    }
    match r.u8()? {
        0 => Ok(Value::Null),
        1 => Ok(Value::Int(r.i64()?)),
        2 => Ok(Value::Float(r.f64()?)),
        3 => Ok(Value::Text(r.str()?)),
        4 => Ok(Value::Bool(r.boolean()?)),
        5 => Ok(Value::Ref(dec_loid(r)?)),
        6 => Ok(Value::GRef(GOid::new(r.u64()?))),
        7 => {
            let n = r.seq()?;
            let mut items = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                items.push(dec_value_depth(r, depth + 1)?);
            }
            Ok(Value::List(items))
        }
        _ => Err(WireError::Malformed("value tag")),
    }
}

fn enc_pred(w: &mut Writer, pred: PredId) {
    w.size(pred.index());
}

fn dec_pred(r: &mut Reader) -> Result<PredId, WireError> {
    Ok(PredId::new(r.size()?))
}

// ----------------------------------------------------------- strategies

fn enc_localized_config(w: &mut Writer, c: LocalizedConfig) {
    w.boolean(c.use_signatures);
    w.boolean(c.complete_targets);
}

fn dec_localized_config(r: &mut Reader) -> Result<LocalizedConfig, WireError> {
    Ok(LocalizedConfig {
        use_signatures: r.boolean()?,
        complete_targets: r.boolean()?,
    })
}

pub(crate) fn enc_strategy(w: &mut Writer, s: DistributedStrategy) {
    match s {
        DistributedStrategy::Centralized => w.u8(0),
        DistributedStrategy::BasicLocalized(c) => {
            w.u8(1);
            enc_localized_config(w, c);
        }
        DistributedStrategy::ParallelLocalized(c) => {
            w.u8(2);
            enc_localized_config(w, c);
        }
    }
}

pub(crate) fn dec_strategy(r: &mut Reader) -> Result<DistributedStrategy, WireError> {
    match r.u8()? {
        0 => Ok(DistributedStrategy::Centralized),
        1 => Ok(DistributedStrategy::BasicLocalized(dec_localized_config(
            r,
        )?)),
        2 => Ok(DistributedStrategy::ParallelLocalized(
            dec_localized_config(r)?,
        )),
        _ => Err(WireError::Malformed("strategy tag")),
    }
}

// ------------------------------------------------------- handler structs

fn enc_check_request(w: &mut Writer, c: &CheckRequest) {
    enc_loid(w, c.item);
    enc_loid(w, c.assistant);
    enc_pred(w, c.pred);
    w.size(c.start);
}

fn dec_check_request(r: &mut Reader) -> Result<CheckRequest, WireError> {
    Ok(CheckRequest {
        item: dec_loid(r)?,
        assistant: dec_loid(r)?,
        pred: dec_pred(r)?,
        start: r.size()?,
    })
}

fn enc_target_request(w: &mut Writer, t: &TargetRequest) {
    enc_loid(w, t.item);
    enc_loid(w, t.assistant);
    w.size(t.target);
    w.size(t.start);
}

fn dec_target_request(r: &mut Reader) -> Result<TargetRequest, WireError> {
    Ok(TargetRequest {
        item: dec_loid(r)?,
        assistant: dec_loid(r)?,
        target: r.size()?,
        start: r.size()?,
    })
}

fn enc_check_verdict(w: &mut Writer, v: &CheckVerdict) {
    enc_loid(w, v.item);
    enc_pred(w, v.pred);
    enc_truth(w, v.verdict);
}

fn dec_check_verdict(r: &mut Reader) -> Result<CheckVerdict, WireError> {
    Ok(CheckVerdict {
        item: dec_loid(r)?,
        pred: dec_pred(r)?,
        verdict: dec_truth(r)?,
    })
}

fn enc_unsolved_entry(w: &mut Writer, u: &UnsolvedEntry) {
    enc_pred(w, u.pred);
    match u.item {
        None => w.u8(0),
        Some(loid) => {
            w.u8(1);
            enc_loid(w, loid);
        }
    }
}

fn dec_unsolved_entry(r: &mut Reader) -> Result<UnsolvedEntry, WireError> {
    let pred = dec_pred(r)?;
    let item = match r.u8()? {
        0 => None,
        1 => Some(dec_loid(r)?),
        _ => return Err(WireError::Malformed("option tag")),
    };
    Ok(UnsolvedEntry { pred, item })
}

fn enc_local_row(w: &mut Writer, row: &LocalRow) {
    enc_loid(w, row.root_loid);
    w.u64(row.goid.serial());
    w.seq(row.verdicts.len());
    for v in &row.verdicts {
        enc_truth(w, *v);
    }
    w.seq(row.unsolved.len());
    for u in &row.unsolved {
        enc_unsolved_entry(w, u);
    }
    w.seq(row.targets.len());
    for t in &row.targets {
        enc_value(w, t);
    }
    w.seq(row.target_items.len());
    for item in &row.target_items {
        match item {
            None => w.u8(0),
            Some((loid, start)) => {
                w.u8(1);
                enc_loid(w, *loid);
                w.size(*start);
            }
        }
    }
}

fn dec_local_row(r: &mut Reader) -> Result<LocalRow, WireError> {
    let root_loid = dec_loid(r)?;
    let goid = GOid::new(r.u64()?);
    let verdicts = dec_seq(r, dec_truth)?;
    let unsolved = dec_seq(r, dec_unsolved_entry)?;
    let targets = dec_seq(r, dec_value)?;
    let target_items = dec_seq(r, |r| match r.u8()? {
        0 => Ok(None),
        1 => {
            let loid = dec_loid(r)?;
            let start = r.size()?;
            Ok(Some((loid, start)))
        }
        _ => Err(WireError::Malformed("option tag")),
    })?;
    Ok(LocalRow {
        root_loid,
        goid,
        verdicts,
        unsolved,
        targets,
        target_items,
    })
}

fn dec_seq<T>(
    r: &mut Reader,
    mut elem: impl FnMut(&mut Reader) -> Result<T, WireError>,
) -> Result<Vec<T>, WireError> {
    let n = r.seq()?;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(elem(r)?);
    }
    Ok(out)
}

// ------------------------------------------------------------- requests

fn enc_lookup_lists(w: &mut Writer, checks: &[CheckRequest], targets: &[TargetRequest]) {
    w.seq(checks.len());
    for c in checks {
        enc_check_request(w, c);
    }
    w.seq(targets.len());
    for t in targets {
        enc_target_request(w, t);
    }
}

pub(crate) fn enc_request(w: &mut Writer, req: &Request) {
    match req {
        Request::Certify { strategy } => {
            w.u8(0);
            enc_strategy(w, *strategy);
        }
        Request::LocalEval {
            parallel,
            use_signatures,
            complete_targets,
        } => {
            w.u8(1);
            w.boolean(*parallel);
            w.boolean(*use_signatures);
            w.boolean(*complete_targets);
        }
        Request::AssistantLookup { checks, targets } => {
            w.u8(2);
            enc_lookup_lists(w, checks, targets);
        }
        Request::ShipObjects => w.u8(3),
        Request::BatchAssistantLookup { checks, targets } => {
            w.u8(4);
            enc_lookup_lists(w, checks, targets);
        }
        Request::BatchCertify { strategies } => {
            w.u8(5);
            w.seq(strategies.len());
            for s in strategies {
                enc_strategy(w, *s);
            }
        }
        Request::HybridCertify {
            parallel_sites,
            config,
        } => {
            w.u8(6);
            w.seq(parallel_sites.len());
            for db in parallel_sites {
                enc_db(w, *db);
            }
            enc_localized_config(w, *config);
        }
    }
}

pub(crate) fn dec_request(r: &mut Reader) -> Result<Request, WireError> {
    match r.u8()? {
        0 => Ok(Request::Certify {
            strategy: dec_strategy(r)?,
        }),
        1 => Ok(Request::LocalEval {
            parallel: r.boolean()?,
            use_signatures: r.boolean()?,
            complete_targets: r.boolean()?,
        }),
        2 => {
            let checks = dec_seq(r, dec_check_request)?;
            let targets = dec_seq(r, dec_target_request)?;
            Ok(Request::AssistantLookup { checks, targets })
        }
        3 => Ok(Request::ShipObjects),
        4 => {
            let checks = dec_seq(r, dec_check_request)?;
            let targets = dec_seq(r, dec_target_request)?;
            Ok(Request::BatchAssistantLookup { checks, targets })
        }
        5 => Ok(Request::BatchCertify {
            strategies: dec_seq(r, dec_strategy)?,
        }),
        6 => Ok(Request::HybridCertify {
            parallel_sites: dec_seq(r, dec_db)?,
            config: dec_localized_config(r)?,
        }),
        _ => Err(WireError::Malformed("request tag")),
    }
}

// ------------------------------------------------------------ responses

fn enc_result_row(w: &mut Writer, row: &ResultRow) {
    w.u64(row.goid().serial());
    w.seq(row.values().len());
    for v in row.values() {
        enc_value(w, v);
    }
}

fn dec_result_row(r: &mut Reader) -> Result<ResultRow, WireError> {
    let goid = GOid::new(r.u64()?);
    let values = dec_seq(r, dec_value)?;
    Ok(ResultRow::new(goid, values))
}

fn enc_maybe_row(w: &mut Writer, row: &MaybeRow) {
    enc_result_row(w, row.row());
    let unsolved: Vec<PredId> = row.unsolved().collect();
    w.seq(unsolved.len());
    for p in unsolved {
        enc_pred(w, p);
    }
    w.u8(match row.provenance() {
        Provenance::Full => 0,
        Provenance::Degraded => 1,
    });
}

fn dec_maybe_row(r: &mut Reader) -> Result<MaybeRow, WireError> {
    let row = dec_result_row(r)?;
    let unsolved = dec_seq(r, dec_pred)?;
    if unsolved.is_empty() {
        // MaybeRow::new panics on an empty unsolved set; a frame claiming
        // one is malformed, not a crash vector.
        return Err(WireError::Malformed("maybe row with nothing unsolved"));
    }
    let provenance = match r.u8()? {
        0 => Provenance::Full,
        1 => Provenance::Degraded,
        _ => return Err(WireError::Malformed("provenance tag")),
    };
    Ok(MaybeRow::new(row, unsolved).with_provenance(provenance))
}

fn enc_answer(w: &mut Writer, answer: &QueryAnswer) {
    w.seq(answer.certain().len());
    for row in answer.certain() {
        enc_result_row(w, row);
    }
    w.seq(answer.maybe().len());
    for row in answer.maybe() {
        enc_maybe_row(w, row);
    }
}

fn dec_answer(r: &mut Reader) -> Result<QueryAnswer, WireError> {
    let certain = dec_seq(r, dec_result_row)?;
    let maybe = dec_seq(r, dec_maybe_row)?;
    Ok(QueryAnswer::new(certain, maybe))
}

fn enc_exec_error(w: &mut Writer, e: &ExecError) {
    match e {
        ExecError::Unreachable(msg) => {
            w.u8(1);
            w.str(msg);
        }
        ExecError::Internal(msg) => {
            w.u8(0);
            w.str(msg);
        }
        // Schema/Store/Query errors arise while binding, before any
        // execution message exists; if one ever reaches the wire it
        // travels as its rendered message.
        other => {
            w.u8(0);
            w.str(&other.to_string());
        }
    }
}

fn dec_exec_error(r: &mut Reader) -> Result<ExecError, WireError> {
    match r.u8()? {
        0 => Ok(ExecError::Internal(r.str()?)),
        1 => Ok(ExecError::Unreachable(r.str()?)),
        _ => Err(WireError::Malformed("error tag")),
    }
}

fn enc_certify_reply(w: &mut Writer, reply: &CertifyReply) {
    match &reply.answer {
        Ok(answer) => {
            w.u8(0);
            enc_answer(w, answer);
        }
        Err(e) => {
            w.u8(1);
            enc_exec_error(w, e);
        }
    }
    w.seq(reply.degraded_sites.len());
    for db in &reply.degraded_sites {
        enc_db(w, *db);
    }
    w.u64(reply.retries);
}

fn dec_certify_reply(r: &mut Reader) -> Result<CertifyReply, WireError> {
    let answer = match r.u8()? {
        0 => Ok(dec_answer(r)?),
        1 => Err(dec_exec_error(r)?),
        _ => return Err(WireError::Malformed("result tag")),
    };
    let degraded_sites = dec_seq(r, dec_db)?;
    let retries = r.u64()?;
    Ok(CertifyReply {
        answer,
        degraded_sites,
        retries,
    })
}

fn enc_lookup_reply(w: &mut Writer, reply: &LookupReply) {
    w.seq(reply.verdicts.len());
    for v in &reply.verdicts {
        enc_check_verdict(w, v);
    }
    w.seq(reply.values.len());
    for ((loid, start), value) in &reply.values {
        enc_loid(w, *loid);
        w.size(*start);
        enc_value(w, value);
    }
}

fn dec_lookup_reply(r: &mut Reader) -> Result<LookupReply, WireError> {
    let verdicts = dec_seq(r, dec_check_verdict)?;
    let values = dec_seq(r, |r| {
        let loid = dec_loid(r)?;
        let start = r.size()?;
        let value = dec_value(r)?;
        Ok(((loid, start), value))
    })?;
    Ok(LookupReply { verdicts, values })
}

fn enc_local_eval_reply(w: &mut Writer, reply: &LocalEvalReply) {
    w.seq(reply.rows.len());
    for row in &reply.rows {
        enc_local_row(w, row);
    }
    w.seq(reply.verdicts.len());
    for v in &reply.verdicts {
        enc_check_verdict(w, v);
    }
    w.seq(reply.target_values.len());
    for ((loid, start), value) in &reply.target_values {
        enc_loid(w, *loid);
        w.size(*start);
        enc_value(w, value);
    }
    w.seq(reply.failed_checks.len());
    for (loid, pred) in &reply.failed_checks {
        enc_loid(w, *loid);
        enc_pred(w, *pred);
    }
    w.seq(reply.degraded_peers.len());
    for db in &reply.degraded_peers {
        enc_db(w, *db);
    }
}

fn dec_local_eval_reply(r: &mut Reader) -> Result<LocalEvalReply, WireError> {
    let rows = dec_seq(r, dec_local_row)?;
    let verdicts = dec_seq(r, dec_check_verdict)?;
    let target_values = dec_seq(r, |r| {
        let loid = dec_loid(r)?;
        let start = r.size()?;
        let value = dec_value(r)?;
        Ok(((loid, start), value))
    })?;
    let failed_checks = dec_seq(r, |r| {
        let loid = dec_loid(r)?;
        let pred = dec_pred(r)?;
        Ok((loid, pred))
    })?;
    let degraded_peers = dec_seq(r, dec_db)?;
    Ok(LocalEvalReply {
        rows,
        verdicts,
        target_values,
        failed_checks,
        degraded_peers,
    })
}

pub(crate) fn enc_response(w: &mut Writer, resp: &Response) {
    match resp {
        Response::Certify(reply) => {
            w.u8(0);
            enc_certify_reply(w, reply);
        }
        Response::LocalEval(reply) => {
            w.u8(1);
            enc_local_eval_reply(w, reply);
        }
        Response::AssistantLookup(reply) => {
            w.u8(2);
            enc_lookup_reply(w, reply);
        }
        Response::ShipObjects(reply) => {
            w.u8(3);
            w.u64(reply.bytes);
        }
        Response::BatchAssistantLookup(reply) => {
            w.u8(4);
            enc_lookup_reply(w, reply);
        }
        Response::BatchCertify(replies) => {
            w.u8(5);
            w.seq(replies.len());
            for reply in replies {
                enc_certify_reply(w, reply);
            }
        }
    }
}

pub(crate) fn dec_response(r: &mut Reader) -> Result<Response, WireError> {
    match r.u8()? {
        0 => Ok(Response::Certify(Box::new(dec_certify_reply(r)?))),
        1 => Ok(Response::LocalEval(Box::new(dec_local_eval_reply(r)?))),
        2 => Ok(Response::AssistantLookup(dec_lookup_reply(r)?)),
        3 => Ok(Response::ShipObjects(ShipReply { bytes: r.u64()? })),
        4 => Ok(Response::BatchAssistantLookup(dec_lookup_reply(r)?)),
        5 => Ok(Response::BatchCertify(dec_seq(r, dec_certify_reply)?)),
        _ => Err(WireError::Malformed("response tag")),
    }
}

// ------------------------------------------------------------- envelope

/// Encodes one routed message to its canonical byte layout.
pub fn encode_envelope(env: &Envelope) -> Vec<u8> {
    let mut w = Writer::new();
    enc_envelope(&mut w, env);
    w.finish()
}

/// Decodes one routed message; the buffer must hold exactly one.
pub fn decode_envelope(bytes: &[u8]) -> Result<Envelope, WireError> {
    let mut r = Reader::new(bytes);
    let env = dec_envelope(&mut r)?;
    r.expect_end()?;
    Ok(env)
}

pub(crate) fn dec_envelope(r: &mut Reader) -> Result<Envelope, WireError> {
    let from = dec_site(r)?;
    let to = dec_site(r)?;
    let rpc = r.u64()?;
    let bytes = r.u64()?;
    let phase = dec_phase(r)?;
    let payload = match r.u8()? {
        0 => Payload::Request(dec_request(r)?),
        1 => Payload::Response(dec_response(r)?),
        _ => return Err(WireError::Malformed("payload tag")),
    };
    Ok(Envelope {
        from,
        to,
        rpc,
        bytes,
        phase,
        payload,
    })
}

pub(crate) fn enc_envelope(w: &mut Writer, env: &Envelope) {
    enc_site(w, env.from);
    enc_site(w, env.to);
    w.u64(env.rpc);
    w.u64(env.bytes);
    enc_phase(w, env.phase);
    match &env.payload {
        Payload::Request(req) => {
            w.u8(0);
            enc_request(w, req);
        }
        Payload::Response(resp) => {
            w.u8(1);
            enc_response(w, resp);
        }
    }
}
