//! Binary codec primitives: a little-endian byte writer and a bounds-
//! checked reader.
//!
//! The wire format is deliberately boring: fixed-width little-endian
//! integers, `f64` as its IEEE-754 bit pattern (so re-encoding is
//! byte-identical even for NaN payloads), strings and sequences as a
//! `u32` length followed by their elements. Decoders never panic on
//! malformed input — every read is bounds-checked and every enum tag is
//! matched exhaustively, returning [`WireError`] instead.

use std::fmt;

/// Maximum element count accepted for one sequence. Well above anything
/// FedOQ ships, far below anything that could make a hostile length
/// prefix allocate unbounded memory.
pub const MAX_SEQ: usize = 1 << 24;

/// Maximum [`crate::frame`] payload (and therefore string) size: 64 MiB.
pub const MAX_FRAME: usize = 64 << 20;

/// Maximum nesting depth accepted when decoding recursive values
/// (`Value::List` in practice).
pub const MAX_DEPTH: usize = 64;

/// Why a buffer failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value it promised.
    Truncated,
    /// A tag, length, or invariant made no sense.
    Malformed(&'static str),
    /// A declared length exceeded the frame/sequence cap.
    TooLarge,
    /// The frame header's magic bytes were wrong.
    BadMagic,
    /// The frame header's protocol version is not ours.
    BadVersion(u32),
    /// The payload decoded but left unread trailing bytes.
    TrailingBytes,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => f.write_str("truncated payload"),
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
            WireError::TooLarge => f.write_str("declared length exceeds cap"),
            WireError::BadMagic => f.write_str("bad frame magic"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::TrailingBytes => f.write_str("trailing bytes after payload"),
        }
    }
}

impl std::error::Error for WireError {}

/// Appends little-endian primitives to a growing byte buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` iff nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// IEEE-754 bit pattern, little-endian (NaN-preserving).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// A boolean as one byte (0 or 1).
    pub fn boolean(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// A `usize` as a `u64` (the wire is 64-bit regardless of host).
    pub fn size(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// A UTF-8 string: `u32` byte length + bytes.
    pub fn str(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// A sequence header: the element count as `u32`.
    pub fn seq(&mut self, count: usize) {
        self.u32(count as u32);
    }
}

/// Reads little-endian primitives from a byte slice, bounds-checked.
#[derive(Debug)]
pub struct Reader<'b> {
    buf: &'b [u8],
    pos: usize,
}

impl<'b> Reader<'b> {
    /// A reader over the whole of `buf`.
    pub fn new(buf: &'b [u8]) -> Reader<'b> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails with [`WireError::TrailingBytes`] unless fully consumed.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }

    fn take(&mut self, n: usize) -> Result<&'b [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// One raw byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// IEEE-754 bit pattern, little-endian.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A boolean byte; anything but 0/1 is malformed.
    pub fn boolean(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("boolean byte not 0/1")),
        }
    }

    /// A `u64` the host must be able to index with.
    pub fn size(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.u64()?).map_err(|_| WireError::TooLarge)
    }

    /// A UTF-8 string (`u32` byte length + bytes).
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        if len > MAX_FRAME {
            return Err(WireError::TooLarge);
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("invalid UTF-8"))
    }

    /// A sequence header; the count is capped at [`MAX_SEQ`].
    pub fn seq(&mut self) -> Result<usize, WireError> {
        let count = self.u32()? as usize;
        if count > MAX_SEQ {
            return Err(WireError::TooLarge);
        }
        Ok(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.i64(-42);
        w.f64(f64::from_bits(0x7ff8_0000_0000_0001)); // NaN payload
        w.boolean(true);
        w.str("héllo");
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap().to_bits(), 0x7ff8_0000_0000_0001);
        assert!(r.boolean().unwrap());
        assert_eq!(r.str().unwrap(), "héllo");
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_and_garbage_are_errors_not_panics() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(r.u32(), Err(WireError::Truncated));
        let mut r = Reader::new(&[9]);
        assert!(matches!(r.boolean(), Err(WireError::Malformed(_))));
        // A string length promising more than the buffer holds.
        let mut w = Writer::new();
        w.u32(100);
        w.u8(b'x');
        let bytes = w.finish();
        assert_eq!(Reader::new(&bytes).str(), Err(WireError::Truncated));
    }

    #[test]
    fn oversized_sequence_headers_are_rejected() {
        let mut w = Writer::new();
        w.u32((MAX_SEQ + 1) as u32);
        let bytes = w.finish();
        assert_eq!(Reader::new(&bytes).seq(), Err(WireError::TooLarge));
    }
}
