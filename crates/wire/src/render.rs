//! Canonical answer rendering: one line per row, diffable across
//! transports.
//!
//! The differential guarantee of the wire layer is *byte identity*: a
//! query served over TCP must classify exactly like the same query over
//! the in-process [`fedoq_net::LocalTransport`]. Rather than shipping
//! the whole object model to clients, answers travel as their canonical
//! rendering — `QueryAnswer` already sorts rows by GOid, and the
//! `ResultRow`/`MaybeRow` display forms include values, unsolved
//! predicates, and the degraded marker — so two answers are equal iff
//! their rendered lines are equal.

use fedoq_core::QueryAnswer;

/// Renders `answer` to its canonical line list: certain rows as
/// `C {row}`, then maybe rows as `M {row} maybe[..]`, in GOid order.
pub fn render_answer(answer: &QueryAnswer) -> Vec<String> {
    let mut lines = Vec::with_capacity(answer.certain().len() + answer.maybe().len());
    for row in answer.certain() {
        lines.push(format!("C {row}"));
    }
    for row in answer.maybe() {
        lines.push(format!("M {row}"));
    }
    lines
}
