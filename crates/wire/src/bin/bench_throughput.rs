//! Throughput load driver for the multi-process serving layer.
//!
//! Boots a real federation — three `fedoq-site` processes plus a
//! `fedoq-serve` frontend, found next to this binary in the target
//! directory — and drives it two ways:
//!
//! * **closed loop** — N clients (1/4/16/64), each a thread with its
//!   own connection issuing the university Q1 back-to-back for a fixed
//!   window; reports sustained qps and p50/p99 latency per strategy
//!   (CA/BL/PL and the adaptive planner);
//! * **open loop** — queries arrive on a fixed schedule (60% of the
//!   best closed-loop rate) regardless of completions, served by a
//!   connection pool; latency includes queue wait, so a saturated
//!   frontend shows up as a p99 cliff rather than a flattering
//!   closed-loop slowdown.
//!
//! Writes `results/BENCH_throughput.json` (anchored at the workspace
//! root, independent of the invocation directory). `FEDOQ_QUICK=1`
//! shrinks the matrix to a CI smoke: 1/4 clients, short windows, and
//! only sanity bars (every run completes queries, answers never error).

use fedoq_sync::{Condvar, Mutex};
use fedoq_wire::WireClient;
use fedoq_workload::university;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitCode, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Serve-side worker threads.
const SERVE_WORKERS: usize = 8;
/// Open-loop connection pool size.
const POOL: usize = 32;
/// Open-loop arrival rate as a fraction of the best closed-loop rate.
const OPEN_FRACTION: f64 = 0.6;

struct Daemon {
    child: Child,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// A sibling binary in the same target directory as this one.
fn sibling(name: &str) -> Result<PathBuf, String> {
    let me = std::env::current_exe().map_err(|e| e.to_string())?;
    let dir = me.parent().ok_or("bench binary has no parent dir")?;
    let path = dir.join(name);
    if path.exists() {
        Ok(path)
    } else {
        Err(format!(
            "{} not found next to the bench binary; build it first \
             (cargo build -p fedoq-wire --bins)",
            path.display()
        ))
    }
}

/// `results/` at the workspace root, wherever the bench is run from.
fn results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

fn spawn_daemon(bin: &Path, args: &[String]) -> Result<(Daemon, String), String> {
    let mut child = Command::new(bin)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", bin.display()))?;
    let stdout = child.stdout.take().ok_or("stdout not piped")?;
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .map_err(|e| e.to_string())?;
    let addr = line
        .trim()
        .strip_prefix("LISTENING ")
        .ok_or_else(|| format!("{}: expected LISTENING, got {line:?}", bin.display()))?
        .to_string();
    Ok((Daemon { child }, addr))
}

fn boot_federation() -> Result<(Vec<Daemon>, Daemon, String), String> {
    let site_bin = sibling("fedoq-site")?;
    let serve_bin = sibling("fedoq-serve")?;
    let rpc = [
        "--rpc-timeout-us".to_string(),
        "5000000".to_string(),
        "--rpc-retries".to_string(),
        "3".to_string(),
    ];
    let mut sites = Vec::new();
    let mut addrs = Vec::new();
    for db in 0..3u16 {
        let mut args = vec![
            "--db".to_string(),
            db.to_string(),
            "--workload".to_string(),
            "university".to_string(),
        ];
        args.extend(rpc.iter().cloned());
        let (daemon, addr) = spawn_daemon(&site_bin, &args)?;
        sites.push(daemon);
        addrs.push(addr);
    }
    let mut args = vec!["--workload".to_string(), "university".to_string()];
    for addr in &addrs {
        args.push("--site".to_string());
        args.push(addr.clone());
    }
    args.push("--workers".to_string());
    args.push(SERVE_WORKERS.to_string());
    args.extend(rpc.iter().cloned());
    let (serve, serve_addr) = spawn_daemon(&serve_bin, &args)?;
    Ok((sites, serve, serve_addr))
}

/// Latencies of one run, in milliseconds.
#[derive(Default)]
struct Latencies {
    ms: Vec<f64>,
    errors: u64,
}

impl Latencies {
    fn merge(&mut self, other: Latencies) {
        self.ms.extend(other.ms);
        self.errors += other.errors;
    }

    fn percentile(&self, q: f64) -> f64 {
        if self.ms.is_empty() {
            return f64::NAN;
        }
        let mut sorted = self.ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx]
    }

    fn mean(&self) -> f64 {
        if self.ms.is_empty() {
            return f64::NAN;
        }
        self.ms.iter().sum::<f64>() / self.ms.len() as f64
    }
}

/// One measured configuration in the report.
struct Run {
    strategy: &'static str,
    clients: usize,
    queries: usize,
    errors: u64,
    wall_s: f64,
    qps: f64,
    mean_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Closed loop: `clients` threads issue back-to-back queries until the
/// window closes.
fn run_closed(addr: &str, strategy: &'static str, clients: usize, window: Duration) -> Run {
    let barrier = Arc::new(Barrier::new(clients + 1));
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for _ in 0..clients {
        let addr = addr.to_string();
        let barrier = Arc::clone(&barrier);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut lats = Latencies::default();
            let Ok(mut client) = WireClient::connect(&addr) else {
                lats.errors += 1;
                barrier.wait();
                return lats;
            };
            barrier.wait();
            while !stop.load(Ordering::Relaxed) {
                let t = Instant::now();
                match client.query(university::Q1, strategy) {
                    Ok(Ok(_)) => lats.ms.push(t.elapsed().as_secs_f64() * 1e3),
                    Ok(Err(_)) | Err(_) => lats.errors += 1,
                }
            }
            lats
        }));
    }
    barrier.wait();
    let begin = Instant::now();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let mut all = Latencies::default();
    for handle in handles {
        if let Ok(lats) = handle.join() {
            all.merge(lats);
        }
    }
    let wall_s = begin.elapsed().as_secs_f64();
    Run {
        strategy,
        clients,
        queries: all.ms.len(),
        errors: all.errors,
        wall_s,
        qps: all.ms.len() as f64 / wall_s,
        mean_ms: all.mean(),
        p50_ms: all.percentile(0.50),
        p99_ms: all.percentile(0.99),
    }
}

/// Open-loop arrival queue on the instrumented shim: the pool parks in
/// a *guarded* timed wait (`wait_timeout_while`), so the FQ302 condvar
/// lint stays clean and poisoned locks recover instead of unwrapping.
struct Arrivals {
    queue: Mutex<Vec<Instant>>,
    ready: Condvar,
}

/// Open loop: arrivals on a fixed schedule, a connection pool serving
/// them; latency counts from scheduled arrival to completion.
fn run_open(addr: &str, strategy: &'static str, rate_qps: f64, window: Duration) -> Run {
    let offered = (rate_qps * window.as_secs_f64()).floor().max(1.0) as usize;
    let interval = Duration::from_secs_f64(1.0 / rate_qps.max(1e-9));
    let arrivals = Arc::new(Arrivals {
        queue: Mutex::new("bench.arrivals", Vec::new()),
        ready: Condvar::new("bench.arrival-ready"),
    });
    let done = Arc::new(AtomicBool::new(false));

    let pool = POOL.min(offered).max(1);
    let mut handles = Vec::new();
    for _ in 0..pool {
        let addr = addr.to_string();
        let arrivals = Arc::clone(&arrivals);
        let done = Arc::clone(&done);
        handles.push(std::thread::spawn(move || {
            let mut lats = Latencies::default();
            let Ok(mut client) = WireClient::connect(&addr) else {
                lats.errors += 1;
                return lats;
            };
            loop {
                let arrival = {
                    let queue = arrivals.queue.lock();
                    let (mut queue, _) =
                        arrivals
                            .ready
                            .wait_timeout_while(queue, Duration::from_millis(20), |q| {
                                q.is_empty() && !done.load(Ordering::Relaxed)
                            });
                    queue.pop()
                };
                let Some(arrival) = arrival else {
                    if done.load(Ordering::Relaxed) {
                        return lats;
                    }
                    continue; // timed out with an empty queue; re-park
                };
                match client.query(university::Q1, strategy) {
                    Ok(Ok(_)) => lats.ms.push(arrival.elapsed().as_secs_f64() * 1e3),
                    Ok(Err(_)) | Err(_) => lats.errors += 1,
                }
            }
        }));
    }

    let begin = Instant::now();
    for n in 0..offered {
        let at = begin + interval.mul_f64(n as f64);
        if let Some(sleep) = at.checked_duration_since(Instant::now()) {
            std::thread::sleep(sleep);
        }
        arrivals.queue.lock().insert(0, at);
        arrivals.ready.notify_one();
    }
    // Let the pool drain the tail, then release the workers.
    loop {
        let empty = arrivals.queue.lock().is_empty();
        if empty || begin.elapsed() > window.mul_f32(4.0) {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    done.store(true, Ordering::Relaxed);
    arrivals.ready.notify_all();
    let mut all = Latencies::default();
    for handle in handles {
        if let Ok(lats) = handle.join() {
            all.merge(lats);
        }
    }
    let wall_s = begin.elapsed().as_secs_f64();
    Run {
        strategy,
        clients: pool,
        queries: all.ms.len(),
        errors: all.errors,
        wall_s,
        qps: rate_qps,
        mean_ms: all.mean(),
        p50_ms: all.percentile(0.50),
        p99_ms: all.percentile(0.99),
    }
}

fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn render_json(closed: &[Run], open: &[Run], quick: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"meta\": {{");
    let _ = writeln!(out, "    \"bench\": \"throughput\",");
    let _ = writeln!(out, "    \"workload\": \"university\",");
    let _ = writeln!(out, "    \"sites\": 3,");
    let _ = writeln!(out, "    \"serve_workers\": {SERVE_WORKERS},");
    let _ = writeln!(out, "    \"quick\": {quick}");
    let _ = writeln!(out, "  }},");
    for (key, runs) in [("closed_loop", closed), ("open_loop", open)] {
        let _ = writeln!(out, "  \"{key}\": [");
        for (i, run) in runs.iter().enumerate() {
            let comma = if i + 1 == runs.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"strategy\": \"{}\", \"clients\": {}, \"queries\": {}, \
                 \"errors\": {}, \"wall_s\": {}, \"qps\": {}, \"mean_ms\": {}, \
                 \"p50_ms\": {}, \"p99_ms\": {}}}{comma}",
                run.strategy,
                run.clients,
                run.queries,
                run.errors,
                num(run.wall_s),
                num(run.qps),
                num(run.mean_ms),
                num(run.p50_ms),
                num(run.p99_ms),
            );
        }
        let trailing = if key == "closed_loop" { "," } else { "" };
        let _ = writeln!(out, "  ]{trailing}");
    }
    let _ = writeln!(out, "}}");
    out
}

fn main() -> ExitCode {
    let quick = std::env::var("FEDOQ_QUICK").is_ok_and(|v| v == "1");
    let (client_counts, window): (&[usize], Duration) = if quick {
        (&[1, 4], Duration::from_millis(800))
    } else {
        (&[1, 4, 16, 64], Duration::from_secs(3))
    };
    let strategies: &[&'static str] = &["ca", "bl", "pl", "adaptive"];

    let (sites, serve, addr) = match boot_federation() {
        Ok(parts) => parts,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("federation up at {addr} ({} sites)", sites.len());

    // Warm up: connections dialed, site sessions built, planner primed.
    {
        let mut client = match WireClient::connect(&addr) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: warmup connect: {e}");
                return ExitCode::FAILURE;
            }
        };
        for strategy in strategies {
            if let Err(e) = client.query(university::Q1, strategy) {
                eprintln!("error: warmup {strategy}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut closed = Vec::new();
    for &strategy in strategies {
        for &clients in client_counts {
            let run = run_closed(&addr, strategy, clients, window);
            println!(
                "closed {strategy:>8} x{clients:<3} {:>7} q {:>8.1} qps p50 {:>7.2} ms p99 {:>7.2} ms ({} errors)",
                run.queries, run.qps, run.p50_ms, run.p99_ms, run.errors
            );
            closed.push(run);
        }
    }

    let mut open = Vec::new();
    for &strategy in strategies {
        let best = closed
            .iter()
            .filter(|r| r.strategy == strategy)
            .map(|r| r.qps)
            .fold(0.0f64, f64::max);
        let rate = (best * OPEN_FRACTION).max(1.0);
        let run = run_open(&addr, strategy, rate, window);
        println!(
            "open   {strategy:>8} @{rate:>6.1} qps {:>7} q p50 {:>7.2} ms p99 {:>7.2} ms ({} errors)",
            run.queries, run.p50_ms, run.p99_ms, run.errors
        );
        open.push(run);
    }

    drop(serve);
    drop(sites);

    let json = render_json(&closed, &open, quick);
    let out = results_dir().join("BENCH_throughput.json");
    if let Some(parent) = out.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: could not write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", out.display());

    // Sanity bars: every configuration completed work, cleanly.
    let mut failures = Vec::new();
    for run in closed.iter().chain(&open) {
        if run.queries == 0 {
            failures.push(format!(
                "{} x{}: no queries completed",
                run.strategy, run.clients
            ));
        }
        if run.errors > 0 {
            failures.push(format!(
                "{} x{}: {} queries errored",
                run.strategy, run.clients, run.errors
            ));
        }
    }
    if failures.is_empty() {
        println!("bench_throughput: all bars met");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("error: {f}");
        }
        ExitCode::FAILURE
    }
}
