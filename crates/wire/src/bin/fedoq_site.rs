//! `fedoq-site` — one component site of a FedOQ federation, as a
//! standalone TCP daemon.
//!
//! ```text
//! fedoq-site --db 0 --listen 127.0.0.1:0 --workload university
//! ```
//!
//! Prints `LISTENING <addr>` once bound, then serves the site half of
//! the `fedoq-net` protocol until killed. Flags:
//!
//! * `--db <n>` — which component site to host (required);
//! * `--listen <addr>` — listen address (default `127.0.0.1:0`);
//! * `--workload <spec>` — `university` or `gen:<scale>:<seed>`
//!   (default `university`);
//! * `--rpc-timeout-us / --rpc-retries / --rpc-backoff-us` — peer RPC
//!   policy;
//! * `--threads / --batch / --cache` — pipeline configuration.

use fedoq_wire::args::Flags;
use fedoq_wire::{run_site_daemon, SiteOpts};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("fedoq-site: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let flags = Flags::parse(std::env::args().skip(1))?;
    let db = flags
        .get_parsed::<i64>("db", -1)?
        .try_into()
        .map_err(|_| "--db <site id> is required".to_string())?;
    let opts = SiteOpts {
        db,
        listen: flags.get("listen").unwrap_or("127.0.0.1:0").to_string(),
        workload: flags.get("workload").unwrap_or("university").to_string(),
        rpc: flags.rpc()?,
        pipeline: flags.pipeline()?,
    };
    run_site_daemon(opts)
}
