//! `fedoq-serve` — the FedOQ query frontend: concurrent clients
//! multiplexed onto a federation of `fedoq-site` daemons.
//!
//! ```text
//! fedoq-serve --listen 127.0.0.1:0 \
//!     --site 127.0.0.1:7100 --site 127.0.0.1:7101 --site 127.0.0.1:7102 \
//!     --workload university --workers 4
//! ```
//!
//! Prints `LISTENING <addr>` once bound; clients speak the
//! `Query`/`Answer` frame protocol (see `fedoq_wire::WireClient`, or
//! the shell's `connect` command). Flags:
//!
//! * `--site <addr>` — one per component site, in site-id order
//!   (required);
//! * `--listen <addr>` — client listen address (default `127.0.0.1:0`);
//! * `--workload <spec>` — `university` or `gen:<scale>:<seed>`
//!   (default `university`);
//! * `--workers <n>` — worker threads (default 4);
//! * `--rpc-timeout-us / --rpc-retries / --rpc-backoff-us` — site RPC
//!   policy;
//! * `--threads / --batch / --cache` — pipeline configuration.

use fedoq_wire::args::Flags;
use fedoq_wire::{run_serve_daemon, ServeOpts};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("fedoq-serve: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let flags = Flags::parse(std::env::args().skip(1))?;
    let sites = flags.get_all("site");
    if sites.is_empty() {
        return Err("at least one --site <addr> is required".to_string());
    }
    let opts = ServeOpts {
        listen: flags.get("listen").unwrap_or("127.0.0.1:0").to_string(),
        sites,
        workload: flags.get("workload").unwrap_or("university").to_string(),
        workers: flags.get_parsed("workers", 4)?,
        rpc: flags.rpc()?,
        pipeline: flags.pipeline()?,
    };
    run_serve_daemon(opts)
}
