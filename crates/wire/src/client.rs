//! A blocking client for the `fedoq-serve` query protocol.

use crate::frame::{read_frame, write_frame, ClientAnswer, Frame, Role};
use std::io::{self, BufReader};
use std::net::TcpStream;
use std::time::Duration;

/// One standing-query event received from the serve.
///
/// `seq` 0 is the initial snapshot (canonical conditioned rows); later
/// batches are delta display strings. An `Err` reply reports why the
/// watch could not run.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaEvent {
    /// The watch this batch belongs to.
    pub watch: u64,
    /// Snapshot (0) or delta-batch ordinal.
    pub seq: u64,
    /// Rendered rows/deltas, or the error that killed the watch.
    pub reply: Result<Vec<String>, String>,
}

/// One synchronous connection to a `fedoq-serve` frontend.
pub struct WireClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
    pending: Vec<DeltaEvent>,
}

impl WireClient {
    /// Dials `addr` and introduces itself.
    pub fn connect(addr: &str) -> io::Result<WireClient> {
        let parsed = addr
            .parse()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "bad address"))?;
        let mut writer = TcpStream::connect_timeout(&parsed, Duration::from_secs(5))?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        write_frame(
            &mut writer,
            &Frame::Hello {
                role: Role::Client,
                site: None,
            },
        )?;
        Ok(WireClient {
            writer,
            reader,
            next_id: 1,
            pending: Vec::new(),
        })
    }

    fn stash(&mut self, frame: &Frame) {
        if let Frame::Delta { id, seq, reply } = frame {
            self.pending.push(DeltaEvent {
                watch: *id,
                seq: *seq,
                reply: reply.clone(),
            });
        }
    }

    /// Runs one query under `strategy` (`ca`/`bl`/`pl`/`bl-s`/`pl-s`/
    /// `adaptive`); blocks until the answer arrives.
    ///
    /// The outer `Result` is transport failure; the inner one is the
    /// server's verdict (a rendered answer or an execution error).
    pub fn query(&mut self, sql: &str, strategy: &str) -> io::Result<Result<ClientAnswer, String>> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(
            &mut self.writer,
            &Frame::Query {
                id,
                sql: sql.to_string(),
                strategy: strategy.to_string(),
            },
        )?;
        loop {
            match read_frame(&mut self.reader)? {
                Some(Frame::Answer { id: got, reply }) if got == id => return Ok(reply),
                Some(other) => self.stash(&other),
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection mid-query",
                    ))
                }
            }
        }
    }

    /// Registers a standing query; blocks until the initial snapshot
    /// (`seq` 0) arrives. Returns the watch id (pass it to
    /// [`WireClient::unsubscribe`]) and the snapshot rows.
    ///
    /// The outer `Result` is transport failure; the inner one is the
    /// server's verdict (canonical conditioned rows, or why the watch
    /// was refused).
    ///
    /// # Errors
    ///
    /// I/O failure, or the server closing the connection mid-subscribe.
    pub fn subscribe(
        &mut self,
        sql: &str,
        strategy: &str,
        priority: u8,
    ) -> io::Result<(u64, Result<Vec<String>, String>)> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(
            &mut self.writer,
            &Frame::Subscribe {
                id,
                sql: sql.to_string(),
                strategy: strategy.to_string(),
                priority,
            },
        )?;
        loop {
            match read_frame(&mut self.reader)? {
                Some(Frame::Delta {
                    id: got,
                    seq: 0,
                    reply,
                }) if got == id => return Ok((id, reply)),
                Some(other) => self.stash(&other),
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection mid-subscribe",
                    ))
                }
            }
        }
    }

    /// Tears a watch down (fire-and-forget: the server sends no ack).
    ///
    /// # Errors
    ///
    /// I/O failure writing the frame.
    pub fn unsubscribe(&mut self, watch: u64) -> io::Result<()> {
        write_frame(&mut self.writer, &Frame::Unsubscribe { id: watch })
    }

    /// Applies one mutation spec to site `db` on the server's live
    /// session; blocks until the acknowledging answer. The ack is a
    /// delivery barrier: every delta the mutation caused has already
    /// arrived, so it is returned alongside (plus any deltas stashed
    /// from earlier calls).
    ///
    /// # Errors
    ///
    /// I/O failure, or the server closing the connection mid-mutate.
    #[allow(clippy::type_complexity)]
    pub fn mutate(
        &mut self,
        db: u16,
        spec: &str,
    ) -> io::Result<(Result<ClientAnswer, String>, Vec<DeltaEvent>)> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(
            &mut self.writer,
            &Frame::Mutate {
                id,
                db,
                spec: spec.to_string(),
            },
        )?;
        loop {
            match read_frame(&mut self.reader)? {
                Some(Frame::Answer { id: got, reply }) if got == id => {
                    return Ok((reply, std::mem::take(&mut self.pending)))
                }
                Some(other) => self.stash(&other),
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection mid-mutate",
                    ))
                }
            }
        }
    }

    /// Returns delta events stashed while waiting for other replies
    /// (the serve only emits deltas in response to this connection's
    /// own frames, so there is nothing to poll for beyond this buffer).
    pub fn take_deltas(&mut self) -> Vec<DeltaEvent> {
        std::mem::take(&mut self.pending)
    }
}
