//! A blocking client for the `fedoq-serve` query protocol.

use crate::frame::{read_frame, write_frame, ClientAnswer, Frame, Role};
use std::io::{self, BufReader};
use std::net::TcpStream;
use std::time::Duration;

/// One synchronous connection to a `fedoq-serve` frontend.
pub struct WireClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
}

impl WireClient {
    /// Dials `addr` and introduces itself.
    pub fn connect(addr: &str) -> io::Result<WireClient> {
        let parsed = addr
            .parse()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "bad address"))?;
        let mut writer = TcpStream::connect_timeout(&parsed, Duration::from_secs(5))?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        write_frame(
            &mut writer,
            &Frame::Hello {
                role: Role::Client,
                site: None,
            },
        )?;
        Ok(WireClient {
            writer,
            reader,
            next_id: 1,
        })
    }

    /// Runs one query under `strategy` (`ca`/`bl`/`pl`/`bl-s`/`pl-s`/
    /// `adaptive`); blocks until the answer arrives.
    ///
    /// The outer `Result` is transport failure; the inner one is the
    /// server's verdict (a rendered answer or an execution error).
    pub fn query(&mut self, sql: &str, strategy: &str) -> io::Result<Result<ClientAnswer, String>> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(
            &mut self.writer,
            &Frame::Query {
                id,
                sql: sql.to_string(),
                strategy: strategy.to_string(),
            },
        )?;
        loop {
            match read_frame(&mut self.reader)? {
                Some(Frame::Answer { id: got, reply }) if got == id => return Ok(reply),
                Some(_) => continue,
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection mid-query",
                    ))
                }
            }
        }
    }
}
