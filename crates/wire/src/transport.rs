//! [`TcpTransport`]: the forwarding [`Transport`] bridging `fedoq-net`
//! routers across OS processes.
//!
//! Each [`TcpTransport`] belongs to one query session on one endpoint:
//! it knows which [`Site`] lives in this process, the session's query
//! fingerprint (the wire tag correlating envelopes to sessions), and
//! the query's SQL (attached to outbound *requests* so a receiving site
//! can lazily bind a session for a fingerprint it has never seen).
//!
//! Envelopes addressed to the local site are declined (`forward` returns
//! `false`), so the router delivers them in-process with zero delay —
//! the client's self-RPC to the global actor, or a site's lookup into
//! its own store. Everything else is framed onto the wire through the
//! shared [`Hub`]; a failed send is a lost datagram, surfaced only as
//! the sender's RPC timeout.

use crate::hub::Hub;
use fedoq_net::msg::{Envelope, Payload};
use fedoq_net::Transport;
use fedoq_sim::Site;

/// Which site actor runs inside this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Locality {
    /// The global integrator (a `fedoq-serve` worker).
    Global,
    /// One component site daemon.
    Db(u16),
}

/// The real-wire transport: local envelopes stay in-process, remote
/// ones are framed over TCP.
pub struct TcpTransport {
    hub: Hub,
    local: Locality,
    tag: u64,
    sql: String,
    delivered: u64,
}

impl TcpTransport {
    /// A transport for one query session.
    ///
    /// `tag` is the session's query fingerprint; `sql` the query text
    /// attached to outbound requests.
    pub fn new(hub: Hub, local: Locality, tag: u64, sql: String) -> TcpTransport {
        TcpTransport {
            hub,
            local,
            tag,
            sql,
            delivered: 0,
        }
    }

    fn is_local(&self, site: Site) -> bool {
        match (self.local, site) {
            (Locality::Global, Site::Global) => true,
            (Locality::Db(mine), Site::Db(db)) => db.index() == mine as usize,
            _ => false,
        }
    }
}

impl Transport for TcpTransport {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn dispatch(&mut self, _env: &Envelope, _now_us: f64) -> Option<f64> {
        // Only local envelopes reach dispatch (forward declined them):
        // deliver instantly, like LocalTransport.
        self.delivered += 1;
        Some(0.0)
    }

    fn forward(&mut self, env: &Envelope, _now_us: f64) -> bool {
        if self.is_local(env.to) {
            return false;
        }
        // SQL rides only on requests: responses correlate by rpc id.
        let sql = match env.payload {
            Payload::Request(_) => self.sql.as_str(),
            Payload::Response(_) => "",
        };
        self.hub.route_envelope(self.tag, sql, env);
        true
    }

    fn stats(&self) -> (u64, u64) {
        let (forwarded, lost) = self.hub.counters();
        (self.delivered + forwarded, lost)
    }
}
