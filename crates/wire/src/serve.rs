//! The query frontend: concurrent clients multiplexed onto a federation
//! of site daemons.
//!
//! `fedoq-serve` accepts any number of client connections speaking the
//! [`Frame::Query`]/[`Frame::Answer`] protocol and executes each query
//! as the *global integrator* of the distributed runtime — spawning
//! [`fedoq_net::actor::run_global`] on a per-query runtime whose
//! [`TcpTransport`] forwards `LocalEval`/`ShipObjects` requests to the
//! remote site daemons.
//!
//! Concurrency model: a fixed pool of worker threads, each owning a full
//! private execution stack — its federation copy (parsing, binding,
//! GOid integration), its [`Hub`] with connections to every site, its
//! statistics catalog ([`fedoq_plan::StatsCatalog`]) for `adaptive`
//! queries, and its persistent lookup cache. Client reader threads push
//! jobs onto a shared queue; workers pull, execute, and write the
//! answer back on the client's connection (correlated by the client's
//! id, so one connection may have many queries in flight on different
//! workers). Nothing is shared between workers, so there are no locks
//! on the execution path and per-worker RPC-id ranges stay disjoint by
//! construction.
//!
//! Failure semantics are inherited, not reimplemented: a dead site
//! surfaces as RPC timeouts inside the runtime, which the global actor
//! already converts into degraded maybe-rows (BL/PL) or
//! [`fedoq_core::ExecError::Unreachable`] (CA).

use crate::drive::wall_driver;
use crate::fed::build_workload;
use crate::frame::{read_frame, write_frame, ClientAnswer, Frame, Role};
use crate::hub::Hub;
use crate::live::LiveSession;
use crate::render::render_answer;
use crate::transport::{Locality, TcpTransport};
use fedoq_core::handlers::LocalizedConfig;
use fedoq_core::{
    collect_catalog, query_fingerprint, refresh_catalog, Federation, LookupCache, PipelineConfig,
};
use fedoq_net::actor::{run_global, Ctx};
use fedoq_net::msg::{Request, Response};
use fedoq_net::router::Net;
use fedoq_net::rpc::call;
use fedoq_net::{DistributedStrategy, RpcConfig, Runtime, Transport};
use fedoq_plan::{choose, PipelineKnobs, PlanKind, StatsCatalog};
use fedoq_sim::{Phase, Resource, Simulation, Site, SystemParams};
use fedoq_sync::{Condvar, Mutex};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::{self, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

/// Configuration of one serve frontend.
#[derive(Debug, Clone)]
pub struct ServeOpts {
    /// Client listen address (`127.0.0.1:0` picks a free port).
    pub listen: String,
    /// Site daemon addresses, indexed by site id.
    pub sites: Vec<String>,
    /// Workload spec shared by every process (see [`crate::fed`]).
    pub workload: String,
    /// Worker threads (each a fully independent execution stack).
    pub workers: usize,
    /// Timeout/retry policy for global → site RPCs.
    pub rpc: RpcConfig,
    /// Pipeline configuration for the global actor.
    pub pipeline: PipelineConfig,
}

/// One query waiting for a worker.
struct Job {
    id: u64,
    sql: String,
    strategy: String,
    priority: u8,
    reply: Arc<Mutex<TcpStream>>,
}

/// The frontend's admission queue: the OS-thread analogue of
/// [`fedoq_sched::Admission`], with the same discipline — strict
/// priority, FIFO within a priority. The worker pool is the slot
/// budget, so ordering the queue this way *is* admission control:
/// whenever a worker frees up, the oldest highest-priority query is
/// admitted next.
struct JobQueue {
    jobs: Mutex<JobLadder>,
    cond: Condvar,
}

#[derive(Default)]
struct JobLadder {
    seq: u64,
    // Key `(255 - priority, seq)`: ascending iteration order is highest
    // priority first, oldest first within a priority — identical to the
    // scheduler's admission gate.
    waiting: BTreeMap<(u8, u64), Job>,
}

impl JobQueue {
    fn new() -> JobQueue {
        JobQueue {
            jobs: Mutex::new("serve.jobs", JobLadder::default()),
            cond: Condvar::new("serve.job-ready"),
        }
    }

    fn push(&self, job: Job) {
        let mut jobs = self.jobs.lock();
        let key = (255 - job.priority, jobs.seq);
        jobs.seq += 1;
        jobs.waiting.insert(key, job);
        drop(jobs);
        self.cond.notify_one();
    }

    fn pop(&self) -> Job {
        // Shim-guarded wait: the predicate re-check lives inside
        // `wait_while`, so a stolen wakeup (two workers racing one
        // notify) just parks again instead of popping from an empty
        // queue — the discipline FQ302 audits.
        let mut jobs = self.jobs.lock();
        loop {
            let front = jobs.waiting.iter().next().map(|(&key, _)| key);
            if let Some(key) = front {
                if let Some(job) = jobs.waiting.remove(&key) {
                    return job;
                }
            }
            jobs = self.cond.wait_while(jobs, |q| q.waiting.is_empty());
        }
    }
}

/// Splits a client strategy string into `(strategy, priority)`.
///
/// Clients opt into scheduling priority with an `@N` suffix on the
/// strategy name (`"bl@3"`, `"adaptive@1"`); the bare name keeps
/// priority 0. Carried inside the existing string field so the wire
/// grammar — and therefore the FQ306 version fingerprint — is
/// unchanged, and old clients are unaffected.
fn split_priority(raw: &str) -> (&str, u8) {
    match raw.rsplit_once('@') {
        Some((name, prio)) => match prio.parse::<u8>() {
            Ok(p) => (name, p),
            Err(_) => (raw, 0),
        },
        None => (raw, 0),
    }
}

/// Disjoint RPC-id base for job `seq` of worker `worker`: the upper
/// half of the bucket space (sites use the lower; see [`crate::site`]).
fn rpc_base(worker: usize, seq: u64) -> u64 {
    ((0x80 + (worker as u64 & 0x3F)) << 56) | ((seq & 0xFF_FFFF) << 32)
}

/// Boots the frontend in-process: binds the client listener, spawns the
/// worker pool and the accept loop on background threads, and returns
/// the bound address. The frontend runs until the process exits — the
/// entry point the schedule explorer and loopback tests use to host a
/// serve stack inside their own process.
///
/// # Errors
///
/// Returns an error string if the workload spec is invalid or the
/// listener cannot bind.
pub fn spawn_serve(opts: &ServeOpts) -> Result<SocketAddr, String> {
    // Fail fast on a bad spec before accepting anyone.
    build_workload(&opts.workload)?;
    let listener =
        TcpListener::bind(&opts.listen).map_err(|e| format!("bind {}: {e}", opts.listen))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;

    let queue = Arc::new(JobQueue::new());
    for worker in 0..opts.workers.max(1) {
        let opts = opts.clone();
        let queue = Arc::clone(&queue);
        std::thread::spawn(move || worker_loop(worker, &opts, &queue));
    }

    let workload = Arc::new(opts.workload.clone());
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            let queue = Arc::clone(&queue);
            let workload = Arc::clone(&workload);
            std::thread::spawn(move || client_loop(stream, &queue, &workload));
        }
    });
    Ok(addr)
}

/// Runs the frontend forever (until the process is killed).
///
/// Prints `LISTENING <addr>` on stdout once the client listener is
/// bound.
///
/// # Errors
///
/// Returns an error string if the workload spec is invalid or the
/// listener cannot bind.
pub fn run_serve_daemon(opts: ServeOpts) -> Result<(), String> {
    let addr = spawn_serve(&opts)?;
    println!("LISTENING {addr}");
    let _ = io::stdout().flush();
    loop {
        std::thread::park();
    }
}

/// Lazily builds the connection's standing-query session on first use.
/// A workload that fails to build (validated at boot, so only on a
/// serve-side regression) surfaces as an error string to the client.
fn live_session<'a>(
    live: &'a mut Option<LiveSession>,
    workload: &str,
) -> Result<&'a mut LiveSession, String> {
    if live.is_none() {
        let (fed, _) = build_workload(workload)?;
        *live = Some(LiveSession::new(fed));
    }
    live.as_mut().ok_or_else(|| "no live session".to_string())
}

/// Writes every pending subscription delta for this connection.
fn flush_deltas(live: &mut Option<LiveSession>, writer: &Arc<Mutex<TcpStream>>) {
    if let Some(session) = live.as_mut() {
        for frame in session.drain() {
            let mut stream = writer.lock();
            let _ = write_frame(&mut *stream, &frame);
        }
    }
}

/// Reads queries off one client connection into the job queue, and
/// handles the standing-query frames inline: subscriptions evaluate
/// in-process on the connection's private [`LiveSession`] (see
/// [`crate::live`]), so they never occupy a worker slot. Deltas a
/// mutation causes are flushed *before* its acknowledging answer — the
/// ack is the client's delivery barrier.
fn client_loop(stream: TcpStream, queue: &JobQueue, workload: &str) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new("serve.client-writer", write_half));
    let mut reader = BufReader::new(stream);
    let mut live: Option<LiveSession> = None;
    loop {
        match read_frame(&mut reader) {
            Ok(Some(Frame::Query { id, sql, strategy })) => {
                let (name, priority) = split_priority(&strategy);
                queue.push(Job {
                    id,
                    sql,
                    strategy: name.to_string(),
                    priority,
                    reply: Arc::clone(&writer),
                });
            }
            Ok(Some(Frame::Subscribe {
                id,
                sql,
                strategy,
                priority,
            })) => {
                let result = live_session(&mut live, workload)
                    .and_then(|session| session.subscribe(id, &sql, &strategy, priority));
                if let Err(message) = result {
                    let frame = Frame::Delta {
                        id,
                        seq: 0,
                        reply: Err(message),
                    };
                    let mut stream = writer.lock();
                    let _ = write_frame(&mut *stream, &frame);
                }
                flush_deltas(&mut live, &writer);
            }
            Ok(Some(Frame::Unsubscribe { id })) => {
                if let Some(session) = live.as_mut() {
                    session.unsubscribe(id);
                }
                flush_deltas(&mut live, &writer);
            }
            Ok(Some(Frame::Mutate { id, db, spec })) => {
                let start = Instant::now();
                let reply = live_session(&mut live, workload)
                    .and_then(|session| session.mutate(db, &spec))
                    .map(|summary| ClientAnswer {
                        executed: "mutate".to_string(),
                        rows: vec![summary],
                        degraded_sites: vec![],
                        retries: 0,
                        forwarded: 0,
                        lost: 0,
                        server_us: start.elapsed().as_secs_f64() * 1e6,
                    });
                flush_deltas(&mut live, &writer);
                let frame = Frame::Answer { id, reply };
                let mut stream = writer.lock();
                let _ = write_frame(&mut *stream, &frame);
            }
            Ok(Some(_)) => continue, // Hello and anything else: ignored
            Ok(None) | Err(_) => return,
        }
    }
}

/// One worker: a private execution stack draining the job queue.
fn worker_loop(worker: usize, opts: &ServeOpts, queue: &JobQueue) {
    let Ok((fed, _)) = build_workload(&opts.workload) else {
        return; // validated by run_serve_daemon; unreachable in practice
    };
    let mut catalog = collect_catalog(&fed, SystemParams::paper_default());
    let hub = Hub::new(Role::Serve, None);
    let pairs: Vec<(u16, String)> = opts
        .sites
        .iter()
        .enumerate()
        .map(|(db, addr)| (db as u16, addr.clone()))
        .collect();
    hub.set_site_addrs(&pairs);
    // Eager best-effort dial so the first query pays no connect latency;
    // failures fall back to the lazy dial in the routing path.
    for (db, _) in &pairs {
        let _ = hub.connect_site(*db);
    }
    let cache = Rc::new(RefCell::new(LookupCache::default()));
    let mut job_seq = 0u64;
    loop {
        let job = queue.pop();
        // A panicking query must cost one answer, not the worker: the
        // client gets an error frame, shim locks the panic poisoned are
        // recovered with a diagnostic, and the worker pulls the next
        // job. (The catalog/cache may miss one feedback observation —
        // statistics, not correctness.)
        let reply = std::panic::catch_unwind(AssertUnwindSafe(|| {
            execute(
                &fed,
                &mut catalog,
                &hub,
                &cache,
                opts,
                worker,
                &mut job_seq,
                &job,
            )
        }))
        .unwrap_or_else(|_| Err("query execution panicked; worker recovered".into()));
        let frame = Frame::Answer { id: job.id, reply };
        let mut stream = job.reply.lock();
        let _ = write_frame(&mut *stream, &frame);
    }
}

/// Executes one query end to end as the global integrator.
#[allow(clippy::too_many_arguments)]
fn execute(
    fed: &Federation,
    catalog: &mut StatsCatalog,
    hub: &Hub,
    cache: &Rc<RefCell<LookupCache>>,
    opts: &ServeOpts,
    worker: usize,
    job_seq: &mut u64,
    job: &Job,
) -> Result<ClientAnswer, String> {
    let query = fed.parse_and_bind(&job.sql).map_err(|e| e.to_string())?;
    let fingerprint = query_fingerprint(&query);

    // Strategy selection: a fixed name, or the adaptive planner ranking
    // CA/BL/PL/HY against this worker's statistics catalog. A hybrid
    // winner ships as one `HybridCertify` carrying the per-site
    // schedule; uniform winners ship as a plain `Certify`.
    let adaptive = job.strategy.eq_ignore_ascii_case("adaptive");
    let (request, executed, planned) = if adaptive {
        refresh_catalog(catalog, fed);
        let warmth = if opts.pipeline.cache {
            cache.borrow().stats().hit_rate()
        } else {
            0.0
        };
        let knobs = PipelineKnobs {
            threads: opts.pipeline.threads.max(1) as f64,
            warmth,
            batch: opts.pipeline.batch as f64,
        };
        let choice = choose(
            catalog,
            fed.global_schema(),
            &query,
            &knobs,
            fingerprint,
            true,
        );
        let best = choice.best();
        let kind = best.kind;
        let request = match kind {
            PlanKind::Centralized => Request::Certify {
                strategy: DistributedStrategy::ca(),
            },
            PlanKind::BasicLocalized => Request::Certify {
                strategy: DistributedStrategy::bl(),
            },
            PlanKind::ParallelLocalized => Request::Certify {
                strategy: DistributedStrategy::pl(),
            },
            PlanKind::Hybrid => Request::HybridCertify {
                parallel_sites: best
                    .modes
                    .iter()
                    .filter(|m| m.parallel)
                    .map(|m| m.db)
                    .collect(),
                config: LocalizedConfig::default(),
            },
        };
        (request, kind.label().to_string(), Some(kind))
    } else {
        let strategy = DistributedStrategy::parse(&job.strategy)
            .ok_or_else(|| format!("unknown strategy '{}'", job.strategy))?;
        (
            Request::Certify { strategy },
            strategy.name().to_string(),
            None,
        )
    };

    cache.borrow_mut().sync_generation(fed.generation());
    let cache_opt = if opts.pipeline.cache {
        Some(Rc::clone(cache))
    } else {
        None
    };
    let sim = Rc::new(RefCell::new(Simulation::new(
        SystemParams::paper_default(),
        fed.num_dbs(),
    )));
    let transport: Rc<RefCell<dyn Transport>> = Rc::new(RefCell::new(TcpTransport::new(
        hub.clone(),
        Locality::Global,
        fingerprint,
        job.sql.clone(),
    )));
    let rt = Runtime::new();
    let net = Net::new(rt.handle(), Rc::clone(&transport), fed.num_dbs());
    net.seed_rpc_ids(rpc_base(worker, *job_seq));
    *job_seq += 1;
    rt.handle().spawn(run_global(Ctx {
        fed,
        query: &query,
        net: net.clone(),
        sim: Rc::clone(&sim),
        rpc: opts.rpc,
        pipeline: opts.pipeline,
        cache: cache_opt,
    }));

    // The client half: one self-RPC to the in-process global actor with
    // an effectively unbounded window (end-to-end patience is the
    // point), driven by the wall clock so the actor's *own* RPCs to the
    // site daemons get real deadlines.
    let start = Instant::now();
    let client_net = net.clone();
    let inject_net = net.clone();
    let response = rt
        .run_driven(
            async move {
                let cfg = RpcConfig {
                    timeout_us: 1e15,
                    per_byte_us: 0.0,
                    retries: 0,
                    backoff_us: 0.0,
                    backoff_factor: 1.0,
                };
                call(
                    &client_net,
                    Site::Global,
                    Site::Global,
                    request,
                    0,
                    Phase::Ship,
                    cfg,
                )
                .await
            },
            wall_driver(hub.clone(), start, move |inbound| {
                if let Frame::Envelope { env, .. } = inbound.frame {
                    inject_net.inject(env);
                }
            }),
        )
        .map_err(|deadlock| deadlock.to_string())?
        .map_err(|e| format!("global actor lost: {e}"))?;
    let server_us = start.elapsed().as_secs_f64() * 1e6;

    let Response::Certify(reply) = response else {
        return Err("mismatched response to Certify".into());
    };
    let (forwarded, lost) = transport.borrow().stats();

    // Adaptive feedback: the measured response and wire traffic sharpen
    // the next plan.
    if let Some(kind) = planned {
        let metrics = sim.borrow().metrics();
        catalog.observe_response(fingerprint, kind.label(), metrics.response_us);
        let net_busy = sim
            .borrow()
            .ledger()
            .total_for_resource(Resource::Net)
            .as_micros();
        catalog.observe_net(metrics.bytes_transferred, net_busy);
    }

    match reply.answer {
        Ok(answer) => Ok(ClientAnswer {
            executed,
            rows: render_answer(&answer),
            degraded_sites: reply
                .degraded_sites
                .iter()
                .map(|db| db.index() as u16)
                .collect(),
            retries: reply.retries,
            forwarded,
            lost,
            server_us,
        }),
        Err(e) => Err(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_suffix_parses_and_defaults() {
        assert_eq!(split_priority("bl"), ("bl", 0));
        assert_eq!(split_priority("bl@3"), ("bl", 3));
        assert_eq!(split_priority("adaptive@1"), ("adaptive", 1));
        // Malformed suffixes are left alone so the strategy parser can
        // report the whole unknown name.
        assert_eq!(split_priority("bl@fast"), ("bl@fast", 0));
    }

    #[test]
    fn job_queue_admits_by_priority_then_arrival() {
        let queue = JobQueue::new();
        for (id, priority) in [(0u64, 0u8), (1, 3), (2, 0), (3, 3)] {
            let (a, b) = std::net::TcpListener::bind("127.0.0.1:0")
                .and_then(|l| {
                    let addr = l.local_addr()?;
                    let a = TcpStream::connect(addr)?;
                    let (b, _) = l.accept()?;
                    Ok((a, b))
                })
                .expect("loopback pair");
            drop(b);
            queue.push(Job {
                id,
                sql: String::new(),
                strategy: String::new(),
                priority,
                reply: Arc::new(Mutex::new("test.reply", a)),
            });
        }
        let order: Vec<u64> = (0..4).map(|_| queue.pop().id).collect();
        assert_eq!(order, vec![1, 3, 0, 2]);
    }
}
