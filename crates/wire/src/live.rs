//! Standing-query subscription sessions for `fedoq-serve`.
//!
//! A client opts into the live protocol with [`Frame::Subscribe`]; the
//! serving connection then owns a [`LiveSession`] — a private
//! [`LiveReactor`] over the serve's workload federation — and speaks
//! the subscription half of the wire grammar:
//!
//! * `Subscribe` registers a standing query; the reactor's initial
//!   snapshot comes back as a [`Frame::Delta`] with `seq` 0, each row
//!   in its canonical conditioned rendering;
//! * `Mutate` applies one parsed [`Mutation`] to the session's
//!   federation copy — every delta the reactor emits is flushed as
//!   [`Frame::Delta`] frames *before* the acknowledging
//!   [`Frame::Answer`], so the ack is a barrier: once a client reads
//!   it, every delta that mutation caused has been delivered;
//! * `Unsubscribe` tears one watch down.
//!
//! Sessions are **per-connection**: standing queries evaluate in-process
//! on the session's own federation copy (the [`fedoq_live`] reactor, not
//! the distributed runtime), and mutations are visible only to watches
//! on the same connection. What the wire adds is the protocol surface —
//! the rendering, framing, and delivery-order guarantees a remote
//! subscriber needs; the maintenance guarantee (maintained answer ==
//! from-scratch answer, byte for byte) is the reactor's.
//!
//! The mutation spec is a tiny imperative grammar, kept to what the
//! reclassification machinery needs exercised over a wire:
//!
//! ```text
//! insert <Class> <attr>=<value>[,<attr>=<value>...]
//! update <Class> where <attr>=<value>[,...] set <attr>=<value>[,...]
//! ```
//!
//! Values are `null`, integer or float literals, or strings (quoting
//! optional: `'CS'` and `CS` are the same text; commas inside strings
//! are not supported).

use crate::frame::Frame;
use fedoq_core::Federation;
use fedoq_live::{render_conditioned, LiveEvent, LiveReactor, LiveStrategy, SubId};
use fedoq_object::{DbId, Value};
use fedoq_store::{ComponentDb, StoreError};
use fedoq_sync::Receiver;
use std::collections::BTreeMap;

/// One parsed mutation spec (see the module docs for the grammar).
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation {
    /// Insert one object with the named attribute values.
    Insert {
        /// The class to insert into.
        class: String,
        /// `(attribute, value)` pairs; unnamed attributes stay null.
        sets: Vec<(String, Value)>,
    },
    /// Update every object of `class` whose attributes equal `matches`.
    Update {
        /// The class whose extent is scanned.
        class: String,
        /// Equality filters selecting the objects to update.
        matches: Vec<(String, Value)>,
        /// `(attribute, value)` pairs written to each selected object.
        sets: Vec<(String, Value)>,
    },
}

fn parse_value(token: &str) -> Value {
    let token = token.trim();
    if token.eq_ignore_ascii_case("null") {
        return Value::Null;
    }
    if let Ok(i) = token.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = token.parse::<f64>() {
        return Value::Float(f);
    }
    let unquoted = token
        .strip_prefix('\'')
        .and_then(|t| t.strip_suffix('\''))
        .unwrap_or(token);
    Value::text(unquoted)
}

fn parse_assignments(raw: &str) -> Result<Vec<(String, Value)>, String> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Err("expected at least one <attr>=<value>".to_string());
    }
    raw.split(',')
        .map(|pair| {
            let (attr, value) = pair.split_once('=').ok_or_else(|| {
                format!("bad assignment '{}' (expected <attr>=<value>)", pair.trim())
            })?;
            Ok((attr.trim().to_string(), parse_value(value)))
        })
        .collect()
}

/// Parses one mutation spec.
///
/// # Errors
///
/// Returns a human-readable message when the spec does not match the
/// grammar. Unknown classes and attributes are *not* detected here —
/// they surface as [`StoreError`]s when the mutation is applied.
pub fn parse_mutation(spec: &str) -> Result<Mutation, String> {
    let spec = spec.trim();
    let (verb, rest) = spec
        .split_once(char::is_whitespace)
        .ok_or_else(|| format!("bad mutation '{spec}' (expected insert/update ...)"))?;
    let (class, body) = rest
        .trim()
        .split_once(char::is_whitespace)
        .ok_or_else(|| format!("bad mutation '{spec}' (expected a class then a body)"))?;
    let class = class.trim().to_string();
    match verb.to_ascii_lowercase().as_str() {
        "insert" => Ok(Mutation::Insert {
            class,
            sets: parse_assignments(body)?,
        }),
        "update" => {
            let body = body.trim();
            let clauses = body.strip_prefix("where").ok_or_else(|| {
                format!("bad update '{spec}' (expected 'where <filters> set <assignments>')")
            })?;
            let (matches, sets) = clauses
                .split_once(" set ")
                .ok_or_else(|| format!("bad update '{spec}' (missing 'set' clause)"))?;
            Ok(Mutation::Update {
                class,
                matches: parse_assignments(matches)?,
                sets: parse_assignments(sets)?,
            })
        }
        other => Err(format!(
            "unknown mutation verb '{other}' (expected insert or update)"
        )),
    }
}

/// Applies one parsed mutation to a component store, returning a short
/// human-readable summary (`inserted Teacher l7` / `updated 2 Student
/// object(s)`).
///
/// # Errors
///
/// [`StoreError`] on unknown classes or attributes, arity/type
/// violations, or key conflicts — exactly the store's own insert rules.
pub fn apply_mutation(db: &mut ComponentDb, mutation: &Mutation) -> Result<String, StoreError> {
    match mutation {
        Mutation::Insert { class, sets } => {
            let pairs: Vec<(&str, Value)> = sets
                .iter()
                .map(|(attr, value)| (attr.as_str(), value.clone()))
                .collect();
            let loid = db.insert_named(class, &pairs)?;
            Ok(format!("inserted {class} {loid}"))
        }
        Mutation::Update {
            class,
            matches,
            sets,
        } => {
            let class_id = db
                .schema()
                .class_id(class)
                .ok_or_else(|| StoreError::UnknownClass(class.clone()))?;
            let def = db.schema().class(class_id);
            let slot = |attr: &String| {
                def.attr_index(attr)
                    .ok_or_else(|| StoreError::MissingAttribute {
                        class: class.clone(),
                        attr: attr.clone(),
                    })
            };
            let match_slots: Vec<(usize, &Value)> = matches
                .iter()
                .map(|(attr, value)| Ok((slot(attr)?, value)))
                .collect::<Result<_, StoreError>>()?;
            let set_slots: Vec<(usize, Value)> = sets
                .iter()
                .map(|(attr, value)| Ok((slot(attr)?, value.clone())))
                .collect::<Result<_, StoreError>>()?;
            let targets: Vec<_> = db
                .extent(class_id)
                .objects()
                .iter()
                .filter(|o| match_slots.iter().all(|(s, v)| o.value(*s) == *v))
                .map(fedoq_object::Object::loid)
                .collect();
            for &loid in &targets {
                if let Some(mut object) = db.object_mut(loid) {
                    for (s, v) in &set_slots {
                        object.set(*s, v.clone());
                    }
                }
            }
            Ok(format!("updated {} {class} object(s)", targets.len()))
        }
    }
}

struct Watch {
    sub: SubId,
    events: Receiver<LiveEvent>,
}

/// One connection's standing-query state: a private reactor plus the
/// client-id → subscription map.
pub struct LiveSession {
    reactor: LiveReactor,
    watches: BTreeMap<u64, Watch>,
}

impl LiveSession {
    /// Creates a session over its own federation copy.
    pub fn new(fed: Federation) -> LiveSession {
        LiveSession {
            reactor: LiveReactor::new(fed),
            watches: BTreeMap::new(),
        }
    }

    /// Registers a standing query under the client's watch id. The
    /// initial snapshot arrives via [`LiveSession::drain`].
    ///
    /// # Errors
    ///
    /// A duplicate watch id, an unknown strategy name, or a query that
    /// fails to parse/bind/evaluate.
    pub fn subscribe(
        &mut self,
        id: u64,
        sql: &str,
        strategy: &str,
        priority: u8,
    ) -> Result<(), String> {
        if self.watches.contains_key(&id) {
            return Err(format!("watch id {id} is already subscribed"));
        }
        let strategy = LiveStrategy::parse(strategy)
            .ok_or_else(|| format!("unknown strategy '{strategy}' (expected ca/bl/pl/hy)"))?;
        let registration = self
            .reactor
            .register(sql, strategy, priority)
            .map_err(|e| e.to_string())?;
        self.watches.insert(
            id,
            Watch {
                sub: registration.sub,
                events: registration.events,
            },
        );
        Ok(())
    }

    /// Drops one watch. Returns `false` for an unknown id.
    pub fn unsubscribe(&mut self, id: u64) -> bool {
        match self.watches.remove(&id) {
            Some(watch) => self.reactor.unsubscribe(watch.sub),
            None => false,
        }
    }

    /// Parses and applies one mutation spec to site `db`, re-evaluating
    /// affected watches. Returns a summary naming what was mutated and
    /// how many subscriptions re-evaluated; the deltas themselves are
    /// picked up by [`LiveSession::drain`].
    ///
    /// # Errors
    ///
    /// Spec syntax errors, an out-of-range site id, and store rejections,
    /// all as display strings (they travel in an error [`Frame::Answer`]).
    pub fn mutate(&mut self, db: u16, spec: &str) -> Result<String, String> {
        let mutation = parse_mutation(spec)?;
        if usize::from(db) >= self.reactor.federation().dbs().len() {
            return Err(format!("no site {db} in this federation"));
        }
        let (summary, outcome) = self
            .reactor
            .mutate(DbId::new(db), |cdb| apply_mutation(cdb, &mutation))
            .map_err(|e| e.to_string())?;
        Ok(format!(
            "{summary} at site {db}; {} subscription(s) re-evaluated, {} delta batch(es)",
            outcome.affected, outcome.deltas
        ))
    }

    /// Collects every pending subscription event as [`Frame::Delta`]
    /// frames, in ascending watch-id order: the initial snapshot
    /// (`seq` 0) as canonical conditioned rows, later batches as delta
    /// display strings.
    pub fn drain(&mut self) -> Vec<Frame> {
        let mut frames = Vec::new();
        for (&id, watch) in &self.watches {
            while let Some(event) = watch.events.try_recv() {
                let (seq, rows) = match event {
                    LiveEvent::Initial { seq, answer } => (seq, render_conditioned(&answer)),
                    LiveEvent::Deltas { seq, deltas } => {
                        (seq, deltas.iter().map(ToString::to_string).collect())
                    }
                };
                frames.push(Frame::Delta {
                    id,
                    seq,
                    reply: Ok(rows),
                });
            }
        }
        frames
    }

    /// Number of live watches.
    pub fn watch_count(&self) -> usize {
        self.watches.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fed::build_workload;

    #[test]
    fn mutation_specs_parse_and_reject() {
        assert_eq!(
            parse_mutation("insert Teacher name='Haley',speciality=network").unwrap(),
            Mutation::Insert {
                class: "Teacher".into(),
                sets: vec![
                    ("name".into(), Value::text("Haley")),
                    ("speciality".into(), Value::text("network")),
                ],
            }
        );
        assert_eq!(
            parse_mutation("update Student where s-no=3 set age=21, advisor=null").unwrap(),
            Mutation::Update {
                class: "Student".into(),
                matches: vec![("s-no".into(), Value::Int(3))],
                sets: vec![
                    ("age".into(), Value::Int(21)),
                    ("advisor".into(), Value::Null)
                ],
            }
        );
        for bad in [
            "",
            "insert",
            "insert Teacher",
            "delete Teacher name=x",
            "update Teacher name=x",
            "update Teacher where name=x",
            "insert Teacher name",
        ] {
            assert!(parse_mutation(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn session_snapshots_mutates_and_resolves_over_frames() {
        let (fed, _) = build_workload("university").unwrap();
        let mut session = LiveSession::new(fed);
        session
            .subscribe(7, fedoq_workload::university::Q1, "bl", 5)
            .unwrap();
        let frames = session.drain();
        let [Frame::Delta {
            id: 7,
            seq: 0,
            reply: Ok(rows),
        }] = &frames[..]
        else {
            panic!("expected one initial snapshot, got {frames:?}");
        };
        assert_eq!(rows.len(), 2, "{rows:?}");
        assert!(rows[0].starts_with("C "), "{rows:?}");
        assert!(
            rows[1].starts_with("M ") && rows[1].contains(" ? "),
            "{rows:?}"
        );

        // Haley gains a non-database speciality copy: the maybe row
        // resolves to eliminated, and the ack barrier's content names it.
        let summary = session
            .mutate(1, "insert Teacher name='Haley',speciality='network'")
            .unwrap();
        assert!(
            summary.contains("1 subscription(s) re-evaluated"),
            "{summary}"
        );
        let frames = session.drain();
        let [Frame::Delta {
            id: 7,
            seq: 1,
            reply: Ok(rows),
        }] = &frames[..]
        else {
            panic!("expected one delta batch, got {frames:?}");
        };
        assert_eq!(rows.len(), 1, "{rows:?}");
        assert!(rows[0].starts_with("M>X "), "{rows:?}");

        // Errors stay strings: bad spec, bad site, duplicate watch.
        assert!(session.mutate(0, "frobnicate").is_err());
        assert!(session.mutate(9, "insert Teacher name=x").is_err());
        assert!(session
            .subscribe(7, "SELECT X.name FROM Teacher X", "ca", 0)
            .is_err());
        assert!(session.unsubscribe(7));
        assert!(!session.unsubscribe(7));
        assert_eq!(session.watch_count(), 0);
    }
}
