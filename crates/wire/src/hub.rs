//! The connection hub: TCP connections, reader threads, and routing.
//!
//! One [`Hub`] owns every inter-node connection of one endpoint (a
//! `fedoq-serve` worker or a `fedoq-site` daemon): it listens for
//! inbound dials, lazily dials peers from the address table the serve
//! frontend distributes via [`Frame::Peers`], and runs one reader thread
//! per connection. Readers decode frames off the socket and queue them
//! on a condvar-signalled inbound queue the (single-threaded) runtime
//! driver drains between polls.
//!
//! Routing is datagram-like on purpose: [`Hub::route_envelope`] does its
//! best — resolving the destination connection, dialing if it must — and
//! on any failure simply counts the message as lost. The sender's RPC
//! timeout is the only failure signal, which is exactly the contract the
//! in-process [`fedoq_net::transport`] fates already established, so the
//! retry/backoff/degradation machinery above needs no changes.
//!
//! Responses are routed by correlation id: when a request arrives on a
//! connection, the hub records `rpc → connection`; the response to that
//! rpc leaves on the same connection, wherever it came from. This lets a
//! site answer a serve worker it never dialed.

use crate::frame::{read_frame, write_frame, Frame, Role};
use fedoq_net::msg::{Envelope, Payload};
use fedoq_sim::Site;
use fedoq_sync::{Condvar, Mutex, MutexGuard};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Identifier of one live connection.
pub type ConnId = u64;

/// One frame received from a peer.
#[derive(Debug)]
pub struct Inbound {
    /// The connection it arrived on.
    pub conn: ConnId,
    /// The frame itself.
    pub frame: Frame,
}

#[derive(Default)]
struct State {
    /// Write halves, locked individually so a slow write never blocks
    /// the readers (only conn-table lookups hold the state lock).
    writers: HashMap<ConnId, Arc<Mutex<TcpStream>>>,
    /// Which connection reaches each component site.
    site_conn: HashMap<u16, ConnId>,
    /// Dial addresses for sites we have no connection to yet.
    site_addr: HashMap<u16, String>,
    /// Response routing: an inbound request's rpc id → the connection
    /// its response must leave on.
    reply_to: HashMap<u64, ConnId>,
    /// Frames waiting for the runtime driver.
    inbound: VecDeque<Inbound>,
    next_conn: ConnId,
    /// Envelopes successfully written to a socket.
    forwarded: u64,
    /// Envelopes that could not be delivered (no route, dial or write
    /// failure, decode error on a connection).
    lost: u64,
}

struct Shared {
    state: Mutex<State>,
    cond: Condvar,
    /// The `Hello` this endpoint opens every outbound dial with.
    role: Role,
    site: Option<u16>,
}

/// Cloneable handle to one endpoint's connection state.
pub struct Hub {
    sh: Arc<Shared>,
}

impl Clone for Hub {
    fn clone(&self) -> Self {
        Hub {
            sh: Arc::clone(&self.sh),
        }
    }
}

impl Hub {
    /// A hub for an endpoint of the given role (`site` set iff the role
    /// is [`Role::Site`]).
    pub fn new(role: Role, site: Option<u16>) -> Hub {
        Hub {
            sh: Arc::new(Shared {
                state: Mutex::new("hub.state", State::default()),
                cond: Condvar::new("hub.inbound"),
                role,
                site,
            }),
        }
    }

    /// Acquires the state lock. The instrumented mutex recovers from
    /// poison (with a diagnostic and a [`fedoq_sync::poison_recoveries`]
    /// count) instead of cascading a worker's panic: hub state is
    /// connection-table shaped, and a torn entry surfaces as one lost
    /// connection, not a dead process.
    fn lock(&self) -> MutexGuard<'_, State> {
        self.sh.state.lock()
    }

    /// Starts listening on `addr` (e.g. `127.0.0.1:0`); accepted
    /// connections are adopted with a reader thread each. Returns the
    /// bound address.
    pub fn listen(&self, addr: &str) -> io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let hub = self.clone();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                match stream {
                    Ok(stream) => {
                        hub.adopt(stream);
                    }
                    Err(_) => continue,
                }
            }
        });
        Ok(local)
    }

    /// Installs the site address table (from flags or a `Peers` frame).
    pub fn set_site_addrs(&self, pairs: &[(u16, String)]) {
        let mut st = self.lock();
        for (db, addr) in pairs {
            st.site_addr.insert(*db, addr.clone());
        }
    }

    /// The current site address table, sorted by site id.
    pub fn site_addrs(&self) -> Vec<(u16, String)> {
        let st = self.lock();
        let mut pairs: Vec<(u16, String)> = st
            .site_addr
            .iter()
            .map(|(db, addr)| (*db, addr.clone()))
            .collect();
        pairs.sort();
        pairs
    }

    /// `(forwarded, lost)` envelope counts so far.
    pub fn counters(&self) -> (u64, u64) {
        let st = self.lock();
        (st.forwarded, st.lost)
    }

    /// Registers `stream` as a live connection and spawns its reader.
    pub fn adopt(&self, stream: TcpStream) -> ConnId {
        let _ = stream.set_nodelay(true);
        let reader = stream.try_clone();
        let conn = {
            let mut st = self.lock();
            let conn = st.next_conn;
            st.next_conn += 1;
            st.writers
                .insert(conn, Arc::new(Mutex::new("hub.writer", stream)));
            conn
        };
        match reader {
            Ok(stream) => {
                let hub = self.clone();
                std::thread::spawn(move || hub.read_loop(conn, stream));
            }
            Err(_) => self.disconnect(conn),
        }
        conn
    }

    fn read_loop(&self, conn: ConnId, stream: TcpStream) {
        let mut stream = io::BufReader::new(stream);
        loop {
            match read_frame(&mut stream) {
                Ok(Some(frame)) => self.accept_frame(conn, frame),
                Ok(None) => break,
                Err(_) => {
                    let mut st = self.lock();
                    st.lost += 1;
                    break;
                }
            }
        }
        self.disconnect(conn);
    }

    fn accept_frame(&self, conn: ConnId, frame: Frame) {
        let mut st = self.lock();
        match &frame {
            Frame::Hello {
                role: Role::Site,
                site: Some(db),
            } => {
                // A site dialed in: its connection doubles as our route
                // back to it (sites reuse inbound links for lookups).
                st.site_conn.entry(*db).or_insert(conn);
                return;
            }
            Frame::Hello { .. } => return,
            Frame::Peers { sites } => {
                for (db, addr) in sites {
                    st.site_addr.insert(*db, addr.clone());
                }
                return;
            }
            Frame::Envelope { env, .. } => {
                if matches!(env.payload, Payload::Request(_)) {
                    st.reply_to.insert(env.rpc, conn);
                }
            }
            _ => {}
        }
        st.inbound.push_back(Inbound { conn, frame });
        drop(st);
        self.sh.cond.notify_all();
    }

    fn disconnect(&self, conn: ConnId) {
        let mut st = self.lock();
        st.writers.remove(&conn);
        st.site_conn.retain(|_, c| *c != conn);
        st.reply_to.retain(|_, c| *c != conn);
        drop(st);
        // Wake the driver: a site daemon blocked in `wait_inbound` should
        // notice lost peers through its RPC timers, not hang forever.
        self.sh.cond.notify_all();
    }

    /// Takes every queued inbound frame without blocking.
    pub fn drain(&self) -> Vec<Inbound> {
        let mut st = self.lock();
        st.inbound.drain(..).collect()
    }

    /// Blocks up to `timeout` for inbound frames, then takes them all
    /// (possibly none, on timeout).
    pub fn wait_inbound(&self, timeout: Duration) -> Vec<Inbound> {
        let mut st = self.lock();
        if st.inbound.is_empty() {
            // Raw *timed* wait by contract: callers tolerate an empty
            // return (the wall driver re-polls), so a stolen wakeup only
            // costs one timeout — which is why FQ302 does not flag the
            // timed-raw form.
            let (guard, _) = self.sh.cond.wait_timeout(st, timeout);
            st = guard;
        }
        st.inbound.drain(..).collect()
    }

    fn hello(&self) -> Frame {
        Frame::Hello {
            role: self.sh.role,
            site: self.sh.site,
        }
    }

    /// Ensures a connection to `site` exists, dialing its table address
    /// if necessary. Returns the connection, or `None` if unroutable.
    pub fn connect_site(&self, site: u16) -> Option<ConnId> {
        let (existing, addr) = {
            let st = self.lock();
            (
                st.site_conn.get(&site).copied(),
                st.site_addr.get(&site).cloned(),
            )
        };
        if let Some(conn) = existing {
            return Some(conn);
        }
        let addr = addr?;
        let parsed: SocketAddr = addr.parse().ok()?;
        let stream = TcpStream::connect_timeout(&parsed, Duration::from_millis(500)).ok()?;
        let conn = self.adopt(stream);
        {
            let mut st = self.lock();
            st.site_conn.insert(site, conn);
        }
        // Open with who we are; a serve frontend also shares the address
        // table so sites can dial each other.
        self.send_frame(conn, &self.hello());
        if self.sh.role == Role::Serve {
            let sites = self.site_addrs();
            self.send_frame(conn, &Frame::Peers { sites });
        }
        Some(conn)
    }

    /// Writes `frame` on `conn`; on failure the connection is torn down.
    /// Returns `false` on failure.
    pub fn send_frame(&self, conn: ConnId, frame: &Frame) -> bool {
        let writer = {
            let st = self.lock();
            st.writers.get(&conn).map(Arc::clone)
        };
        let Some(writer) = writer else { return false };
        let ok = {
            let mut stream = writer.lock();
            write_frame(&mut *stream, frame).is_ok()
        };
        if !ok {
            self.disconnect(conn);
        }
        ok
    }

    /// Routes one protocol envelope to its destination connection:
    /// requests go to `env.to`'s site connection (dialing if needed),
    /// responses go back where their request came from. Lost messages
    /// are counted, never reported — the sender's RPC timeout is the
    /// signal.
    pub fn route_envelope(&self, tag: u64, sql: &str, env: &Envelope) {
        let conn = match &env.payload {
            Payload::Response(_) => {
                let mut st = self.lock();
                st.reply_to.remove(&env.rpc)
            }
            Payload::Request(_) => match env.to {
                Site::Db(db) => self.connect_site(db.index() as u16),
                // Sites never send requests to the global frontend.
                Site::Global => None,
            },
        };
        let sent = match conn {
            Some(conn) => self.send_frame(
                conn,
                &Frame::Envelope {
                    tag,
                    sql: sql.to_string(),
                    env: env.clone(),
                },
            ),
            None => false,
        };
        let mut st = self.lock();
        if sent {
            st.forwarded += 1;
        } else {
            st.lost += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(id: u64) -> Frame {
        // Query frames pass through to the inbound queue (Hello and
        // Peers are consumed as bookkeeping).
        Frame::Query {
            id,
            sql: String::new(),
            strategy: String::new(),
        }
    }

    fn recv_one(hub: &Hub) -> Vec<Inbound> {
        for _ in 0..100 {
            let got = hub.wait_inbound(Duration::from_millis(100));
            if !got.is_empty() {
                return got;
            }
        }
        panic!("no inbound frame within 10s");
    }

    #[test]
    fn hello_registers_a_route_and_frames_flow_both_ways() {
        let server = Hub::new(Role::Site, Some(0));
        let addr = server.listen("127.0.0.1:0").unwrap();

        let client = Hub::new(Role::Site, Some(1));
        client.set_site_addrs(&[(0, addr.to_string())]);
        let conn = client.connect_site(0).expect("dial");
        assert!(client.send_frame(conn, &probe(7)));

        // The server saw the Hello (registering site 1) then the probe.
        let got = recv_one(&server);
        assert!(matches!(got[0].frame, Frame::Query { id: 7, .. }));
        // The server can answer over the inbound connection.
        let back = server.connect_site(1).expect("inbound route");
        assert!(server.send_frame(back, &probe(8)));
        let got = recv_one(&client);
        assert!(matches!(got[0].frame, Frame::Query { id: 8, .. }));
    }
}
