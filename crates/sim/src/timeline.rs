//! Execution timelines: a textual rendering of the paper's Figure 8.
//!
//! Figure 8 sketches the executing flows of CA, BL, and PL — which steps
//! run where, and what overlaps what. The ledger records every busy
//! interval with its start time, so a real execution can be rendered as a
//! per-site Gantt chart: one lane per component site, one for the global
//! site, one for the shared network link; each cell shows the phase that
//! was busy (`s` = shipping, `O`, `I`, `P`).

use crate::ledger::{Ledger, Phase};
use crate::time::SimTime;
use std::fmt::Write as _;

/// Width of the rendered time axis, in characters.
const WIDTH: usize = 72;

/// Renders the ledger as a per-site timeline.
///
/// `num_dbs` lanes for the component sites, then the global site (its CPU
/// work; it has no lane entries for network), then the shared link. Time
/// runs left to right over the horizon of the last interval; overlapping
/// charges in one lane (which cannot happen for well-formed executions)
/// show the later phase.
///
/// # Example
///
/// ```
/// use fedoq_object::DbId;
/// use fedoq_sim::{timeline, Phase, Simulation, Site, SystemParams};
///
/// let mut sim = Simulation::new(SystemParams::paper_default(), 2);
/// sim.disk(Site::Db(DbId::new(0)), 50, Phase::P);
/// let m = sim.send(Site::Db(DbId::new(0)), Site::Global, 20, Phase::I);
/// sim.recv(Site::Global, m);
/// let chart = timeline::render(sim.ledger(), 2);
/// assert!(chart.contains("DB0"));
/// assert!(chart.contains("net"));
/// ```
pub fn render(ledger: &Ledger, num_dbs: usize) -> String {
    let horizon = ledger
        .entries()
        .iter()
        .map(super::ledger::LedgerEntry::end)
        .fold(SimTime::ZERO, SimTime::max);
    let mut out = String::new();
    if horizon.as_micros() <= 0.0 {
        out.push_str("(empty timeline)\n");
        return out;
    }
    let scale = WIDTH as f64 / horizon.as_micros();

    let mut lanes: Vec<(String, Vec<char>)> = Vec::with_capacity(num_dbs + 2);
    for db in 0..num_dbs {
        lanes.push((format!("DB{db}"), vec![' '; WIDTH]));
    }
    lanes.push(("global".to_owned(), vec![' '; WIDTH]));
    lanes.push(("net".to_owned(), vec![' '; WIDTH]));

    for entry in ledger.entries() {
        let lane = match entry.site {
            Some(db) if db.index() < num_dbs => db.index(),
            Some(_) => continue, // foreign site: not in this chart
            None if entry.resource == crate::ledger::Resource::Net => num_dbs + 1,
            None => num_dbs, // the global site
        };
        let from = ((entry.start.as_micros() * scale) as usize).min(WIDTH - 1);
        let to = ((entry.end().as_micros() * scale).ceil() as usize).clamp(from + 1, WIDTH);
        let glyph = phase_glyph(entry.phase);
        for cell in &mut lanes[lane].1[from..to] {
            *cell = glyph;
        }
    }

    let _ = writeln!(
        out,
        "{:>8} 0 {:—<width$} {horizon}",
        "",
        "",
        width = WIDTH.saturating_sub(2)
    );
    for (label, cells) in lanes {
        let _ = writeln!(
            out,
            "{label:>8} |{}|",
            cells.into_iter().collect::<String>()
        );
    }
    out.push_str("          s = shipping base data, O = assistant lookup/check, I = integrate/certify, P = predicates\n");
    out
}

fn phase_glyph(phase: Phase) -> char {
    match phase {
        Phase::Ship => 's',
        Phase::O => 'O',
        Phase::I => 'I',
        Phase::P => 'P',
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SystemParams;
    use crate::sim::{Simulation, Site};
    use fedoq_object::DbId;

    #[test]
    fn empty_ledger_renders_placeholder() {
        let sim = Simulation::new(SystemParams::paper_default(), 1);
        assert!(render(sim.ledger(), 1).contains("empty timeline"));
    }

    #[test]
    fn lanes_show_phases_in_order() {
        let mut sim = Simulation::new(SystemParams::paper_default(), 2);
        let a = Site::Db(DbId::new(0));
        let b = Site::Db(DbId::new(1));
        sim.disk(a, 100, Phase::P);
        sim.cpu(b, 500, Phase::O);
        let m = sim.send(a, Site::Global, 50, Phase::I);
        sim.recv(Site::Global, m);
        sim.cpu(Site::Global, 400, Phase::I);
        let chart = render(sim.ledger(), 2);
        let lines: Vec<&str> = chart.lines().collect();
        // Lane order: DB0, DB1, global, net.
        assert!(lines[1].starts_with("     DB0"));
        assert!(lines[1].contains('P'));
        assert!(lines[2].starts_with("     DB1"));
        assert!(lines[2].contains('O'));
        assert!(lines[3].starts_with("  global"));
        assert!(lines[3].contains('I'));
        assert!(lines[4].starts_with("     net"));
        assert!(lines[4].contains('I'));
    }

    #[test]
    fn network_activity_lands_in_the_net_lane_only() {
        let mut sim = Simulation::new(SystemParams::paper_default(), 1);
        let m = sim.send(Site::Db(DbId::new(0)), Site::Global, 100, Phase::Ship);
        sim.recv(Site::Global, m);
        let chart = render(sim.ledger(), 1);
        let lines: Vec<&str> = chart.lines().collect();
        assert!(
            !lines[1].contains('s'),
            "DB0 lane must be idle: {}",
            lines[1]
        );
        assert!(lines[3].contains('s'), "net lane must show the transfer");
    }

    #[test]
    fn later_work_renders_further_right() {
        let mut sim = Simulation::new(SystemParams::paper_default(), 1);
        let a = Site::Db(DbId::new(0));
        sim.cpu(a, 2000, Phase::P); // 1000 µs
        sim.cpu(a, 2000, Phase::O); // next 1000 µs
        let chart = render(sim.ledger(), 1);
        let lane = chart.lines().nth(1).unwrap();
        let first_p = lane.find('P').unwrap();
        let first_o = lane.find('O').unwrap();
        assert!(first_p < first_o);
    }
}
