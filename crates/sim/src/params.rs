//! System parameters (the paper's Table 1).

/// The cost parameters of the simulated federation.
///
/// Defaults reproduce Table 1 of the paper exactly; fields are public
/// because this is passive configuration data that experiments sweep.
///
/// # Example
///
/// ```
/// use fedoq_sim::SystemParams;
///
/// let p = SystemParams::paper_default();
/// assert_eq!(p.attr_bytes, 32);
/// assert_eq!(p.disk_us_per_byte, 15.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemParams {
    /// `S_a` — average size of an attribute value, in bytes.
    pub attr_bytes: u64,
    /// `S_GOid` — size of a global object identifier, in bytes.
    pub goid_bytes: u64,
    /// `S_LOid` — size of a local object identifier, in bytes.
    pub loid_bytes: u64,
    /// `S_s` — size of an object signature, in bytes.
    pub signature_bytes: u64,
    /// `T_d` — average disk access time, in µs per byte.
    pub disk_us_per_byte: f64,
    /// `T_net` — average network transfer time, in µs per byte.
    pub net_us_per_byte: f64,
    /// `T_c` — average CPU processing time, in µs per comparison.
    pub cpu_us_per_cmp: f64,
    /// `N_iso` — average number of isomeric objects per replicated
    /// real-world entity.
    pub avg_isomeric: f64,
}

impl SystemParams {
    /// The exact Table-1 setting.
    pub fn paper_default() -> SystemParams {
        SystemParams {
            attr_bytes: 32,
            goid_bytes: 16,
            loid_bytes: 16,
            signature_bytes: 32,
            disk_us_per_byte: 15.0,
            net_us_per_byte: 8.0,
            cpu_us_per_cmp: 0.5,
            avg_isomeric: 2.0,
        }
    }

    /// Bytes occupied by one object projected on `attrs` attributes plus
    /// its LOid — the unit the strategies read from disk and ship.
    pub fn object_bytes(&self, attrs: usize) -> u64 {
        self.loid_bytes + attrs as u64 * self.attr_bytes
    }

    /// Bytes of one serialized predicate in a check-request message
    /// (a path reference plus a literal, each of average attribute size).
    pub fn predicate_bytes(&self) -> u64 {
        2 * self.attr_bytes
    }
}

impl Default for SystemParams {
    fn default() -> Self {
        SystemParams::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table_1() {
        let p = SystemParams::paper_default();
        assert_eq!(p.attr_bytes, 32);
        assert_eq!(p.goid_bytes, 16);
        assert_eq!(p.loid_bytes, 16);
        assert_eq!(p.signature_bytes, 32);
        assert_eq!(p.disk_us_per_byte, 15.0);
        assert_eq!(p.net_us_per_byte, 8.0);
        assert_eq!(p.cpu_us_per_cmp, 0.5);
        assert_eq!(p.avg_isomeric, 2.0);
        assert_eq!(p, SystemParams::default());
    }

    #[test]
    fn object_bytes_includes_loid() {
        let p = SystemParams::paper_default();
        assert_eq!(p.object_bytes(0), 16);
        assert_eq!(p.object_bytes(3), 16 + 96);
    }

    #[test]
    fn predicate_bytes_is_two_attrs() {
        assert_eq!(SystemParams::paper_default().predicate_bytes(), 64);
    }
}
