//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point (or span) of simulated time, in microseconds.
///
/// Simulated time is real-valued because Table 1's unit costs are
/// fractional (0.5 µs per comparison).
///
/// # Example
///
/// ```
/// use fedoq_sim::SimTime;
///
/// let t = SimTime::from_micros(1500.0) + SimTime::from_micros(500.0);
/// assert_eq!(t.as_micros(), 2000.0);
/// assert_eq!(t.to_string(), "2.000 ms");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from microseconds.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) on negative or non-finite input.
    pub fn from_micros(us: f64) -> SimTime {
        debug_assert!(
            us.is_finite() && us >= 0.0,
            "time must be finite and non-negative"
        );
        SimTime(us)
    }

    /// The time in microseconds.
    pub fn as_micros(self) -> f64 {
        self.0
    }

    /// The time in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 / 1e3
    }

    /// The time in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 / 1e6
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime((self.0 - rhs.0).max(0.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e6 {
            write!(f, "{:.3} s", self.as_secs())
        } else if self.0 >= 1e3 {
            write!(f, "{:.3} ms", self.as_millis())
        } else {
            write!(f, "{:.1} µs", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = SimTime::from_micros(100.0);
        let b = SimTime::from_micros(50.0);
        assert_eq!((a + b).as_micros(), 150.0);
        assert_eq!((a - b).as_micros(), 50.0);
        // Saturating subtraction.
        assert_eq!((b - a).as_micros(), 0.0);
        let mut c = a;
        c += b;
        assert_eq!(c.as_micros(), 150.0);
    }

    #[test]
    fn max_and_ordering() {
        let a = SimTime::from_micros(10.0);
        let b = SimTime::from_micros(20.0);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
        assert!(a < b);
        assert_eq!(SimTime::ZERO.as_micros(), 0.0);
    }

    #[test]
    fn unit_conversions() {
        let t = SimTime::from_micros(2_500_000.0);
        assert_eq!(t.as_millis(), 2500.0);
        assert_eq!(t.as_secs(), 2.5);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimTime::from_micros(12.25).to_string(), "12.2 µs");
        assert_eq!(SimTime::from_micros(2000.0).to_string(), "2.000 ms");
        assert_eq!(SimTime::from_micros(3_000_000.0).to_string(), "3.000 s");
    }
}
