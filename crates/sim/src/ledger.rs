//! The cost ledger: every charged interval of resource busy time.
//!
//! *Total execution time* is the sum of all ledger entries — the paper's
//! "total execution time" aggregates all the work the federation performs
//! regardless of overlap.

use crate::time::SimTime;
use fedoq_object::DbId;
use std::fmt;

/// The resource an interval of busy time belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// A site's processor.
    Cpu,
    /// A site's disk.
    Disk,
    /// The shared communication network.
    Net,
}

/// The processing phase a charge belongs to, following the paper's O/I/P
/// decomposition plus raw data shipping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Bulk retrieval and transfer of base data (CA's step C1).
    Ship,
    /// Phase O — looking up and checking assistant objects.
    O,
    /// Phase I — integrating / certifying results.
    I,
    /// Phase P — predicate evaluation.
    P,
}

impl Phase {
    /// All phases, in reporting order.
    pub const ALL: [Phase; 4] = [Phase::Ship, Phase::O, Phase::I, Phase::P];
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Ship => "ship",
            Phase::O => "O",
            Phase::I => "I",
            Phase::P => "P",
        };
        f.write_str(s)
    }
}

/// One charged interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LedgerEntry {
    /// The site doing the work; `None` for the shared network.
    pub site: Option<DbId>,
    /// Which resource was busy.
    pub resource: Resource,
    /// Which processing phase the work belongs to.
    pub phase: Phase,
    /// When the busy interval started.
    pub start: SimTime,
    /// How long the resource was busy.
    pub duration: SimTime,
}

impl LedgerEntry {
    /// When the busy interval ended.
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }
}

/// An append-only log of charges with cached aggregates.
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    entries: Vec<LedgerEntry>,
    total: SimTime,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Ledger {
        Ledger::default()
    }

    /// Records one charge starting at `start`.
    pub fn charge(
        &mut self,
        site: Option<DbId>,
        resource: Resource,
        phase: Phase,
        start: SimTime,
        duration: SimTime,
    ) {
        self.total += duration;
        self.entries.push(LedgerEntry {
            site,
            resource,
            phase,
            start,
            duration,
        });
    }

    /// The sum of all charges — the total execution time.
    pub fn total(&self) -> SimTime {
        self.total
    }

    /// Number of entries recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff nothing has been charged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries in charge order.
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// Total busy time of one resource.
    pub fn total_for_resource(&self, resource: Resource) -> SimTime {
        self.entries
            .iter()
            .filter(|e| e.resource == resource)
            .fold(SimTime::ZERO, |acc, e| acc + e.duration)
    }

    /// Total busy time within one phase.
    pub fn total_for_phase(&self, phase: Phase) -> SimTime {
        self.entries
            .iter()
            .filter(|e| e.phase == phase)
            .fold(SimTime::ZERO, |acc, e| acc + e.duration)
    }

    /// Total busy time of one site (its CPU and disk; not the network).
    pub fn total_for_site(&self, site: DbId) -> SimTime {
        self.entries
            .iter()
            .filter(|e| e.site == Some(site))
            .fold(SimTime::ZERO, |acc, e| acc + e.duration)
    }

    /// Total busy time of the global processing site (entries with no
    /// owning database that are not network transfers).
    pub fn total_for_global_site(&self) -> SimTime {
        self.entries
            .iter()
            .filter(|e| e.site.is_none() && e.resource != Resource::Net)
            .fold(SimTime::ZERO, |acc, e| acc + e.duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: f64) -> SimTime {
        SimTime::from_micros(v)
    }

    #[test]
    fn totals_accumulate() {
        let mut l = Ledger::new();
        assert!(l.is_empty());
        l.charge(
            Some(DbId::new(0)),
            Resource::Cpu,
            Phase::P,
            us(0.0),
            us(10.0),
        );
        l.charge(
            Some(DbId::new(0)),
            Resource::Disk,
            Phase::Ship,
            us(10.0),
            us(30.0),
        );
        l.charge(None, Resource::Net, Phase::Ship, us(40.0), us(5.0));
        assert_eq!(l.total().as_micros(), 45.0);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn per_resource_phase_site_breakdowns() {
        let mut l = Ledger::new();
        l.charge(
            Some(DbId::new(0)),
            Resource::Cpu,
            Phase::P,
            us(0.0),
            us(10.0),
        );
        l.charge(
            Some(DbId::new(1)),
            Resource::Cpu,
            Phase::O,
            us(0.0),
            us(20.0),
        );
        l.charge(None, Resource::Net, Phase::O, us(20.0), us(7.0));
        assert_eq!(l.total_for_resource(Resource::Cpu).as_micros(), 30.0);
        assert_eq!(l.total_for_resource(Resource::Net).as_micros(), 7.0);
        assert_eq!(l.total_for_phase(Phase::O).as_micros(), 27.0);
        assert_eq!(l.total_for_phase(Phase::I).as_micros(), 0.0);
        assert_eq!(l.total_for_site(DbId::new(1)).as_micros(), 20.0);
        assert_eq!(l.total_for_site(DbId::new(9)).as_micros(), 0.0);
        // Global-site time excludes network entries.
        l.charge(None, Resource::Cpu, Phase::I, us(30.0), us(4.0));
        assert_eq!(l.total_for_global_site().as_micros(), 4.0);
    }

    #[test]
    fn phase_display_and_all() {
        assert_eq!(Phase::ALL.len(), 4);
        assert_eq!(Phase::O.to_string(), "O");
        assert_eq!(Phase::Ship.to_string(), "ship");
    }
}
