//! The simulation engine: per-site clocks and the shared network link.
//!
//! Strategies execute for real over generated data and *narrate* their
//! work to the engine: CPU comparisons, disk bytes, and messages. The
//! engine composes per-site sequential clocks with message causality
//! (`recv` waits for the sender's transfer to arrive) and serializes all
//! transfers on one shared link, reproducing the paper's observation that
//! "the transfer time gets longer when more component databases transfer
//! data simultaneously".

use crate::ledger::{Ledger, Phase, Resource};
use crate::metrics::QueryMetrics;
use crate::params::SystemParams;
use crate::time::SimTime;
use fedoq_object::DbId;
use std::collections::HashMap;
use std::fmt;

/// How the communication medium arbitrates concurrent transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NetworkModel {
    /// One shared medium: every transfer serializes on a single link
    /// (the paper's "transfer time gets longer when more component
    /// databases transfer data simultaneously").
    #[default]
    SharedBus,
    /// A dedicated full-duplex link per ordered site pair: transfers
    /// between different pairs proceed in parallel.
    PointToPoint,
}

/// A processing site: one of the component databases, or the global
/// processing site that integrates and answers the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Site {
    /// A component database.
    Db(DbId),
    /// The global processing site.
    Global,
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Site::Db(db) => write!(f, "{db}"),
            Site::Global => f.write_str("global"),
        }
    }
}

/// Handle to an in-flight message; `recv` synchronizes on its arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use = "a message that is never received synchronizes nothing"]
pub struct MessageToken {
    arrival: SimTime,
    bytes: u64,
}

impl MessageToken {
    /// When the last byte reaches the receiver.
    pub fn arrival(self) -> SimTime {
        self.arrival
    }

    /// Message size in bytes.
    pub fn bytes(self) -> u64 {
        self.bytes
    }
}

/// The cost-accounting simulation of one query execution.
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct Simulation {
    params: SystemParams,
    network: NetworkModel,
    clocks: Vec<SimTime>,
    net_free: SimTime,
    link_free: HashMap<(usize, usize), SimTime>,
    ledger: Ledger,
    bytes_transferred: u64,
    comparisons: u64,
    disk_bytes: u64,
    messages: u64,
}

impl Simulation {
    /// Creates a simulation over `num_dbs` component sites plus the global
    /// site, all clocks at zero.
    pub fn new(params: SystemParams, num_dbs: usize) -> Simulation {
        Simulation::with_network(params, num_dbs, NetworkModel::SharedBus)
    }

    /// Creates a simulation with an explicit network arbitration model.
    pub fn with_network(params: SystemParams, num_dbs: usize, network: NetworkModel) -> Simulation {
        Simulation {
            params,
            network,
            clocks: vec![SimTime::ZERO; num_dbs + 1],
            net_free: SimTime::ZERO,
            link_free: HashMap::new(),
            ledger: Ledger::new(),
            bytes_transferred: 0,
            comparisons: 0,
            disk_bytes: 0,
            messages: 0,
        }
    }

    /// The network arbitration model in force.
    pub fn network(&self) -> NetworkModel {
        self.network
    }

    /// The cost parameters in force.
    pub fn params(&self) -> &SystemParams {
        &self.params
    }

    /// Number of component databases.
    pub fn num_dbs(&self) -> usize {
        self.clocks.len() - 1
    }

    fn index(&self, site: Site) -> usize {
        match site {
            Site::Db(db) => {
                assert!(db.index() < self.num_dbs(), "site {db} out of range");
                db.index()
            }
            Site::Global => self.clocks.len() - 1,
        }
    }

    fn ledger_site(site: Site) -> Option<DbId> {
        match site {
            Site::Db(db) => Some(db),
            Site::Global => None,
        }
    }

    /// The local clock of a site.
    pub fn now(&self, site: Site) -> SimTime {
        self.clocks[self.index(site)]
    }

    /// Charges `comparisons` CPU comparisons at `site` (advances its clock).
    pub fn cpu(&mut self, site: Site, comparisons: u64, phase: Phase) {
        if comparisons == 0 {
            return;
        }
        self.comparisons += comparisons;
        let dur = SimTime::from_micros(comparisons as f64 * self.params.cpu_us_per_cmp);
        let i = self.index(site);
        let start = self.clocks[i];
        self.clocks[i] += dur;
        self.ledger
            .charge(Self::ledger_site(site), Resource::Cpu, phase, start, dur);
    }

    /// Charges CPU work split across parallel workers at `site`.
    ///
    /// Each entry of `shares` is one worker's comparison count. Every
    /// share is charged to the ledger from the same start instant (the
    /// workers genuinely overlap, so *total* execution time counts all of
    /// the busy time), but the site clock — and therefore the response
    /// time — advances only by the largest share: the critical path of
    /// the fork/join. With a single share this is exactly [`cpu`].
    ///
    /// [`cpu`]: Simulation::cpu
    pub fn cpu_parallel(&mut self, site: Site, shares: &[u64], phase: Phase) {
        let total: u64 = shares.iter().sum();
        if total == 0 {
            return;
        }
        self.comparisons += total;
        let i = self.index(site);
        let start = self.clocks[i];
        let mut max_dur = SimTime::ZERO;
        for &share in shares {
            if share == 0 {
                continue;
            }
            let dur = SimTime::from_micros(share as f64 * self.params.cpu_us_per_cmp);
            max_dur = max_dur.max(dur);
            self.ledger
                .charge(Self::ledger_site(site), Resource::Cpu, phase, start, dur);
        }
        self.clocks[i] = start + max_dur;
    }

    /// Charges a disk read/write of `bytes` at `site` (advances its clock).
    pub fn disk(&mut self, site: Site, bytes: u64, phase: Phase) {
        if bytes == 0 {
            return;
        }
        self.disk_bytes += bytes;
        let dur = SimTime::from_micros(bytes as f64 * self.params.disk_us_per_byte);
        let i = self.index(site);
        let start = self.clocks[i];
        self.clocks[i] += dur;
        self.ledger
            .charge(Self::ledger_site(site), Resource::Disk, phase, start, dur);
    }

    /// Charges disk transfers split across parallel workers at `site`.
    ///
    /// The disk analogue of [`cpu_parallel`]: all shares are charged as
    /// overlapping busy time, the clock advances by the largest share.
    ///
    /// [`cpu_parallel`]: Simulation::cpu_parallel
    pub fn disk_parallel(&mut self, site: Site, shares: &[u64], phase: Phase) {
        let total: u64 = shares.iter().sum();
        if total == 0 {
            return;
        }
        self.disk_bytes += total;
        let i = self.index(site);
        let start = self.clocks[i];
        let mut max_dur = SimTime::ZERO;
        for &share in shares {
            if share == 0 {
                continue;
            }
            let dur = SimTime::from_micros(share as f64 * self.params.disk_us_per_byte);
            max_dur = max_dur.max(dur);
            self.ledger
                .charge(Self::ledger_site(site), Resource::Disk, phase, start, dur);
        }
        self.clocks[i] = start + max_dur;
    }

    /// Sends `bytes` from `from` to `to` over the shared link.
    ///
    /// The transfer starts no earlier than the sender's clock and no
    /// earlier than the link is free; the link is busy for the whole
    /// transfer (serializing concurrent senders). Sending does not block
    /// the sender. Zero-byte messages are pure synchronization and cost
    /// nothing.
    pub fn send(&mut self, from: Site, to: Site, bytes: u64, phase: Phase) -> MessageToken {
        let ready = self.now(from);
        if bytes == 0 {
            return MessageToken {
                arrival: ready,
                bytes: 0,
            };
        }
        self.bytes_transferred += bytes;
        self.messages += 1;
        let dur = SimTime::from_micros(bytes as f64 * self.params.net_us_per_byte);
        let start = match self.network {
            NetworkModel::SharedBus => {
                let start = ready.max(self.net_free);
                self.net_free = start + dur;
                start
            }
            NetworkModel::PointToPoint => {
                let key = (self.index(from), self.index(to));
                let free = self.link_free.entry(key).or_insert(SimTime::ZERO);
                let start = ready.max(*free);
                *free = start + dur;
                start
            }
        };
        let arrival = start + dur;
        self.ledger.charge(None, Resource::Net, phase, start, dur);
        MessageToken { arrival, bytes }
    }

    /// Sends a batch of messages that become ready concurrently, granting
    /// the link in sender-readiness order (fair FCFS arbitration rather
    /// than call order).
    pub fn send_batch(&mut self, sends: Vec<(Site, Site, u64, Phase)>) -> Vec<MessageToken> {
        let mut order: Vec<usize> = (0..sends.len()).collect();
        order.sort_by(|&a, &b| {
            self.now(sends[a].0)
                .partial_cmp(&self.now(sends[b].0))
                .expect("clocks are finite")
        });
        let mut tokens = vec![
            MessageToken {
                arrival: SimTime::ZERO,
                bytes: 0
            };
            sends.len()
        ];
        for i in order {
            let (from, to, bytes, phase) = sends[i];
            tokens[i] = self.send(from, to, bytes, phase);
        }
        tokens
    }

    /// Blocks `site` until `message` has arrived.
    pub fn recv(&mut self, site: Site, message: MessageToken) {
        let i = self.index(site);
        self.clocks[i] = self.clocks[i].max(message.arrival);
    }

    /// Blocks `site` until all of `messages` have arrived.
    pub fn recv_all<I: IntoIterator<Item = MessageToken>>(&mut self, site: Site, messages: I) {
        for m in messages {
            self.recv(site, m);
        }
    }

    /// The ledger of all charges so far.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Busy fraction of every resource over the response horizon: one
    /// entry per component site, then the global site, then the network.
    /// Empty horizon yields zeros. Diagnoses where a strategy's
    /// parallelism is lost (an idle site) or its bottleneck sits (a
    /// saturated link).
    pub fn utilization(&self) -> Vec<f64> {
        let horizon = self
            .clocks
            .iter()
            .copied()
            .fold(SimTime::ZERO, SimTime::max)
            .max(self.net_free)
            .as_micros();
        if horizon <= 0.0 {
            return vec![0.0; self.clocks.len() + 1];
        }
        let mut out = Vec::with_capacity(self.clocks.len() + 1);
        for db in 0..self.num_dbs() {
            out.push(self.ledger.total_for_site(DbId::new(db as u16)).as_micros() / horizon);
        }
        out.push(self.ledger.total_for_global_site().as_micros() / horizon);
        out.push(self.ledger.total_for_resource(Resource::Net).as_micros() / horizon);
        out
    }

    /// Snapshot of the aggregate metrics. Response time is the global
    /// site's clock — call after the strategy delivered its final answer
    /// there.
    pub fn metrics(&self) -> QueryMetrics {
        QueryMetrics {
            total_execution_us: self.ledger.total().as_micros(),
            response_us: self.now(Site::Global).as_micros(),
            bytes_transferred: self.bytes_transferred,
            comparisons: self.comparisons,
            disk_bytes: self.disk_bytes,
            messages: self.messages,
            phase_us: Phase::ALL.map(|p| self.ledger.total_for_phase(p).as_micros()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> Simulation {
        Simulation::new(SystemParams::paper_default(), 3)
    }

    #[test]
    fn cpu_and_disk_advance_the_site_clock() {
        let mut s = sim();
        let a = Site::Db(DbId::new(0));
        s.cpu(a, 10, Phase::P); // 5 µs
        s.disk(a, 10, Phase::P); // 150 µs
        assert_eq!(s.now(a).as_micros(), 155.0);
        assert_eq!(s.now(Site::Global).as_micros(), 0.0);
        assert_eq!(s.metrics().total_execution_us, 155.0);
    }

    #[test]
    fn zero_charges_are_free() {
        let mut s = sim();
        let a = Site::Db(DbId::new(0));
        s.cpu(a, 0, Phase::P);
        s.disk(a, 0, Phase::P);
        let m = s.send(a, Site::Global, 0, Phase::Ship);
        assert_eq!(m.bytes(), 0);
        assert_eq!(s.metrics().total_execution_us, 0.0);
        assert!(s.ledger().is_empty());
    }

    #[test]
    fn parallel_charges_count_all_work_but_advance_by_the_critical_path() {
        let mut s = sim();
        let a = Site::Db(DbId::new(0));
        // Three workers: 10, 30, 20 comparisons at 0.5 µs each.
        s.cpu_parallel(a, &[10, 30, 20], Phase::P);
        assert_eq!(s.now(a).as_micros(), 15.0); // max share only
        assert_eq!(s.metrics().total_execution_us, 30.0); // all busy time
        assert_eq!(s.metrics().comparisons, 60);
        // Disk analogue: 15 µs/byte at the defaults.
        s.disk_parallel(a, &[4, 2], Phase::P);
        assert_eq!(s.now(a).as_micros(), 15.0 + 60.0);
        assert_eq!(s.metrics().disk_bytes, 6);
    }

    #[test]
    fn single_share_parallel_equals_sequential() {
        let mut a = sim();
        let mut b = sim();
        let site = Site::Db(DbId::new(1));
        a.cpu(site, 42, Phase::O);
        a.disk(site, 17, Phase::I);
        b.cpu_parallel(site, &[42], Phase::O);
        b.disk_parallel(site, &[17], Phase::I);
        assert_eq!(a.now(site), b.now(site));
        assert_eq!(a.metrics(), b.metrics());
        // Zero and empty shares charge nothing.
        b.cpu_parallel(site, &[], Phase::P);
        b.cpu_parallel(site, &[0, 0], Phase::P);
        b.disk_parallel(site, &[0], Phase::P);
        assert_eq!(a.metrics(), b.metrics());
    }

    #[test]
    fn messages_respect_causality() {
        let mut s = sim();
        let a = Site::Db(DbId::new(0));
        s.disk(a, 100, Phase::Ship); // sender busy until 1500 µs
        let m = s.send(a, Site::Global, 10, Phase::Ship); // 80 µs transfer
        assert_eq!(m.arrival().as_micros(), 1580.0);
        s.recv(Site::Global, m);
        assert_eq!(s.now(Site::Global).as_micros(), 1580.0);
    }

    #[test]
    fn shared_link_serializes_concurrent_transfers() {
        let mut s = sim();
        let a = Site::Db(DbId::new(0));
        let b = Site::Db(DbId::new(1));
        // Both ready at t=0; 100 B each = 800 µs each on the wire.
        let ma = s.send(a, Site::Global, 100, Phase::Ship);
        let mb = s.send(b, Site::Global, 100, Phase::Ship);
        assert_eq!(ma.arrival().as_micros(), 800.0);
        assert_eq!(mb.arrival().as_micros(), 1600.0); // waited for the link
        s.recv_all(Site::Global, [ma, mb]);
        assert_eq!(s.now(Site::Global).as_micros(), 1600.0);
        // Total = both transfers' busy time.
        assert_eq!(s.metrics().total_execution_us, 1600.0);
    }

    #[test]
    fn point_to_point_links_carry_disjoint_pairs_in_parallel() {
        let mut s =
            Simulation::with_network(SystemParams::paper_default(), 4, NetworkModel::PointToPoint);
        assert_eq!(s.network(), NetworkModel::PointToPoint);
        let a = Site::Db(DbId::new(0));
        let b = Site::Db(DbId::new(1));
        // Different (from, to) pairs: both 800 µs transfers overlap fully.
        let ma = s.send(a, Site::Global, 100, Phase::Ship);
        let mb = s.send(b, Site::Global, 100, Phase::Ship);
        assert_eq!(ma.arrival().as_micros(), 800.0);
        assert_eq!(mb.arrival().as_micros(), 800.0);
        // The same pair still serializes.
        let ma2 = s.send(a, Site::Global, 100, Phase::Ship);
        assert_eq!(ma2.arrival().as_micros(), 1600.0);
        s.recv_all(Site::Global, [ma, mb, ma2]);
        // Total still counts every transfer's busy time.
        assert_eq!(s.metrics().total_execution_us, 2400.0);
        assert_eq!(s.metrics().response_us, 1600.0);
    }

    #[test]
    fn shared_bus_is_the_default_model() {
        let s = Simulation::new(SystemParams::paper_default(), 1);
        assert_eq!(s.network(), NetworkModel::SharedBus);
        assert_eq!(NetworkModel::default(), NetworkModel::SharedBus);
    }

    #[test]
    fn send_batch_grants_link_by_readiness() {
        let mut s = sim();
        let a = Site::Db(DbId::new(0));
        let b = Site::Db(DbId::new(1));
        s.cpu(b, 100, Phase::P); // b ready at 50 µs
        s.cpu(a, 10, Phase::P); // a ready at 5 µs
                                // Issue b's send first in call order; readiness order must win.
        let tokens = s.send_batch(vec![
            (b, Site::Global, 10, Phase::Ship),
            (a, Site::Global, 10, Phase::Ship),
        ]);
        // a: starts 5, 80 µs -> 85. b: ready 50, link free at 85 -> 165.
        assert_eq!(tokens[1].arrival().as_micros(), 85.0);
        assert_eq!(tokens[0].arrival().as_micros(), 165.0);
    }

    #[test]
    fn parallel_sites_overlap_in_response_but_not_total() {
        let mut s = sim();
        let a = Site::Db(DbId::new(0));
        let b = Site::Db(DbId::new(1));
        s.disk(a, 100, Phase::P); // 1500 µs
        s.disk(b, 100, Phase::P); // 1500 µs in parallel
        let ma = s.send(a, Site::Global, 1, Phase::Ship);
        let mb = s.send(b, Site::Global, 1, Phase::Ship);
        s.recv_all(Site::Global, [ma, mb]);
        let m = s.metrics();
        // Total counts both disks; response only the overlap + transfers.
        assert_eq!(m.total_execution_us, 3016.0);
        assert_eq!(m.response_us, 1516.0);
    }

    #[test]
    fn utilization_reports_busy_fractions() {
        let mut s = sim();
        let a = Site::Db(DbId::new(0));
        s.disk(a, 100, Phase::P); // 1500 µs busy, horizon 1500
        let util = s.utilization();
        assert_eq!(util.len(), 5); // 3 dbs + global + net
        assert!((util[0] - 1.0).abs() < 1e-9);
        assert_eq!(util[1], 0.0);
        assert_eq!(util[4], 0.0);
        // An idle simulation reports zeros.
        let idle = sim();
        assert!(idle.utilization().iter().all(|&u| u == 0.0));
    }

    #[test]
    fn metrics_track_counts() {
        let mut s = sim();
        let a = Site::Db(DbId::new(0));
        s.cpu(a, 7, Phase::O);
        s.disk(a, 11, Phase::O);
        let m1 = s.send(a, Site::Global, 13, Phase::O);
        s.recv(Site::Global, m1);
        let m = s.metrics();
        assert_eq!(m.comparisons, 7);
        assert_eq!(m.disk_bytes, 11);
        assert_eq!(m.bytes_transferred, 13);
        assert_eq!(m.messages, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_site_panics() {
        let s = sim();
        let _ = s.now(Site::Db(DbId::new(9)));
    }

    #[test]
    fn site_display() {
        assert_eq!(Site::Db(DbId::new(2)).to_string(), "DB2");
        assert_eq!(Site::Global.to_string(), "global");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// One random step of a simulated execution.
        #[derive(Debug, Clone)]
        enum Step {
            Cpu(u8, u16),
            Disk(u8, u16),
            Send(u8, u16),
        }

        fn arb_step(num_dbs: u8) -> impl Strategy<Value = Step> {
            prop_oneof![
                (0..num_dbs, any::<u16>()).prop_map(|(s, n)| Step::Cpu(s, n)),
                (0..num_dbs, any::<u16>()).prop_map(|(s, n)| Step::Disk(s, n)),
                (0..num_dbs, any::<u16>()).prop_map(|(s, n)| Step::Send(s, n)),
            ]
        }

        proptest! {
            /// Whatever the execution does, if the global site receives
            /// every message, response time never exceeds total execution
            /// time, and totals equal the ledger sum.
            #[test]
            fn response_bounded_by_total(steps in proptest::collection::vec(arb_step(3), 0..40)) {
                let mut s = Simulation::new(SystemParams::paper_default(), 3);
                let mut tokens = Vec::new();
                for step in steps {
                    match step {
                        Step::Cpu(db, n) => s.cpu(Site::Db(DbId::new(db as u16)), n as u64, Phase::P),
                        Step::Disk(db, n) => s.disk(Site::Db(DbId::new(db as u16)), n as u64, Phase::P),
                        Step::Send(db, n) => {
                            tokens.push(s.send(Site::Db(DbId::new(db as u16)), Site::Global, n as u64, Phase::O));
                        }
                    }
                }
                s.recv_all(Site::Global, tokens);
                let m = s.metrics();
                prop_assert!(m.total_execution_us + 1e-9 >= m.response_us);
                prop_assert!((m.total_execution_us - s.ledger().total().as_micros()).abs() < 1e-6);
                let phase_sum: f64 = m.phase_us.iter().sum();
                prop_assert!((phase_sum - m.total_execution_us).abs() < 1e-6);
            }

            /// The shared link never overlaps transfers and never goes
            /// backwards in time.
            #[test]
            fn link_serializes(sizes in proptest::collection::vec(1u64..500, 1..20)) {
                let mut s = Simulation::new(SystemParams::paper_default(), 2);
                for (i, bytes) in sizes.iter().enumerate() {
                    let from = Site::Db(DbId::new((i % 2) as u16));
                    let _ = s.send(from, Site::Global, *bytes, Phase::Ship);
                }
                let mut last_end = 0.0f64;
                for e in s.ledger().entries() {
                    if e.resource == Resource::Net {
                        prop_assert!(e.start.as_micros() + 1e-9 >= last_end);
                        last_end = e.end().as_micros();
                    }
                }
            }

            /// Clocks are monotone: charging work never rewinds a site.
            #[test]
            fn clocks_are_monotone(steps in proptest::collection::vec(arb_step(2), 1..30)) {
                let mut s = Simulation::new(SystemParams::paper_default(), 2);
                let mut last = [0.0f64; 3];
                for step in steps {
                    match step {
                        Step::Cpu(db, n) => s.cpu(Site::Db(DbId::new(db as u16)), n as u64, Phase::P),
                        Step::Disk(db, n) => s.disk(Site::Db(DbId::new(db as u16)), n as u64, Phase::I),
                        Step::Send(db, n) => {
                            let t = s.send(Site::Db(DbId::new(db as u16)), Site::Global, n as u64, Phase::O);
                            s.recv(Site::Global, t);
                        }
                    }
                    for (i, site) in [Site::Db(DbId::new(0)), Site::Db(DbId::new(1)), Site::Global]
                        .into_iter()
                        .enumerate()
                    {
                        let now = s.now(site).as_micros();
                        prop_assert!(now + 1e-9 >= last[i]);
                        last[i] = now;
                    }
                }
            }
        }
    }
}
