//! Aggregate metrics of one simulated query execution.

use crate::ledger::Phase;
use std::fmt;

/// The measures the paper reports, plus supporting counters.
///
/// Fields are public: this is a passive result record consumed by the
/// experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QueryMetrics {
    /// Total execution time (µs): sum of all resource busy time.
    pub total_execution_us: f64,
    /// Response time (µs): completion time at the global site.
    pub response_us: f64,
    /// Bytes moved over the network.
    pub bytes_transferred: u64,
    /// CPU comparisons performed.
    pub comparisons: u64,
    /// Bytes read from disks.
    pub disk_bytes: u64,
    /// Messages sent.
    pub messages: u64,
    /// Busy time per phase (indexed like [`Phase::ALL`]).
    pub phase_us: [f64; 4],
}

impl QueryMetrics {
    /// Busy time charged to one phase, in µs.
    pub fn phase_us(&self, phase: Phase) -> f64 {
        let idx = Phase::ALL
            .iter()
            .position(|p| *p == phase)
            .expect("phase in ALL");
        self.phase_us[idx]
    }

    /// Element-wise sum, for accumulating over samples.
    pub fn add(&self, other: &QueryMetrics) -> QueryMetrics {
        let mut phase_us = self.phase_us;
        for (a, b) in phase_us.iter_mut().zip(other.phase_us) {
            *a += b;
        }
        QueryMetrics {
            total_execution_us: self.total_execution_us + other.total_execution_us,
            response_us: self.response_us + other.response_us,
            bytes_transferred: self.bytes_transferred + other.bytes_transferred,
            comparisons: self.comparisons + other.comparisons,
            disk_bytes: self.disk_bytes + other.disk_bytes,
            messages: self.messages + other.messages,
            phase_us,
        }
    }

    /// Divides the time-valued fields by `n` (integer counters are averaged
    /// too, rounding down), for averaging over samples.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn scale_down(&self, n: u64) -> QueryMetrics {
        assert!(n > 0, "cannot average over zero samples");
        QueryMetrics {
            total_execution_us: self.total_execution_us / n as f64,
            response_us: self.response_us / n as f64,
            bytes_transferred: self.bytes_transferred / n,
            comparisons: self.comparisons / n,
            disk_bytes: self.disk_bytes / n,
            messages: self.messages / n,
            phase_us: self.phase_us.map(|v| v / n as f64),
        }
    }
}

impl fmt::Display for QueryMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {:.1} ms, response {:.1} ms, {} B net, {} B disk, {} cmp",
            self.total_execution_us / 1e3,
            self.response_us / 1e3,
            self.bytes_transferred,
            self.disk_bytes,
            self.comparisons
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QueryMetrics {
        QueryMetrics {
            total_execution_us: 100.0,
            response_us: 60.0,
            bytes_transferred: 10,
            comparisons: 5,
            disk_bytes: 20,
            messages: 2,
            phase_us: [40.0, 30.0, 20.0, 10.0],
        }
    }

    #[test]
    fn add_then_scale_down_averages() {
        let avg = sample().add(&sample()).scale_down(2);
        assert_eq!(avg, sample());
    }

    #[test]
    fn phase_lookup() {
        let m = sample();
        assert_eq!(m.phase_us(Phase::Ship), 40.0);
        assert_eq!(m.phase_us(Phase::O), 30.0);
        assert_eq!(m.phase_us(Phase::I), 20.0);
        assert_eq!(m.phase_us(Phase::P), 10.0);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn scale_down_by_zero_panics() {
        let _ = sample().scale_down(0);
    }

    #[test]
    fn display_is_compact() {
        let s = sample().to_string();
        assert!(s.contains("total 0.1 ms"));
        assert!(s.contains("5 cmp"));
    }
}
