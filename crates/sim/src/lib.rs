//! Distributed-simulation substrate for FedOQ.
//!
//! The paper evaluates its strategies with a simulation: each component
//! DBMS has a processor and a disk, the sites share a communication
//! network, and every unit of work is charged with the Table-1 parameters
//! (`T_d` µs per disk byte, `T_net` µs per network byte, `T_c` µs per
//! comparison). Two measures are reported:
//!
//! * **total execution time** — the sum of all resource busy time across
//!   all sites and the network (what the whole federation spends);
//! * **response time** — the completion time at the global processing
//!   site, accounting for inter-site parallelism and network contention
//!   (what the user waits).
//!
//! [`Simulation`] tracks per-site clocks and a shared, serializing network
//! link; strategies call [`Simulation::cpu`], [`Simulation::disk`], and
//! [`Simulation::send`]/[`Simulation::recv`] as they execute over real
//! data, so the charged cost reflects the work actually done.
//!
//! # Example
//!
//! ```
//! use fedoq_object::DbId;
//! use fedoq_sim::{Phase, Simulation, Site, SystemParams};
//!
//! let mut sim = Simulation::new(SystemParams::paper_default(), 2);
//! let db0 = Site::Db(DbId::new(0));
//! sim.disk(db0, 100, Phase::Ship);              // read 100 bytes
//! let msg = sim.send(db0, Site::Global, 100, Phase::Ship);
//! sim.recv(Site::Global, msg);
//! let m = sim.metrics();
//! // 100 B * 15 µs/B disk + 100 B * 8 µs/B net
//! assert_eq!(m.total_execution_us, 2300.0);
//! assert_eq!(m.response_us, 2300.0);            // strictly sequential here
//! ```

pub mod ledger;
pub mod metrics;
pub mod params;
pub mod sim;
pub mod time;
pub mod timeline;

pub use ledger::{Ledger, LedgerEntry, Phase, Resource};
pub use metrics::QueryMetrics;
pub use params::SystemParams;
pub use sim::{MessageToken, NetworkModel, Simulation, Site};
pub use time::SimTime;
