//! RPC over the router: per-request timeouts and bounded retry.
//!
//! [`call`] sends a request, waits up to the configured timeout for its
//! response, and on silence retries after an exponentially growing
//! backoff. Each attempt registers a *fresh* correlation id, so a reply
//! to an abandoned attempt is discarded as stale rather than confused
//! with the retry's. When the retry budget is exhausted the callee is
//! declared [`RpcError::Unreachable`]; what that means is the caller's
//! decision — the global actor degrades localized answers, while CA has
//! to give up.

use crate::msg::{Envelope, Payload, Request, Response};
use crate::router::Net;
use crate::rt;
use fedoq_sim::{Phase, Site};
use std::fmt;

/// Timeout/retry policy for one RPC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RpcConfig {
    /// How long one attempt waits for a response (virtual µs), before
    /// the size-dependent allowance.
    pub timeout_us: f64,
    /// Extra patience per request byte (virtual µs). Large batches take
    /// proportionally long to transfer — at the paper's 8 µs/B in each
    /// direction — so a fixed timeout would declare any site serving a
    /// big request dead. The default covers a round trip at the paper
    /// rate with >2× headroom.
    pub per_byte_us: f64,
    /// Retries after the first attempt (total attempts = `retries + 1`).
    pub retries: u32,
    /// Backoff before the first retry (virtual µs).
    pub backoff_us: f64,
    /// Multiplier applied to the backoff after every retry.
    pub backoff_factor: f64,
}

impl Default for RpcConfig {
    fn default() -> Self {
        RpcConfig {
            timeout_us: 20_000.0,
            per_byte_us: 40.0,
            retries: 3,
            backoff_us: 5_000.0,
            backoff_factor: 2.0,
        }
    }
}

impl RpcConfig {
    /// The same policy with timeout and backoff scaled by `factor`.
    ///
    /// Outer RPCs whose handlers issue nested RPCs (a `LocalEval` fans out
    /// `AssistantLookup`s) need a window wide enough for the *inner* retry
    /// schedule to run to completion, otherwise the outer timeout fires
    /// while the callee is still patiently retrying.
    pub fn scaled(self, factor: f64) -> RpcConfig {
        RpcConfig {
            timeout_us: self.timeout_us * factor,
            backoff_us: self.backoff_us * factor,
            ..self
        }
    }
}

/// Why an RPC failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcError {
    /// No response within the retry budget.
    Unreachable {
        /// The silent callee.
        to: Site,
        /// Attempts made before giving up.
        attempts: u32,
    },
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Unreachable { to, attempts } => {
                write!(f, "{to} unreachable after {attempts} attempt(s)")
            }
        }
    }
}

impl std::error::Error for RpcError {}

/// Sends `request` from `from` to `to` and waits for its response,
/// retrying with exponential backoff on timeout.
pub async fn call(
    net: &Net<'_>,
    from: Site,
    to: Site,
    request: Request,
    bytes: u64,
    phase: Phase,
    cfg: RpcConfig,
) -> Result<Response, RpcError> {
    let attempts = cfg.retries + 1;
    let mut backoff_us = cfg.backoff_us;
    for attempt in 0..attempts {
        if attempt > 0 {
            net.note_retry();
            net.rt().sleep(backoff_us).await;
            backoff_us *= cfg.backoff_factor;
        }
        let (id, response) = net.register_rpc();
        net.send(Envelope {
            from,
            to,
            rpc: id,
            bytes,
            phase,
            payload: Payload::Request(request.clone()),
        });
        let window_us = cfg.timeout_us + bytes as f64 * cfg.per_byte_us;
        match rt::timeout(net.rt(), window_us, response).await {
            Some(response) => return Ok(response),
            None => net.cancel_rpc(id),
        }
    }
    Err(RpcError::Unreachable { to, attempts })
}
