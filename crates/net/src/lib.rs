//! FedOQ distributed runtime: every component database as a site actor.
//!
//! The in-process strategies in `fedoq-core` execute a query as one
//! straight-line program narrating its messaging to a cost model. This
//! crate runs the *same computation* the way the paper describes the
//! system — as independent sites exchanging typed messages:
//!
//! * [`rt`] — a deterministic single-threaded async executor with a
//!   virtual clock: tasks interleave in FIFO order and time jumps to the
//!   next timer, so a run is a pure function of its inputs and seed;
//! * [`msg`] — the typed protocol (`Certify`, `LocalEval`,
//!   `AssistantLookup`, `ShipObjects`) with per-message wire sizes;
//! * [`transport`] — message fate: [`transport::LocalTransport`] delivers
//!   instantly, [`transport::SimTransport`] adds per-link latency and
//!   seeded fault injection (drops, site crashes, partitions, heals)
//!   while charging every delivery to the `fedoq-sim` ledger;
//! * [`router`] — mailboxes and RPC correlation on top of a transport;
//! * [`rpc`] — per-request timeouts and bounded exponential-backoff
//!   retry;
//! * [`actor`] — the site and global event loops, built from
//!   [`fedoq_core::handlers`];
//! * [`exec`] — [`DistributedExecutor`], the one-call entry point.
//!
//! Under a healthy network the distributed answers are bit-identical to
//! the sync strategies (`tests/distributed_differential.rs`). Under
//! faults, localized strategies degrade gracefully: unreachable
//! assistants leave affected rows as *maybe* results tagged
//! [`fedoq_core::Provenance::Degraded`], while CA — which cannot start
//! without every extent — fails with
//! [`fedoq_core::ExecError::Unreachable`].
//!
//! # Example
//!
//! ```
//! use fedoq_core::Federation;
//! use fedoq_net::{DistributedExecutor, DistributedStrategy};
//! use fedoq_object::{DbId, Value};
//! use fedoq_schema::Correspondences;
//! use fedoq_store::{AttrType, ClassDef, ComponentDb, ComponentSchema};
//!
//! let s0 = ComponentSchema::new(vec![ClassDef::new("Student")
//!     .attr("s-no", AttrType::int()).attr("age", AttrType::int()).key(["s-no"])])?;
//! let s1 = ComponentSchema::new(vec![ClassDef::new("Student")
//!     .attr("s-no", AttrType::int()).key(["s-no"])])?;
//! let mut db0 = ComponentDb::new(DbId::new(0), "DB0", s0);
//! let mut db1 = ComponentDb::new(DbId::new(1), "DB1", s1);
//! db0.insert_named("Student", &[("s-no", Value::Int(1)), ("age", Value::Int(31))])?;
//! db1.insert_named("Student", &[("s-no", Value::Int(1))])?;
//! db1.insert_named("Student", &[("s-no", Value::Int(2))])?;
//!
//! let fed = Federation::new(vec![db0, db1], &Correspondences::new())?;
//! let query = fed.parse_and_bind("SELECT X.s-no FROM Student X WHERE X.age >= 30")?;
//! let outcome = DistributedExecutor::new()
//!     .run_local(&fed, &query, DistributedStrategy::bl())?;
//! assert_eq!(outcome.answer.certain().len(), 1);
//! assert_eq!(outcome.answer.maybe().len(), 1);
//! assert!(outcome.degraded_sites.is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// Library code must surface errors as values, never panic on them:
// test modules, which may unwrap freely, are exempt via cfg_attr.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod actor;
pub mod exec;
pub mod msg;
pub mod router;
pub mod rpc;
pub mod rt;
pub mod transport;

pub use actor::SiteSchedule;
pub use exec::{
    AdaptiveDistributedOutcome, DistributedExecutor, DistributedOutcome, DistributedStrategy,
};
pub use rpc::{RpcConfig, RpcError};
pub use rt::{IdleStep, Runtime};
pub use transport::{FaultEvent, LocalTransport, SimTransport, Transport};
