//! Message transports: zero-overhead local delivery and a seeded
//! fault-injectable simulated network.
//!
//! A [`Transport`] decides the *fate* of each envelope — deliver after
//! some virtual-time delay, or drop it. Everything else (mailboxes, RPC
//! correlation, retries) lives above the transport, so the same actor code
//! runs unchanged over [`LocalTransport`] (every message arrives
//! instantly) and [`SimTransport`] (per-link latency, seeded drops, site
//! crashes, and partitions, with every delivered byte charged to the
//! `fedoq-sim` ledger).
//!
//! Fault injection is deterministic: the drop decisions consume a seeded
//! PRNG in dispatch order, and dispatch order is itself deterministic
//! under the FIFO executor, so one seed reproduces one execution exactly.

use crate::msg::Envelope;
use fedoq_object::DbId;
use fedoq_sim::{Simulation, Site};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

/// Decides the fate of messages between sites.
pub trait Transport {
    /// Human-readable transport name (shell `:transport`).
    fn name(&self) -> &'static str;

    /// Decides the fate of `env` at virtual time `now_us`: the delivery
    /// delay in virtual microseconds, or `None` to drop the message.
    fn dispatch(&mut self, env: &Envelope, now_us: f64) -> Option<f64>;

    /// Intercepts `env` for out-of-process delivery. A transport that
    /// moves envelopes to another OS process (e.g. `fedoq-wire`'s TCP
    /// transport) returns `true` after taking ownership of the send: the
    /// router must not deliver the envelope to a local mailbox, and any
    /// reply arrives later through [`crate::router::Net::inject`]. A
    /// send that fails on the wire still returns `true` — the message is
    /// simply lost, and the sender's RPC timeout is the only signal,
    /// exactly like a dropped datagram. The in-process transports never
    /// forward.
    fn forward(&mut self, env: &Envelope, now_us: f64) -> bool {
        let _ = (env, now_us);
        false
    }

    /// `(delivered, dropped)` message counts so far.
    fn stats(&self) -> (u64, u64) {
        (0, 0)
    }
}

/// In-process transport: every message is delivered instantly and nothing
/// is ever dropped. The distributed executor over this transport computes
/// exactly what the in-process strategies compute.
#[derive(Debug, Default)]
pub struct LocalTransport {
    delivered: u64,
}

impl LocalTransport {
    /// A fresh local transport.
    pub fn new() -> LocalTransport {
        LocalTransport::default()
    }
}

impl Transport for LocalTransport {
    fn name(&self) -> &'static str {
        "local"
    }

    fn dispatch(&mut self, _env: &Envelope, _now_us: f64) -> Option<f64> {
        self.delivered += 1;
        Some(0.0)
    }

    fn stats(&self) -> (u64, u64) {
        (self.delivered, 0)
    }
}

/// A scheduled or immediate change to the simulated network's health.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// The site stops sending and receiving (it becomes unreachable; its
    /// in-process state survives, modelling a network-level crash).
    Crash(Site),
    /// The site rejoins the network.
    Restart(Site),
    /// Messages between the two sites are dropped (both directions).
    Partition(Site, Site),
    /// All partitions are removed, all crashed sites rejoin, and all
    /// slowdowns are lifted.
    Heal,
    /// Every message is now dropped with this probability.
    SetDropRate(f64),
    /// The site straggles: every message it sends or receives takes this
    /// many times the normal latency (a factor `< 1` is clamped to 1; a
    /// second `Slow` on the same site replaces the first). Messages still
    /// arrive — this models a congested or overloaded site, the replan
    /// trigger, where `Crash` models an unreachable one.
    Slow(Site, f64),
}

/// Orders a site pair so partitions are direction-independent.
fn pair_key(a: Site, b: Site) -> (u32, u32) {
    fn key(s: Site) -> u32 {
        match s {
            Site::Db(db) => db.index() as u32,
            Site::Global => u32::MAX,
        }
    }
    let (ka, kb) = (key(a), key(b));
    (ka.min(kb), ka.max(kb))
}

/// The current health of the simulated network.
#[derive(Debug, Default)]
struct FaultState {
    drop_rate: f64,
    crashed: HashSet<Site>,
    partitions: HashSet<(u32, u32)>,
    slow: HashMap<Site, f64>,
}

impl FaultState {
    fn apply(&mut self, event: FaultEvent) {
        match event {
            FaultEvent::Crash(site) => {
                self.crashed.insert(site);
            }
            FaultEvent::Restart(site) => {
                self.crashed.remove(&site);
            }
            FaultEvent::Partition(a, b) => {
                self.partitions.insert(pair_key(a, b));
            }
            FaultEvent::Heal => {
                self.crashed.clear();
                self.partitions.clear();
                self.slow.clear();
            }
            FaultEvent::SetDropRate(p) => {
                self.drop_rate = p.clamp(0.0, 1.0);
            }
            FaultEvent::Slow(site, factor) => {
                self.slow.insert(site, factor.max(1.0));
            }
        }
    }

    fn blocks(&self, from: Site, to: Site) -> bool {
        self.crashed.contains(&from)
            || self.crashed.contains(&to)
            || self.partitions.contains(&pair_key(from, to))
    }

    /// The latency multiplier for a message between `from` and `to`: the
    /// worst slowdown of either endpoint (1 when both are healthy).
    fn slow_factor(&self, from: Site, to: Site) -> f64 {
        let f = self.slow.get(&from).copied().unwrap_or(1.0);
        let t = self.slow.get(&to).copied().unwrap_or(1.0);
        f.max(t)
    }
}

/// Simulated network with seeded deterministic fault injection.
///
/// Delivered messages are charged to the wrapped [`Simulation`]'s ledger
/// (`Resource::Net`, the envelope's phase) and delayed by a per-link
/// latency plus the transfer time of their bytes. Faults can be set up
/// front ([`SimTransport::inject`]) or scheduled at a virtual time
/// ([`SimTransport::inject_at`]) to strike mid-query.
pub struct SimTransport {
    sim: Rc<RefCell<Simulation>>,
    rng: SmallRng,
    state: FaultState,
    /// Scheduled events, ascending by time; applied as time passes.
    schedule: Vec<(f64, FaultEvent)>,
    latency_us: f64,
    jitter_us: f64,
    delivered: u64,
    dropped: u64,
}

impl SimTransport {
    /// Default per-link latency, in virtual microseconds.
    pub const DEFAULT_LATENCY_US: f64 = 50.0;

    /// A healthy simulated network over `sim`, seeded for reproducible
    /// fault decisions.
    pub fn new(sim: Rc<RefCell<Simulation>>, seed: u64) -> SimTransport {
        SimTransport {
            sim,
            rng: SmallRng::seed_from_u64(seed),
            state: FaultState::default(),
            schedule: Vec::new(),
            latency_us: Self::DEFAULT_LATENCY_US,
            jitter_us: 0.0,
            delivered: 0,
            dropped: 0,
        }
    }

    /// Sets the fixed per-link latency (chainable).
    pub fn with_latency_us(mut self, latency_us: f64) -> SimTransport {
        self.latency_us = latency_us.max(0.0);
        self
    }

    /// Adds uniform random extra latency in `[0, jitter_us)` (chainable).
    pub fn with_jitter_us(mut self, jitter_us: f64) -> SimTransport {
        self.jitter_us = jitter_us.max(0.0);
        self
    }

    /// Drops every message with probability `p` (chainable).
    pub fn with_drop_rate(mut self, p: f64) -> SimTransport {
        self.state.apply(FaultEvent::SetDropRate(p));
        self
    }

    /// Applies a fault event immediately.
    pub fn inject(&mut self, event: FaultEvent) {
        self.state.apply(event);
    }

    /// Schedules a fault event to strike at virtual time `at_us`.
    pub fn inject_at(&mut self, at_us: f64, event: FaultEvent) {
        self.schedule.push((at_us, event));
        self.schedule.sort_by(|a, b| a.0.total_cmp(&b.0));
    }

    /// The current per-message drop probability.
    pub fn drop_rate(&self) -> f64 {
        self.state.drop_rate
    }

    /// The fixed per-link latency in virtual microseconds.
    pub fn latency_us(&self) -> f64 {
        self.latency_us
    }

    /// Sites currently crashed (unreachable).
    pub fn crashed_sites(&self) -> Vec<DbId> {
        let mut out: Vec<DbId> = self
            .state
            .crashed
            .iter()
            .filter_map(|s| match s {
                Site::Db(db) => Some(*db),
                Site::Global => None,
            })
            .collect();
        out.sort();
        out
    }

    /// Number of partitioned site pairs.
    pub fn partition_count(&self) -> usize {
        self.state.partitions.len()
    }

    fn apply_due(&mut self, now_us: f64) {
        while let Some(&(at, event)) = self.schedule.first() {
            if at > now_us {
                break;
            }
            self.state.apply(event);
            self.schedule.remove(0);
        }
    }
}

impl Transport for SimTransport {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn dispatch(&mut self, env: &Envelope, now_us: f64) -> Option<f64> {
        self.apply_due(now_us);
        // A site always reaches itself (the client is colocated with the
        // global actor); everything else is subject to faults.
        if env.from != env.to {
            if self.state.blocks(env.from, env.to) {
                self.dropped += 1;
                return None;
            }
            if self.state.drop_rate > 0.0 && self.rng.gen_bool(self.state.drop_rate) {
                self.dropped += 1;
                return None;
            }
        }
        self.delivered += 1;
        let (wire_us, transfer_us) = {
            let mut sim = self.sim.borrow_mut();
            let token = sim.send(env.from, env.to, env.bytes, env.phase);
            sim.recv(env.to, token);
            let transfer = env.bytes as f64 * sim.params().net_us_per_byte;
            (token.arrival().as_micros(), transfer)
        };
        let _ = wire_us; // sim clocks and virtual time are separate domains
        let jitter = if self.jitter_us > 0.0 {
            self.rng.gen_range(0.0..self.jitter_us)
        } else {
            0.0
        };
        let slow = if env.from != env.to {
            self.state.slow_factor(env.from, env.to)
        } else {
            1.0
        };
        Some((self.latency_us + transfer_us) * slow + jitter)
    }

    fn stats(&self) -> (u64, u64) {
        (self.delivered, self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedoq_sim::{Phase, SystemParams};

    fn env(from: u16, to: u16, bytes: u64) -> Envelope {
        Envelope {
            from: Site::Db(DbId::new(from)),
            to: Site::Db(DbId::new(to)),
            rpc: 0,
            bytes,
            phase: Phase::O,
            payload: crate::msg::Payload::Request(crate::msg::Request::ShipObjects),
        }
    }

    fn transport(seed: u64) -> SimTransport {
        let sim = Rc::new(RefCell::new(Simulation::new(
            SystemParams::paper_default(),
            4,
        )));
        SimTransport::new(sim, seed)
    }

    #[test]
    fn local_transport_is_instant_and_lossless() {
        let mut t = LocalTransport::new();
        assert_eq!(t.name(), "local");
        for _ in 0..10 {
            assert_eq!(t.dispatch(&env(0, 1, 100), 0.0), Some(0.0));
        }
        assert_eq!(t.stats(), (10, 0));
    }

    #[test]
    fn delivery_charges_the_sim_ledger() {
        let sim = Rc::new(RefCell::new(Simulation::new(
            SystemParams::paper_default(),
            4,
        )));
        let mut t = SimTransport::new(Rc::clone(&sim), 7);
        let delay = t.dispatch(&env(0, 1, 100), 0.0).unwrap();
        // 50 µs latency + 100 B * 8 µs/B transfer.
        assert_eq!(delay, 850.0);
        let m = sim.borrow().metrics();
        assert_eq!(m.bytes_transferred, 100);
        assert_eq!(m.messages, 1);
    }

    #[test]
    fn crash_partition_and_heal_control_reachability() {
        let mut t = transport(1);
        let a = Site::Db(DbId::new(0));
        let b = Site::Db(DbId::new(1));
        t.inject(FaultEvent::Crash(a));
        assert_eq!(t.dispatch(&env(0, 1, 8), 0.0), None);
        assert_eq!(t.dispatch(&env(1, 0, 8), 0.0), None); // both directions
        assert_eq!(t.crashed_sites(), vec![DbId::new(0)]);
        t.inject(FaultEvent::Restart(a));
        assert!(t.dispatch(&env(0, 1, 8), 0.0).is_some());
        t.inject(FaultEvent::Partition(a, b));
        assert_eq!(t.partition_count(), 1);
        assert_eq!(t.dispatch(&env(1, 0, 8), 0.0), None);
        assert!(t.dispatch(&env(2, 3, 8), 0.0).is_some()); // others unaffected
        t.inject(FaultEvent::Heal);
        assert!(t.dispatch(&env(1, 0, 8), 0.0).is_some());
        let (delivered, dropped) = t.stats();
        assert_eq!((delivered, dropped), (3, 3));
    }

    #[test]
    fn scheduled_faults_strike_when_time_passes() {
        let mut t = transport(1);
        t.inject_at(100.0, FaultEvent::Crash(Site::Db(DbId::new(1))));
        t.inject_at(200.0, FaultEvent::Heal);
        assert!(t.dispatch(&env(0, 1, 8), 50.0).is_some());
        assert_eq!(t.dispatch(&env(0, 1, 8), 150.0), None);
        assert!(t.dispatch(&env(0, 1, 8), 250.0).is_some());
    }

    #[test]
    fn drops_are_seed_deterministic() {
        let fates = |seed: u64| -> Vec<bool> {
            let mut t = transport(seed).with_drop_rate(0.5);
            (0..32)
                .map(|_| t.dispatch(&env(0, 1, 8), 0.0).is_some())
                .collect()
        };
        assert_eq!(fates(42), fates(42));
        assert_ne!(fates(42), fates(43)); // astronomically unlikely to match
        let delivered = fates(42).iter().filter(|&&d| d).count();
        assert!(
            delivered > 0 && delivered < 32,
            "drop rate should be partial"
        );
    }

    #[test]
    fn slow_sites_multiply_latency_until_heal() {
        let mut t = transport(1);
        let healthy = t.dispatch(&env(0, 1, 0), 0.0).unwrap();
        t.inject(FaultEvent::Slow(Site::Db(DbId::new(1)), 4.0));
        assert_eq!(t.dispatch(&env(0, 1, 0), 0.0).unwrap(), healthy * 4.0);
        assert_eq!(t.dispatch(&env(1, 2, 0), 0.0).unwrap(), healthy * 4.0);
        assert_eq!(t.dispatch(&env(2, 3, 0), 0.0).unwrap(), healthy);
        t.inject(FaultEvent::Heal);
        assert_eq!(t.dispatch(&env(0, 1, 0), 0.0).unwrap(), healthy);
    }

    #[test]
    fn self_sends_bypass_faults() {
        let mut t = transport(1).with_drop_rate(1.0);
        t.inject(FaultEvent::Crash(Site::Global));
        let e = Envelope {
            from: Site::Global,
            to: Site::Global,
            rpc: 0,
            bytes: 0,
            phase: Phase::Ship,
            payload: crate::msg::Payload::Request(crate::msg::Request::ShipObjects),
        };
        assert!(t.dispatch(&e, 0.0).is_some());
    }
}
