//! Typed messages exchanged by the site actors.
//!
//! Every message travels inside an [`Envelope`] carrying its routing
//! information, its simulated wire size, and the execution phase its
//! transfer is charged to. Four request kinds cover the paper's three
//! strategies:
//!
//! * [`Request::Certify`] — client → global actor: run one query end to
//!   end and return the certified answer;
//! * [`Request::LocalEval`] — global → component site: evaluate your local
//!   query (BL/PL); the response carries the site's local rows plus the
//!   assistant verdicts it gathered from its peers;
//! * [`Request::AssistantLookup`] — site → site: check these assistant
//!   objects against their unsolved predicates (and fetch target values);
//! * [`Request::ShipObjects`] — global → component site: ship your
//!   projected extents (CA).
//!
//! Two further kinds support the batched pipeline
//! ([`fedoq_core::PipelineConfig`]):
//!
//! * [`Request::BatchAssistantLookup`] — site → site: an assistant-lookup
//!   *fragment* coalescing up to K GOid probes into one round-trip. Unlike
//!   the legacy all-probes-in-one `AssistantLookup`, a failed fragment is
//!   split in half and each half retried on a fresh correlation id, so a
//!   transient drop costs one fragment rather than the whole wave;
//! * [`Request::BatchCertify`] — client → global actor: several strategy
//!   executions coalesced into one client round-trip, answered together.

use crate::exec::DistributedStrategy;
use fedoq_core::handlers::{CheckRequest, CheckVerdict, LocalRow, LocalizedConfig, TargetRequest};
use fedoq_core::{ExecError, QueryAnswer};
use fedoq_object::{DbId, LOid, Value};
use fedoq_query::PredId;
use fedoq_sim::{Phase, Site};

/// A routed message: request or response.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sending site.
    pub from: Site,
    /// Receiving site.
    pub to: Site,
    /// RPC correlation id: responses carry their request's id.
    pub rpc: u64,
    /// Simulated wire size (fed into the `fedoq-sim` ledger).
    pub bytes: u64,
    /// Execution phase the transfer is charged to.
    pub phase: Phase,
    /// The message itself.
    pub payload: Payload,
}

/// Either half of an RPC.
#[derive(Debug, Clone)]
pub enum Payload {
    /// A request, delivered to the receiving actor's mailbox.
    Request(Request),
    /// A response, delivered to the caller's pending-RPC table.
    Response(Response),
}

/// A request served by a site actor.
#[derive(Debug, Clone)]
pub enum Request {
    /// Run one query end to end (client → global actor).
    Certify {
        /// Which strategy drives the execution.
        strategy: DistributedStrategy,
    },
    /// Evaluate the local query at a component site (BL/PL).
    LocalEval {
        /// `true` for PL (static assistant lookup before evaluation).
        parallel: bool,
        /// Signature pruning / target completion options.
        use_signatures: bool,
        /// Fetch locally-unprojectable target values from assistants.
        complete_targets: bool,
    },
    /// Check assistant objects against unsolved predicates.
    AssistantLookup {
        /// Predicate checks to answer.
        checks: Vec<CheckRequest>,
        /// Target-value fetches to answer.
        targets: Vec<TargetRequest>,
    },
    /// Ship the projected extents to the global site (CA).
    ShipObjects,
    /// One fragment of a batched assistant lookup: at most K coalesced
    /// probes (checks plus targets), retried by splitting on failure.
    BatchAssistantLookup {
        /// Predicate checks coalesced into this fragment.
        checks: Vec<CheckRequest>,
        /// Target-value fetches coalesced into this fragment.
        targets: Vec<TargetRequest>,
    },
    /// Run several strategies over the same query in one client
    /// round-trip (client → global actor).
    BatchCertify {
        /// The strategies to execute, answered in order.
        strategies: Vec<DistributedStrategy>,
    },
    /// Run one query under a per-site hybrid plan (client → global
    /// actor): the listed sites execute PL's static-prefetch schedule,
    /// every other hosting site executes BL's. Answered with
    /// [`Response::Certify`] — the hybrid is a localized execution with
    /// non-uniform per-site modes, not a new protocol.
    HybridCertify {
        /// Sites running PL's schedule; the rest run BL's.
        parallel_sites: Vec<DbId>,
        /// Signature pruning / target completion options.
        config: LocalizedConfig,
    },
}

impl Request {
    /// Short wire tag (diagnostics).
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Certify { .. } => "Certify",
            Request::LocalEval { .. } => "LocalEval",
            Request::AssistantLookup { .. } => "AssistantLookup",
            Request::ShipObjects => "ShipObjects",
            Request::BatchAssistantLookup { .. } => "BatchAssistantLookup",
            Request::BatchCertify { .. } => "BatchCertify",
            Request::HybridCertify { .. } => "HybridCertify",
        }
    }
}

/// A response to one [`Request`].
#[derive(Debug, Clone)]
pub enum Response {
    /// The certified answer (global actor → client).
    Certify(Box<CertifyReply>),
    /// A site's local evaluation results.
    LocalEval(Box<LocalEvalReply>),
    /// Verdicts and values for an assistant lookup.
    AssistantLookup(LookupReply),
    /// Acknowledgement of a CA extent shipment.
    ShipObjects(ShipReply),
    /// Verdicts and values for one batched-lookup fragment.
    BatchAssistantLookup(LookupReply),
    /// One certified answer per strategy of a [`Request::BatchCertify`].
    BatchCertify(Vec<CertifyReply>),
}

/// Final result of one distributed query execution.
#[derive(Debug, Clone)]
pub struct CertifyReply {
    /// The certified answer, or the error that stopped execution.
    pub answer: Result<QueryAnswer, ExecError>,
    /// Sites that stayed unreachable past the retry budget.
    pub degraded_sites: Vec<DbId>,
    /// Total RPC retries performed while executing.
    pub retries: u64,
}

/// One component site's contribution to a localized execution.
#[derive(Debug, Clone, Default)]
pub struct LocalEvalReply {
    /// Local maybe rows surviving this site's evaluation.
    pub rows: Vec<LocalRow>,
    /// Assistant verdicts this site gathered from its peers (and itself).
    pub verdicts: Vec<CheckVerdict>,
    /// Fetched target values, `((item, select position), value)`.
    pub target_values: Vec<((LOid, usize), Value)>,
    /// `(item, pred)` pairs whose assistant lookups stayed unanswered
    /// because a peer was unreachable: certification must treat the
    /// affected rows as degraded maybe results.
    pub failed_checks: Vec<(LOid, PredId)>,
    /// Peers this site could not reach.
    pub degraded_peers: Vec<DbId>,
}

/// Verdicts and values answered for one [`Request::AssistantLookup`].
#[derive(Debug, Clone, Default)]
pub struct LookupReply {
    /// One verdict per check request, in request order.
    pub verdicts: Vec<CheckVerdict>,
    /// One `((item, select position), value)` pair per target request.
    pub values: Vec<((LOid, usize), Value)>,
}

/// Acknowledgement of one CA extent shipment.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShipReply {
    /// Bytes of projected extent shipped by the site.
    pub bytes: u64,
}
