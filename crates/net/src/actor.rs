//! Site actors: each component database as a message-serving process.
//!
//! [`run_site`] is one component site's event loop; [`run_global`] is the
//! global (federation) site's. The actors reuse the *exact* computation
//! of the in-process strategies via [`fedoq_core::handlers`], so their
//! certain/maybe answers match the sync strategies bit for bit when the
//! network is healthy — messaging changes *how* the work moves between
//! sites, never what is computed.
//!
//! # Graceful degradation
//!
//! Localized strategies localize failure too. When a peer stays
//! unreachable past the retry budget:
//!
//! * unanswered `(item, pred)` assistant checks leave the affected rows
//!   as **maybe** results tagged [`Provenance::Degraded`](fedoq_core::Provenance::Degraded) — certification
//!   simply sees fewer verdicts, which can only move rows from certain to
//!   maybe, never the reverse;
//! * a site whose whole `LocalEval` fails is removed from `queried_dbs`,
//!   disabling absence elimination there (its missing rows are unknown,
//!   not absent), and every entity with an isomeric copy at the dead site
//!   is tagged degraded;
//! * certain rows stay certain: component copies are consistent (object
//!   isomerism), so data already seen cannot be contradicted by the data
//!   a dead site holds.
//!
//! CA has no such option: evaluation cannot start until every involved
//! extent has been shipped, so an unreachable site is a hard
//! [`ExecError::Unreachable`]. That asymmetry is itself a finding the
//! paper's cost model cannot show — localization buys availability, not
//! just response time.

use crate::exec::DistributedStrategy;
use crate::msg::{
    CertifyReply, Envelope, LocalEvalReply, LookupReply, Payload, Request, Response, ShipReply,
};
use crate::router::Net;
use crate::rpc::{call, RpcConfig, RpcError};
use crate::rt::join_all;
use fedoq_core::cache::{CacheKey, CacheValue};
use fedoq_core::handlers::{
    answer_check_requests, answer_target_requests, centralized_answer_with, evaluate_site_with,
    reply_message_bytes, request_message_bytes, result_message_bytes, ship_plan,
    target_reply_message_bytes, CheckRequest, CheckVerdict, LocalizedConfig, LocalizedMerge,
    LocalizedMode, TargetRequest,
};
use fedoq_core::{query_fingerprint, ExecError, Federation, LookupCache, PipelineConfig};
use fedoq_object::{DbId, LOid, Value};
use fedoq_query::{plan_for_db, BoundQuery, PredId};
use fedoq_sim::{Phase, Simulation, Site};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;

/// Outer RPCs whose handler issues nested RPCs (`LocalEval`,
/// `ShipObjects`) get this much more time, so a callee patiently
/// retrying its *own* peers — or shipping a large reply — is not
/// mistaken for a dead site.
pub const FANOUT_TIMEOUT_SCALE: f64 = 50.0;

/// Everything one actor needs: the (immutably shared) federation and
/// query, the message fabric, the shared cost ledger, and the RPC policy.
pub struct Ctx<'a> {
    /// The federation served by the actors.
    pub fed: &'a Federation,
    /// The query under execution.
    pub query: &'a BoundQuery,
    /// Message fabric.
    pub net: Net<'a>,
    /// Shared simulation ledger (charged by handlers and transport).
    pub sim: Rc<RefCell<Simulation>>,
    /// Timeout/retry policy for site-to-site RPCs.
    pub rpc: RpcConfig,
    /// Parallel-scan / batching / caching configuration. The default
    /// (sequential, unbatched, uncached) reproduces the legacy wire
    /// behavior bit for bit.
    pub pipeline: PipelineConfig,
    /// The shared GOid-lookup cache, conceptually replicated at every
    /// site (like the GOid mapping tables themselves). `None`, or a
    /// pipeline with caching off, disables it.
    pub cache: Option<Rc<RefCell<LookupCache>>>,
}

impl<'a> Clone for Ctx<'a> {
    fn clone(&self) -> Self {
        Ctx {
            fed: self.fed,
            query: self.query,
            net: self.net.clone(),
            sim: Rc::clone(&self.sim),
            rpc: self.rpc,
            pipeline: self.pipeline,
            cache: self.cache.clone(),
        }
    }
}

impl<'a> Ctx<'a> {
    /// The lookup cache, when the pipeline actually enables it.
    fn active_cache(&self) -> Option<&RefCell<LookupCache>> {
        if self.pipeline.cache {
            self.cache.as_deref()
        } else {
            None
        }
    }
}

type BoxFut<'f, T> = Pin<Box<dyn Future<Output = T> + 'f>>;

/// Event loop of one component site: serves requests until the runtime
/// winds down.
///
/// `LocalEval` handling is spawned as its own task: in PL every site
/// issues static assistant lookups to its peers *while* those peers are
/// evaluating, so a site that blocked inside its own evaluation would
/// deadlock the federation (each site waiting for a lookup reply from a
/// site that is not listening). Serving lookups concurrently with the
/// site's own evaluation is exactly the intra-site parallelism the paper
/// assumes of PL.
pub async fn run_site<'a>(ctx: Ctx<'a>, db: DbId) {
    loop {
        let env = ctx.net.recv(Site::Db(db)).await;
        let Payload::Request(ref request) = env.payload else {
            continue;
        };
        if matches!(request, Request::LocalEval { .. }) {
            let rt = ctx.net.rt().clone();
            rt.spawn(serve_site_request(ctx.clone(), db, env));
        } else {
            serve_site_request(ctx.clone(), db, env).await;
        }
    }
}

/// Serves one request addressed to component site `db` and sends its
/// response (if the request warrants one).
///
/// This is [`run_site`]'s body factored out so an out-of-process server
/// (the `fedoq-wire` crate's `fedoq-site` binary) can feed requests
/// arriving over a real wire into the same handler code. `LocalEval` is
/// handled inline here; callers that must serve assistant lookups
/// concurrently with their own evaluation (every site in PL) spawn this
/// future instead of awaiting it, exactly as [`run_site`] does.
pub async fn serve_site_request<'a>(ctx: Ctx<'a>, db: DbId, env: Envelope) {
    let Payload::Request(ref request) = env.payload else {
        return;
    };
    match request.clone() {
        Request::LocalEval {
            parallel,
            use_signatures,
            complete_targets,
        } => {
            let config = LocalizedConfig {
                use_signatures,
                complete_targets,
            };
            let reply = handle_local_eval(&ctx, db, parallel, config).await;
            let bytes = {
                let sim = ctx.sim.borrow();
                let params = sim.params();
                result_message_bytes(&reply.rows, params)
                    + reply_message_bytes(reply.verdicts.len(), params)
                    + target_reply_message_bytes(reply.target_values.len(), params)
            };
            ctx.net
                .respond(&env, bytes, Response::LocalEval(Box::new(reply)));
        }
        Request::AssistantLookup { checks, targets } => {
            let mut sim = ctx.sim.borrow_mut();
            let reply = LookupReply {
                verdicts: answer_check_requests(ctx.fed, ctx.query, db, &checks, &mut sim),
                values: answer_target_requests(ctx.fed, ctx.query, db, &targets, &mut sim),
            };
            let bytes = reply_message_bytes(reply.verdicts.len(), sim.params())
                + target_reply_message_bytes(reply.values.len(), sim.params());
            drop(sim);
            ctx.net
                .respond(&env, bytes, Response::AssistantLookup(reply));
        }
        Request::BatchAssistantLookup { checks, targets } => {
            let mut sim = ctx.sim.borrow_mut();
            let reply = LookupReply {
                verdicts: answer_check_requests(ctx.fed, ctx.query, db, &checks, &mut sim),
                values: answer_target_requests(ctx.fed, ctx.query, db, &targets, &mut sim),
            };
            let bytes = reply_message_bytes(reply.verdicts.len(), sim.params())
                + target_reply_message_bytes(reply.values.len(), sim.params());
            drop(sim);
            ctx.net
                .respond(&env, bytes, Response::BatchAssistantLookup(reply));
        }
        Request::ShipObjects => {
            let mut sim = ctx.sim.borrow_mut();
            let plan = ship_plan(ctx.fed, ctx.query, sim.params());
            let bytes: u64 = plan
                .shipments
                .iter()
                .filter(|(site, _)| *site == db)
                .map(|(_, b)| *b)
                .sum();
            sim.disk(Site::Db(db), bytes, Phase::Ship);
            drop(sim);
            ctx.net
                .respond(&env, bytes, Response::ShipObjects(ShipReply { bytes }));
        }
        // Certification is the global actor's job; ignore it here.
        Request::Certify { .. } | Request::BatchCertify { .. } | Request::HybridCertify { .. } => {}
    }
}

/// Serves one `LocalEval`: local evaluation, then concurrent assistant
/// lookups against every peer owning assistants of the unsolved items.
async fn handle_local_eval(
    ctx: &Ctx<'_>,
    db: DbId,
    parallel: bool,
    config: LocalizedConfig,
) -> LocalEvalReply {
    let mode = if parallel {
        LocalizedMode::Parallel
    } else {
        LocalizedMode::Basic
    };
    let eval = {
        let mut sim = ctx.sim.borrow_mut();
        evaluate_site_with(
            ctx.fed,
            ctx.query,
            db,
            mode,
            config,
            &mut sim,
            ctx.pipeline,
            ctx.cache.as_deref(),
        )
    };
    // No local query at this site, or a local error: nothing to report.
    let Ok(Some(eval)) = eval else {
        return LocalEvalReply::default();
    };

    // Group the lookups by the peer owning the assistants. BTreeMap keeps
    // the fan-out order deterministic.
    let mut by_peer: BTreeMap<DbId, (Vec<CheckRequest>, Vec<TargetRequest>)> = BTreeMap::new();
    for r in eval
        .static_requests
        .iter()
        .chain(eval.dynamic_requests.iter())
    {
        by_peer.entry(r.assistant.db()).or_default().0.push(*r);
    }
    for r in &eval.target_requests {
        by_peer.entry(r.assistant.db()).or_default().1.push(*r);
    }

    let mut reply = LocalEvalReply {
        rows: eval.rows,
        ..LocalEvalReply::default()
    };
    let mut remote: Vec<(DbId, Vec<CheckRequest>, Vec<TargetRequest>)> = Vec::new();
    for (peer, (checks, targets)) in by_peer {
        if peer == db {
            // Own assistants: answered in place, no message needed.
            let mut sim = ctx.sim.borrow_mut();
            reply.verdicts.extend(answer_check_requests(
                ctx.fed, ctx.query, db, &checks, &mut sim,
            ));
            reply.target_values.extend(answer_target_requests(
                ctx.fed, ctx.query, db, &targets, &mut sim,
            ));
        } else {
            remote.push((peer, checks, targets));
        }
    }

    // Batched (or cached) lookups take the fragment path; the default
    // pipeline keeps the legacy one-message-per-peer wire shape.
    if ctx.pipeline.batch > 0 || ctx.active_cache().is_some() {
        let lookups: Vec<BoxFut<'_, PeerLookup>> = remote
            .iter()
            .map(|(peer, checks, targets)| {
                Box::pin(batched_peer_lookup(ctx, db, *peer, checks, targets)) as BoxFut<'_, _>
            })
            .collect();
        for outcome in join_all(lookups).await {
            reply.verdicts.extend(outcome.verdicts);
            reply.target_values.extend(outcome.values);
            reply.failed_checks.extend(outcome.failed_checks);
            if outcome.degraded {
                reply.degraded_peers.push(outcome.peer);
            }
        }
        return reply;
    }

    let params = *ctx.sim.borrow().params();
    let lookups: Vec<BoxFut<'_, Result<Response, RpcError>>> = remote
        .iter()
        .map(|(peer, checks, targets)| {
            let net = ctx.net.clone();
            let bytes = request_message_bytes(checks.len() + targets.len(), &params);
            let request = Request::AssistantLookup {
                checks: checks.clone(),
                targets: targets.clone(),
            };
            let (from, to) = (Site::Db(db), Site::Db(*peer));
            let cfg = ctx.rpc;
            Box::pin(async move { call(&net, from, to, request, bytes, Phase::O, cfg).await })
                as BoxFut<'_, _>
        })
        .collect();
    for ((peer, checks, _), outcome) in remote.iter().zip(join_all(lookups).await) {
        match outcome {
            Ok(Response::AssistantLookup(lookup)) => {
                reply.verdicts.extend(lookup.verdicts);
                reply.target_values.extend(lookup.values);
            }
            // Unreachable peer (or a protocol violation): record which
            // checks went unanswered so certification can degrade.
            _ => {
                reply.degraded_peers.push(*peer);
                reply
                    .failed_checks
                    .extend(checks.iter().map(|c| (c.item, c.pred)));
            }
        }
    }
    reply
}

/// One peer's contribution to a batched lookup round: answered verdicts
/// and values in request order, plus what stayed unanswered.
struct PeerLookup {
    peer: DbId,
    verdicts: Vec<CheckVerdict>,
    values: Vec<((LOid, usize), Value)>,
    failed_checks: Vec<(LOid, PredId)>,
    degraded: bool,
}

/// One batched-lookup fragment: coalesced checks and target fetches.
type Fragment = (Vec<CheckRequest>, Vec<TargetRequest>);

/// Splits a failed fragment of ≥ 2 probes into two non-empty halves
/// (checks order first, then targets), so the retry isolates the loss.
fn split_fragment(
    mut checks: Vec<CheckRequest>,
    mut targets: Vec<TargetRequest>,
) -> (Fragment, Fragment) {
    let mid = (checks.len() + targets.len()) / 2;
    if mid <= checks.len() {
        let back_checks = checks.split_off(mid);
        ((checks, Vec::new()), (back_checks, targets))
    } else {
        let back_targets = targets.split_off(mid - checks.len());
        ((checks, targets), (Vec::new(), back_targets))
    }
}

/// Resolves one peer's probes through `BatchAssistantLookup` fragments
/// of at most K probes, consulting the shared cache first.
///
/// A cache hit never touches the wire. A fragment whose RPC exhausts its
/// retry budget is split in half and each half retried on a fresh
/// correlation id — a transient drop costs one fragment, not the peer's
/// whole wave — until single probes remain; only those are given up as
/// failed. Answers are reassembled in original request order, so a
/// cached or batched run reports verdicts and values in exactly the
/// order the unbatched path would (target certification keeps the first
/// value it sees per item).
async fn batched_peer_lookup(
    ctx: &Ctx<'_>,
    db: DbId,
    peer: DbId,
    checks: &[CheckRequest],
    targets: &[TargetRequest],
) -> PeerLookup {
    let params = *ctx.sim.borrow().params();
    let fingerprint = if ctx.active_cache().is_some() {
        query_fingerprint(ctx.query)
    } else {
        0
    };

    // Cache pass: a hit is a probe the wire never sees.
    let mut check_hits: Vec<Option<CheckVerdict>> = Vec::with_capacity(checks.len());
    let mut check_misses: Vec<CheckRequest> = Vec::new();
    let mut target_hits: Vec<Option<Value>> = Vec::with_capacity(targets.len());
    let mut target_misses: Vec<TargetRequest> = Vec::new();
    for request in checks {
        let hit = ctx.active_cache().and_then(|c| {
            let key = CacheKey::Verdict {
                assistant: request.assistant,
                pred: request.pred.index(),
                start: request.start,
                query: fingerprint,
            };
            match c.borrow_mut().get(&key) {
                Some(CacheValue::Verdict(verdict)) => Some(CheckVerdict {
                    item: request.item,
                    pred: request.pred,
                    verdict,
                }),
                _ => None,
            }
        });
        if hit.is_none() {
            check_misses.push(*request);
        }
        check_hits.push(hit);
    }
    for request in targets {
        let hit = ctx.active_cache().and_then(|c| {
            let key = CacheKey::Target {
                assistant: request.assistant,
                target: request.target,
                start: request.start,
                query: fingerprint,
            };
            match c.borrow_mut().get(&key) {
                Some(CacheValue::Target(value)) => Some(value),
                _ => None,
            }
        });
        if hit.is_none() {
            target_misses.push(*request);
        }
        target_hits.push(hit);
    }

    // Coalesce the misses into fragments of at most K probes (batch 0,
    // reachable with the cache alone, keeps the one-message shape).
    let mut queue: VecDeque<Fragment> = VecDeque::new();
    if ctx.pipeline.batch == 0 {
        if !check_misses.is_empty() || !target_misses.is_empty() {
            queue.push_back((check_misses, target_misses));
        }
    } else {
        for chunk in check_misses.chunks(ctx.pipeline.batch) {
            queue.push_back((chunk.to_vec(), Vec::new()));
        }
        for chunk in target_misses.chunks(ctx.pipeline.batch) {
            queue.push_back((Vec::new(), chunk.to_vec()));
        }
    }

    // Drain the fragment queue with split-retry. Halves go to the front,
    // front half first, preserving overall answer order.
    let mut verdict_by_request: HashMap<CheckRequest, CheckVerdict> = HashMap::new();
    let mut value_by_request: HashMap<TargetRequest, Value> = HashMap::new();
    while let Some((frag_checks, frag_targets)) = queue.pop_front() {
        let bytes = request_message_bytes(frag_checks.len() + frag_targets.len(), &params);
        let request = Request::BatchAssistantLookup {
            checks: frag_checks.clone(),
            targets: frag_targets.clone(),
        };
        let outcome = call(
            &ctx.net,
            Site::Db(db),
            Site::Db(peer),
            request,
            bytes,
            Phase::O,
            ctx.rpc,
        )
        .await;
        match outcome {
            Ok(Response::BatchAssistantLookup(lookup)) => {
                for (request, verdict) in frag_checks.iter().zip(lookup.verdicts) {
                    verdict_by_request.insert(*request, verdict);
                }
                for (request, value) in frag_targets.iter().zip(lookup.values) {
                    value_by_request.insert(*request, value.1);
                }
            }
            _ if frag_checks.len() + frag_targets.len() > 1 => {
                let (front, back) = split_fragment(frag_checks, frag_targets);
                queue.push_front(back);
                queue.push_front(front);
            }
            // A single probe past the retry budget is lost for good.
            _ => {}
        }
    }

    // Reassemble in request order, populating the cache from fresh
    // answers and recording what stayed unanswered.
    let mut result = PeerLookup {
        peer,
        verdicts: Vec::with_capacity(checks.len()),
        values: Vec::with_capacity(targets.len()),
        failed_checks: Vec::new(),
        degraded: false,
    };
    for (request, hit) in checks.iter().zip(check_hits) {
        let answered = hit.or_else(|| verdict_by_request.get(request).copied());
        match answered {
            Some(verdict) => {
                if let Some(c) = ctx.active_cache() {
                    c.borrow_mut().put(
                        CacheKey::Verdict {
                            assistant: request.assistant,
                            pred: request.pred.index(),
                            start: request.start,
                            query: fingerprint,
                        },
                        CacheValue::Verdict(verdict.verdict),
                    );
                }
                result.verdicts.push(verdict);
            }
            None => {
                result.failed_checks.push((request.item, request.pred));
                result.degraded = true;
            }
        }
    }
    for (request, hit) in targets.iter().zip(target_hits) {
        let answered = hit.or_else(|| value_by_request.get(request).cloned());
        match answered {
            Some(value) => {
                if let Some(c) = ctx.active_cache() {
                    c.borrow_mut().put(
                        CacheKey::Target {
                            assistant: request.assistant,
                            target: request.target,
                            start: request.start,
                            query: fingerprint,
                        },
                        CacheValue::Target(value.clone()),
                    );
                }
                result.values.push(((request.item, request.target), value));
            }
            None => result.degraded = true,
        }
    }
    result
}

/// Which localized schedule each hosting site runs.
///
/// The paper's BL and PL assign one schedule to every site; the per-site
/// hybrid (`HY`) lets the planner assign each site its own. Execution is
/// identical plumbing either way — the schedule only decides each site's
/// `LocalEval` `parallel` flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SiteSchedule {
    /// Every hosting site runs the same schedule (`false` = BL's,
    /// `true` = PL's).
    Uniform(bool),
    /// The listed sites run PL's schedule; every other hosting site runs
    /// BL's.
    ParallelAt(Vec<DbId>),
}

impl SiteSchedule {
    /// Does `db` run PL's static-prefetch schedule?
    pub fn parallel_at(&self, db: DbId) -> bool {
        match self {
            SiteSchedule::Uniform(parallel) => *parallel,
            SiteSchedule::ParallelAt(sites) => sites.contains(&db),
        }
    }
}

/// Event loop of the global site: serves `Certify`, `HybridCertify`, and
/// `BatchCertify` requests by orchestrating the chosen plan over the
/// component actors.
///
/// Each certification request is spawned as its own task, so several
/// in-flight queries (the concurrent scheduler's normal regime) make
/// progress through one global actor instead of queueing head-of-line.
pub async fn run_global(ctx: Ctx<'_>) {
    loop {
        let env = ctx.net.recv(Site::Global).await;
        let Payload::Request(_) = env.payload else {
            continue;
        };
        let rt = ctx.net.rt().clone();
        rt.spawn(serve_global_request(ctx.clone(), env));
    }
}

/// Serves one request addressed to the global actor and sends its
/// response. Factored out of [`run_global`] so each certification can run
/// as its own task.
async fn serve_global_request<'a>(ctx: Ctx<'a>, env: Envelope) {
    let Payload::Request(ref request) = env.payload else {
        return;
    };
    match request.clone() {
        Request::Certify { strategy } => {
            let reply = orchestrate(&ctx, strategy).await;
            ctx.net.respond(&env, 0, Response::Certify(Box::new(reply)));
        }
        Request::HybridCertify {
            parallel_sites,
            config,
        } => {
            let schedule = SiteSchedule::ParallelAt(parallel_sites);
            let reply = orchestrate_localized(&ctx, &schedule, config).await;
            ctx.net.respond(&env, 0, Response::Certify(Box::new(reply)));
        }
        // Coalesced executions: one round-trip, answered in order.
        Request::BatchCertify { strategies } => {
            let mut replies = Vec::with_capacity(strategies.len());
            for strategy in strategies {
                replies.push(orchestrate(&ctx, strategy).await);
            }
            ctx.net.respond(&env, 0, Response::BatchCertify(replies));
        }
        _ => {}
    }
}

/// Runs one query end to end over the component actors.
async fn orchestrate(ctx: &Ctx<'_>, strategy: DistributedStrategy) -> CertifyReply {
    match strategy {
        DistributedStrategy::Centralized => orchestrate_centralized(ctx).await,
        DistributedStrategy::BasicLocalized(config) => {
            orchestrate_localized(ctx, &SiteSchedule::Uniform(false), config).await
        }
        DistributedStrategy::ParallelLocalized(config) => {
            orchestrate_localized(ctx, &SiteSchedule::Uniform(true), config).await
        }
    }
}

/// CA over the runtime: ship every involved extent, then evaluate at the
/// global site. No shipment may be missing, so failure is fatal.
async fn orchestrate_centralized(ctx: &Ctx<'_>) -> CertifyReply {
    let params = *ctx.sim.borrow().params();
    let plan = ship_plan(ctx.fed, ctx.query, &params);
    let cfg = ctx.rpc.scaled(FANOUT_TIMEOUT_SCALE);
    // With the cache on, shipments the global site already holds from a
    // previous run of this query are warm: a site is contacted only if
    // it owns at least one cold shipment. Cache entries are recorded
    // only after the ships succeed, so a degraded run stays cold.
    let mut contact = plan.sites.clone();
    let mut fresh: Vec<(CacheKey, u64)> = Vec::new();
    if let Some(cache) = ctx.active_cache() {
        let fingerprint = query_fingerprint(ctx.query);
        let mut cold: BTreeSet<DbId> = BTreeSet::new();
        let mut cache = cache.borrow_mut();
        for (index, (site, bytes)) in plan.shipments.iter().enumerate() {
            let key = CacheKey::Shipment {
                db: *site,
                index,
                query: fingerprint,
            };
            if cache.get(&key).is_none() {
                cold.insert(*site);
                fresh.push((key, *bytes));
            }
        }
        contact.retain(|site| cold.contains(site));
    }
    let ships: Vec<BoxFut<'_, (DbId, Result<Response, RpcError>)>> = contact
        .iter()
        .map(|&site| {
            let net = ctx.net.clone();
            Box::pin(async move {
                let outcome = call(
                    &net,
                    Site::Global,
                    Site::Db(site),
                    Request::ShipObjects,
                    2 * params.attr_bytes,
                    Phase::Ship,
                    cfg,
                )
                .await;
                (site, outcome)
            }) as BoxFut<'_, _>
        })
        .collect();
    let mut degraded_sites = Vec::new();
    for (site, outcome) in join_all(ships).await {
        match outcome {
            Ok(Response::ShipObjects(_)) => {}
            _ => degraded_sites.push(site),
        }
    }
    let answer = if degraded_sites.is_empty() {
        if let Some(cache) = ctx.active_cache() {
            let mut cache = cache.borrow_mut();
            for (key, bytes) in fresh {
                cache.put(key, CacheValue::Shipment(bytes));
            }
        }
        let mut sim = ctx.sim.borrow_mut();
        centralized_answer_with(ctx.fed, ctx.query, &mut sim, ctx.pipeline)
    } else {
        let sites = degraded_sites
            .iter()
            .map(|&s| ctx.fed.db(s).name().to_string())
            .collect::<Vec<_>>()
            .join(", ");
        Err(ExecError::Unreachable(format!(
            "CA cannot evaluate without the extents of {sites}; \
             use a localized strategy for graceful degradation"
        )))
    };
    CertifyReply {
        answer,
        degraded_sites,
        retries: ctx.net.retries(),
    }
}

/// BL/PL/HY over the runtime: fan `LocalEval` out to every hosting site
/// (each with its schedule's `parallel` flag), merge the replies through
/// [`LocalizedMerge`], certify, and tag degraded maybe results.
async fn orchestrate_localized(
    ctx: &Ctx<'_>,
    schedule: &SiteSchedule,
    config: LocalizedConfig,
) -> CertifyReply {
    let schema = ctx.fed.global_schema();
    let hosting: Vec<DbId> = ctx
        .fed
        .dbs()
        .iter()
        .filter_map(|db| plan_for_db(ctx.query, schema, db.id()).map(|p| p.db()))
        .collect();

    let params = *ctx.sim.borrow().params();
    let cfg = ctx.rpc.scaled(FANOUT_TIMEOUT_SCALE);
    let evals: Vec<BoxFut<'_, (DbId, Result<Response, RpcError>)>> = hosting
        .iter()
        .map(|&site| {
            let net = ctx.net.clone();
            let request = Request::LocalEval {
                parallel: schedule.parallel_at(site),
                use_signatures: config.use_signatures,
                complete_targets: config.complete_targets,
            };
            Box::pin(async move {
                let outcome = call(
                    &net,
                    Site::Global,
                    Site::Db(site),
                    request,
                    2 * params.attr_bytes,
                    Phase::Ship,
                    cfg,
                )
                .await;
                (site, outcome)
            }) as BoxFut<'_, _>
        })
        .collect();

    let mut merge = LocalizedMerge::new();
    for (site, outcome) in join_all(evals).await {
        match outcome {
            Ok(Response::LocalEval(reply)) => {
                merge.record_site(
                    site,
                    reply.rows,
                    reply.verdicts,
                    reply.target_values,
                    reply.failed_checks,
                    reply.degraded_peers,
                );
            }
            // The whole site is gone: no absence elimination against it,
            // and every entity with a copy there is degraded.
            _ => {
                merge.record_site_loss(site);
            }
        }
    }

    let (answer, degraded_sites) = {
        let mut sim = ctx.sim.borrow_mut();
        merge.finish(ctx.fed, ctx.query, &mut sim)
    };

    CertifyReply {
        answer: Ok(answer),
        degraded_sites,
        retries: ctx.net.retries(),
    }
}
