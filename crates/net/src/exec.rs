//! The distributed executor: strategies over the actor runtime.
//!
//! [`DistributedExecutor::run`] spins up one actor per component site
//! plus the global actor on the deterministic runtime, sends a single
//! `Certify` request as the client, and drives the virtual clock until
//! the answer comes back. The result carries the answer together with
//! the degradation and cost diagnostics of the run.

use crate::actor::{run_global, run_site, Ctx};
use crate::msg::{Request, Response};
use crate::router::Net;
use crate::rpc::{call, RpcConfig};
use crate::rt::Runtime;
use crate::transport::{LocalTransport, Transport};
use fedoq_core::handlers::LocalizedConfig;
use fedoq_core::{
    query_fingerprint, refresh_catalog, BasicLocalized, CacheStats, Centralized, ExecError,
    ExecutionStrategy, Federation, LookupCache, ParallelLocalized, PipelineConfig, QueryAnswer,
};
use fedoq_object::DbId;
use fedoq_plan::{choose, PipelineKnobs, PlanChoice, PlanKind, StatsCatalog};
use fedoq_query::BoundQuery;
use fedoq_sim::{Phase, QueryMetrics, Resource, Simulation, Site, SystemParams};
use std::cell::RefCell;
use std::rc::Rc;

/// A strategy choice for the distributed runtime, mirroring the three
/// in-process strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistributedStrategy {
    /// CA: ship everything, evaluate at the global site.
    Centralized,
    /// BL: local evaluation first, assistant lookup for survivors.
    BasicLocalized(LocalizedConfig),
    /// PL: static assistant lookup overlapping local evaluation.
    ParallelLocalized(LocalizedConfig),
}

impl DistributedStrategy {
    /// CA.
    pub fn ca() -> DistributedStrategy {
        DistributedStrategy::Centralized
    }

    /// BL without signature pruning.
    pub fn bl() -> DistributedStrategy {
        DistributedStrategy::BasicLocalized(LocalizedConfig::default())
    }

    /// PL without signature pruning.
    pub fn pl() -> DistributedStrategy {
        DistributedStrategy::ParallelLocalized(LocalizedConfig::default())
    }

    /// The same strategy with signature pruning enabled (no-op for CA).
    pub fn with_signatures(self) -> DistributedStrategy {
        match self {
            DistributedStrategy::Centralized => self,
            DistributedStrategy::BasicLocalized(mut c) => {
                c.use_signatures = true;
                DistributedStrategy::BasicLocalized(c)
            }
            DistributedStrategy::ParallelLocalized(mut c) => {
                c.use_signatures = true;
                DistributedStrategy::ParallelLocalized(c)
            }
        }
    }

    /// The paper's name for the strategy (`-S` marks signature pruning).
    pub fn name(&self) -> &'static str {
        match self {
            DistributedStrategy::Centralized => "CA",
            DistributedStrategy::BasicLocalized(c) if c.use_signatures => "BL-S",
            DistributedStrategy::BasicLocalized(_) => "BL",
            DistributedStrategy::ParallelLocalized(c) if c.use_signatures => "PL-S",
            DistributedStrategy::ParallelLocalized(_) => "PL",
        }
    }

    /// Parses a strategy name (`ca`, `bl`, `pl`, `bl-s`, `pl-s`).
    pub fn parse(name: &str) -> Option<DistributedStrategy> {
        match name.to_ascii_lowercase().as_str() {
            "ca" => Some(DistributedStrategy::ca()),
            "bl" => Some(DistributedStrategy::bl()),
            "pl" => Some(DistributedStrategy::pl()),
            "bl-s" => Some(DistributedStrategy::bl().with_signatures()),
            "pl-s" => Some(DistributedStrategy::pl().with_signatures()),
            _ => None,
        }
    }

    /// The equivalent in-process strategy (for differential testing).
    pub fn sync(&self) -> Box<dyn ExecutionStrategy> {
        match self {
            DistributedStrategy::Centralized => Box::new(Centralized),
            DistributedStrategy::BasicLocalized(c) => Box::new(BasicLocalized {
                use_signatures: c.use_signatures,
                complete_targets: c.complete_targets,
            }),
            DistributedStrategy::ParallelLocalized(c) => Box::new(ParallelLocalized {
                use_signatures: c.use_signatures,
                complete_targets: c.complete_targets,
            }),
        }
    }
}

/// Everything one distributed execution produced.
#[derive(Debug, Clone)]
pub struct DistributedOutcome {
    /// The certified answer.
    pub answer: QueryAnswer,
    /// Sites that stayed unreachable past the retry budget.
    pub degraded_sites: Vec<DbId>,
    /// Total RPC retries performed.
    pub retries: u64,
    /// Messages the transport delivered.
    pub delivered: u64,
    /// Messages the transport dropped (faults).
    pub dropped: u64,
    /// Cost-model metrics accumulated in the shared simulation.
    pub metrics: QueryMetrics,
    /// Virtual time the runtime advanced (µs); includes network latency
    /// and retry backoffs, unlike the cost-model clocks.
    pub virtual_us: f64,
}

impl DistributedOutcome {
    /// `true` iff any maybe row was tagged degraded or a site was lost.
    pub fn is_degraded(&self) -> bool {
        !self.degraded_sites.is_empty() || self.answer.is_degraded()
    }
}

/// What [`DistributedExecutor::run_adaptive`] did: the planner's ranking
/// plus the executed run's outcome.
#[derive(Debug, Clone)]
pub struct AdaptiveDistributedOutcome {
    /// The executed run's answer and diagnostics.
    pub outcome: DistributedOutcome,
    /// The full ranking the planner produced (CA/BL/PL/HY).
    pub choice: PlanChoice,
    /// The plan that actually ran (`choice.best().kind`).
    pub executed: PlanKind,
}

/// Runs distributed queries over a transport.
///
/// The executor owns a [`PipelineConfig`] (parallel scans, probe
/// batching, lookup caching) and a persistent [`LookupCache`] that
/// survives across `run` calls — run the same query twice with the cache
/// enabled and the second run answers warm probes without touching the
/// wire. Clones share the cache. The cache is generation-synced against
/// the federation on every run, so store mutations invalidate it.
#[derive(Debug, Clone, Default)]
pub struct DistributedExecutor {
    rpc: RpcConfig,
    pipeline: PipelineConfig,
    cache: Rc<RefCell<LookupCache>>,
}

impl DistributedExecutor {
    /// An executor with the default RPC policy and a sequential,
    /// unbatched, uncached pipeline (the legacy wire behavior).
    pub fn new() -> DistributedExecutor {
        DistributedExecutor::default()
    }

    /// Overrides the RPC timeout/retry policy.
    pub fn with_rpc(mut self, rpc: RpcConfig) -> DistributedExecutor {
        self.rpc = rpc;
        self
    }

    /// The RPC policy in force.
    pub fn rpc(&self) -> RpcConfig {
        self.rpc
    }

    /// Overrides the pipeline (parallelism, batch size, caching).
    pub fn with_pipeline(mut self, pipeline: PipelineConfig) -> DistributedExecutor {
        self.pipeline = pipeline;
        self
    }

    /// The pipeline configuration in force.
    pub fn pipeline(&self) -> PipelineConfig {
        self.pipeline
    }

    /// Hit/miss/eviction counters of the persistent lookup cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.borrow().stats()
    }

    /// Entries currently held by the persistent lookup cache.
    pub fn cache_len(&self) -> usize {
        self.cache.borrow().len()
    }

    /// Drops every cache entry and resets the counters.
    pub fn reset_cache(&self) {
        self.cache.borrow_mut().reset();
    }

    /// Executes `query` with `strategy` over `transport`, charging
    /// `sim`'s ledger for every disk/CPU/network action.
    pub fn run(
        &self,
        fed: &Federation,
        query: &BoundQuery,
        strategy: DistributedStrategy,
        transport: Rc<RefCell<dyn Transport>>,
        sim: Rc<RefCell<Simulation>>,
    ) -> Result<DistributedOutcome, ExecError> {
        let response = self.drive(fed, query, Request::Certify { strategy }, &transport, &sim)?;
        let (Response::Certify(reply), virtual_us) = response else {
            return Err(ExecError::Internal("mismatched response to Certify".into()));
        };
        let (delivered, dropped) = transport.borrow().stats();
        Ok(DistributedOutcome {
            answer: reply.answer?,
            degraded_sites: reply.degraded_sites,
            retries: reply.retries,
            delivered,
            dropped,
            metrics: sim.borrow().metrics(),
            virtual_us,
        })
    }

    /// Executes several strategies over the same query in one client
    /// round-trip (`BatchCertify`), in order, over one shared runtime.
    ///
    /// The transport stats, cost-model metrics, and virtual clock are
    /// those of the *whole batch* — the jobs share the simulation — so
    /// every returned outcome carries the same totals. Any job's
    /// execution error fails the whole batch.
    ///
    /// # Errors
    ///
    /// As for [`run`](DistributedExecutor::run), for any job.
    pub fn run_batch(
        &self,
        fed: &Federation,
        query: &BoundQuery,
        strategies: &[DistributedStrategy],
        transport: Rc<RefCell<dyn Transport>>,
        sim: Rc<RefCell<Simulation>>,
    ) -> Result<Vec<DistributedOutcome>, ExecError> {
        let request = Request::BatchCertify {
            strategies: strategies.to_vec(),
        };
        let response = self.drive(fed, query, request, &transport, &sim)?;
        let (Response::BatchCertify(replies), virtual_us) = response else {
            return Err(ExecError::Internal(
                "mismatched response to BatchCertify".into(),
            ));
        };
        let (delivered, dropped) = transport.borrow().stats();
        let metrics = sim.borrow().metrics();
        replies
            .into_iter()
            .map(|reply| {
                Ok(DistributedOutcome {
                    answer: reply.answer?,
                    degraded_sites: reply.degraded_sites,
                    retries: reply.retries,
                    delivered,
                    dropped,
                    metrics,
                    virtual_us,
                })
            })
            .collect()
    }

    /// Spins up the actors, sends one client request to the global
    /// actor, and drives the runtime until its response arrives.
    fn drive(
        &self,
        fed: &Federation,
        query: &BoundQuery,
        request: Request,
        transport: &Rc<RefCell<dyn Transport>>,
        sim: &Rc<RefCell<Simulation>>,
    ) -> Result<(Response, f64), ExecError> {
        // A store mutation since the last run flushes the cache.
        self.cache.borrow_mut().sync_generation(fed.generation());
        let cache = if self.pipeline.cache {
            Some(Rc::clone(&self.cache))
        } else {
            None
        };
        let rt = Runtime::new();
        let net = Net::new(rt.handle(), Rc::clone(transport), fed.num_dbs());
        for db in fed.dbs() {
            let ctx = Ctx {
                fed,
                query,
                net: net.clone(),
                sim: Rc::clone(sim),
                rpc: self.rpc,
                pipeline: self.pipeline,
                cache: cache.clone(),
            };
            rt.handle().spawn(run_site(ctx, db.id()));
        }
        rt.handle().spawn(run_global(Ctx {
            fed,
            query,
            net: net.clone(),
            sim: Rc::clone(sim),
            rpc: self.rpc,
            pipeline: self.pipeline,
            cache,
        }));

        // The client: one RPC to the global actor. It must not time out
        // on its own — end-to-end patience is the point — so it gets an
        // effectively unbounded window and no retries.
        let client_net = net.clone();
        let response = rt
            .run(async move {
                let cfg = RpcConfig {
                    timeout_us: 1e15,
                    per_byte_us: 0.0,
                    retries: 0,
                    backoff_us: 0.0,
                    backoff_factor: 1.0,
                };
                call(
                    &client_net,
                    Site::Global,
                    Site::Global,
                    request,
                    0,
                    Phase::Ship,
                    cfg,
                )
                .await
            })
            .map_err(|deadlock| ExecError::Internal(deadlock.to_string()))?
            .map_err(|e| ExecError::Internal(format!("global actor lost: {e}")))?;
        Ok((response, rt.handle().now_us()))
    }

    /// Executes `query` under a per-site hybrid plan: the listed sites
    /// run PL's static-prefetch schedule, every other hosting site runs
    /// BL's. One `HybridCertify` round-trip; the answer is identical to
    /// BL's and PL's by the strategies' shared invariant.
    ///
    /// # Errors
    ///
    /// As for [`run`](DistributedExecutor::run).
    pub fn run_hybrid(
        &self,
        fed: &Federation,
        query: &BoundQuery,
        parallel_sites: Vec<DbId>,
        config: LocalizedConfig,
        transport: Rc<RefCell<dyn Transport>>,
        sim: Rc<RefCell<Simulation>>,
    ) -> Result<DistributedOutcome, ExecError> {
        let request = Request::HybridCertify {
            parallel_sites,
            config,
        };
        let response = self.drive(fed, query, request, &transport, &sim)?;
        let (Response::Certify(reply), virtual_us) = response else {
            return Err(ExecError::Internal(
                "mismatched response to HybridCertify".into(),
            ));
        };
        let (delivered, dropped) = transport.borrow().stats();
        Ok(DistributedOutcome {
            answer: reply.answer?,
            degraded_sites: reply.degraded_sites,
            retries: reply.retries,
            delivered,
            dropped,
            metrics: sim.borrow().metrics(),
            virtual_us,
        })
    }

    /// The adaptive distributed executor: prices CA/BL/PL/HY against the
    /// statistics catalog, runs the cheapest over `transport`, and feeds
    /// the measured response time and transport cost back into the
    /// catalog.
    ///
    /// A winning hybrid executes for real: `HybridCertify` carries the
    /// plan's per-site modes, and each hosting site runs its own BL or PL
    /// schedule from one non-uniform fan-out. A stale catalog (the
    /// federation mutated since the last scan) is re-scanned first,
    /// keeping its accumulated observations.
    ///
    /// # Errors
    ///
    /// As for [`run`](DistributedExecutor::run).
    pub fn run_adaptive(
        &self,
        fed: &Federation,
        query: &BoundQuery,
        catalog: &mut StatsCatalog,
        transport: Rc<RefCell<dyn Transport>>,
        sim: Rc<RefCell<Simulation>>,
    ) -> Result<AdaptiveDistributedOutcome, ExecError> {
        refresh_catalog(catalog, fed);
        let fingerprint = query_fingerprint(query);
        let warmth = if self.pipeline.cache {
            self.cache.borrow().stats().hit_rate()
        } else {
            0.0
        };
        let knobs = PipelineKnobs {
            threads: self.pipeline.threads.max(1) as f64,
            warmth,
            batch: self.pipeline.batch as f64,
        };
        let choice = choose(
            catalog,
            fed.global_schema(),
            query,
            &knobs,
            fingerprint,
            true,
        );
        let best = choice.best();
        let executed = best.kind;
        let before_net = sim.borrow().ledger().total_for_resource(Resource::Net);
        let before_bytes = sim.borrow().metrics().bytes_transferred;
        let outcome = match executed {
            PlanKind::Centralized => self.run(
                fed,
                query,
                DistributedStrategy::ca(),
                transport,
                Rc::clone(&sim),
            )?,
            PlanKind::BasicLocalized => self.run(
                fed,
                query,
                DistributedStrategy::bl(),
                transport,
                Rc::clone(&sim),
            )?,
            PlanKind::ParallelLocalized => self.run(
                fed,
                query,
                DistributedStrategy::pl(),
                transport,
                Rc::clone(&sim),
            )?,
            PlanKind::Hybrid => {
                let parallel_sites: Vec<DbId> = best
                    .modes
                    .iter()
                    .filter(|m| m.parallel)
                    .map(|m| m.db)
                    .collect();
                self.run_hybrid(
                    fed,
                    query,
                    parallel_sites,
                    LocalizedConfig::default(),
                    transport,
                    Rc::clone(&sim),
                )?
            }
        };
        catalog.observe_response(fingerprint, executed.label(), outcome.metrics.response_us);
        // The sim may be shared across runs: feed back only this run's
        // slice of the wire traffic.
        let net_busy =
            (sim.borrow().ledger().total_for_resource(Resource::Net) - before_net).as_micros();
        let bytes = outcome
            .metrics
            .bytes_transferred
            .saturating_sub(before_bytes);
        catalog.observe_net(bytes, net_busy);
        Ok(AdaptiveDistributedOutcome {
            outcome,
            choice,
            executed,
        })
    }

    /// Convenience: runs over the in-process [`LocalTransport`] with a
    /// fresh paper-default simulation.
    pub fn run_local(
        &self,
        fed: &Federation,
        query: &BoundQuery,
        strategy: DistributedStrategy,
    ) -> Result<DistributedOutcome, ExecError> {
        let sim = Rc::new(RefCell::new(Simulation::new(
            SystemParams::paper_default(),
            fed.num_dbs(),
        )));
        let transport: Rc<RefCell<dyn Transport>> = Rc::new(RefCell::new(LocalTransport::new()));
        self.run(fed, query, strategy, transport, sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedoq_core::collect_catalog;
    use fedoq_workload::university;

    #[test]
    fn adaptive_distributed_run_plans_executes_and_learns() {
        let fed = university::federation().unwrap();
        let query = fed.parse_and_bind(university::Q1).unwrap();
        let mut catalog = collect_catalog(&fed, SystemParams::paper_default());
        let exec = DistributedExecutor::new();
        let run = |catalog: &mut StatsCatalog| {
            let sim = Rc::new(RefCell::new(Simulation::new(
                SystemParams::paper_default(),
                fed.num_dbs(),
            )));
            let transport: Rc<RefCell<dyn Transport>> =
                Rc::new(RefCell::new(LocalTransport::new()));
            exec.run_adaptive(&fed, &query, catalog, transport, sim)
                .unwrap()
        };
        let first = run(&mut catalog);
        // The hybrid is priced alongside the uniform strategies.
        assert_eq!(first.choice.ranked.len(), 4);
        assert!(first.choice.plan(PlanKind::Hybrid).is_some());
        assert_eq!(first.executed, first.choice.best().kind);
        // The answer classifies like the fixed strategy's own run.
        let fixed = exec
            .run_local(&fed, &query, DistributedStrategy::bl())
            .unwrap();
        assert!(first.outcome.answer.same_classification(&fixed.answer));
        // Feedback landed: the second run scores with an observation.
        assert_eq!(catalog.observed_len(), 1);
        let second = run(&mut catalog);
        let seen = second.choice.plan(first.executed).unwrap();
        assert!(seen.observed_us.is_some());
        assert!(seen.confidence > 0.0);
    }

    #[test]
    fn hybrid_certify_executes_non_uniform_site_schedules() {
        let fed = university::federation().unwrap();
        let query = fed.parse_and_bind(university::Q1).unwrap();
        let exec = DistributedExecutor::new();
        // Site 1 runs PL's schedule, everyone else BL's; the answer must
        // classify like a uniform run (the strategies' shared invariant).
        let sim = Rc::new(RefCell::new(Simulation::new(
            SystemParams::paper_default(),
            fed.num_dbs(),
        )));
        let transport: Rc<RefCell<dyn Transport>> = Rc::new(RefCell::new(LocalTransport::new()));
        let hybrid = exec
            .run_hybrid(
                &fed,
                &query,
                vec![DbId::new(1)],
                LocalizedConfig::default(),
                transport,
                sim,
            )
            .unwrap();
        let uniform = exec
            .run_local(&fed, &query, DistributedStrategy::bl())
            .unwrap();
        assert!(hybrid.answer.same_classification(&uniform.answer));
        assert_eq!(
            format!("{}", hybrid.answer),
            format!("{}", uniform.answer),
            "hybrid row order and provenance must match the uniform run"
        );
    }
}
